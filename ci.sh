#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the full test suite.
#
#   ./ci.sh
#
# Each stage must pass for the script to exit zero. Clippy runs with
# warnings denied across every target (libs, bins, tests, benches) so new
# warnings fail the build instead of accumulating.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release (timed) =="
build_start=$(date +%s)
cargo build --release --workspace
build_end=$(date +%s)
echo "release build took $((build_end - build_start))s"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test -q =="
cargo test --workspace -q

echo "== batched-decode differential suite =="
cargo test -p nn --test batched_differential -q
cargo test -p nn --test batched_proptests -q
cargo test -p bench --test golden_decode -q

echo "== resume-differential suite =="
cargo test -p nn --test resume_differential -q
cargo test -p nn --test ckpt_proptests -q

echo "== determinism audit: source lints + tape reduction orders =="
cargo run --release -p bench --bin det_audit -- --out target/BENCH_det_audit.json

echo "== parallel-safety audit: concurrency lints + schedule certification =="
cargo run --release -p bench --bin par_audit -- --out target/BENCH_par_audit.json

echo "== hot-path audit: panic-freedom + allocation-discipline lints =="
cargo run --release -p bench --bin hot_audit -- --out target/BENCH_hot_audit.json

echo "== zero-alloc steady state: counting-allocator certification =="
cargo test --release -p serve --test zero_alloc -q
cargo test -p analysis --test hot_proptests -q

echo "== double-run bit-equality suite (incl. 1/2/4-thread sweep) =="
cargo test -p nn --test double_run -q
cargo test -p analysis --test order_proptests -q

echo "== lint-code registry cross-check =="
cargo test -p bench --test lint_registry -q

echo "== fault-matrix cell: truncate-at-CRC, base preset =="
cargo test -p nn --test resume_differential \
  truncate_at_crc_leaves_last_good_loadable_base_preset -q

echo "== decode_bench smoke (2 requests, thread sweep) =="
cargo run --release -p bench --bin decode_bench -- \
  --requests 2 --batch 2 --max-out 8 --out target/BENCH_decode_smoke.json

echo "== serving engine: double-run determinism + invariants + golden =="
cargo test -p serve -q
cargo test -p bench --test golden_serve -q

echo "== prefix cache: differential battery + property suite + golden event stream =="
cargo test -p nn --test cache_differential -q
cargo test -p nn --test cache_proptests -q
cargo test -p bench --test golden_serve_cache -q

echo "== serve_bench smoke (2 clients; gated on identical + no silent drops"
echo "   + cache phases bit-identical + 90%-reuse hit rate > 0) =="
cargo run --release -p bench --bin serve_bench -- \
  --requests 8 --clients 2 --slots 2 --max-out 8 \
  --out target/BENCH_serve_smoke.json

echo "== observability suite: spans, sinks, double-run with obs on =="
cargo test -p obs -q
cargo test -p nn --test obs_double_run -q

echo "== obs overhead smoke: obs-off throughput within 2% of baseline =="
cargo run --release -p bench --bin obs_report -- \
  --overhead --tol 0.02 --repeats 8 --out target/BENCH_obs_overhead.json

echo "== obs report: kernel attribution covers >=95% of the train step =="
DATAVIST5_OBS=1 cargo run --release -p bench --bin obs_report -- \
  --out target/BENCH_obs.json

echo "== perf-trajectory suite: history round-trip + gate + golden trends =="
cargo test -p bench --test perf_proptests -q
cargo test -p bench --test golden_perf_trends -q

echo "== perf gate: committed BENCH_*.json vs committed baseline =="
cargo run --release -p bench --bin perf_gate -- --out target/BENCH_perf_gate.json

echo "== perf trend charts rendered =="
test -s target/bench/trends/perf_trends.txt
test -s target/bench/trends/trend_decode.svg
test -s target/bench/trends/trend_kernel.svg

echo "ci: all stages passed"
