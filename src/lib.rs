//! Umbrella crate for the DataVisT5 reproduction: re-exports the workspace
//! crates so examples and integration tests have a single import surface.
pub use corpus;
pub use datavist5;
pub use metrics;
pub use nn;
pub use storage;
pub use tensor;
pub use tokenizer;
pub use vql;
