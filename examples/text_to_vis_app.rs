//! A small text-to-vis application: trains a DataVisT5 (smoke scale, a few
//! seconds) and then translates natural-language questions into DV
//! queries, charts, and Vega-Lite specs.
//!
//! Run with a question of your own:
//!
//! ```text
//! cargo run --release --example text_to_vis_app -- \
//!     "show the number of records for each country in the artist table"
//! ```
//!
//! Without arguments a held-out test question is used.

use datavist5_repro::corpus::Split;
use datavist5_repro::datavist5::config::{Scale, Size};
use datavist5_repro::datavist5::data::{text_to_vis_input, Task, TaskExample};
use datavist5_repro::datavist5::zoo::{ModelKind, Regime, Zoo};
use datavist5_repro::storage;
use datavist5_repro::vql;

fn main() {
    let question = std::env::args().nth(1);

    eprintln!("building corpus and training DataVisT5 (smoke scale)…");
    let zoo = Zoo::new(Scale::Smoke);
    let kind = ModelKind::DataVisT5(Size::Base, Regime::Mft);
    let trained = zoo.train_model_cached(kind, None);
    let predictor = zoo.predictor(kind, trained);

    // Resolve the question: user-provided (against the first database that
    // filtration matches) or a held-out test example.
    let example: TaskExample = match question {
        Some(q) => {
            let db = zoo
                .corpus
                .databases
                .iter()
                .find(|db| {
                    let filtered = datavist5_repro::datavist5::filter_schema(&q, &db.schema());
                    filtered.tables.len() < db.schema().tables.len()
                        || db.schema().tables.iter().any(|t| q.contains(&t.name))
                })
                .unwrap_or(&zoo.corpus.databases[0]);
            eprintln!("matched database: {}", db.name);
            TaskExample {
                task: Task::TextToVis,
                db_name: db.name.clone(),
                split: Split::Test,
                input: text_to_vis_input(&q, &db.schema()),
                output: String::new(),
                gold_query: None,
                has_join: false,
            }
        }
        None => zoo
            .datasets
            .of(Task::TextToVis, Split::Test)
            .first()
            .map(|e| (*e).clone())
            .expect("test example exists"),
    };

    println!("input     : {}", example.input);
    let prediction = predictor.predict(&example);
    println!("prediction: {prediction}");
    if let Some(gold) = &example.gold_query {
        println!("gold      : {gold}");
    }

    match vql::parse_query(&prediction) {
        Ok(query) => {
            let db = zoo.corpus.database(&example.db_name).unwrap();
            match storage::execute(&query, db) {
                Ok(result) => {
                    let chart = storage::to_chart(&query, &result);
                    println!("\n{}", chart.render_ascii(32));
                    let spec = vql::vega::to_vega_lite(&query, &chart);
                    println!("vega-lite: {}", serde_json::to_string(&spec).unwrap());
                }
                Err(e) => println!("query does not execute: {e}"),
            }
        }
        Err(e) => println!("prediction does not parse: {e}"),
    }
    println!(
        "\n(smoke-scale model: expect imperfect queries; run the table04 binary at full \
         scale for the benchmark numbers)"
    );
}
