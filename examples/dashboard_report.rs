//! Dashboard report: vis-to-text and table-to-text over a whole database.
//!
//! For every DV query of one database, executes it, renders the chart, and
//! produces a textual narrative — the paper's motivating "explain complex
//! DVs to non-experts" scenario — plus a table-to-text fact sheet.
//!
//! Run with: `cargo run --release --example dashboard_report [db_name]`

use datavist5_repro::corpus::{Corpus, CorpusConfig};
use datavist5_repro::storage;
use datavist5_repro::vql;

fn main() {
    let corpus = Corpus::generate(&CorpusConfig::default());
    let db_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| corpus.databases[0].name.clone());
    let db = corpus
        .database(&db_name)
        .unwrap_or_else(|| panic!("unknown database '{db_name}'"));
    println!(
        "=== Dashboard report for {} (domain: {}) ===\n",
        db.name, db.domain
    );

    let queries: Vec<_> = corpus
        .nvbench
        .iter()
        .filter(|e| e.db_name == db.name)
        .take(5)
        .collect();
    for (i, e) in queries.iter().enumerate() {
        let query = vql::parse_query(&e.query).expect("gold query parses");
        let result = storage::execute(&query, db).expect("gold query executes");
        let chart = storage::to_chart(&query, &result);
        println!("--- panel {} ---", i + 1);
        println!("dv query : {}", e.query);
        println!("narrative: {}", e.description);
        println!("{}", chart.render_ascii(30));
    }

    println!("--- fact sheet (table-to-text) ---");
    for fact in corpus
        .wikitabletext
        .iter()
        .filter(|e| e.db_name == db.name)
        .take(5)
    {
        println!("  {}", fact.description);
    }

    println!("\navailable databases:");
    for d in &corpus.databases {
        print!("{} ", d.name);
    }
    println!();
}
