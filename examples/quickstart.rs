//! Quickstart: the DataVisT5 pipeline on one example, no training needed.
//!
//! Walks Figure 2 end to end: a natural-language question is filtered
//! against the database schema (§III-B), the DV knowledge is encoded
//! (§III-C) and standardized (§III-D), the gold DV query executes on the
//! storage engine, and the chart renders both as ASCII and as a Vega-Lite
//! specification.
//!
//! Run with: `cargo run --release --example quickstart`

use datavist5_repro::corpus::{Corpus, CorpusConfig};
use datavist5_repro::datavist5::data::text_to_vis_input;
use datavist5_repro::datavist5::filter_schema;
use datavist5_repro::storage;
use datavist5_repro::vql;

fn main() {
    // 1. A corpus of synthetic databases (the NVBench stand-in).
    let corpus = Corpus::generate(&CorpusConfig::default());
    let example = &corpus.nvbench[0];
    let db = corpus.database(&example.db_name).expect("known database");
    println!("database : {}", db.name);
    println!("question : {}", example.question);

    // 2. Schema filtration (§III-B): n-gram matching selects the tables
    //    the question references.
    let schema = db.schema();
    let filtered = filter_schema(&example.question, &schema);
    println!(
        "filtered schema keeps {} of {} tables",
        filtered.tables.len(),
        schema.tables.len()
    );

    // 3. Unified encoding (§III-C/D): the exact text a model consumes.
    let model_input = text_to_vis_input(&example.question, &schema);
    println!("model input : {model_input}");

    // 4. The gold DV query (already standardized) parses and executes.
    let query = vql::parse_query(&example.query).expect("gold query parses");
    println!("dv query    : {query}");
    let result = storage::execute(&query, db).expect("gold query executes");
    let chart = storage::to_chart(&query, &result);

    // 5. Render: ASCII for the terminal, Vega-Lite for a real renderer.
    println!("\n{}", chart.render_ascii(36));
    let spec = vql::vega::to_vega_lite(&query, &chart);
    println!(
        "vega-lite spec:\n{}",
        serde_json::to_string_pretty(&spec).expect("spec serializes")
    );
}
