//! FeVisQA session: free-form question answering over a data
//! visualization, grounded by the storage engine.
//!
//! Picks one database, renders a chart from a DV query, and answers the
//! paper's question taxonomy — Type 1 (meaning), Type 2 (suitability),
//! Type 3 (data/structure) — using the executed chart model, then shows a
//! trained model answering the same questions.
//!
//! Run with: `cargo run --release --example fevisqa_session`

use datavist5_repro::corpus::{Corpus, CorpusConfig, QuestionType, Split};
use datavist5_repro::datavist5::config::{Scale, Size};
use datavist5_repro::datavist5::data::{strip_prefix, Task};
use datavist5_repro::datavist5::zoo::{ModelKind, Regime, Zoo};
use datavist5_repro::storage;
use datavist5_repro::vql;

fn main() {
    // Ground truth straight from the engine.
    let corpus = Corpus::generate(&CorpusConfig::default());
    let example = corpus
        .fevisqa
        .iter()
        .find(|e| e.question_type == QuestionType::Type3)
        .expect("type-3 question exists");
    let db = corpus.database(&example.db_name).unwrap();
    let query = vql::parse_query(&example.query).expect("query parses");
    let result = storage::execute(&query, db).expect("query executes");
    let chart = storage::to_chart(&query, &result);

    println!("database : {}", db.name);
    println!("dv query : {}", example.query);
    println!("\n{}", chart.render_ascii(32));
    println!("engine-grounded answers:");
    println!(
        "  how many parts are there in the chart ?      -> {}",
        chart.part_count()
    );
    if let (Some(min), Some(max)) = (chart.min_value(), chart.max_value()) {
        println!("  what is the value of the smallest part ?     -> {min}");
        println!("  what is the value of the largest part ?      -> {max}");
    }
    println!(
        "  is any equal value of y-axis in the chart ?  -> {}",
        if chart.has_equal_values() {
            "yes"
        } else {
            "no"
        }
    );
    println!(
        "  total of the y channel                       -> {}",
        chart.total()
    );

    // The same questions through a trained model (smoke scale).
    eprintln!("\ntraining DataVisT5 (smoke scale) for model answers…");
    let zoo = Zoo::new(Scale::Smoke);
    let kind = ModelKind::DataVisT5(Size::Base, Regime::Mft);
    let trained = zoo.train_model_cached(kind, None);
    let predictor = zoo.predictor(kind, trained);
    println!("model answers on held-out FeVisQA examples:");
    for e in zoo.datasets.of(Task::FeVisQa, Split::Test).iter().take(4) {
        let question = e
            .input
            .split("<question> ")
            .nth(1)
            .and_then(|r| r.split(" <vql>").next())
            .unwrap_or("");
        let gold = strip_prefix(Task::FeVisQa, &e.output);
        let answer = predictor.predict(e);
        println!("  Q: {question}");
        println!("     gold: {gold} | model: {answer}");
    }
}
