//! Exports the synthetic corpora as JSONL release artifacts.
//!
//! Run with: `cargo run --release --example export_datasets [out_dir]`
//! (default `bench/out/datasets`). Produces `nvbench.jsonl`,
//! `fevisqa.jsonl`, and `tabletext.jsonl` with split annotations, plus a
//! CSV dump of every database table.

use std::path::PathBuf;

use datavist5_repro::corpus::{export::export_jsonl, Corpus, CorpusConfig};
use datavist5_repro::storage::table_to_csv;

fn main() -> std::io::Result<()> {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("bench/out/datasets"));
    let corpus = Corpus::generate(&CorpusConfig::default());

    export_jsonl(&corpus, &dir)?;
    println!(
        "wrote {} nvbench / {} fevisqa / {} tabletext records to {}",
        corpus.nvbench.len(),
        corpus.fevisqa.len(),
        corpus.chart2text.len() + corpus.wikitabletext.len(),
        dir.display()
    );

    let db_dir = dir.join("databases");
    std::fs::create_dir_all(&db_dir)?;
    let mut files = 0;
    for db in &corpus.databases {
        for table in &db.tables {
            let path = db_dir.join(format!("{}__{}.csv", db.name, table.name));
            std::fs::write(path, table_to_csv(table))?;
            files += 1;
        }
    }
    println!(
        "wrote {files} database tables as csv to {}",
        db_dir.display()
    );
    Ok(())
}
