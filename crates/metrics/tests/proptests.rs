//! Property-based tests: metric bounds, identity, and monotonicity
//! invariants.

use proptest::prelude::*;

use metrics::{bleu, meteor, rouge_l, rouge_n, sentence_bleu, tokenize};

fn sentences() -> impl Strategy<Value = String> {
    prop::collection::vec("[a-z]{1,7}", 1..20).prop_map(|w| w.join(" "))
}

proptest! {
    /// All metrics stay inside [0, 1].
    #[test]
    fn metrics_bounded(c in sentences(), r in sentences()) {
        let pairs = vec![(c, r)];
        for v in [
            bleu(&pairs, 1), bleu(&pairs, 2), bleu(&pairs, 4),
            rouge_n(&pairs, 1), rouge_n(&pairs, 2), rouge_l(&pairs),
            meteor(&pairs),
        ] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&v), "metric {v} out of bounds");
        }
    }

    /// A sentence compared with itself scores 1 on BLEU and ROUGE.
    #[test]
    fn identity_scores_one(s in sentences()) {
        let pairs = vec![(s.clone(), s.clone())];
        prop_assert!((bleu(&pairs, 1) - 1.0).abs() < 1e-9);
        prop_assert!((rouge_n(&pairs, 1) - 1.0).abs() < 1e-9);
        prop_assert!((rouge_l(&pairs) - 1.0).abs() < 1e-9);
        // METEOR pays a chunk penalty even on identity; for a one-token
        // sentence it is exactly 0.5 (one chunk over one match).
        prop_assert!(meteor(&pairs) >= 0.5 - 1e-9);
    }

    /// Metrics are symmetric under corpus duplication.
    #[test]
    fn duplication_invariant(c in sentences(), r in sentences()) {
        let single = vec![(c.clone(), r.clone())];
        let double = vec![(c.clone(), r.clone()), (c, r)];
        prop_assert!((rouge_l(&single) - rouge_l(&double)).abs() < 1e-9);
        prop_assert!((meteor(&single) - meteor(&double)).abs() < 1e-9);
        prop_assert!((bleu(&single, 2) - bleu(&double, 2)).abs() < 1e-9);
    }

    /// Tokenization is deterministic and lossy only in whitespace/case.
    #[test]
    fn tokenize_stable(s in ".{0,100}") {
        let a = tokenize(&s);
        let b = tokenize(&s);
        prop_assert_eq!(&a, &b);
        // Re-tokenizing the joined tokens is a fixpoint.
        let joined = a.join(" ");
        prop_assert_eq!(tokenize(&joined), a);
    }

    /// Appending the reference to a candidate never lowers ROUGE recall
    /// (and hence never zeroes a previously positive F1).
    #[test]
    fn extension_keeps_overlap(c in sentences(), r in sentences()) {
        let base = rouge_n(&[(c.clone(), r.clone())], 1);
        let extended = rouge_n(&[(format!("{c} {r}"), r)], 1);
        if base > 0.0 {
            prop_assert!(extended > 0.0);
        }
    }

    /// Sentence BLEU equals corpus BLEU on a singleton corpus.
    #[test]
    fn sentence_is_singleton_corpus(c in sentences(), r in sentences()) {
        let a = sentence_bleu(&c, &r, 2);
        let b = bleu(&[(c, r)], 2);
        prop_assert!((a - b).abs() < 1e-12);
    }
}
