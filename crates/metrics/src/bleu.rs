//! Corpus and sentence BLEU with modified n-gram precision and brevity
//! penalty (Papineni et al., 2002).

use crate::{ngram_counts, tokenize};

/// Corpus BLEU-n over `(candidate, reference)` pairs.
///
/// Uses clipped n-gram counts pooled across the corpus, the geometric mean
/// of precisions up to `max_n`, and the corpus-level brevity penalty. This
/// is the standard corpus formulation; `max_n` of 1, 2, and 4 produce the
/// BLEU-1/2/4 columns reported in the paper.
pub fn bleu(pairs: &[(String, String)], max_n: usize) -> f64 {
    assert!(max_n >= 1, "max_n must be positive");
    if pairs.is_empty() {
        return 0.0;
    }
    let mut matched = vec![0usize; max_n];
    let mut total = vec![0usize; max_n];
    let mut cand_len = 0usize;
    let mut ref_len = 0usize;
    for (cand, reference) in pairs {
        let c = tokenize(cand);
        let r = tokenize(reference);
        cand_len += c.len();
        ref_len += r.len();
        for n in 1..=max_n {
            let c_counts = ngram_counts(&c, n);
            let r_counts = ngram_counts(&r, n);
            for (gram, &count) in &c_counts {
                let clip = r_counts.get(gram).copied().unwrap_or(0);
                matched[n - 1] += count.min(clip);
            }
            total[n - 1] += c.len().saturating_sub(n - 1);
        }
    }
    let mut log_sum = 0.0f64;
    for n in 0..max_n {
        if total[n] == 0 || matched[n] == 0 {
            return 0.0;
        }
        log_sum += (matched[n] as f64 / total[n] as f64).ln();
    }
    let precision = (log_sum / max_n as f64).exp();
    let bp = if cand_len >= ref_len || cand_len == 0 {
        1.0
    } else {
        (1.0 - ref_len as f64 / cand_len as f64).exp()
    };
    bp * precision
}

/// Sentence-level BLEU-n for a single pair (useful in case studies).
pub fn sentence_bleu(candidate: &str, reference: &str, max_n: usize) -> f64 {
    bleu(&[(candidate.to_string(), reference.to_string())], max_n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sentences_score_one() {
        let s = "give the number of students in each last name".to_string();
        assert!((bleu(&[(s.clone(), s)], 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_sentences_score_zero() {
        assert_eq!(sentence_bleu("aa bb cc", "xx yy zz", 1), 0.0);
    }

    #[test]
    fn bleu1_is_unigram_precision_times_bp() {
        // candidate: 4 tokens, 3 match; same length -> no BP.
        let score = sentence_bleu("the cat sat down", "the cat sat up", 1);
        assert!((score - 0.75).abs() < 1e-9);
    }

    #[test]
    fn clipping_caps_repeated_words() {
        // Classic example: candidate of all "the" gets clipped at the
        // reference count.
        let score = sentence_bleu("the the the the", "the cat", 1);
        assert!((score - 0.25).abs() < 1e-9);
    }

    #[test]
    fn brevity_penalty_punishes_short_candidates() {
        let long_ref = "a b c d e f g h";
        let short = sentence_bleu("a b", long_ref, 1);
        // Precision is 1 but BP = exp(1 - 8/2) is tiny.
        assert!(short < 0.1);
        assert!(short > 0.0);
    }

    #[test]
    fn higher_order_requires_order() {
        let reordered = sentence_bleu("sat cat the", "the cat sat", 1);
        let ordered = sentence_bleu("the cat sat", "the cat sat", 2);
        assert!((reordered - 1.0).abs() < 1e-9); // unigrams ignore order
        assert!((ordered - 1.0).abs() < 1e-9);
        let broken = sentence_bleu("sat cat the", "the cat sat", 2);
        assert_eq!(broken, 0.0);
    }

    #[test]
    fn corpus_pools_counts() {
        let pairs = vec![
            ("the cat".to_string(), "the cat".to_string()),
            ("a dog".to_string(), "a cow".to_string()),
        ];
        let score = bleu(&pairs, 1);
        // 2 matches of 2 + 1 of 2 = 3/4.
        assert!((score - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_corpus_scores_zero() {
        assert_eq!(bleu(&[], 4), 0.0);
    }

    #[test]
    fn bleu_is_monotone_in_overlap() {
        let r = "list the last name of the students in a bar chart";
        let bad = sentence_bleu("show a pie", r, 2);
        let mid = sentence_bleu("list the students in a chart", r, 2);
        let good = sentence_bleu("list the last name of the students in a chart", r, 2);
        assert!(bad <= mid && mid <= good);
    }
}
