//! Evaluation metrics for the four DataVisT5 tasks.
//!
//! * Text-to-vis uses the exact-match family, implemented on standardized
//!   ASTs in [`vql::compare`] (this crate re-exports the aggregation type).
//! * Vis-to-text, FeVisQA, and table-to-text use the machine-translation
//!   metrics implemented here: corpus [`bleu`], [`rouge_n`] / [`rouge_l`]
//!   F1, and a [`meteor`] variant with exact + stemmed matching and the
//!   standard fragmentation penalty.
//!
//! All metrics operate on a shared whitespace-plus-punctuation
//! tokenization ([`tokenize`]) with case folding, so scores are comparable
//! across models regardless of surface casing.

mod bleu;
mod meteor;
mod rouge;
mod stem;

pub use bleu::{bleu, sentence_bleu};
pub use meteor::meteor;
pub use rouge::{rouge_l, rouge_n};
pub use stem::light_stem;

pub use vql::compare::EmScores;

/// Lowercases and splits text into word and punctuation tokens.
///
/// Alphanumeric runs (including `_`, `.`, `'` inside words, so
/// `artist.country` and `so ji-sub's` survive) form one token; any other
/// non-space character is its own token.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.to_lowercase().chars() {
        if ch.is_alphanumeric() || ch == '_' || ch == '.' || ch == '\'' {
            current.push(ch);
        } else {
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
            if !ch.is_whitespace() {
                tokens.push(ch.to_string());
            }
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Counts n-gram occurrences in a token sequence. Returns an ordered map:
/// BLEU/ROUGE iterate these counts into clipped-match sums, and while the
/// integer sums are order-independent, keeping score-adjacent containers
/// ordered means no future float fold can pick up hash order (determinism
/// audit).
pub(crate) fn ngram_counts(
    tokens: &[String],
    n: usize,
) -> std::collections::BTreeMap<&[String], usize> {
    let mut map = std::collections::BTreeMap::new();
    if tokens.len() < n || n == 0 {
        return map;
    }
    for w in tokens.windows(n) {
        *map.entry(w).or_insert(0) += 1;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_folds_case_and_splits_punctuation() {
        assert_eq!(
            tokenize("Sallim was the publisher, right?"),
            vec!["sallim", "was", "the", "publisher", ",", "right", "?"]
        );
    }

    #[test]
    fn tokenize_keeps_qualified_columns_whole() {
        assert_eq!(
            tokenize("count ( artist.country )"),
            vec!["count", "(", "artist.country", ")"]
        );
    }

    #[test]
    fn tokenize_empty_is_empty() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   ").is_empty());
    }

    #[test]
    fn ngram_counts_windows() {
        let toks = tokenize("a b a b");
        let bi = ngram_counts(&toks, 2);
        assert_eq!(bi.len(), 2);
        let ab: Vec<String> = vec!["a".into(), "b".into()];
        assert_eq!(bi.get(ab.as_slice()), Some(&2));
    }

    #[test]
    fn ngram_counts_short_input() {
        let toks = tokenize("one");
        assert!(ngram_counts(&toks, 2).is_empty());
    }
}
