//! ROUGE-N and ROUGE-L F1 (Lin, 2004).

use crate::{ngram_counts, tokenize};

/// Mean ROUGE-N F1 over `(candidate, reference)` pairs.
pub fn rouge_n(pairs: &[(String, String)], n: usize) -> f64 {
    assert!(n >= 1, "n must be positive");
    if pairs.is_empty() {
        return 0.0;
    }
    let total: f64 = pairs.iter().map(|(c, r)| pair_rouge_n(c, r, n)).sum();
    total / pairs.len() as f64
}

fn pair_rouge_n(candidate: &str, reference: &str, n: usize) -> f64 {
    let c = tokenize(candidate);
    let r = tokenize(reference);
    let c_counts = ngram_counts(&c, n);
    let r_counts = ngram_counts(&r, n);
    let overlap: usize = r_counts
        .iter()
        .map(|(gram, &rc)| rc.min(c_counts.get(gram).copied().unwrap_or(0)))
        .sum();
    let c_total = c.len().saturating_sub(n - 1);
    let r_total = r.len().saturating_sub(n - 1);
    if c_total == 0 || r_total == 0 || overlap == 0 {
        return 0.0;
    }
    let p = overlap as f64 / c_total as f64;
    let rec = overlap as f64 / r_total as f64;
    2.0 * p * rec / (p + rec)
}

/// Mean ROUGE-L F1 (longest common subsequence) over pairs.
pub fn rouge_l(pairs: &[(String, String)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let total: f64 = pairs.iter().map(|(c, r)| pair_rouge_l(c, r)).sum();
    total / pairs.len() as f64
}

fn pair_rouge_l(candidate: &str, reference: &str) -> f64 {
    let c = tokenize(candidate);
    let r = tokenize(reference);
    if c.is_empty() || r.is_empty() {
        return 0.0;
    }
    let l = lcs_len(&c, &r) as f64;
    if l == 0.0 {
        return 0.0;
    }
    let p = l / c.len() as f64;
    let rec = l / r.len() as f64;
    2.0 * p * rec / (p + rec)
}

/// Longest-common-subsequence length with a rolling 1-D DP table.
fn lcs_len(a: &[String], b: &[String]) -> usize {
    let mut prev = vec![0usize; b.len() + 1];
    let mut curr = vec![0usize; b.len() + 1];
    for ai in a {
        for (j, bj) in b.iter().enumerate() {
            curr[j + 1] = if ai == bj {
                prev[j] + 1
            } else {
                prev[j + 1].max(curr[j])
            };
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(c: &str, r: &str) -> Vec<(String, String)> {
        vec![(c.to_string(), r.to_string())]
    }

    #[test]
    fn identical_scores_one() {
        let p = pair("the cat sat", "the cat sat");
        assert!((rouge_n(&p, 1) - 1.0).abs() < 1e-12);
        assert!((rouge_n(&p, 2) - 1.0).abs() < 1e-12);
        assert!((rouge_l(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_scores_zero() {
        let p = pair("aa bb", "cc dd");
        assert_eq!(rouge_n(&p, 1), 0.0);
        assert_eq!(rouge_l(&p), 0.0);
    }

    #[test]
    fn rouge1_f1_hand_computed() {
        // cand: "the cat" (2 tokens), ref: "the cat sat" (3 tokens).
        // overlap 2, P = 1, R = 2/3, F1 = 0.8.
        let p = pair("the cat", "the cat sat");
        assert!((rouge_n(&p, 1) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn lcs_ignores_gaps() {
        // LCS of "a x b y c" and "a b c" is 3.
        let a = tokenize("a x b y c");
        let b = tokenize("a b c");
        assert_eq!(lcs_len(&a, &b), 3);
    }

    #[test]
    fn rouge_l_rewards_order() {
        let in_order = rouge_l(&pair("a b c d", "a b c d e"));
        let scrambled = rouge_l(&pair("d c b a", "a b c d e"));
        assert!(in_order > scrambled);
    }

    #[test]
    fn mean_over_corpus() {
        let pairs = vec![
            ("x".to_string(), "x".to_string()),
            ("y".to_string(), "z".to_string()),
        ];
        assert!((rouge_n(&pairs, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_safe() {
        assert_eq!(rouge_n(&[], 1), 0.0);
        assert_eq!(rouge_l(&pair("", "abc")), 0.0);
        assert_eq!(rouge_l(&pair("abc", "")), 0.0);
    }
}
