//! A light English suffix-stripping stemmer.
//!
//! METEOR's stem module only needs to conflate common inflections
//! (`students`/`student`, `played`/`play`, `ordering`/`order`); a full
//! Porter implementation is unnecessary. The stripper is conservative: it
//! never reduces a word below three characters, which avoids collapsing
//! unrelated short words.

/// Strips common inflectional suffixes.
pub fn light_stem(word: &str) -> String {
    let w = word.to_lowercase();
    let keep = |s: &str, cut: usize| s.len().saturating_sub(cut) >= 3;
    if let Some(base) = w.strip_suffix("ies") {
        if base.len() >= 2 {
            return format!("{base}y");
        }
    }
    for (suffix, replace) in [
        ("sses", "ss"),
        ("ing", ""),
        ("edly", ""),
        ("ed", ""),
        ("ly", ""),
        ("es", ""),
        ("s", ""),
    ] {
        if let Some(base) = w.strip_suffix(suffix) {
            if keep(&w, suffix.len()) {
                // Words ending in "ss" keep their plural-looking tail
                // ("class" must not become "clas").
                if suffix == "s" && base.ends_with('s') {
                    continue;
                }
                return format!("{base}{replace}");
            }
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plural_nouns() {
        assert_eq!(light_stem("students"), "student");
        assert_eq!(light_stem("charts"), "chart");
        assert_eq!(light_stem("countries"), "country");
    }

    #[test]
    fn verb_inflections() {
        assert_eq!(light_stem("played"), "play");
        assert_eq!(light_stem("ordering"), "order");
        assert_eq!(light_stem("passes"), "pass");
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(light_stem("is"), "is");
        assert_eq!(light_stem("as"), "as");
        assert_eq!(light_stem("bed"), "bed");
    }

    #[test]
    fn double_s_words_untouched() {
        assert_eq!(light_stem("class"), "class");
        assert_eq!(light_stem("less"), "less");
    }

    #[test]
    fn case_is_folded() {
        assert_eq!(light_stem("Students"), "student");
    }

    #[test]
    fn matching_inflections_conflate() {
        assert_eq!(light_stem("visualizations"), light_stem("visualization"));
        assert_eq!(light_stem("grouped"), light_stem("group"));
    }
}
