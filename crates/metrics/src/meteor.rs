//! METEOR (Banerjee & Lavie, 2005) with exact and stem matching stages and
//! the chunk-based fragmentation penalty.

use crate::stem::light_stem;
use crate::tokenize;

/// Mean METEOR over `(candidate, reference)` pairs.
pub fn meteor(pairs: &[(String, String)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let total: f64 = pairs.iter().map(|(c, r)| pair_meteor(c, r)).sum();
    total / pairs.len() as f64
}

fn pair_meteor(candidate: &str, reference: &str) -> f64 {
    let c = tokenize(candidate);
    let r = tokenize(reference);
    if c.is_empty() || r.is_empty() {
        return 0.0;
    }
    // Stage 1: exact matches; stage 2: stem matches on the remainder.
    // Greedy left-to-right alignment, each reference token used once.
    let mut alignment: Vec<Option<usize>> = vec![None; c.len()];
    let mut used = vec![false; r.len()];
    for (i, ct) in c.iter().enumerate() {
        if let Some(j) = r
            .iter()
            .enumerate()
            .position(|(j, rt)| !used[j] && rt == ct)
        {
            alignment[i] = Some(j);
            used[j] = true;
        }
    }
    for (i, ct) in c.iter().enumerate() {
        if alignment[i].is_some() {
            continue;
        }
        let cs = light_stem(ct);
        if let Some(j) = r
            .iter()
            .enumerate()
            .position(|(j, rt)| !used[j] && light_stem(rt) == cs)
        {
            alignment[i] = Some(j);
            used[j] = true;
        }
    }
    let matches = alignment.iter().flatten().count();
    if matches == 0 {
        return 0.0;
    }
    let m = matches as f64;
    let p = m / c.len() as f64;
    let rec = m / r.len() as f64;
    let f_mean = 10.0 * p * rec / (rec + 9.0 * p);

    // Chunks: maximal runs of candidate matches mapping to consecutive
    // reference positions.
    let mut chunks = 0usize;
    let mut prev: Option<usize> = None;
    for a in alignment.iter() {
        match (a, prev) {
            (Some(j), Some(pj)) if *j == pj + 1 => {}
            (Some(_), _) => chunks += 1,
            (None, _) => {}
        }
        prev = *a;
    }
    let penalty = 0.5 * (chunks as f64 / m).powi(3);
    f_mean * (1.0 - penalty)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(c: &str, r: &str) -> f64 {
        meteor(&[(c.to_string(), r.to_string())])
    }

    #[test]
    fn identical_sentences_score_high() {
        let s = score("the cat sat on the mat", "the cat sat on the mat");
        // One chunk, m tokens: penalty = 0.5*(1/6)^3 ~ 0.0023.
        assert!(s > 0.99);
    }

    #[test]
    fn disjoint_sentences_score_zero() {
        assert_eq!(score("aa bb cc", "dd ee ff"), 0.0);
    }

    #[test]
    fn stem_matches_count() {
        let exact = score("the student plays", "the student plays");
        let stemmed = score("the students played", "the student plays");
        assert!(
            stemmed > 0.5,
            "stem stage should align inflections: {stemmed}"
        );
        assert!(exact >= stemmed);
    }

    #[test]
    fn fragmentation_penalized() {
        let contiguous = score("a b c d", "a b c d");
        let fragmented = score("a c b d", "a b c d");
        assert!(contiguous > fragmented);
    }

    #[test]
    fn recall_weighted_over_precision() {
        // Both candidates match 2 tokens of a 4-token reference; the longer
        // candidate has worse precision, which METEOR discounts 9:1.
        let short = score("a b", "a b c d");
        let long = score("a b x y z w q e", "a b c d");
        // Recall identical, so scores should be within ~15% despite the 4x
        // precision gap.
        assert!((short - long).abs() / short < 0.35);
    }

    #[test]
    fn empty_inputs_safe() {
        assert_eq!(score("", "x"), 0.0);
        assert_eq!(score("x", ""), 0.0);
        assert_eq!(meteor(&[]), 0.0);
    }

    #[test]
    fn corpus_mean() {
        let pairs = vec![
            ("a b".to_string(), "a b".to_string()),
            ("zz".to_string(), "yy".to_string()),
        ];
        let m = meteor(&pairs);
        assert!(m > 0.4 && m < 0.51);
    }
}
