//! The reverse-mode autodiff tape.
//!
//! A [`Graph`] is a single-use tape: build one per training step, run the
//! forward ops (which execute eagerly and record themselves), call
//! [`Graph::backward`] once, then harvest parameter gradients. Ops are
//! coarse (whole matmuls, whole softmaxes) so tape overhead is negligible
//! next to the kernels.

use crate::kernels;
use crate::{Tensor, XorShift};

/// Sentinel target id meaning "do not score this position" in
/// [`Graph::cross_entropy`].
pub const IGNORE_TARGET: usize = usize::MAX;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The node's position on the tape (0-based record order).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Matmul operand orientation for [`Graph::bmm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(dead_code)] // Tn is constructed only by gradient code paths today.
enum MmMode {
    /// `A·B`
    Nn,
    /// `A·Bᵀ`
    Nt,
    /// `Aᵀ·B`
    Tn,
}

#[derive(Debug)]
enum Op {
    Leaf {
        param_hook: Option<usize>,
    },
    Add(usize, usize),
    /// Broadcast-add a `[cols]` bias over every row of a `[rows, cols]` input.
    AddBias(usize, usize),
    Mul(usize, usize),
    Scale(usize, f32),
    /// 2-D (single) or 3-D (batched) matmul with operand orientation.
    Matmul {
        a: usize,
        b: usize,
        mode: MmMode,
    },
    Relu(usize),
    Sigmoid(usize),
    Tanh(usize),
    /// Softmax over the last dimension.
    Softmax(usize),
    /// RMS norm over the last dimension with a learned gain vector.
    RmsNorm {
        x: usize,
        gain: usize,
        /// Cached per-row RMS values.
        rms: Vec<f32>,
    },
    /// Row-gather from an embedding table.
    Embedding {
        table: usize,
        ids: Vec<usize>,
    },
    Reshape {
        x: usize,
        old_shape: Vec<usize>,
    },
    Permute3 {
        x: usize,
        perm: [usize; 3],
    },
    Dropout {
        x: usize,
        mask: Vec<f32>,
    },
    /// Mean negative log-likelihood over non-ignored targets, with optional
    /// label smoothing. Caches row softmax probabilities for backward.
    CrossEntropy {
        logits: usize,
        targets: Vec<usize>,
        probs: Vec<f32>,
        smoothing: f32,
        count: usize,
    },
    Sum(usize),
    /// Vertical concatenation of same-width 2-D tensors.
    ConcatRows {
        parts: Vec<usize>,
        rows: Vec<usize>,
    },
    /// Contiguous row slice of a 2-D tensor.
    SliceRows {
        x: usize,
        start: usize,
    },
    /// Arbitrary (possibly repeated) row gather from a 2-D activation —
    /// the packing primitive behind batched decoding.
    GatherRows {
        x: usize,
        ids: Vec<usize>,
    },
}

struct Node {
    value: Tensor,
    op: Op,
    requires_grad: bool,
}

/// A single-use reverse-mode autodiff tape. See the crate docs for usage.
pub struct Graph {
    nodes: Vec<Node>,
    grads: Vec<Option<Tensor>>,
    rng: XorShift,
    /// Whether kernel profiling is on for this tape (latched from
    /// `obs::enabled()` at construction so one tape never mixes modes).
    prof: bool,
    /// Last profiling clock mark; the next recorded node is charged the
    /// delta since this mark.
    prof_mark: u64,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Creates an empty tape with a fixed dropout seed.
    pub fn new() -> Self {
        Self::with_seed(0x5eed)
    }

    /// Creates an empty tape whose dropout masks derive from `seed`.
    pub fn with_seed(seed: u64) -> Self {
        let prof = obs::enabled();
        Self {
            nodes: Vec::with_capacity(256),
            grads: Vec::new(),
            rng: XorShift::new(seed),
            prof,
            prof_mark: if prof { obs::clock::now_ns() } else { 0 },
        }
    }

    /// Number of recorded nodes (useful for capacity diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, op: Op, requires_grad: bool) -> Var {
        self.nodes.push(Node {
            value,
            op,
            requires_grad,
        });
        let index = self.nodes.len() - 1;
        if self.prof {
            self.profile_node(index, obs::Phase::Forward);
        }
        Var(index)
    }

    fn requires(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// Inserts a leaf tensor. `requires_grad` leaves receive gradients (e.g.
    /// inputs you want sensitivities for); constants do not.
    pub fn leaf(&mut self, value: Tensor, requires_grad: bool) -> Var {
        self.push(value, Op::Leaf { param_hook: None }, requires_grad)
    }

    /// Inserts a trainable-parameter leaf tagged with an external hook id;
    /// after [`Graph::backward`] its gradient is available via
    /// [`Graph::param_grads`].
    pub fn param(&mut self, value: Tensor, hook: usize) -> Var {
        self.push(
            value,
            Op::Leaf {
                param_hook: Some(hook),
            },
            true,
        )
    }

    /// Reads a node's value.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Reads a node's gradient after `backward` (None if it never received
    /// one or does not require grad).
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    /// Elementwise sum of two same-shaped tensors.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(va.shape(), vb.shape(), "add shape mismatch");
        let mut out = va.clone();
        out.add_assign(vb);
        let req = self.requires(a) || self.requires(b);
        self.push(out, Op::Add(a.0, b.0), req)
    }

    /// Adds a `[cols]` bias vector to every row of a `[rows, cols]` tensor.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let (vx, vb) = (&self.nodes[x.0].value, &self.nodes[bias.0].value);
        assert_eq!(vx.rank(), 2, "add_bias input must be 2-D");
        let cols = vx.cols();
        assert_eq!(vb.numel(), cols, "bias length must match columns");
        let mut out = vx.clone();
        for row in out.data_mut().chunks_mut(cols) {
            for (o, b) in row.iter_mut().zip(vb.data().iter()) {
                *o += b;
            }
        }
        let req = self.requires(x) || self.requires(bias);
        self.push(out, Op::AddBias(x.0, bias.0), req)
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(va.shape(), vb.shape(), "mul shape mismatch");
        let data = va
            .data()
            .iter()
            .zip(vb.data().iter())
            .map(|(x, y)| x * y)
            .collect();
        let out = Tensor::from_vec(va.shape().to_vec(), data);
        let req = self.requires(a) || self.requires(b);
        self.push(out, Op::Mul(a.0, b.0), req)
    }

    /// Multiplies by a constant.
    pub fn scale(&mut self, a: Var, factor: f32) -> Var {
        let mut out = self.nodes[a.0].value.clone();
        out.scale_assign(factor);
        let req = self.requires(a);
        self.push(out, Op::Scale(a.0, factor), req)
    }

    /// 2-D matmul `A·B` with `A: [m,k]`, `B: [k,n]`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        self.mm(a, b, MmMode::Nn)
    }

    /// 2-D matmul `A·Bᵀ` with `A: [m,k]`, `B: [n,k]`.
    pub fn matmul_nt(&mut self, a: Var, b: Var) -> Var {
        self.mm(a, b, MmMode::Nt)
    }

    fn mm(&mut self, a: Var, b: Var, mode: MmMode) -> Var {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(va.rank(), 2, "matmul lhs must be 2-D");
        assert_eq!(vb.rank(), 2, "matmul rhs must be 2-D");
        let out = match mode {
            MmMode::Nn => {
                let (m, k) = (va.shape()[0], va.shape()[1]);
                let n = vb.shape()[1];
                assert_eq!(vb.shape()[0], k, "matmul inner dims mismatch");
                let mut c = Tensor::zeros(vec![m, n]);
                kernels::mm_nn(va.data(), vb.data(), c.data_mut(), m, k, n, false);
                c
            }
            MmMode::Nt => {
                let (m, k) = (va.shape()[0], va.shape()[1]);
                let n = vb.shape()[0];
                assert_eq!(vb.shape()[1], k, "matmul_nt inner dims mismatch");
                let mut c = Tensor::zeros(vec![m, n]);
                kernels::mm_nt(va.data(), vb.data(), c.data_mut(), m, k, n, false);
                c
            }
            MmMode::Tn => {
                let (k, m) = (va.shape()[0], va.shape()[1]);
                let n = vb.shape()[1];
                assert_eq!(vb.shape()[0], k, "matmul_tn inner dims mismatch");
                let mut c = Tensor::zeros(vec![m, n]);
                kernels::mm_tn(va.data(), vb.data(), c.data_mut(), m, k, n, false);
                c
            }
        };
        let req = self.requires(a) || self.requires(b);
        self.push(
            out,
            Op::Matmul {
                a: a.0,
                b: b.0,
                mode,
            },
            req,
        )
    }

    /// Batched 3-D matmul over the leading dimension: for each batch slice,
    /// `C[b] = A[b]·B[b]` (or the transposed orientation selected by
    /// `transpose_b`). `A: [B,m,k]`, `B: [B,k,n]` (Nn) or `[B,n,k]` (Nt).
    pub fn bmm(&mut self, a: Var, b: Var, transpose_b: bool) -> Var {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(va.rank(), 3, "bmm lhs must be 3-D");
        assert_eq!(vb.rank(), 3, "bmm rhs must be 3-D");
        assert_eq!(va.shape()[0], vb.shape()[0], "bmm batch mismatch");
        let batch = va.shape()[0];
        let (m, k) = (va.shape()[1], va.shape()[2]);
        let mode = if transpose_b { MmMode::Nt } else { MmMode::Nn };
        let n = match mode {
            MmMode::Nn => {
                assert_eq!(vb.shape()[1], k, "bmm inner dims mismatch");
                vb.shape()[2]
            }
            MmMode::Nt => {
                assert_eq!(vb.shape()[2], k, "bmm_nt inner dims mismatch");
                vb.shape()[1]
            }
            MmMode::Tn => unreachable!(),
        };
        let mut out = Tensor::zeros(vec![batch, m, n]);
        let (a_sz, b_sz, c_sz) = (m * k, vb.shape()[1] * vb.shape()[2], m * n);
        for i in 0..batch {
            let a_sl = &va.data()[i * a_sz..(i + 1) * a_sz];
            let b_sl = &vb.data()[i * b_sz..(i + 1) * b_sz];
            let c_sl = &mut out.data_mut()[i * c_sz..(i + 1) * c_sz];
            match mode {
                MmMode::Nn => kernels::mm_nn(a_sl, b_sl, c_sl, m, k, n, false),
                MmMode::Nt => kernels::mm_nt(a_sl, b_sl, c_sl, m, k, n, false),
                MmMode::Tn => unreachable!(),
            }
        }
        let req = self.requires(a) || self.requires(b);
        self.push(
            out,
            Op::Matmul {
                a: a.0,
                b: b.0,
                mode,
            },
            req,
        )
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let data = self.nodes[a.0]
            .value
            .data()
            .iter()
            .map(|x| x.max(0.0))
            .collect();
        let out = Tensor::from_vec(self.nodes[a.0].value.shape().to_vec(), data);
        let req = self.requires(a);
        self.push(out, Op::Relu(a.0), req)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let data = self.nodes[a.0]
            .value
            .data()
            .iter()
            .map(|x| 1.0 / (1.0 + (-x).exp()))
            .collect();
        let out = Tensor::from_vec(self.nodes[a.0].value.shape().to_vec(), data);
        let req = self.requires(a);
        self.push(out, Op::Sigmoid(a.0), req)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let data = self.nodes[a.0]
            .value
            .data()
            .iter()
            .map(|x| x.tanh())
            .collect();
        let out = Tensor::from_vec(self.nodes[a.0].value.shape().to_vec(), data);
        let req = self.requires(a);
        self.push(out, Op::Tanh(a.0), req)
    }

    /// Softmax over the last dimension.
    pub fn softmax(&mut self, a: Var) -> Var {
        let v = &self.nodes[a.0].value;
        let cols = *v.shape().last().expect("softmax on empty shape");
        let mut out = v.clone();
        kernels::softmax_rows(out.data_mut(), cols);
        let req = self.requires(a);
        self.push(out, Op::Softmax(a.0), req)
    }

    /// T5-style RMS normalization over the last dimension with a learned
    /// `[d]` gain.
    pub fn rms_norm(&mut self, x: Var, gain: Var, eps: f32) -> Var {
        let (vx, vg) = (&self.nodes[x.0].value, &self.nodes[gain.0].value);
        let d = *vx.shape().last().expect("rms_norm on empty shape");
        assert_eq!(vg.numel(), d, "gain length must match last dim");
        let rows = vx.numel() / d;
        let mut out = vx.clone();
        let mut rms = Vec::with_capacity(rows);
        for row in out.data_mut().chunks_mut(d) {
            let ms = row.iter().map(|v| v * v).sum::<f32>() / d as f32;
            let r = (ms + eps).sqrt();
            rms.push(r);
            let inv = 1.0 / r;
            for (o, g) in row.iter_mut().zip(vg.data().iter()) {
                *o = *o * inv * g;
            }
        }
        let req = self.requires(x) || self.requires(gain);
        self.push(
            out,
            Op::RmsNorm {
                x: x.0,
                gain: gain.0,
                rms,
            },
            req,
        )
    }

    /// Gathers rows `ids` from a `[vocab, d]` table, producing `[len(ids), d]`.
    pub fn embedding(&mut self, table: Var, ids: &[usize]) -> Var {
        let vt = &self.nodes[table.0].value;
        assert_eq!(vt.rank(), 2, "embedding table must be 2-D");
        let (vocab, d) = (vt.shape()[0], vt.shape()[1]);
        let mut data = Vec::with_capacity(ids.len() * d);
        for &id in ids {
            assert!(id < vocab, "embedding id {id} out of range {vocab}");
            data.extend_from_slice(&vt.data()[id * d..(id + 1) * d]);
        }
        let out = Tensor::from_vec(vec![ids.len(), d], data);
        let req = self.requires(table);
        self.push(
            out,
            Op::Embedding {
                table: table.0,
                ids: ids.to_vec(),
            },
            req,
        )
    }

    /// Reinterprets a tensor under a new shape of equal volume.
    pub fn reshape(&mut self, x: Var, shape: Vec<usize>) -> Var {
        let v = &self.nodes[x.0].value;
        let old_shape = v.shape().to_vec();
        let out = v.clone().reshaped(shape);
        let req = self.requires(x);
        self.push(out, Op::Reshape { x: x.0, old_shape }, req)
    }

    /// Permutes the axes of a 3-D tensor.
    pub fn permute3(&mut self, x: Var, perm: [usize; 3]) -> Var {
        let v = &self.nodes[x.0].value;
        assert_eq!(v.rank(), 3, "permute3 requires a 3-D tensor");
        let out = permute3_tensor(v, perm);
        let req = self.requires(x);
        self.push(out, Op::Permute3 { x: x.0, perm }, req)
    }

    /// Inverted dropout: keeps each element with probability `1 - p`,
    /// scaling survivors by `1/(1-p)`. A no-op recording when `p == 0`.
    pub fn dropout(&mut self, x: Var, p: f32) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout rate must be in [0,1)");
        let v = &self.nodes[x.0].value;
        if p == 0.0 {
            let out = v.clone();
            let mask = vec![1.0; v.numel()];
            let req = self.requires(x);
            return self.push(out, Op::Dropout { x: x.0, mask }, req);
        }
        let keep = 1.0 / (1.0 - p);
        let mut mask = Vec::with_capacity(v.numel());
        for _ in 0..v.numel() {
            mask.push(if self.rng.next_f32() < p { 0.0 } else { keep });
        }
        let data = v
            .data()
            .iter()
            .zip(mask.iter())
            .map(|(a, m)| a * m)
            .collect();
        let out = Tensor::from_vec(v.shape().to_vec(), data);
        let req = self.requires(x);
        self.push(out, Op::Dropout { x: x.0, mask }, req)
    }

    /// Mean token-level cross entropy of `[n, vocab]` logits against `n`
    /// target ids, skipping positions whose target is [`IGNORE_TARGET`].
    /// `smoothing` applies uniform label smoothing.
    ///
    /// Returns a scalar. Panics if every target is ignored.
    pub fn cross_entropy(&mut self, logits: Var, targets: &[usize], smoothing: f32) -> Var {
        let v = &self.nodes[logits.0].value;
        assert_eq!(v.rank(), 2, "cross_entropy expects 2-D logits");
        let (n, vocab) = (v.shape()[0], v.shape()[1]);
        assert_eq!(n, targets.len(), "one target per logits row");
        let mut log_probs = v.data().to_vec();
        kernels::log_softmax_rows(&mut log_probs, vocab);
        let mut loss = 0.0f64;
        let mut count = 0usize;
        for (row, &t) in log_probs.chunks(vocab).zip(targets.iter()) {
            if t == IGNORE_TARGET {
                continue;
            }
            assert!(t < vocab, "target {t} out of vocab {vocab}");
            count += 1;
            let nll = -row[t];
            if smoothing > 0.0 {
                let uniform = -row.iter().sum::<f32>() / vocab as f32;
                loss += ((1.0 - smoothing) * nll + smoothing * uniform) as f64;
            } else {
                loss += nll as f64;
            }
        }
        assert!(count > 0, "cross_entropy with all targets ignored");
        let mean = (loss / count as f64) as f32;
        // Convert log-probs to probs for backward.
        for p in &mut log_probs {
            *p = p.exp();
        }
        let req = self.requires(logits);
        self.push(
            Tensor::scalar(mean),
            Op::CrossEntropy {
                logits: logits.0,
                targets: targets.to_vec(),
                probs: log_probs,
                smoothing,
                count,
            },
            req,
        )
    }

    /// Stacks 2-D tensors of equal width vertically.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows needs at least one part");
        let cols = self.nodes[parts[0].0].value.cols();
        let mut rows = Vec::with_capacity(parts.len());
        let mut total_rows = 0;
        let mut data = Vec::new();
        for p in parts {
            let v = &self.nodes[p.0].value;
            assert_eq!(v.cols(), cols, "concat_rows width mismatch");
            rows.push(v.rows());
            total_rows += v.rows();
            data.extend_from_slice(v.data());
        }
        let out = Tensor::from_vec(vec![total_rows, cols], data);
        let req = parts.iter().any(|p| self.requires(*p));
        self.push(
            out,
            Op::ConcatRows {
                parts: parts.iter().map(|p| p.0).collect(),
                rows,
            },
            req,
        )
    }

    /// Takes rows `start..start+len` of a 2-D tensor.
    pub fn slice_rows(&mut self, x: Var, start: usize, len: usize) -> Var {
        let v = &self.nodes[x.0].value;
        assert_eq!(v.rank(), 2, "slice_rows requires a 2-D tensor");
        let (rows, cols) = (v.rows(), v.cols());
        assert!(
            start + len <= rows,
            "slice {start}+{len} exceeds {rows} rows"
        );
        let data = v.data()[start * cols..(start + len) * cols].to_vec();
        let out = Tensor::from_vec(vec![len, cols], data);
        let req = self.requires(x);
        self.push(out, Op::SliceRows { x: x.0, start }, req)
    }

    /// Gathers arbitrary rows of a 2-D tensor into a packed
    /// `[len(ids), cols]` tensor. Unlike `embedding`, the source is any
    /// activation rather than a parameter table, and ids may repeat:
    /// backward scatter-adds, so duplicated rows accumulate gradient.
    pub fn gather_rows(&mut self, x: Var, ids: &[usize]) -> Var {
        let v = &self.nodes[x.0].value;
        assert_eq!(v.rank(), 2, "gather_rows requires a 2-D tensor");
        let (rows, cols) = (v.rows(), v.cols());
        for &id in ids {
            assert!(id < rows, "gather id {id} out of range {rows}");
        }
        let mut data = vec![0.0; ids.len() * cols];
        kernels::gather_rows(v.data(), cols, ids, &mut data);
        let out = Tensor::from_vec(vec![ids.len(), cols], data);
        let req = self.requires(x);
        self.push(
            out,
            Op::GatherRows {
                x: x.0,
                ids: ids.to_vec(),
            },
            req,
        )
    }

    /// Sums every element into a scalar.
    pub fn sum(&mut self, x: Var) -> Var {
        let total: f32 = self.nodes[x.0].value.data().iter().sum();
        let req = self.requires(x);
        self.push(Tensor::scalar(total), Op::Sum(x.0), req)
    }

    /// Runs the backward pass from a scalar loss node, filling gradients.
    ///
    /// # Panics
    /// Panics if the loss node is not a scalar.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.nodes[loss.0].value.numel(),
            1,
            "backward needs a scalar loss"
        );
        self.grads = (0..self.nodes.len()).map(|_| None).collect();
        self.grads[loss.0] = Some(Tensor::scalar(1.0));
        // Attribute parallel-kernel worker samples spawned below to the
        // backward phase (restored to Forward when the guard drops).
        let _phase = crate::par::phase_scope(obs::Phase::Backward);
        if self.prof {
            self.prof_mark = obs::clock::now_ns();
        }
        for i in (0..=loss.0).rev() {
            if !self.nodes[i].requires_grad {
                continue;
            }
            let Some(grad) = self.grads[i].take() else {
                continue;
            };
            self.propagate(i, &grad);
            self.grads[i] = Some(grad);
            if self.prof {
                self.profile_node(i, obs::Phase::Backward);
            }
        }
    }

    fn accumulate(&mut self, node: usize, delta: Tensor) {
        if !self.nodes[node].requires_grad {
            return;
        }
        match &mut self.grads[node] {
            Some(g) => g.add_assign(&delta),
            slot @ None => *slot = Some(delta),
        }
    }

    fn propagate(&mut self, i: usize, grad: &Tensor) {
        // Ops are matched by moving the minimal cached context out before
        // re-borrowing `self` mutably for accumulation.
        match &self.nodes[i].op {
            Op::Leaf { .. } => {}
            Op::Add(a, b) => {
                let (a, b) = (*a, *b);
                self.accumulate(a, grad.clone());
                self.accumulate(b, grad.clone());
            }
            Op::AddBias(x, bias) => {
                let (x, bias) = (*x, *bias);
                let cols = self.nodes[bias].value.numel();
                let mut db = Tensor::zeros(vec![cols]);
                for row in grad.data().chunks(cols) {
                    for (d, g) in db.data_mut().iter_mut().zip(row.iter()) {
                        *d += g;
                    }
                }
                self.accumulate(x, grad.clone());
                self.accumulate(bias, db);
            }
            Op::Mul(a, b) => {
                let (a, b) = (*a, *b);
                let da = elementwise_mul(grad, &self.nodes[b].value);
                let db = elementwise_mul(grad, &self.nodes[a].value);
                self.accumulate(a, da);
                self.accumulate(b, db);
            }
            Op::Scale(a, f) => {
                let (a, f) = (*a, *f);
                let mut g = grad.clone();
                g.scale_assign(f);
                self.accumulate(a, g);
            }
            Op::Matmul { a, b, mode } => {
                let (a, b, mode) = (*a, *b, *mode);
                let (da, db) = self.matmul_backward(a, b, mode, grad);
                self.accumulate(a, da);
                self.accumulate(b, db);
            }
            Op::Relu(a) => {
                let a = *a;
                let data = self.nodes[a]
                    .value
                    .data()
                    .iter()
                    .zip(grad.data().iter())
                    .map(|(x, g)| if *x > 0.0 { *g } else { 0.0 })
                    .collect();
                let da = Tensor::from_vec(grad.shape().to_vec(), data);
                self.accumulate(a, da);
            }
            Op::Sigmoid(a) => {
                let a = *a;
                let data = self.nodes[i]
                    .value
                    .data()
                    .iter()
                    .zip(grad.data().iter())
                    .map(|(y, g)| g * y * (1.0 - y))
                    .collect();
                let da = Tensor::from_vec(grad.shape().to_vec(), data);
                self.accumulate(a, da);
            }
            Op::Tanh(a) => {
                let a = *a;
                let data = self.nodes[i]
                    .value
                    .data()
                    .iter()
                    .zip(grad.data().iter())
                    .map(|(y, g)| g * (1.0 - y * y))
                    .collect();
                let da = Tensor::from_vec(grad.shape().to_vec(), data);
                self.accumulate(a, da);
            }
            Op::Softmax(a) => {
                let a = *a;
                let y = &self.nodes[i].value;
                let cols = *y.shape().last().unwrap();
                let mut dx = Tensor::zeros(y.shape().to_vec());
                for ((y_row, g_row), dx_row) in y
                    .data()
                    .chunks(cols)
                    .zip(grad.data().chunks(cols))
                    .zip(dx.data_mut().chunks_mut(cols))
                {
                    let dot: f32 = y_row.iter().zip(g_row.iter()).map(|(y, g)| y * g).sum();
                    for ((d, &yv), &gv) in dx_row.iter_mut().zip(y_row.iter()).zip(g_row.iter()) {
                        *d = yv * (gv - dot);
                    }
                }
                self.accumulate(a, dx);
            }
            Op::RmsNorm { x, gain, rms } => {
                let (x, gain) = (*x, *gain);
                let rms = rms.clone();
                let vx = &self.nodes[x].value;
                let vg = &self.nodes[gain].value;
                let d = vg.numel();
                let mut dx = Tensor::zeros(vx.shape().to_vec());
                let mut dg = Tensor::zeros(vec![d]);
                for ((row_i, (x_row, g_row)), r) in vx
                    .data()
                    .chunks(d)
                    .zip(grad.data().chunks(d))
                    .enumerate()
                    .zip(rms.iter())
                {
                    let dot: f32 = g_row
                        .iter()
                        .zip(x_row.iter())
                        .zip(vg.data().iter())
                        .map(|((gy, xv), gn)| gy * xv * gn)
                        .sum();
                    let dx_row = &mut dx.data_mut()[row_i * d..(row_i + 1) * d];
                    for j in 0..d {
                        dx_row[j] =
                            vg.data()[j] * g_row[j] / r - x_row[j] * dot / (d as f32 * r * r * r);
                    }
                    for j in 0..d {
                        dg.data_mut()[j] += g_row[j] * x_row[j] / r;
                    }
                }
                self.accumulate(x, dx);
                self.accumulate(gain, dg);
            }
            Op::Embedding { table, ids } => {
                let table = *table;
                let ids = ids.clone();
                let vt = &self.nodes[table].value;
                let d = vt.shape()[1];
                let mut dt = Tensor::zeros(vt.shape().to_vec());
                for (row, &id) in ids.iter().enumerate() {
                    let src = &grad.data()[row * d..(row + 1) * d];
                    let dst = &mut dt.data_mut()[id * d..(id + 1) * d];
                    for (dv, sv) in dst.iter_mut().zip(src.iter()) {
                        *dv += sv;
                    }
                }
                self.accumulate(table, dt);
            }
            Op::Reshape { x, old_shape } => {
                let (x, old_shape) = (*x, old_shape.clone());
                let dx = grad.clone().reshaped(old_shape);
                self.accumulate(x, dx);
            }
            Op::Permute3 { x, perm } => {
                let (x, perm) = (*x, *perm);
                let mut inv = [0usize; 3];
                for (axis, &p) in perm.iter().enumerate() {
                    inv[p] = axis;
                }
                let dx = permute3_tensor(grad, inv);
                self.accumulate(x, dx);
            }
            Op::Dropout { x, mask } => {
                let x = *x;
                let data = grad
                    .data()
                    .iter()
                    .zip(mask.iter())
                    .map(|(g, m)| g * m)
                    .collect();
                let dx = Tensor::from_vec(grad.shape().to_vec(), data);
                self.accumulate(x, dx);
            }
            Op::CrossEntropy {
                logits,
                targets,
                probs,
                smoothing,
                count,
            } => {
                let logits = *logits;
                let smoothing = *smoothing;
                let count = *count as f32;
                let vocab = self.nodes[logits].value.shape()[1];
                let upstream = grad.data()[0];
                let mut dl = Tensor::zeros(self.nodes[logits].value.shape().to_vec());
                let uniform = smoothing / vocab as f32;
                let targets = targets.clone();
                let probs = probs.clone();
                for ((row, &t), dl_row) in probs
                    .chunks(vocab)
                    .zip(targets.iter())
                    .zip(dl.data_mut().chunks_mut(vocab))
                {
                    if t == IGNORE_TARGET {
                        continue;
                    }
                    for (j, (d, &p)) in dl_row.iter_mut().zip(row.iter()).enumerate() {
                        let target_mass = if j == t {
                            1.0 - smoothing + uniform
                        } else {
                            uniform
                        };
                        *d = upstream * (p - target_mass) / count;
                    }
                }
                self.accumulate(logits, dl);
            }
            Op::Sum(x) => {
                let x = *x;
                let shape = self.nodes[x].value.shape().to_vec();
                let dx = Tensor::filled(shape, grad.data()[0]);
                self.accumulate(x, dx);
            }
            Op::SliceRows { x, start } => {
                let (x, start) = (*x, *start);
                let shape = self.nodes[x].value.shape().to_vec();
                let cols = shape[1];
                let mut dx = Tensor::zeros(shape);
                let len = grad.shape()[0];
                dx.data_mut()[start * cols..(start + len) * cols].copy_from_slice(grad.data());
                self.accumulate(x, dx);
            }
            Op::ConcatRows { parts, rows } => {
                let parts = parts.clone();
                let rows = rows.clone();
                let cols = grad.shape()[1];
                let mut offset = 0usize;
                for (part, r) in parts.into_iter().zip(rows) {
                    let slice = grad.data()[offset * cols..(offset + r) * cols].to_vec();
                    self.accumulate(part, Tensor::from_vec(vec![r, cols], slice));
                    offset += r;
                }
            }
            Op::GatherRows { x, ids } => {
                let (x, ids) = (*x, ids.clone());
                let shape = self.nodes[x].value.shape().to_vec();
                let cols = shape[1];
                let mut dx = Tensor::zeros(shape);
                for (row, &id) in ids.iter().enumerate() {
                    let src = &grad.data()[row * cols..(row + 1) * cols];
                    let dst = &mut dx.data_mut()[id * cols..(id + 1) * cols];
                    for (dv, sv) in dst.iter_mut().zip(src.iter()) {
                        *dv += sv;
                    }
                }
                self.accumulate(x, dx);
            }
        }
    }

    fn matmul_backward(&self, a: usize, b: usize, mode: MmMode, grad: &Tensor) -> (Tensor, Tensor) {
        let va = &self.nodes[a].value;
        let vb = &self.nodes[b].value;
        let mut da = Tensor::zeros(va.shape().to_vec());
        let mut db = Tensor::zeros(vb.shape().to_vec());
        if va.rank() == 2 {
            mm_grad_slice(
                va.data(),
                vb.data(),
                grad.data(),
                da.data_mut(),
                db.data_mut(),
                va.shape(),
                vb.shape(),
                mode,
            );
        } else {
            let batch = va.shape()[0];
            let a_sz = va.shape()[1] * va.shape()[2];
            let b_sz = vb.shape()[1] * vb.shape()[2];
            let g_sz = grad.shape()[1] * grad.shape()[2];
            for i in 0..batch {
                mm_grad_slice(
                    &va.data()[i * a_sz..(i + 1) * a_sz],
                    &vb.data()[i * b_sz..(i + 1) * b_sz],
                    &grad.data()[i * g_sz..(i + 1) * g_sz],
                    &mut da.data_mut()[i * a_sz..(i + 1) * a_sz],
                    &mut db.data_mut()[i * b_sz..(i + 1) * b_sz],
                    &va.shape()[1..],
                    &vb.shape()[1..],
                    mode,
                );
            }
        }
        (da, db)
    }

    /// Iterates `(hook, gradient)` pairs for every parameter leaf that
    /// received a gradient in the last `backward` call.
    pub fn param_grads(&self) -> impl Iterator<Item = (usize, &Tensor)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(move |(i, node)| match node.op {
                Op::Leaf {
                    param_hook: Some(hook),
                } => self
                    .grads
                    .get(i)
                    .and_then(|g| g.as_ref())
                    .map(|g| (hook, g)),
                _ => None,
            })
    }
}

/// Public mirror of the tape's matmul operand orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmOrient {
    /// `A·B`
    Nn,
    /// `A·Bᵀ`
    Nt,
    /// `Aᵀ·B`
    Tn,
}

/// A payload-free description of one tape operation: which kind of op it
/// is plus the metadata a static analyzer needs to re-derive its output
/// shape without re-executing kernels (see the `analysis` crate).
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    Leaf {
        /// External hook id for trainable-parameter leaves.
        param_hook: Option<usize>,
    },
    Add,
    AddBias,
    Mul,
    Scale,
    Matmul {
        orient: MmOrient,
    },
    Relu,
    Sigmoid,
    Tanh,
    Softmax,
    RmsNorm,
    Embedding {
        /// Number of gathered rows.
        num_ids: usize,
    },
    Reshape {
        /// Input shape at record time.
        old_shape: Vec<usize>,
    },
    Permute3 {
        perm: [usize; 3],
    },
    Dropout {
        /// Whether the recorded mask is the identity (p = 0: no unit was
        /// dropped, no rescaling) — an eval-style pass-through.
        identity: bool,
    },
    CrossEntropy {
        /// Number of target positions (including ignored ones).
        num_targets: usize,
    },
    Sum,
    ConcatRows {
        /// Row count of each concatenated part, in order.
        part_rows: Vec<usize>,
    },
    SliceRows {
        start: usize,
    },
    GatherRows {
        /// Number of gathered rows.
        num_ids: usize,
    },
}

impl OpKind {
    /// Stable lowercase op name used in diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Leaf {
                param_hook: Some(_),
            } => "param",
            OpKind::Leaf { param_hook: None } => "leaf",
            OpKind::Add => "add",
            OpKind::AddBias => "add_bias",
            OpKind::Mul => "mul",
            OpKind::Scale => "scale",
            OpKind::Matmul { .. } => "matmul",
            OpKind::Relu => "relu",
            OpKind::Sigmoid => "sigmoid",
            OpKind::Tanh => "tanh",
            OpKind::Softmax => "softmax",
            OpKind::RmsNorm => "rms_norm",
            OpKind::Embedding { .. } => "embedding",
            OpKind::Reshape { .. } => "reshape",
            OpKind::Permute3 { .. } => "permute3",
            OpKind::Dropout { .. } => "dropout",
            OpKind::CrossEntropy { .. } => "cross_entropy",
            OpKind::Sum => "sum",
            OpKind::ConcatRows { .. } => "concat_rows",
            OpKind::SliceRows { .. } => "slice_rows",
            OpKind::GatherRows { .. } => "gather_rows",
        }
    }
}

/// A read-only view of one recorded tape node.
#[derive(Debug, Clone)]
pub struct OpView<'g> {
    /// Tape position.
    pub index: usize,
    pub kind: OpKind,
    /// Tape indices of the operand nodes, in operand order.
    pub inputs: Vec<usize>,
    /// Shape of the recorded output value.
    pub shape: &'g [usize],
    pub requires_grad: bool,
}

/// Introspection surface consumed by the static analyzer. These accessors
/// expose the tape's structure without leaking the internal `Op` payloads
/// (cached activations, dropout masks, softmax probabilities).
impl Graph {
    /// A structural view of the node at `index` (panics when out of range).
    pub fn op_view(&self, index: usize) -> OpView<'_> {
        let node = &self.nodes[index];
        let (kind, inputs) = match &node.op {
            Op::Leaf { param_hook } => (
                OpKind::Leaf {
                    param_hook: *param_hook,
                },
                vec![],
            ),
            Op::Add(a, b) => (OpKind::Add, vec![*a, *b]),
            Op::AddBias(x, b) => (OpKind::AddBias, vec![*x, *b]),
            Op::Mul(a, b) => (OpKind::Mul, vec![*a, *b]),
            Op::Scale(x, _) => (OpKind::Scale, vec![*x]),
            Op::Matmul { a, b, mode } => (
                OpKind::Matmul {
                    orient: match mode {
                        MmMode::Nn => MmOrient::Nn,
                        MmMode::Nt => MmOrient::Nt,
                        MmMode::Tn => MmOrient::Tn,
                    },
                },
                vec![*a, *b],
            ),
            Op::Relu(x) => (OpKind::Relu, vec![*x]),
            Op::Sigmoid(x) => (OpKind::Sigmoid, vec![*x]),
            Op::Tanh(x) => (OpKind::Tanh, vec![*x]),
            Op::Softmax(x) => (OpKind::Softmax, vec![*x]),
            Op::RmsNorm { x, gain, .. } => (OpKind::RmsNorm, vec![*x, *gain]),
            Op::Embedding { table, ids } => {
                (OpKind::Embedding { num_ids: ids.len() }, vec![*table])
            }
            Op::Reshape { x, old_shape } => (
                OpKind::Reshape {
                    old_shape: old_shape.clone(),
                },
                vec![*x],
            ),
            Op::Permute3 { x, perm } => (OpKind::Permute3 { perm: *perm }, vec![*x]),
            Op::Dropout { x, mask } => (
                OpKind::Dropout {
                    identity: mask.iter().all(|&m| m == 1.0),
                },
                vec![*x],
            ),
            Op::CrossEntropy {
                logits, targets, ..
            } => (
                OpKind::CrossEntropy {
                    num_targets: targets.len(),
                },
                vec![*logits],
            ),
            Op::Sum(x) => (OpKind::Sum, vec![*x]),
            Op::ConcatRows { parts, rows } => (
                OpKind::ConcatRows {
                    part_rows: rows.clone(),
                },
                parts.clone(),
            ),
            Op::SliceRows { x, start } => (OpKind::SliceRows { start: *start }, vec![*x]),
            Op::GatherRows { x, ids } => (OpKind::GatherRows { num_ids: ids.len() }, vec![*x]),
        };
        OpView {
            index,
            kind,
            inputs,
            shape: node.value.shape(),
            requires_grad: node.requires_grad,
        }
    }

    /// Iterates structural views of every node in tape order.
    pub fn op_views(&self) -> impl Iterator<Item = OpView<'_>> + '_ {
        (0..self.nodes.len()).map(move |i| self.op_view(i))
    }

    /// Reads a node's value by tape index (the sanitizer's access path).
    pub fn node_value(&self, index: usize) -> &Tensor {
        &self.nodes[index].value
    }

    /// Reads a node's gradient by tape index, if `backward` produced one.
    pub fn node_grad(&self, index: usize) -> Option<&Tensor> {
        self.grads.get(index).and_then(|g| g.as_ref())
    }

    /// Test support: rewrites a node's recorded shape (element count must be
    /// preserved) so analysis tooling can exercise mismatch reporting on an
    /// otherwise valid tape. Not for model code.
    #[doc(hidden)]
    pub fn override_shape_for_test(&mut self, index: usize, shape: Vec<usize>) {
        let node = &mut self.nodes[index];
        let value = std::mem::replace(&mut node.value, Tensor::scalar(0.0));
        node.value = value.reshaped(shape);
    }

    /// Test support: determinism-audit fault injection. Applies `f` to the
    /// recorded value of the node at `index` in place, simulating an op
    /// whose forward result drifted from the canonical accumulation order
    /// (the tape-level analogue of `nn::ckpt`'s `FaultIo`). Not for model
    /// code.
    #[doc(hidden)]
    pub fn tamper_value_for_test(&mut self, index: usize, f: impl FnOnce(&mut [f32])) {
        f(self.nodes[index].value.data_mut());
    }

    /// Test support: determinism-audit fault injection on gradients.
    /// Applies `f` to the gradient of the node at `index` (panics when
    /// `backward` has not produced one), simulating a backward pass whose
    /// accumulation order varied between runs. Not for model code.
    #[doc(hidden)]
    pub fn tamper_grad_for_test(&mut self, index: usize, f: impl FnOnce(&mut [f32])) {
        let grad = self.grads[index]
            .as_mut()
            .expect("tamper_grad_for_test: node has no gradient");
        f(grad.data_mut());
    }

    /// Kernel profiling (only reached when `obs` was enabled at tape
    /// construction): charges the node at `index` the wall time since the
    /// last mark, plus bytes-moved / FLOP estimates derived from the
    /// node's [`OpView`].
    ///
    /// The mark-delta scheme attributes *all* tape-execution time to some
    /// node: eager kernels run inside `push`, so the delta between two
    /// pushes is the later node's forward cost (analogously per node in
    /// `backward`). Backward work is estimated at twice the forward
    /// arithmetic (one product per operand gradient) over activations
    /// plus gradients.
    fn profile_node(&mut self, index: usize, phase: obs::Phase) {
        let now = obs::clock::now_ns();
        let ns = now.saturating_sub(self.prof_mark);
        self.prof_mark = now;
        let view = self.op_view(index);
        let out = self.nodes[index].value.numel() as u64;
        let mut moved = out;
        for &input in &view.inputs {
            moved += self.nodes[input].value.numel() as u64;
        }
        let flops = match &view.kind {
            OpKind::Matmul { orient } => {
                let a_shape = self.nodes[view.inputs[0]].value.shape();
                let k_inner = match orient {
                    MmOrient::Nn | MmOrient::Nt => a_shape.last().copied().unwrap_or(1),
                    MmOrient::Tn => a_shape.first().copied().unwrap_or(1),
                } as u64;
                2 * out * k_inner
            }
            OpKind::Softmax | OpKind::RmsNorm | OpKind::Tanh | OpKind::Sigmoid => 5 * out,
            OpKind::CrossEntropy { .. } => 6 * moved,
            OpKind::Add
            | OpKind::AddBias
            | OpKind::Mul
            | OpKind::Scale
            | OpKind::Relu
            | OpKind::Sum => out,
            OpKind::Dropout { .. } => 2 * out,
            // Pure data movement (and leaves): no arithmetic.
            _ => 0,
        };
        let (bytes, flops) = match phase {
            obs::Phase::Forward => (4 * moved, flops),
            _ => (8 * moved, 2 * flops),
        };
        obs::profile::record_kernel(view.kind.name(), phase, ns, bytes, flops);
    }
}

/// Per-slice matmul gradient: fills `da`/`db` for one (possibly batched)
/// matmul slice. `a_shape`/`b_shape` are the 2-D slice shapes.
#[allow(clippy::too_many_arguments)]
fn mm_grad_slice(
    a: &[f32],
    b: &[f32],
    grad: &[f32],
    da: &mut [f32],
    db: &mut [f32],
    a_shape: &[usize],
    b_shape: &[usize],
    mode: MmMode,
) {
    match mode {
        MmMode::Nn => {
            // C = A·B, A:[m,k], B:[k,n]; dA = dC·Bᵀ, dB = Aᵀ·dC.
            let (m, k) = (a_shape[0], a_shape[1]);
            let n = b_shape[1];
            kernels::mm_nt(grad, b, da, m, n, k, false);
            kernels::mm_tn(a, grad, db, k, m, n, false);
        }
        MmMode::Nt => {
            // C = A·Bᵀ, A:[m,k], B:[n,k]; dA = dC·B, dB = dCᵀ·A.
            let (m, k) = (a_shape[0], a_shape[1]);
            let n = b_shape[0];
            kernels::mm_nn(grad, b, da, m, n, k, false);
            kernels::mm_tn(grad, a, db, n, m, k, false);
        }
        MmMode::Tn => {
            // C = Aᵀ·B, A:[k,m], B:[k,n]; dA = B·dCᵀ, dB = A·dC.
            let (k, m) = (a_shape[0], a_shape[1]);
            let n = b_shape[1];
            kernels::mm_nt(b, grad, da, k, n, m, false);
            kernels::mm_nn(a, grad, db, k, m, n, false);
        }
    }
}

fn elementwise_mul(a: &Tensor, b: &Tensor) -> Tensor {
    let data = a
        .data()
        .iter()
        .zip(b.data().iter())
        .map(|(x, y)| x * y)
        .collect();
    Tensor::from_vec(a.shape().to_vec(), data)
}

fn permute3_tensor(v: &Tensor, perm: [usize; 3]) -> Tensor {
    let s = v.shape();
    let out_shape = vec![s[perm[0]], s[perm[1]], s[perm[2]]];
    let mut out = Tensor::zeros(out_shape.clone());
    let strides = [s[1] * s[2], s[2], 1];
    let out_strides = [out_shape[1] * out_shape[2], out_shape[2], 1];
    for i in 0..s[0] {
        for j in 0..s[1] {
            for k in 0..s[2] {
                let idx = [i, j, k];
                let src = i * strides[0] + j * strides[1] + k * strides[2];
                let dst = idx[perm[0]] * out_strides[0]
                    + idx[perm[1]] * out_strides[1]
                    + idx[perm[2]] * out_strides[2];
                out.data_mut()[dst] = v.data()[src];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient of a scalar-valued function of one leaf.
    fn numeric_grad<F>(f: F, x0: &Tensor, eps: f32) -> Tensor
    where
        F: Fn(&Tensor) -> f32,
    {
        let mut g = Tensor::zeros(x0.shape().to_vec());
        for i in 0..x0.numel() {
            let mut plus = x0.clone();
            plus.data_mut()[i] += eps;
            let mut minus = x0.clone();
            minus.data_mut()[i] -= eps;
            g.data_mut()[i] = (f(&plus) - f(&minus)) / (2.0 * eps);
        }
        g
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        let d = a.max_abs_diff(b);
        assert!(d < tol, "max abs diff {d} > {tol}\n{a:?}\n{b:?}");
    }

    fn sample(shape: Vec<usize>, seed: u64) -> Tensor {
        let mut rng = XorShift::new(seed);
        Tensor::randn(shape, 0.8, &mut rng)
    }

    #[test]
    fn matmul_gradcheck() {
        let a0 = sample(vec![3, 4], 1);
        let b0 = sample(vec![4, 2], 2);
        let run = |a: &Tensor, b: &Tensor| {
            let mut g = Graph::new();
            let va = g.leaf(a.clone(), true);
            let vb = g.leaf(b.clone(), true);
            let c = g.matmul(va, vb);
            let sq = g.mul(c, c);
            let l = g.sum(sq);
            (g, va, vb, l)
        };
        let (mut g, va, vb, l) = run(&a0, &b0);
        g.backward(l);
        let da = g.grad(va).unwrap().clone();
        let db = g.grad(vb).unwrap().clone();
        let f_a = |a: &Tensor| run(a, &b0).0.value(run(a, &b0).3).data()[0];
        let f_b = |b: &Tensor| run(&a0, b).0.value(run(&a0, b).3).data()[0];
        assert_close(&da, &numeric_grad(f_a, &a0, 1e-3), 2e-2);
        assert_close(&db, &numeric_grad(f_b, &b0, 1e-3), 2e-2);
    }

    #[test]
    fn matmul_nt_gradcheck() {
        let a0 = sample(vec![3, 4], 3);
        let b0 = sample(vec![5, 4], 4);
        let run = |a: &Tensor, b: &Tensor| -> (Graph, Var, Var, Var) {
            let mut g = Graph::new();
            let va = g.leaf(a.clone(), true);
            let vb = g.leaf(b.clone(), true);
            let c = g.matmul_nt(va, vb);
            let sq = g.mul(c, c);
            let l = g.sum(sq);
            (g, va, vb, l)
        };
        let (mut g, va, vb, l) = run(&a0, &b0);
        g.backward(l);
        let da = g.grad(va).unwrap().clone();
        let db = g.grad(vb).unwrap().clone();
        let f_a = |a: &Tensor| {
            let (g, _, _, l) = run(a, &b0);
            g.value(l).data()[0]
        };
        let f_b = |b: &Tensor| {
            let (g, _, _, l) = run(&a0, b);
            g.value(l).data()[0]
        };
        assert_close(&da, &numeric_grad(f_a, &a0, 1e-3), 2e-2);
        assert_close(&db, &numeric_grad(f_b, &b0, 1e-3), 2e-2);
    }

    #[test]
    fn bmm_gradcheck() {
        let a0 = sample(vec![2, 3, 4], 5);
        let b0 = sample(vec![2, 4, 2], 6);
        let run = |a: &Tensor, b: &Tensor| -> (Graph, Var, Var, Var) {
            let mut g = Graph::new();
            let va = g.leaf(a.clone(), true);
            let vb = g.leaf(b.clone(), true);
            let c = g.bmm(va, vb, false);
            let sq = g.mul(c, c);
            let l = g.sum(sq);
            (g, va, vb, l)
        };
        let (mut g, va, vb, l) = run(&a0, &b0);
        g.backward(l);
        let da = g.grad(va).unwrap().clone();
        let db = g.grad(vb).unwrap().clone();
        let f_a = |a: &Tensor| {
            let (g, _, _, l) = run(a, &b0);
            g.value(l).data()[0]
        };
        let f_b = |b: &Tensor| {
            let (g, _, _, l) = run(&a0, b);
            g.value(l).data()[0]
        };
        assert_close(&da, &numeric_grad(f_a, &a0, 1e-3), 3e-2);
        assert_close(&db, &numeric_grad(f_b, &b0, 1e-3), 3e-2);
    }

    #[test]
    fn bmm_nt_shapes() {
        let mut g = Graph::new();
        let q = g.leaf(sample(vec![2, 5, 4], 7), false);
        let k = g.leaf(sample(vec![2, 6, 4], 8), false);
        let s = g.bmm(q, k, true);
        assert_eq!(g.value(s).shape(), &[2, 5, 6]);
    }

    #[test]
    fn softmax_gradcheck() {
        let x0 = sample(vec![2, 5], 9);
        let weights = sample(vec![2, 5], 10);
        let run = |x: &Tensor| -> (Graph, Var, Var) {
            let mut g = Graph::new();
            let vx = g.leaf(x.clone(), true);
            let w = g.leaf(weights.clone(), false);
            let y = g.softmax(vx);
            let wy = g.mul(y, w);
            let l = g.sum(wy);
            (g, vx, l)
        };
        let (mut g, vx, l) = run(&x0);
        g.backward(l);
        let dx = g.grad(vx).unwrap().clone();
        let f = |x: &Tensor| {
            let (g, _, l) = run(x);
            g.value(l).data()[0]
        };
        assert_close(&dx, &numeric_grad(f, &x0, 1e-3), 1e-2);
    }

    #[test]
    fn rms_norm_gradcheck() {
        let x0 = sample(vec![3, 6], 11);
        let g0 = sample(vec![6], 12);
        let weights = sample(vec![3, 6], 13);
        let run = |x: &Tensor, gain: &Tensor| -> (Graph, Var, Var, Var) {
            let mut g = Graph::new();
            let vx = g.leaf(x.clone(), true);
            let vg = g.leaf(gain.clone(), true);
            let w = g.leaf(weights.clone(), false);
            let y = g.rms_norm(vx, vg, 1e-6);
            let wy = g.mul(y, w);
            let l = g.sum(wy);
            (g, vx, vg, l)
        };
        let (mut g, vx, vg, l) = run(&x0, &g0);
        g.backward(l);
        let dx = g.grad(vx).unwrap().clone();
        let dg = g.grad(vg).unwrap().clone();
        let f_x = |x: &Tensor| {
            let (g, _, _, l) = run(x, &g0);
            g.value(l).data()[0]
        };
        let f_g = |gain: &Tensor| {
            let (g, _, _, l) = run(&x0, gain);
            g.value(l).data()[0]
        };
        assert_close(&dx, &numeric_grad(f_x, &x0, 1e-3), 1e-2);
        assert_close(&dg, &numeric_grad(f_g, &g0, 1e-3), 1e-2);
    }

    #[test]
    fn embedding_gradcheck() {
        let t0 = sample(vec![7, 4], 14);
        let ids = vec![1usize, 3, 3, 0];
        let weights = sample(vec![4, 4], 15);
        let run = |t: &Tensor| -> (Graph, Var, Var) {
            let mut g = Graph::new();
            let vt = g.leaf(t.clone(), true);
            let w = g.leaf(weights.clone(), false);
            let e = g.embedding(vt, &ids);
            let we = g.mul(e, w);
            let l = g.sum(we);
            (g, vt, l)
        };
        let (mut g, vt, l) = run(&t0);
        g.backward(l);
        let dt = g.grad(vt).unwrap().clone();
        let f = |t: &Tensor| {
            let (g, _, l) = run(t);
            g.value(l).data()[0]
        };
        assert_close(&dt, &numeric_grad(f, &t0, 1e-3), 1e-2);
        // Repeated id 3 accumulates two rows of gradient.
        let row3: f32 = dt.data()[3 * 4..4 * 4].iter().map(|x| x.abs()).sum();
        assert!(row3 > 0.0);
    }

    #[test]
    fn cross_entropy_gradcheck_with_ignore() {
        let x0 = sample(vec![4, 6], 16);
        let targets = vec![2usize, IGNORE_TARGET, 0, 5];
        let run = |x: &Tensor| -> (Graph, Var, Var) {
            let mut g = Graph::new();
            let vx = g.leaf(x.clone(), true);
            let l = g.cross_entropy(vx, &targets, 0.0);
            (g, vx, l)
        };
        let (mut g, vx, l) = run(&x0);
        g.backward(l);
        let dx = g.grad(vx).unwrap().clone();
        let f = |x: &Tensor| {
            let (g, _, l) = run(x);
            g.value(l).data()[0]
        };
        assert_close(&dx, &numeric_grad(f, &x0, 1e-3), 1e-2);
        // Ignored row must have zero gradient.
        assert!(dx.data()[6..12].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn cross_entropy_label_smoothing_gradcheck() {
        let x0 = sample(vec![3, 5], 17);
        let targets = vec![0usize, 4, 2];
        let run = |x: &Tensor| -> (Graph, Var, Var) {
            let mut g = Graph::new();
            let vx = g.leaf(x.clone(), true);
            let l = g.cross_entropy(vx, &targets, 0.1);
            (g, vx, l)
        };
        let (mut g, vx, l) = run(&x0);
        g.backward(l);
        let dx = g.grad(vx).unwrap().clone();
        let f = |x: &Tensor| {
            let (g, _, l) = run(x);
            g.value(l).data()[0]
        };
        assert_close(&dx, &numeric_grad(f, &x0, 1e-3), 1e-2);
    }

    #[test]
    fn activations_gradcheck() {
        let x0 = sample(vec![2, 4], 18);
        for act in ["relu", "sigmoid", "tanh"] {
            let run = |x: &Tensor| -> (Graph, Var, Var) {
                let mut g = Graph::new();
                let vx = g.leaf(x.clone(), true);
                let y = match act {
                    "relu" => g.relu(vx),
                    "sigmoid" => g.sigmoid(vx),
                    _ => g.tanh(vx),
                };
                let sq = g.mul(y, y);
                let l = g.sum(sq);
                (g, vx, l)
            };
            let (mut g, vx, l) = run(&x0);
            g.backward(l);
            let dx = g.grad(vx).unwrap().clone();
            let f = |x: &Tensor| {
                let (g, _, l) = run(x);
                g.value(l).data()[0]
            };
            assert_close(&dx, &numeric_grad(f, &x0, 1e-3), 1e-2);
        }
    }

    #[test]
    fn permute3_roundtrip_and_grad() {
        let x0 = sample(vec![2, 3, 4], 19);
        let mut g = Graph::new();
        let vx = g.leaf(x0.clone(), true);
        let p = g.permute3(vx, [2, 0, 1]);
        assert_eq!(g.value(p).shape(), &[4, 2, 3]);
        let back = g.permute3(p, [1, 2, 0]);
        assert_eq!(g.value(back), &x0);
        let sq = g.mul(back, back);
        let l = g.sum(sq);
        g.backward(l);
        let dx = g.grad(vx).unwrap();
        // d/dx sum(x^2) = 2x regardless of permutation.
        let want: Vec<f32> = x0.data().iter().map(|v| 2.0 * v).collect();
        let want = Tensor::from_vec(x0.shape().to_vec(), want);
        assert_close(dx, &want, 1e-4);
    }

    #[test]
    fn add_bias_broadcasts_and_grads() {
        let x0 = sample(vec![3, 4], 20);
        let b0 = sample(vec![4], 21);
        let mut g = Graph::new();
        let vx = g.leaf(x0.clone(), true);
        let vb = g.leaf(b0.clone(), true);
        let y = g.add_bias(vx, vb);
        let l = g.sum(y);
        g.backward(l);
        // Each bias element is used once per row.
        let db = g.grad(vb).unwrap();
        assert!(db.data().iter().all(|&v| (v - 3.0).abs() < 1e-6));
    }

    #[test]
    fn dropout_zero_rate_is_identity() {
        let x0 = sample(vec![5], 22);
        let mut g = Graph::new();
        let vx = g.leaf(x0.clone(), false);
        let y = g.dropout(vx, 0.0);
        assert_eq!(g.value(y), &x0);
    }

    #[test]
    fn dropout_scales_survivors() {
        let x0 = Tensor::filled(vec![10_000], 1.0);
        let mut g = Graph::with_seed(99);
        let vx = g.leaf(x0, false);
        let y = g.dropout(vx, 0.5);
        let mean: f32 = g.value(y).data().iter().sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "dropout mean {mean}");
    }

    #[test]
    fn param_grads_surface_hooks() {
        let mut g = Graph::new();
        let w = g.param(Tensor::filled(vec![2, 2], 1.0), 7);
        let x = g.leaf(Tensor::filled(vec![1, 2], 1.0), false);
        let y = g.matmul(x, w);
        let l = g.sum(y);
        g.backward(l);
        let grads: Vec<_> = g.param_grads().collect();
        assert_eq!(grads.len(), 1);
        assert_eq!(grads[0].0, 7);
        assert_eq!(grads[0].1.shape(), &[2, 2]);
    }

    #[test]
    fn concat_rows_values_and_grads() {
        let a0 = sample(vec![2, 3], 30);
        let b0 = sample(vec![1, 3], 31);
        let mut g = Graph::new();
        let a = g.leaf(a0.clone(), true);
        let b = g.leaf(b0.clone(), true);
        let c = g.concat_rows(&[a, b]);
        assert_eq!(g.value(c).shape(), &[3, 3]);
        assert_eq!(&g.value(c).data()[0..6], a0.data());
        assert_eq!(&g.value(c).data()[6..9], b0.data());
        let sq = g.mul(c, c);
        let l = g.sum(sq);
        g.backward(l);
        let da = g.grad(a).unwrap();
        let want: Vec<f32> = a0.data().iter().map(|v| 2.0 * v).collect();
        assert_close(da, &Tensor::from_vec(vec![2, 3], want), 1e-4);
    }

    #[test]
    fn slice_rows_values_and_grads() {
        let x0 = sample(vec![4, 3], 40);
        let mut g = Graph::new();
        let x = g.leaf(x0.clone(), true);
        let s1 = g.slice_rows(x, 1, 2);
        assert_eq!(g.value(s1).shape(), &[2, 3]);
        assert_eq!(g.value(s1).data(), &x0.data()[3..9]);
        // Overlapping slices accumulate gradients.
        let s2 = g.slice_rows(x, 2, 1);
        let sq1 = g.mul(s1, s1);
        let sq2 = g.mul(s2, s2);
        let l1 = g.sum(sq1);
        let l2 = g.sum(sq2);
        let l = g.add(l1, l2);
        g.backward(l);
        let dx = g.grad(x).unwrap();
        // Row 0 untouched, row 1 from s1 only, row 2 from both, row 3 none.
        assert!(dx.data()[0..3].iter().all(|&v| v == 0.0));
        for j in 0..3 {
            let want_r1 = 2.0 * x0.data()[3 + j];
            let want_r2 = 4.0 * x0.data()[6 + j];
            assert!((dx.data()[3 + j] - want_r1).abs() < 1e-5);
            assert!((dx.data()[6 + j] - want_r2).abs() < 1e-5);
        }
        assert!(dx.data()[9..12].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gather_rows_values_and_grads() {
        let x0 = sample(vec![4, 3], 41);
        let mut g = Graph::new();
        let x = g.leaf(x0.clone(), true);
        // Row 2 gathered twice: its gradient must accumulate both copies.
        let p = g.gather_rows(x, &[2, 0, 2]);
        assert_eq!(g.value(p).shape(), &[3, 3]);
        assert_eq!(&g.value(p).data()[0..3], &x0.data()[6..9]);
        assert_eq!(&g.value(p).data()[3..6], &x0.data()[0..3]);
        assert_eq!(&g.value(p).data()[6..9], &x0.data()[6..9]);
        let sq = g.mul(p, p);
        let l = g.sum(sq);
        g.backward(l);
        let dx = g.grad(x).unwrap();
        for j in 0..3 {
            assert!((dx.data()[j] - 2.0 * x0.data()[j]).abs() < 1e-5);
            assert!((dx.data()[6 + j] - 4.0 * x0.data()[6 + j]).abs() < 1e-5);
        }
        assert!(dx.data()[3..6].iter().all(|&v| v == 0.0));
        assert!(dx.data()[9..12].iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_rows_bounds_checked() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::zeros(vec![2, 2]), false);
        let _ = g.gather_rows(x, &[0, 2]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn slice_rows_bounds_checked() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::zeros(vec![2, 2]), false);
        let _ = g.slice_rows(x, 1, 2);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn concat_rows_rejects_mixed_widths() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::zeros(vec![1, 2]), false);
        let b = g.leaf(Tensor::zeros(vec![1, 3]), false);
        let _ = g.concat_rows(&[a, b]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::filled(vec![2], 1.0), true);
        g.backward(x);
    }
}
