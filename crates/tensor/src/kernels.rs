//! Hot numeric loops shared by the forward and backward passes.
//!
//! The matmul kernels come in the three orientations the backward pass
//! needs (`C = A·B`, `C = A·Bᵀ`, `C = Aᵀ·B`), each with an `accumulate`
//! flag so gradient contributions can be summed in place without a scratch
//! buffer. Loop orders are chosen so the innermost loop streams over
//! contiguous memory and autovectorizes.
//!
//! Each kernel is cache-blocked: one operand tile is kept hot across the
//! outer loop so large matrices (vocabulary projections, packed batch
//! activations) stop thrashing L2. Blocking only re-orders *independent*
//! output elements — for any single `C[i,j]` the contributions still
//! arrive in ascending-`k` order, so results are bit-identical to the
//! unblocked loops (a property the batched-decode differential suite
//! relies on, locked by `blocked_kernels_match_unblocked_bitwise`).
//!
//! On top of the serial bodies sits a fork-join dispatch layer: when
//! `DATAVIST5_THREADS > 1` and the launch is big enough
//! (`par::plan_workers`), the output rows are split into the contiguous
//! ascending chunks of `par::row_chunks` and each worker runs the serial
//! body on its own disjoint `&mut` row slice. Row splits keep every
//! ascending-`k` reduction chain inside one worker, so multi-core results
//! are bit-identical to single-core at any thread count — the property
//! the `analysis::par` schedule certifier proves statically for the
//! schedules `sched::declared_schedules` exposes, and
//! `parallel_dispatch_matches_serial_bitwise` pins dynamically.

/// Returns the index of the first non-finite (NaN/Inf) element, if any.
///
/// This is the numeric-sanitizer hook: the kernels themselves never scan
/// (a release-mode step pays nothing), and callers that opt in — the
/// `analysis` crate's sanitizer pass — scan recorded tape values on their
/// own schedule and report the offending op instead of asserting here.
pub fn first_nonfinite(x: &[f32]) -> Option<usize> {
    x.iter().position(|v| !v.is_finite())
}

/// Cache-block tile sizes, tuned in release mode with
/// `decode_bench --preset base` (see `bench/out/BENCH_decode.json`): the
/// `k`-tile keeps a `MM_KC × n` panel of `B` hot in `mm_nn`, the `n`-tile
/// keeps a `MM_NC × k` panel of `B` hot in `mm_nt` (the vocabulary-logits
/// orientation), and the `m`-tile keeps an output panel hot in `mm_tn`.
pub const MM_KC: usize = 64;
/// `n`-dimension tile for [`mm_nt`] (see [`MM_KC`]).
pub const MM_NC: usize = 128;
/// `m`-dimension tile for [`mm_tn`] (see [`MM_KC`]).
pub const MM_IC: usize = 64;

/// `C = A·B` (or `C += A·B` when `accumulate`), with `A: [m,k]`, `B: [k,n]`,
/// `C: [m,n]`.
pub fn mm_nn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize, accumulate: bool) {
    // hot-ok: shape contract at kernel entry — once per call, amortized over m*k*n work
    assert_eq!(
        a.len(),
        m * k,
        "mm_nn: A has {} elements, want m*k = {m}*{k}",
        a.len()
    );
    // hot-ok: shape contract at kernel entry — once per call, amortized over m*k*n work
    assert_eq!(
        b.len(),
        k * n,
        "mm_nn: B has {} elements, want k*n = {k}*{n}",
        b.len()
    );
    // hot-ok: shape contract at kernel entry — once per call, amortized over m*k*n work
    assert_eq!(
        c.len(),
        m * n,
        "mm_nn: C has {} elements, want m*n = {m}*{n}",
        c.len()
    );
    let workers = crate::par::plan_workers(m, m * k * n);
    if workers <= 1 {
        mm_nn_serial(a, b, c, m, k, n, accumulate);
        return;
    }
    let chunks = crate::par::row_chunks(m, workers);
    crate::par::run_row_chunks("mm_nn", c, n, &chunks, |_, (lo, hi), chunk| {
        mm_nn_serial(&a[lo * k..hi * k], b, chunk, hi - lo, k, n, accumulate);
    });
}

/// Serial body of [`mm_nn`]; the parallel dispatch runs it per row chunk.
fn mm_nn_serial(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize, acc: bool) {
    if !acc {
        c.fill(0.0);
    }
    // k-blocked: the `[p0..p1, n]` panel of B is reused by every row of A
    // before moving on. Per C[i,j] the p-contributions stay in ascending
    // order (blocks ascend, p ascends within a block), so the sum is
    // bit-identical to the unblocked loop.
    let mut p0 = 0;
    while p0 < k {
        let p1 = (p0 + MM_KC).min(k);
        for i in 0..m {
            let a_row = &a[i * k + p0..i * k + p1];
            let c_row = &mut c[i * n..(i + 1) * n];
            for (off, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let p = p0 + off;
                let b_row = &b[p * n..(p + 1) * n];
                for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                    *cv += av * bv;
                }
            }
        }
        p0 = p1;
    }
}

/// `C = A·Bᵀ` (or `+=`), with `A: [m,k]`, `B: [n,k]`, `C: [m,n]`.
///
/// This is the attention-score orientation (`Q·Kᵀ`) and the `dA = dC·Bᵀ`
/// orientation of the backward pass; both operands stream row-wise.
pub fn mm_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize, accumulate: bool) {
    // hot-ok: shape contract at kernel entry — once per call, amortized over m*k*n work
    assert_eq!(
        a.len(),
        m * k,
        "mm_nt: A has {} elements, want m*k = {m}*{k}",
        a.len()
    );
    // hot-ok: shape contract at kernel entry — once per call, amortized over m*k*n work
    assert_eq!(
        b.len(),
        n * k,
        "mm_nt: B has {} elements, want n*k = {n}*{k}",
        b.len()
    );
    // hot-ok: shape contract at kernel entry — once per call, amortized over m*k*n work
    assert_eq!(
        c.len(),
        m * n,
        "mm_nt: C has {} elements, want m*n = {m}*{n}",
        c.len()
    );
    let workers = crate::par::plan_workers(m, m * k * n);
    if workers <= 1 {
        mm_nt_serial(a, b, c, m, k, n, accumulate);
        return;
    }
    let chunks = crate::par::row_chunks(m, workers);
    crate::par::run_row_chunks("mm_nt", c, n, &chunks, |_, (lo, hi), chunk| {
        mm_nt_serial(&a[lo * k..hi * k], b, chunk, hi - lo, k, n, accumulate);
    });
}

/// Serial body of [`mm_nt`]; the parallel dispatch runs it per row chunk.
fn mm_nt_serial(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    // n-blocked: the `[j0..j1, k]` panel of B is reused by every row of A.
    // Each C[i,j] is still one full-`k` register dot product, so results
    // are bit-identical to the unblocked loop.
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + MM_NC).min(n);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in j0..j1 {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                    acc += av * bv;
                }
                let slot = &mut c[i * n + j];
                *slot = if accumulate { *slot + acc } else { acc };
            }
        }
        j0 = j1;
    }
}

/// `C = Aᵀ·B` (or `+=`), with `A: [k,m]`, `B: [k,n]`, `C: [m,n]`.
///
/// This is the weight-gradient orientation (`dW = Xᵀ·dY`).
pub fn mm_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize, accumulate: bool) {
    assert_eq!(
        a.len(),
        k * m,
        "mm_tn: A has {} elements, want k*m = {k}*{m}",
        a.len()
    );
    assert_eq!(
        b.len(),
        k * n,
        "mm_tn: B has {} elements, want k*n = {k}*{n}",
        b.len()
    );
    assert_eq!(
        c.len(),
        m * n,
        "mm_tn: C has {} elements, want m*n = {m}*{n}",
        c.len()
    );
    let workers = crate::par::plan_workers(m, m * k * n);
    if workers <= 1 {
        mm_tn_serial_range(a, b, c, 0, m, m, k, n, accumulate);
        return;
    }
    let chunks = crate::par::row_chunks(m, workers);
    crate::par::run_row_chunks("mm_tn", c, n, &chunks, |_, (lo, hi), chunk| {
        mm_tn_serial_range(a, b, chunk, lo, hi, m, k, n, accumulate);
    });
}

/// Serial body of [`mm_tn`] over output rows `[lo, hi)` of the full
/// `[m, n]` product, with `c` holding exactly those rows. `A` is `[k, m]`,
/// so a row range of `C` is a *column* range of `A` — the parallel
/// dispatch cannot sub-slice `A` the way the other orientations do, hence
/// the explicit range parameters.
#[allow(clippy::too_many_arguments)]
fn mm_tn_serial_range(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    lo: usize,
    hi: usize,
    m: usize,
    k: usize,
    n: usize,
    acc: bool,
) {
    if !acc {
        c.fill(0.0);
    }
    // m-blocked: the `[i0..i1, n]` panel of C stays hot across the full
    // k-sweep. Per C[i,j] the p-contributions remain in ascending order,
    // so the sum is bit-identical to the unblocked loop. (Block starts
    // shift with `lo`, but i-blocking only reorders independent rows.)
    let mut i0 = lo;
    while i0 < hi {
        let i1 = (i0 + MM_IC).min(hi);
        for p in 0..k {
            let a_row = &a[p * m + i0..p * m + i1];
            let b_row = &b[p * n..(p + 1) * n];
            for (off, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let i = i0 + off - lo;
                let c_row = &mut c[i * n..(i + 1) * n];
                for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                    *cv += av * bv;
                }
            }
        }
        i0 = i1;
    }
}

/// Copies rows `ids` of a row-major `[rows, d]` source into `dst`
/// (`[len(ids), d]`), the packing step of batched decoding: per-request
/// activations gather into one GEMM operand.
pub fn gather_rows(src: &[f32], d: usize, ids: &[usize], dst: &mut [f32]) {
    assert_eq!(dst.len(), ids.len() * d, "gather_rows: dst size mismatch");
    for (slot, &id) in ids.iter().enumerate() {
        let row = &src[id * d..(id + 1) * d];
        dst[slot * d..(slot + 1) * d].copy_from_slice(row);
    }
}

/// Copies the rows of a packed `[len(ids), d]` source into rows `ids` of
/// `dst` (`[rows, d]`), the unpacking step of batched decoding. Rows of
/// `dst` not named by `ids` are left untouched; duplicate ids write last-
/// one-wins.
pub fn scatter_rows(src: &[f32], d: usize, ids: &[usize], dst: &mut [f32]) {
    assert_eq!(src.len(), ids.len() * d, "scatter_rows: src size mismatch");
    for (slot, &id) in ids.iter().enumerate() {
        let row = &src[slot * d..(slot + 1) * d];
        dst[id * d..(id + 1) * d].copy_from_slice(row);
    }
}

/// Numerically stable softmax applied independently to each `cols`-wide row.
pub fn softmax_rows(data: &mut [f32], cols: usize) {
    // hot-ok: shape contract at kernel entry — once per call, amortized over the row sweep
    assert!(cols > 0, "softmax over empty rows");
    debug_assert_eq!(data.len() % cols, 0);
    for row in data.chunks_mut(cols) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Numerically stable log-softmax per row (used by cross entropy).
pub fn log_softmax_rows(data: &mut [f32], cols: usize) {
    assert!(cols > 0, "log_softmax over empty rows");
    debug_assert_eq!(data.len() % cols, 0);
    for row in data.chunks_mut(cols) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let log_sum = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln() + max;
        for v in row.iter_mut() {
            *v -= log_sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn transpose(x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
        let mut t = vec![0.0; x.len()];
        for r in 0..rows {
            for c in 0..cols {
                t[c * rows + r] = x[r * cols + c];
            }
        }
        t
    }

    fn seq(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.7).sin()).collect()
    }

    #[test]
    fn mm_nn_matches_naive() {
        let (m, k, n) = (3, 5, 4);
        let a = seq(m * k);
        let b = seq(k * n);
        let mut c = vec![0.0; m * n];
        mm_nn(&a, &b, &mut c, m, k, n, false);
        let want = naive_mm(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(want.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn mm_nt_matches_naive_on_transposed_b() {
        let (m, k, n) = (4, 3, 5);
        let a = seq(m * k);
        let b_t = seq(n * k); // B stored as [n, k]
        let b = transpose(&b_t, n, k); // [k, n]
        let mut c = vec![0.0; m * n];
        mm_nt(&a, &b_t, &mut c, m, k, n, false);
        let want = naive_mm(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(want.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn mm_tn_matches_naive_on_transposed_a() {
        let (m, k, n) = (4, 3, 5);
        let a_t = seq(k * m); // A stored as [k, m]
        let a = transpose(&a_t, k, m); // [m, k]
        let b = seq(k * n);
        let mut c = vec![0.0; m * n];
        mm_tn(&a_t, &b, &mut c, m, k, n, false);
        let want = naive_mm(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(want.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn accumulate_adds_to_existing() {
        let (m, k, n) = (2, 2, 2);
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let mut c = vec![10.0; m * n];
        mm_nn(&a, &b, &mut c, m, k, n, true);
        assert_eq!(c, vec![11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let mut x = vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        softmax_rows(&mut x, 3);
        for row in x.chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(row[0] < row[1] && row[1] < row[2]);
        }
    }

    #[test]
    fn softmax_is_stable_for_large_inputs() {
        let mut x = vec![1000.0, 1001.0];
        softmax_rows(&mut x, 2);
        assert!(x.iter().all(|v| v.is_finite()));
        assert!((x[0] + x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn first_nonfinite_finds_nan_and_inf() {
        assert_eq!(first_nonfinite(&[1.0, 2.0, 3.0]), None);
        assert_eq!(first_nonfinite(&[1.0, f32::NAN, f32::INFINITY]), Some(1));
        assert_eq!(first_nonfinite(&[f32::NEG_INFINITY]), Some(0));
        assert_eq!(first_nonfinite(&[]), None);
    }

    #[test]
    #[should_panic(expected = "mm_nn: A has 3 elements, want m*k = 2*2")]
    fn mm_nn_rejects_wrong_operand_size() {
        let a = vec![0.0; 3];
        let b = vec![0.0; 4];
        let mut c = vec![0.0; 4];
        mm_nn(&a, &b, &mut c, 2, 2, 2, false);
    }

    /// The pre-blocking loop bodies, kept verbatim as the bitwise
    /// reference: the blocked kernels must not change a single ULP, or the
    /// batched-vs-sequential decode equivalence breaks.
    mod unblocked {
        pub fn mm_nn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize, acc: bool) {
            if !acc {
                c.fill(0.0);
            }
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let c_row = &mut c[i * n..(i + 1) * n];
                for (p, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let b_row = &b[p * n..(p + 1) * n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                        *cv += av * bv;
                    }
                }
            }
        }

        pub fn mm_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize, acc: bool) {
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                for j in 0..n {
                    let b_row = &b[j * k..(j + 1) * k];
                    let mut dot = 0.0f32;
                    for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                        dot += av * bv;
                    }
                    let slot = &mut c[i * n + j];
                    *slot = if acc { *slot + dot } else { dot };
                }
            }
        }

        pub fn mm_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize, acc: bool) {
            if !acc {
                c.fill(0.0);
            }
            for p in 0..k {
                let a_row = &a[p * m..(p + 1) * m];
                let b_row = &b[p * n..(p + 1) * n];
                for (i, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let c_row = &mut c[i * n..(i + 1) * n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                        *cv += av * bv;
                    }
                }
            }
        }
    }

    #[test]
    fn blocked_kernels_match_unblocked_bitwise() {
        // Sizes straddle every tile boundary (MM_KC = 64, MM_NC = 128,
        // MM_IC = 64); data includes exact zeros to exercise the skip path.
        let cases = [(1, 1, 1), (3, 63, 5), (7, 64, 129), (65, 130, 257)];
        for &(m, k, n) in &cases {
            let mut a = seq(m * k);
            let mut b = seq(k * n);
            for v in a.iter_mut().step_by(7) {
                *v = 0.0;
            }
            for v in b.iter_mut().step_by(11) {
                *v = 0.0;
            }
            for acc in [false, true] {
                let init: Vec<f32> = seq(m * n);
                // mm_nn: A [m,k], B [k,n].
                let (mut c1, mut c2) = (init.clone(), init.clone());
                mm_nn(&a, &b, &mut c1, m, k, n, acc);
                unblocked::mm_nn(&a, &b, &mut c2, m, k, n, acc);
                assert!(c1.iter().zip(&c2).all(|(x, y)| x.to_bits() == y.to_bits()));
                // mm_nt: A [m,k], B [n,k] (reuse b as [n,k] when sizes fit).
                let bt = seq(n * k);
                let (mut c1, mut c2) = (init.clone(), init.clone());
                mm_nt(&a, &bt, &mut c1, m, k, n, acc);
                unblocked::mm_nt(&a, &bt, &mut c2, m, k, n, acc);
                assert!(c1.iter().zip(&c2).all(|(x, y)| x.to_bits() == y.to_bits()));
                // mm_tn: A [k,m], B [k,n].
                let at = seq(k * m);
                let (mut c1, mut c2) = (init.clone(), init);
                mm_tn(&at, &b, &mut c1, m, k, n, acc);
                unblocked::mm_tn(&at, &b, &mut c2, m, k, n, acc);
                assert!(c1.iter().zip(&c2).all(|(x, y)| x.to_bits() == y.to_bits()));
            }
        }
    }

    /// Fork-join dispatch must be invisible in the bits: every thread
    /// count produces the same output as the serial path, for every
    /// orientation, with and without accumulation. (Thread config is
    /// process-global; this test flips it, which is safe precisely
    /// because of the property it pins.)
    #[test]
    fn parallel_dispatch_matches_serial_bitwise() {
        let (m, k, n) = (65, 130, 257);
        let mut a = seq(m * k);
        let mut b = seq(k * n);
        for v in a.iter_mut().step_by(7) {
            *v = 0.0;
        }
        for v in b.iter_mut().step_by(11) {
            *v = 0.0;
        }
        let at = seq(k * m);
        let bt = seq(n * k);
        let init = seq(m * n);
        for acc in [false, true] {
            crate::par::set_threads(1);
            let (mut want_nn, mut want_nt, mut want_tn) =
                (init.clone(), init.clone(), init.clone());
            mm_nn(&a, &b, &mut want_nn, m, k, n, acc);
            mm_nt(&a, &bt, &mut want_nt, m, k, n, acc);
            mm_tn(&at, &b, &mut want_tn, m, k, n, acc);
            for t in [2, 3, 4, 8] {
                crate::par::set_threads(t);
                let mut c = init.clone();
                mm_nn(&a, &b, &mut c, m, k, n, acc);
                assert!(
                    c.iter()
                        .zip(&want_nn)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "mm_nn diverges at {t} threads (acc={acc})"
                );
                let mut c = init.clone();
                mm_nt(&a, &bt, &mut c, m, k, n, acc);
                assert!(
                    c.iter()
                        .zip(&want_nt)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "mm_nt diverges at {t} threads (acc={acc})"
                );
                let mut c = init.clone();
                mm_tn(&at, &b, &mut c, m, k, n, acc);
                assert!(
                    c.iter()
                        .zip(&want_tn)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "mm_tn diverges at {t} threads (acc={acc})"
                );
            }
        }
        crate::par::set_threads(1);
    }

    #[test]
    fn gather_scatter_rows_roundtrip() {
        let src = seq(5 * 3);
        let ids = [4usize, 0, 2];
        let mut packed = vec![0.0; ids.len() * 3];
        gather_rows(&src, 3, &ids, &mut packed);
        assert_eq!(&packed[0..3], &src[12..15]);
        assert_eq!(&packed[3..6], &src[0..3]);
        assert_eq!(&packed[6..9], &src[6..9]);
        let mut dst = vec![f32::NAN; 5 * 3];
        scatter_rows(&packed, 3, &ids, &mut dst);
        for &id in &ids {
            assert_eq!(&dst[id * 3..(id + 1) * 3], &src[id * 3..(id + 1) * 3]);
        }
        // Untouched rows keep their prior contents (here: NaN sentinels).
        assert!(dst[3..6].iter().all(|v| v.is_nan()));
        assert!(dst[9..12].iter().all(|v| v.is_nan()));
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let x = vec![0.3, -1.2, 2.0, 0.5];
        let mut a = x.clone();
        softmax_rows(&mut a, 4);
        let mut b = x;
        log_softmax_rows(&mut b, 4);
        for (p, lp) in a.iter().zip(b.iter()) {
            assert!((p.ln() - lp).abs() < 1e-5);
        }
    }
}
