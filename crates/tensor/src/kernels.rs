//! Hot numeric loops shared by the forward and backward passes.
//!
//! The matmul kernels come in the three orientations the backward pass
//! needs (`C = A·B`, `C = A·Bᵀ`, `C = Aᵀ·B`), each with an `accumulate`
//! flag so gradient contributions can be summed in place without a scratch
//! buffer. Loop orders are chosen so the innermost loop streams over
//! contiguous memory and autovectorizes.

/// Returns the index of the first non-finite (NaN/Inf) element, if any.
///
/// This is the numeric-sanitizer hook: the kernels themselves never scan
/// (a release-mode step pays nothing), and callers that opt in — the
/// `analysis` crate's sanitizer pass — scan recorded tape values on their
/// own schedule and report the offending op instead of asserting here.
pub fn first_nonfinite(x: &[f32]) -> Option<usize> {
    x.iter().position(|v| !v.is_finite())
}

/// `C = A·B` (or `C += A·B` when `accumulate`), with `A: [m,k]`, `B: [k,n]`,
/// `C: [m,n]`.
pub fn mm_nn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize, accumulate: bool) {
    assert_eq!(
        a.len(),
        m * k,
        "mm_nn: A has {} elements, want m*k = {m}*{k}",
        a.len()
    );
    assert_eq!(
        b.len(),
        k * n,
        "mm_nn: B has {} elements, want k*n = {k}*{n}",
        b.len()
    );
    assert_eq!(
        c.len(),
        m * n,
        "mm_nn: C has {} elements, want m*n = {m}*{n}",
        c.len()
    );
    if !accumulate {
        c.fill(0.0);
    }
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                *cv += av * bv;
            }
        }
    }
}

/// `C = A·Bᵀ` (or `+=`), with `A: [m,k]`, `B: [n,k]`, `C: [m,n]`.
///
/// This is the attention-score orientation (`Q·Kᵀ`) and the `dA = dC·Bᵀ`
/// orientation of the backward pass; both operands stream row-wise.
pub fn mm_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize, accumulate: bool) {
    assert_eq!(
        a.len(),
        m * k,
        "mm_nt: A has {} elements, want m*k = {m}*{k}",
        a.len()
    );
    assert_eq!(
        b.len(),
        n * k,
        "mm_nt: B has {} elements, want n*k = {n}*{k}",
        b.len()
    );
    assert_eq!(
        c.len(),
        m * n,
        "mm_nt: C has {} elements, want m*n = {m}*{n}",
        c.len()
    );
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            let slot = &mut c[i * n + j];
            *slot = if accumulate { *slot + acc } else { acc };
        }
    }
}

/// `C = Aᵀ·B` (or `+=`), with `A: [k,m]`, `B: [k,n]`, `C: [m,n]`.
///
/// This is the weight-gradient orientation (`dW = Xᵀ·dY`).
pub fn mm_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize, accumulate: bool) {
    assert_eq!(
        a.len(),
        k * m,
        "mm_tn: A has {} elements, want k*m = {k}*{m}",
        a.len()
    );
    assert_eq!(
        b.len(),
        k * n,
        "mm_tn: B has {} elements, want k*n = {k}*{n}",
        b.len()
    );
    assert_eq!(
        c.len(),
        m * n,
        "mm_tn: C has {} elements, want m*n = {m}*{n}",
        c.len()
    );
    if !accumulate {
        c.fill(0.0);
    }
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                *cv += av * bv;
            }
        }
    }
}

/// Numerically stable softmax applied independently to each `cols`-wide row.
pub fn softmax_rows(data: &mut [f32], cols: usize) {
    assert!(cols > 0, "softmax over empty rows");
    debug_assert_eq!(data.len() % cols, 0);
    for row in data.chunks_mut(cols) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Numerically stable log-softmax per row (used by cross entropy).
pub fn log_softmax_rows(data: &mut [f32], cols: usize) {
    assert!(cols > 0, "log_softmax over empty rows");
    debug_assert_eq!(data.len() % cols, 0);
    for row in data.chunks_mut(cols) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let log_sum = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln() + max;
        for v in row.iter_mut() {
            *v -= log_sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn transpose(x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
        let mut t = vec![0.0; x.len()];
        for r in 0..rows {
            for c in 0..cols {
                t[c * rows + r] = x[r * cols + c];
            }
        }
        t
    }

    fn seq(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.7).sin()).collect()
    }

    #[test]
    fn mm_nn_matches_naive() {
        let (m, k, n) = (3, 5, 4);
        let a = seq(m * k);
        let b = seq(k * n);
        let mut c = vec![0.0; m * n];
        mm_nn(&a, &b, &mut c, m, k, n, false);
        let want = naive_mm(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(want.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn mm_nt_matches_naive_on_transposed_b() {
        let (m, k, n) = (4, 3, 5);
        let a = seq(m * k);
        let b_t = seq(n * k); // B stored as [n, k]
        let b = transpose(&b_t, n, k); // [k, n]
        let mut c = vec![0.0; m * n];
        mm_nt(&a, &b_t, &mut c, m, k, n, false);
        let want = naive_mm(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(want.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn mm_tn_matches_naive_on_transposed_a() {
        let (m, k, n) = (4, 3, 5);
        let a_t = seq(k * m); // A stored as [k, m]
        let a = transpose(&a_t, k, m); // [m, k]
        let b = seq(k * n);
        let mut c = vec![0.0; m * n];
        mm_tn(&a_t, &b, &mut c, m, k, n, false);
        let want = naive_mm(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(want.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn accumulate_adds_to_existing() {
        let (m, k, n) = (2, 2, 2);
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let mut c = vec![10.0; m * n];
        mm_nn(&a, &b, &mut c, m, k, n, true);
        assert_eq!(c, vec![11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let mut x = vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        softmax_rows(&mut x, 3);
        for row in x.chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(row[0] < row[1] && row[1] < row[2]);
        }
    }

    #[test]
    fn softmax_is_stable_for_large_inputs() {
        let mut x = vec![1000.0, 1001.0];
        softmax_rows(&mut x, 2);
        assert!(x.iter().all(|v| v.is_finite()));
        assert!((x[0] + x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn first_nonfinite_finds_nan_and_inf() {
        assert_eq!(first_nonfinite(&[1.0, 2.0, 3.0]), None);
        assert_eq!(first_nonfinite(&[1.0, f32::NAN, f32::INFINITY]), Some(1));
        assert_eq!(first_nonfinite(&[f32::NEG_INFINITY]), Some(0));
        assert_eq!(first_nonfinite(&[]), None);
    }

    #[test]
    #[should_panic(expected = "mm_nn: A has 3 elements, want m*k = 2*2")]
    fn mm_nn_rejects_wrong_operand_size() {
        let a = vec![0.0; 3];
        let b = vec![0.0; 4];
        let mut c = vec![0.0; 4];
        mm_nn(&a, &b, &mut c, 2, 2, 2, false);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let x = vec![0.3, -1.2, 2.0, 0.5];
        let mut a = x.clone();
        softmax_rows(&mut a, 4);
        let mut b = x;
        log_softmax_rows(&mut b, 4);
        for (p, lp) in a.iter().zip(b.iter()) {
            assert!((p.ln() - lp).abs() < 1e-5);
        }
    }
}
