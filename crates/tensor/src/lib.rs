//! Dense f32 tensors and a tape-based reverse-mode automatic differentiation
//! engine.
//!
//! This crate is the numerical substrate for the DataVisT5 reproduction. It
//! deliberately supports only what the models in `nn` need — 1-D/2-D/3-D
//! dense tensors, cache-friendly matmul kernels (including transposed
//! variants used by backward passes), and a coarse-grained operator tape —
//! rather than a general array-programming surface.
//!
//! # Architecture
//!
//! * [`Tensor`] — shape + contiguous `Vec<f32>` storage.
//! * [`kernels`] — the hot loops (`mm_nn`, `mm_nt`, `mm_tn`, row softmax).
//! * [`par`] / [`sched`] — deterministic fork-join dispatch for the matmul
//!   kernels (`DATAVIST5_THREADS` workers over contiguous output-row
//!   chunks) and the declared [`sched::ReductionSchedule`]s the
//!   `analysis::par` certifier proves bit-equivalent to sequential order.
//! * [`Graph`] — the autodiff tape. Every forward op appends a node holding
//!   its output value and enough context to compute input gradients; calling
//!   [`Graph::backward`] walks the tape in reverse.
//!
//! Trainable parameters live *outside* the graph (see `nn::ParamSet`): they
//! are inserted per-forward-pass via [`Graph::param`] with an external hook
//! id, and gradients are harvested with [`Graph::param_grads`] after
//! `backward`. This keeps the tape free of interior mutability and lets one
//! parameter store serve many sequential graphs.
//!
//! # Example
//!
//! ```
//! use tensor::{Graph, Tensor};
//!
//! let mut g = Graph::new();
//! let x = g.leaf(Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]), false);
//! let w = g.param(Tensor::from_vec(vec![2, 2], vec![0.5, 0.0, 0.0, 0.5]), 0);
//! let y = g.matmul(x, w);
//! let loss = g.sum(y);
//! g.backward(loss);
//! let (hook, grad) = g.param_grads().next().unwrap();
//! assert_eq!(hook, 0);
//! assert_eq!(grad.shape(), &[2, 2]);
//! ```

mod graph;
pub mod kernels;
pub mod par;
pub mod sched;
mod tensor;

pub use graph::{Graph, MmOrient, OpKind, OpView, Var, IGNORE_TARGET};
pub use tensor::Tensor;

/// Deterministic xorshift64* generator used for dropout masks and tests.
///
/// Kept tiny and dependency-free so gradient checks are reproducible without
/// threading an external RNG through the tape.
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Creates a generator from a seed (zero is mapped to a fixed constant to
    /// avoid the degenerate all-zero orbit).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform f32 in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xorshift_zero_seed_is_usable() {
        let mut r = XorShift::new(0);
        let x = r.next_f32();
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn xorshift_f32_in_unit_interval() {
        let mut r = XorShift::new(7);
        for _ in 0..1000 {
            let x = r.next_f32();
            assert!((0.0..1.0).contains(&x), "{x} out of range");
        }
    }
}
