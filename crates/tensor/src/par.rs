//! Deterministic fork-join execution for the matmul kernels.
//!
//! Parallelism here is *schedule-first*: a kernel may only run multi-core
//! under a [`crate::sched::ReductionSchedule`] that the parallel-safety
//! certifier (`analysis::par`) has proven bit-equivalent to the
//! sequential order. The executor in this module implements exactly the
//! schedule shape the certifier reasons about — contiguous ascending
//! output-row chunks, one worker per chunk, no shared mutable state —
//! so certifying the descriptor certifies the execution.
//!
//! Why row splits are bit-safe: every reduction in the three matmul
//! orientations accumulates along `k` *within one output element*, and an
//! output row is owned by exactly one worker. Splitting `m` therefore
//! reorders only independent elements, never the contributions inside one
//! sum — the same argument the cache-blocked kernels already rely on.
//! Splitting `k` would chop reduction chains across workers and is
//! rejected by the certifier (see `analysis::par`).
//!
//! Worker count comes from `DATAVIST5_THREADS` (default 1, clamped to
//! [`MAX_THREADS`]); [`set_threads`] overrides it in-process for tests
//! and benches. Thread spawn/join costs real time, so kernels only go
//! parallel above [`PAR_MIN_ELEMS`] multiply-accumulates.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

pub use obs::Phase;

/// Upper bound on worker threads; also bounds the static per-worker label
/// tables used for kernel attribution.
pub const MAX_THREADS: usize = 8;

/// Minimum `m·k·n` multiply-accumulates **per forked worker**. The
/// executor spawns OS threads per kernel call (tens of microseconds of
/// spawn/join each), so every worker must own enough arithmetic to
/// amortize its own fork. 256K MACs is roughly 100 µs of scalar f32
/// work — comfortably above the fork cost.
///
/// This floor being *per worker* (not a single total-work threshold) is
/// what fixes the decode-time parallelism collapse: a decode-step GEMM
/// is ~32K MACs, which under the old total-work threshold (4096) forked
/// 4 workers of ~8K MACs each and ran ~6.8× slower at 4 threads than
/// at 1 thread. Now such kernels stay sequential, and the worker count
/// scales smoothly with kernel size: `elems / PAR_MIN_ELEMS` workers,
/// capped by the configured thread count and the row count.
pub const PAR_MIN_ELEMS: usize = 262_144;

/// Configured worker count; 0 means "not yet read from the environment".
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Phase hint for per-thread kernel attribution: `Graph::backward` flips
/// it around the backward sweep so worker samples land under `bwd`.
static PHASE: AtomicU8 = AtomicU8::new(0);

/// The configured worker-thread count (1 = fully sequential). Reads
/// `DATAVIST5_THREADS` once, then caches; [`set_threads`] overrides.
pub fn threads() -> usize {
    // par-ok: THREADS is a config cell written once at init (or by set_threads); readers only pick a worker count, results are bit-identical at any count
    let cached = THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let configured = std::env::var("DATAVIST5_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(1)
        .clamp(1, MAX_THREADS);
    // par-ok: same config cell as above; a racing first read stores the same env-derived value
    THREADS.store(configured, Ordering::Relaxed);
    configured
}

/// Overrides the worker count in-process (tests, benches, thread sweeps).
/// Values are clamped to `1..=MAX_THREADS`.
pub fn set_threads(n: usize) {
    // par-ok: config cell write; kernels are certified bit-identical at every worker count, so torn timing with in-flight kernels cannot change results
    THREADS.store(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
}

/// Sets the attribution phase hint and returns a guard that restores
/// `Forward` when dropped.
pub fn phase_scope(phase: Phase) -> PhaseGuard {
    // par-ok: attribution hint only; it labels obs samples and never feeds computation
    PHASE.store(phase_code(phase), Ordering::Relaxed);
    PhaseGuard
}

/// The phase worker samples are currently attributed to.
pub fn current_phase() -> Phase {
    // par-ok: attribution hint only; it labels obs samples and never feeds computation
    match PHASE.load(Ordering::Relaxed) {
        1 => Phase::Backward,
        2 => Phase::Optimizer,
        _ => Phase::Forward,
    }
}

fn phase_code(phase: Phase) -> u8 {
    match phase {
        Phase::Forward => 0,
        Phase::Backward => 1,
        Phase::Optimizer => 2,
    }
}

/// Restores the attribution phase to `Forward` on drop.
pub struct PhaseGuard;

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        // par-ok: attribution hint only; it labels obs samples and never feeds computation
        PHASE.store(0, Ordering::Relaxed);
    }
}

/// How many workers a kernel with `rows` output rows and `elems` total
/// multiply-accumulates should fork: the configured thread count, capped
/// by the row count and by `elems / PAR_MIN_ELEMS` so every forked
/// worker owns at least [`PAR_MIN_ELEMS`] MACs. Small kernels therefore
/// run sequentially and mid-size kernels fork fewer workers than the
/// configured maximum — the thread sweep stays monotone instead of
/// collapsing on spawn overhead.
pub fn plan_workers(rows: usize, elems: usize) -> usize {
    let t = threads();
    if t <= 1 || rows < 2 {
        return 1;
    }
    t.min(rows).min((elems / PAR_MIN_ELEMS).max(1))
}

/// Splits `rows` into `workers` contiguous ascending `[lo, hi)` chunks,
/// front-loading the remainder (ceil-division). This single function is
/// both the execution plan (`run_row_chunks`) and the declared schedule
/// (`sched::declared_schedules`) — they cannot drift apart.
pub fn row_chunks(rows: usize, workers: usize) -> Vec<(usize, usize)> {
    let w = workers.clamp(1, rows.max(1));
    let base = rows / w;
    let extra = rows % w;
    let mut chunks = Vec::with_capacity(w);
    let mut lo = 0;
    for i in 0..w {
        let hi = lo + base + usize::from(i < extra);
        chunks.push((lo, hi));
        lo = hi;
    }
    chunks
}

/// Static per-worker op labels: `obs::record_kernel` takes `&'static str`
/// and worker identity must survive the thread join.
fn worker_label(kernel: &'static str, worker: usize) -> &'static str {
    const MM_NN: [&str; 8] = [
        "mm_nn.par.t0",
        "mm_nn.par.t1",
        "mm_nn.par.t2",
        "mm_nn.par.t3",
        "mm_nn.par.t4",
        "mm_nn.par.t5",
        "mm_nn.par.t6",
        "mm_nn.par.t7",
    ];
    const MM_NT: [&str; 8] = [
        "mm_nt.par.t0",
        "mm_nt.par.t1",
        "mm_nt.par.t2",
        "mm_nt.par.t3",
        "mm_nt.par.t4",
        "mm_nt.par.t5",
        "mm_nt.par.t6",
        "mm_nt.par.t7",
    ];
    const MM_TN: [&str; 8] = [
        "mm_tn.par.t0",
        "mm_tn.par.t1",
        "mm_tn.par.t2",
        "mm_tn.par.t3",
        "mm_tn.par.t4",
        "mm_tn.par.t5",
        "mm_tn.par.t6",
        "mm_tn.par.t7",
    ];
    let table = match kernel {
        "mm_nn" => &MM_NN,
        "mm_nt" => &MM_NT,
        "mm_tn" => &MM_TN,
        other => panic!("no worker labels for kernel {other}"),
    };
    table[worker.min(MAX_THREADS - 1)]
}

/// Fork-join executor for a row-split schedule: carves `c` into the
/// disjoint row chunks of `chunks` (each `row_width` floats wide), runs
/// `body(worker, (lo, hi), chunk)` on one scoped thread per chunk, and
/// joins them all before returning.
///
/// Workers share nothing mutable — each owns its `&mut` chunk exclusively
/// by construction — and communicate only through the join, which is what
/// makes the certifier's sequential-equivalence argument apply to the
/// execution and keeps this loop P006-clean (no channels, no locks).
/// When observability is on, each worker self-times with the sanctioned
/// `obs::clock` and the parent records one sample per worker after the
/// join, attributed to the current [`phase_scope`].
pub fn run_row_chunks<F>(
    kernel: &'static str,
    c: &mut [f32],
    row_width: usize,
    chunks: &[(usize, usize)],
    body: F,
) where
    F: Fn(usize, (usize, usize), &mut [f32]) + Sync,
{
    let profiling = obs::enabled();
    let phase = current_phase();
    let mut timings = vec![0u64; chunks.len()];
    std::thread::scope(|scope| {
        let mut rest = &mut *c;
        let mut handles = Vec::with_capacity(chunks.len());
        for (worker, &(lo, hi)) in chunks.iter().enumerate() {
            let (chunk, tail) = rest.split_at_mut((hi - lo) * row_width);
            rest = tail;
            let body = &body;
            handles.push(scope.spawn(move || {
                let started = if profiling { obs::clock::now_ns() } else { 0 };
                body(worker, (lo, hi), chunk);
                if profiling {
                    obs::clock::now_ns().saturating_sub(started)
                } else {
                    0
                }
            }));
        }
        for (worker, handle) in handles.into_iter().enumerate() {
            timings[worker] = handle.join().expect("parallel kernel worker panicked");
        }
    });
    if profiling {
        for (worker, &ns) in timings.iter().enumerate() {
            obs::profile::record_kernel(worker_label(kernel, worker), phase, ns, 0, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_chunks_tile_exactly() {
        for rows in 1..40 {
            for workers in 1..10 {
                let chunks = row_chunks(rows, workers);
                assert_eq!(chunks.len(), workers.min(rows));
                assert_eq!(chunks[0].0, 0);
                assert_eq!(chunks.last().unwrap().1, rows);
                for pair in chunks.windows(2) {
                    assert_eq!(pair[0].1, pair[1].0, "chunks must be contiguous");
                    assert!(pair[0].1 > pair[0].0, "chunks must be non-empty");
                }
                // Balanced: sizes differ by at most one row.
                let sizes: Vec<usize> = chunks.iter().map(|(a, b)| b - a).collect();
                let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(hi - lo <= 1);
            }
        }
    }

    #[test]
    fn plan_workers_gives_every_fork_a_full_floor_of_work() {
        set_threads(4);
        assert_eq!(plan_workers(64, PAR_MIN_ELEMS * 4), 4, "work for all");
        assert_eq!(
            plan_workers(64, PAR_MIN_ELEMS * 2),
            2,
            "scales down so each worker still owns PAR_MIN_ELEMS"
        );
        assert_eq!(
            plan_workers(64, PAR_MIN_ELEMS * 2 - 1),
            1,
            "cannot feed two workers -> sequential"
        );
        assert_eq!(plan_workers(64, PAR_MIN_ELEMS - 1), 1, "tiny kernel");
        assert_eq!(
            plan_workers(64, 8 * 64 * 64),
            1,
            "a decode-step GEMM stays sequential (the old 4-thread collapse)"
        );
        assert_eq!(plan_workers(1, PAR_MIN_ELEMS * 10), 1, "single row");
        assert_eq!(plan_workers(3, PAR_MIN_ELEMS * 10), 3, "capped by rows");
        set_threads(1);
        assert_eq!(plan_workers(64, PAR_MIN_ELEMS * 10), 1, "threads=1");
    }

    #[test]
    fn set_threads_clamps() {
        set_threads(0);
        assert_eq!(threads(), 1);
        set_threads(100);
        assert_eq!(threads(), MAX_THREADS);
        set_threads(1);
    }

    #[test]
    fn run_row_chunks_carves_disjoint_rows() {
        let rows = 7;
        let width = 3;
        let mut c = vec![0.0f32; rows * width];
        let chunks = row_chunks(rows, 3);
        run_row_chunks(
            "mm_nn",
            &mut c,
            width,
            &chunks,
            |worker, (lo, hi), chunk| {
                assert_eq!(chunk.len(), (hi - lo) * width);
                for (r, row) in chunk.chunks_mut(width).enumerate() {
                    for v in row.iter_mut() {
                        *v = (worker * 100 + lo + r) as f32;
                    }
                }
            },
        );
        // Every row was written exactly once, by the worker owning it.
        for (w, &(lo, hi)) in chunks.iter().enumerate() {
            for r in lo..hi {
                for x in &c[r * width..(r + 1) * width] {
                    assert_eq!(*x, (w * 100 + r) as f32);
                }
            }
        }
    }

    #[test]
    fn phase_scope_restores_forward() {
        assert_eq!(current_phase(), Phase::Forward);
        {
            let _guard = phase_scope(Phase::Backward);
            assert_eq!(current_phase(), Phase::Backward);
        }
        assert_eq!(current_phase(), Phase::Forward);
    }
}
