//! The dense tensor value type.

use crate::XorShift;

/// A dense, contiguous, row-major f32 tensor of rank 1–3.
///
/// Shapes are owned `Vec<usize>`; the data buffer always has exactly
/// `shape.iter().product()` elements. The type is a plain value — cloning
/// copies the buffer — which keeps the autodiff tape simple and predictable.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Default for Tensor {
    /// An empty rank-1 tensor (useful with `std::mem::take`).
    fn default() -> Self {
        Self {
            shape: vec![0],
            data: Vec::new(),
        }
    }
}

impl Tensor {
    /// Builds a tensor from an explicit shape and data buffer.
    ///
    /// # Panics
    /// Panics if the buffer length does not match the shape volume.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            data.len(),
            "shape {shape:?} needs {numel} elements, got {}",
            data.len()
        );
        Self { shape, data }
    }

    /// All-zeros tensor of the given shape.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let numel: usize = shape.iter().product();
        Self {
            shape,
            data: vec![0.0; numel],
        }
    }

    /// A `[0, d]` tensor whose buffer has room for `row_capacity` rows of
    /// `d` elements before [`push_row`](Self::push_row) must reallocate.
    /// Capacity is invisible to `PartialEq` and byte accounting, so
    /// pre-reserving never changes observable state — only when the
    /// allocator runs.
    pub fn empty_rows(d: usize, row_capacity: usize) -> Self {
        Self {
            shape: vec![0, d],
            data: Vec::with_capacity(row_capacity * d),
        }
    }

    /// Appends one row to a rank-2 tensor in place (`[t, d]` → `[t+1, d]`),
    /// without the take/rebuild round trip `from_vec` would need. Within
    /// the capacity reserved by [`empty_rows`](Self::empty_rows) this
    /// performs no allocation — the KV-cache growth path in batched
    /// decoding depends on that for its zero-alloc steady state.
    ///
    /// # Panics
    /// Panics if the tensor is not rank 2 or the row width mismatches.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(self.rank(), 2, "push_row requires a 2-D tensor");
        assert_eq!(
            self.shape[1],
            row.len(),
            "push_row width {} does not match tensor width {}",
            row.len(),
            self.shape[1]
        );
        self.data.extend_from_slice(row);
        self.shape[0] += 1;
    }

    /// Tensor filled with a constant.
    pub fn filled(shape: Vec<usize>, value: f32) -> Self {
        let numel: usize = shape.iter().product();
        Self {
            shape,
            data: vec![value; numel],
        }
    }

    /// Scalar (rank-1, single-element) tensor.
    pub fn scalar(value: f32) -> Self {
        Self {
            shape: vec![1],
            data: vec![value],
        }
    }

    /// Tensor of i.i.d. samples from an approximate normal distribution with
    /// the given standard deviation (Irwin–Hall sum of 12 uniforms).
    pub fn randn(shape: Vec<usize>, std: f32, rng: &mut XorShift) -> Self {
        let numel: usize = shape.iter().product();
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            let mut acc = 0.0f32;
            for _ in 0..12 {
                acc += rng.next_f32();
            }
            data.push((acc - 6.0) * std);
        }
        Self { shape, data }
    }

    /// Uniform samples in `[-limit, limit]` (used for embedding init).
    pub fn rand_uniform(shape: Vec<usize>, limit: f32, rng: &mut XorShift) -> Self {
        let numel: usize = shape.iter().product();
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            data.push((rng.next_f32() * 2.0 - 1.0) * limit);
        }
        Self { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Tensor rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Read-only view of the flat data buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat data buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Row count, treating the tensor as 2-D (`[rows, cols]`).
    ///
    /// # Panics
    /// Panics on tensors that are not rank 2.
    pub fn rows(&self) -> usize {
        assert_eq!(self.rank(), 2, "rows() requires a 2-D tensor");
        self.shape[0]
    }

    /// Column count, treating the tensor as 2-D.
    pub fn cols(&self) -> usize {
        assert_eq!(self.rank(), 2, "cols() requires a 2-D tensor");
        self.shape[1]
    }

    /// Element accessor for 2-D tensors.
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.shape[1] + c]
    }

    /// Reinterprets the buffer under a new shape with the same volume.
    pub fn reshaped(mut self, shape: Vec<usize>) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(numel, self.data.len(), "reshape must preserve volume");
        self.shape = shape;
        self
    }

    /// In-place elementwise add of another tensor of identical shape.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place scaling by a constant.
    pub fn scale_assign(&mut self, factor: f32) {
        for a in &mut self.data {
            *a *= factor;
        }
    }

    /// Euclidean norm of the buffer (used for gradient clipping).
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum absolute difference against another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape);
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_volume() {
        let t = Tensor::from_vec(vec![2, 3], vec![0.0; 6]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
    }

    #[test]
    #[should_panic(expected = "needs 6 elements")]
    fn from_vec_rejects_bad_volume() {
        let _ = Tensor::from_vec(vec![2, 3], vec![0.0; 5]);
    }

    #[test]
    fn push_row_grows_without_realloc_inside_reserve() {
        let mut t = Tensor::empty_rows(3, 4);
        assert_eq!(t.shape(), &[0, 3]);
        let base = t.data().as_ptr();
        for i in 0..4 {
            t.push_row(&[i as f32, 1.0, 2.0]);
        }
        assert_eq!(t.shape(), &[4, 3]);
        assert_eq!(t.at2(2, 0), 2.0);
        assert_eq!(
            t.data().as_ptr(),
            base,
            "rows within the reserved capacity must not move the buffer"
        );
        // Capacity is invisible to equality: a from_vec twin compares equal.
        let twin = Tensor::from_vec(
            vec![4, 3],
            (0..4).flat_map(|i| [i as f32, 1.0, 2.0]).collect(),
        );
        assert_eq!(t, twin);
    }

    #[test]
    #[should_panic(expected = "width 2 does not match")]
    fn push_row_rejects_width_mismatch() {
        let mut t = Tensor::empty_rows(3, 1);
        t.push_row(&[0.0, 1.0]);
    }

    #[test]
    fn randn_has_roughly_correct_moments() {
        let mut rng = XorShift::new(1);
        let t = Tensor::randn(vec![10_000], 2.0, &mut rng);
        let mean: f32 = t.data().iter().sum::<f32>() / 10_000.0;
        let var: f32 = t
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / 10_000.0;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|i| i as f32).collect());
        let r = t.clone().reshaped(vec![3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Tensor::filled(vec![4], 1.0);
        let b = Tensor::filled(vec![4], 2.0);
        a.add_assign(&b);
        a.scale_assign(0.5);
        assert_eq!(a.data(), &[1.5, 1.5, 1.5, 1.5]);
    }

    #[test]
    fn l2_norm_matches_hand_computation() {
        let t = Tensor::from_vec(vec![2], vec![3.0, 4.0]);
        assert!((t.l2_norm() - 5.0).abs() < 1e-6);
    }
}
