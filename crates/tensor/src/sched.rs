//! Declared reduction schedules for the parallel matmul kernels.
//!
//! A [`ReductionSchedule`] is the *contract* between a parallel kernel
//! and the static certifier in `analysis::par`: which axis the output is
//! split along, the exact chunk ranges each worker owns, and the fixed
//! binary join tree that combines worker results. The executor
//! (`crate::par::run_row_chunks`) implements precisely this shape, and
//! [`declared_schedules`] builds the descriptors from the *same*
//! `row_chunks` planner the executor uses — so what gets certified is
//! what runs.
//!
//! For a fork-join row split the "join" is trivial (workers write
//! disjoint rows; joining is just thread join, in worker order), but the
//! tree is still declared explicitly: the certifier's job is to prove
//! that *whatever* the tree is, combining in that order is bit-equal to
//! the sequential reduction — and to reject trees (e.g. any `k`-axis
//! split that isn't a left-comb over ascending chunks) where it is not.

use crate::graph::MmOrient;
use crate::par;

/// Which output/reduction axis a schedule splits across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitAxis {
    /// Output rows — each worker owns whole reduction chains. Safe.
    M,
    /// Output columns — also owns whole chains (unused by the current
    /// kernels, but expressible).
    N,
    /// The contraction axis — chops reduction chains into partial sums
    /// that must be re-combined; only a left-comb join over ascending
    /// chunks can be bit-equal to sequential order.
    K,
}

impl SplitAxis {
    pub fn as_str(&self) -> &'static str {
        match self {
            SplitAxis::M => "m",
            SplitAxis::N => "n",
            SplitAxis::K => "k",
        }
    }
}

/// A binary tree over chunk indices describing the order worker results
/// combine. `Leaf(i)` is chunk `i`'s partial result; `Node(l, r)`
/// combines `l` then `r` (left operand is the accumulator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinTree {
    Leaf(usize),
    Node(Box<JoinTree>, Box<JoinTree>),
}

impl JoinTree {
    /// The left-comb (sequential-fold) tree over chunks `0..n`:
    /// `((…(0⊕1)⊕2)…)⊕(n-1)` — the only join order that reproduces a
    /// sequential left-to-right reduction exactly.
    pub fn left_spine(n: usize) -> JoinTree {
        assert!(n > 0, "join tree over zero chunks");
        let mut tree = JoinTree::Leaf(0);
        for i in 1..n {
            tree = JoinTree::Node(Box::new(tree), Box::new(JoinTree::Leaf(i)));
        }
        tree
    }

    /// Leaf chunk indices in combine order (left-to-right).
    pub fn leaves(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<usize>) {
        match self {
            JoinTree::Leaf(i) => out.push(*i),
            JoinTree::Node(l, r) => {
                l.collect_leaves(out);
                r.collect_leaves(out);
            }
        }
    }
}

/// The full schedule one parallel kernel declares for one launch shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReductionSchedule {
    /// Kernel name (`mm_nn` / `mm_nt` / `mm_tn`).
    pub kernel: &'static str,
    pub orient: MmOrient,
    /// `(m, k, n)` of the launch.
    pub shape: (usize, usize, usize),
    pub split: SplitAxis,
    /// Per-worker `[lo, hi)` ranges along the split axis.
    pub chunks: Vec<(usize, usize)>,
    /// How worker results combine.
    pub join: JoinTree,
}

impl ReductionSchedule {
    /// Length of the split axis this schedule must tile.
    pub fn axis_len(&self) -> usize {
        let (m, k, n) = self.shape;
        match self.split {
            SplitAxis::M => m,
            SplitAxis::N => n,
            SplitAxis::K => k,
        }
    }
}

/// The schedules the dispatch layer (`crate::kernels`) actually uses for
/// an `(m, k, n)` launch at `workers` threads: every orientation splits
/// output rows (`M`) into the planner's contiguous ascending chunks and
/// joins along the left spine in worker order.
pub fn declared_schedules(m: usize, k: usize, n: usize, workers: usize) -> Vec<ReductionSchedule> {
    let chunks = par::row_chunks(m, workers);
    let join = JoinTree::left_spine(chunks.len());
    [
        ("mm_nn", MmOrient::Nn),
        ("mm_nt", MmOrient::Nt),
        ("mm_tn", MmOrient::Tn),
    ]
    .into_iter()
    .map(|(kernel, orient)| ReductionSchedule {
        kernel,
        orient,
        shape: (m, k, n),
        split: SplitAxis::M,
        chunks: chunks.clone(),
        join: join.clone(),
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn left_spine_combines_in_ascending_order() {
        let t = JoinTree::left_spine(4);
        assert_eq!(t.leaves(), vec![0, 1, 2, 3]);
        // Shape check: ((0⊕1)⊕2)⊕3 — right child of the root is leaf 3.
        let JoinTree::Node(_, r) = &t else {
            panic!("spine with >1 leaf must be a node");
        };
        assert_eq!(**r, JoinTree::Leaf(3));
    }

    #[test]
    fn declared_schedules_cover_all_orientations_and_tile_m() {
        let scheds = declared_schedules(65, 130, 257, 4);
        assert_eq!(scheds.len(), 3);
        for s in &scheds {
            assert_eq!(s.split, SplitAxis::M);
            assert_eq!(s.axis_len(), 65);
            assert_eq!(s.chunks.first().unwrap().0, 0);
            assert_eq!(s.chunks.last().unwrap().1, 65);
            assert_eq!(s.join.leaves().len(), s.chunks.len());
        }
    }

    #[test]
    fn schedules_mirror_the_executors_planner() {
        let scheds = declared_schedules(7, 64, 129, 3);
        assert_eq!(scheds[0].chunks, par::row_chunks(7, 3));
    }
}
