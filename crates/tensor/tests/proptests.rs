//! Property-based tests of the autodiff engine: algebraic identities,
//! shape discipline, and gradient linearity.

use proptest::prelude::*;

use tensor::{Graph, Tensor, XorShift};

fn tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(vec![rows, cols], data))
}

proptest! {
    /// (A·B)·C == A·(B·C) within f32 tolerance.
    #[test]
    fn matmul_associative(a in tensor(3, 4), b in tensor(4, 2), c in tensor(2, 5)) {
        let mut g = Graph::new();
        let va = g.leaf(a, false);
        let vb = g.leaf(b, false);
        let vc = g.leaf(c, false);
        let ab = g.matmul(va, vb);
        let left = g.matmul(ab, vc);
        let bc = g.matmul(vb, vc);
        let right = g.matmul(va, bc);
        let diff = g.value(left).max_abs_diff(g.value(right));
        prop_assert!(diff < 1e-3, "associativity violated by {diff}");
    }

    /// A·(B + C) == A·B + A·C.
    #[test]
    fn matmul_distributes(a in tensor(3, 4), b in tensor(4, 2), c in tensor(4, 2)) {
        let mut g = Graph::new();
        let va = g.leaf(a, false);
        let vb = g.leaf(b, false);
        let vc = g.leaf(c, false);
        let sum = g.add(vb, vc);
        let left = g.matmul(va, sum);
        let ab = g.matmul(va, vb);
        let ac = g.matmul(va, vc);
        let right = g.add(ab, ac);
        prop_assert!(g.value(left).max_abs_diff(g.value(right)) < 1e-3);
    }

    /// matmul_nt(A, B) == matmul(A, Bᵀ).
    #[test]
    fn matmul_nt_consistent(a in tensor(3, 4), b in tensor(5, 4)) {
        let mut g = Graph::new();
        let va = g.leaf(a, false);
        let vb = g.leaf(b.clone(), false);
        let nt = g.matmul_nt(va, vb);
        // Manual transpose of b.
        let mut bt = Tensor::zeros(vec![4, 5]);
        for r in 0..5 {
            for c in 0..4 {
                bt.data_mut()[c * 5 + r] = b.at2(r, c);
            }
        }
        let vbt = g.leaf(bt, false);
        let nn = g.matmul(va, vbt);
        prop_assert!(g.value(nt).max_abs_diff(g.value(nn)) < 1e-4);
    }

    /// Softmax rows are probability distributions and argmax-preserving.
    #[test]
    fn softmax_properties(x in tensor(4, 6)) {
        let mut g = Graph::new();
        let vx = g.leaf(x.clone(), false);
        let y = g.softmax(vx);
        for (row_in, row_out) in x.data().chunks(6).zip(g.value(y).data().chunks(6)) {
            let sum: f32 = row_out.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row_out.iter().all(|&p| p >= 0.0));
            let argmax_in = row_in.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
            let argmax_out = row_out.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
            prop_assert_eq!(argmax_in, argmax_out);
        }
    }

    /// Gradients are linear: grad of sum(k·x²) is 2k·x.
    #[test]
    fn gradient_scaling(x in tensor(3, 3), k in 0.5f32..4.0) {
        let mut g = Graph::new();
        let vx = g.leaf(x.clone(), true);
        let sq = g.mul(vx, vx);
        let scaled = g.scale(sq, k);
        let loss = g.sum(scaled);
        g.backward(loss);
        let grad = g.grad(vx).unwrap();
        for (gv, xv) in grad.data().iter().zip(x.data().iter()) {
            prop_assert!((gv - 2.0 * k * xv).abs() < 1e-3);
        }
    }

    /// Reshape + permute roundtrips preserve data.
    #[test]
    fn permute_roundtrip(x in tensor(2, 12)) {
        let mut g = Graph::new();
        let vx = g.leaf(x.clone(), false);
        let cube = g.reshape(vx, vec![2, 3, 4]);
        let p = g.permute3(cube, [2, 0, 1]);
        let back = g.permute3(p, [1, 2, 0]);
        let flat = g.reshape(back, vec![2, 12]);
        prop_assert_eq!(g.value(flat), &x);
    }

    /// Dropout at p=0 is the identity; at any p the expected scale holds
    /// approximately on large inputs.
    #[test]
    fn dropout_identity(x in tensor(4, 4)) {
        let mut g = Graph::new();
        let vx = g.leaf(x.clone(), false);
        let y = g.dropout(vx, 0.0);
        prop_assert_eq!(g.value(y), &x);
    }

    /// randn respects requested dimensions.
    #[test]
    fn randn_shapes(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let mut rng = XorShift::new(seed);
        let t = Tensor::randn(vec![rows, cols], 1.0, &mut rng);
        prop_assert_eq!(t.numel(), rows * cols);
    }
}
