//! Property-based tests for the executor: totality over generated
//! queries, aggregate consistency, and ordering invariants.

use proptest::prelude::*;

use storage::{execute, to_chart, Column, ColumnType, Database, Table, Value};
use vql::ast::{AggFunc, ChartType, ColExpr, ColumnRef, OrderBy, OrderDir, Query};

fn database(rows: &[(i64, &str, f64)]) -> Database {
    let mut db = Database::new("prop_db", "proptest");
    let mut t = Table::new(
        "items",
        vec![
            Column::new("item_id", ColumnType::Int),
            Column::new("kind", ColumnType::Text),
            Column::new("price", ColumnType::Float),
        ],
    );
    for (id, kind, price) in rows {
        t.push_row(vec![
            Value::Int(*id),
            Value::Text(kind.to_string()),
            Value::Float(*price),
        ]);
    }
    db.add_table(t);
    db
}

fn rows_strategy() -> impl Strategy<Value = Vec<(i64, String, f64)>> {
    prop::collection::vec(
        (
            1i64..100,
            prop::sample::select(vec!["red", "green", "blue"]).prop_map(str::to_string),
            0.0f64..100.0,
        ),
        1..25,
    )
}

fn count_query(order: Option<OrderDir>) -> Query {
    let kind = ColumnRef::qualified("items", "kind");
    Query {
        chart: ChartType::Bar,
        select: vec![
            ColExpr::Column(kind.clone()),
            ColExpr::Agg(AggFunc::Count, kind.clone()),
        ],
        from: "items".into(),
        join: None,
        filters: vec![],
        group_by: vec![kind.clone()],
        order_by: order.map(|dir| OrderBy {
            expr: ColExpr::Agg(AggFunc::Count, kind),
            dir,
        }),
        bin: None,
    }
}

proptest! {
    /// Group-by counts always sum to the table's row count.
    #[test]
    fn counts_partition_rows(rows in rows_strategy()) {
        let refs: Vec<(i64, &str, f64)> = rows.iter().map(|(a, b, c)| (*a, b.as_str(), *c)).collect();
        let db = database(&refs);
        let result = execute(&count_query(None), &db).unwrap();
        let total: f64 = result
            .rows
            .iter()
            .map(|r| r[1].as_f64().unwrap_or(0.0))
            .sum();
        prop_assert_eq!(total as usize, rows.len());
        // At most three groups exist.
        prop_assert!(result.rows.len() <= 3);
    }

    /// Ascending order-by yields a sorted y column; descending its mirror.
    #[test]
    fn order_by_sorts(rows in rows_strategy()) {
        let refs: Vec<(i64, &str, f64)> = rows.iter().map(|(a, b, c)| (*a, b.as_str(), *c)).collect();
        let db = database(&refs);
        for dir in [OrderDir::Asc, OrderDir::Desc] {
            let result = execute(&count_query(Some(dir)), &db).unwrap();
            let ys: Vec<f64> = result.rows.iter().map(|r| r[1].as_f64().unwrap()).collect();
            let mut sorted = ys.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            if dir == OrderDir::Desc {
                sorted.reverse();
            }
            prop_assert_eq!(ys, sorted);
        }
    }

    /// Min ≤ Avg ≤ Max on any non-empty group.
    #[test]
    fn aggregate_ordering(rows in rows_strategy()) {
        let refs: Vec<(i64, &str, f64)> = rows.iter().map(|(a, b, c)| (*a, b.as_str(), *c)).collect();
        let db = database(&refs);
        let kind = ColumnRef::qualified("items", "kind");
        let price = ColumnRef::qualified("items", "price");
        let q = Query {
            chart: ChartType::Scatter,
            select: vec![
                ColExpr::Agg(AggFunc::Min, price.clone()),
                ColExpr::Agg(AggFunc::Avg, price.clone()),
                ColExpr::Agg(AggFunc::Max, price),
            ],
            from: "items".into(),
            join: None,
            filters: vec![],
            group_by: vec![kind],
            order_by: None,
            bin: None,
        };
        let result = execute(&q, &db).unwrap();
        for row in &result.rows {
            let (min, avg, max) = (
                row[0].as_f64().unwrap(),
                row[1].as_f64().unwrap(),
                row[2].as_f64().unwrap(),
            );
            prop_assert!(min <= avg + 1e-9 && avg <= max + 1e-9, "{min} {avg} {max}");
        }
    }

    /// The chart model conserves the executed totals.
    #[test]
    fn chart_total_matches_result(rows in rows_strategy()) {
        let refs: Vec<(i64, &str, f64)> = rows.iter().map(|(a, b, c)| (*a, b.as_str(), *c)).collect();
        let db = database(&refs);
        let q = count_query(None);
        let result = execute(&q, &db).unwrap();
        let chart = to_chart(&q, &result);
        prop_assert_eq!(chart.part_count(), result.rows.len());
        prop_assert!((chart.total() - rows.len() as f64).abs() < 1e-9);
    }

    /// Executing any query parsed from corpus-style text never panics
    /// (errors are fine; panics are not).
    #[test]
    fn executor_total_on_garbage_columns(col in "[a-z]{1,8}") {
        let db = database(&[(1, "red", 2.0)]);
        let text = format!("visualize bar select items.{col}, count ( items.{col} ) from items group by items.{col}");
        let q = vql::parse_query(&text).unwrap();
        let _ = execute(&q, &db);
    }
}
