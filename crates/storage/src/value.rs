//! Typed cell values.

use std::cmp::Ordering;
use std::fmt;

/// A calendar date (no time component).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    pub year: i32,
    pub month: u8,
    pub day: u8,
}

impl Date {
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        assert!((1..=12).contains(&month), "month {month} out of range");
        assert!((1..=31).contains(&day), "day {day} out of range");
        Self { year, month, day }
    }

    /// Day of week, 0 = Monday … 6 = Sunday (Zeller's congruence).
    pub fn weekday(&self) -> u8 {
        let (mut y, mut m) = (self.year, self.month as i32);
        if m < 3 {
            m += 12;
            y -= 1;
        }
        let k = y % 100;
        let j = y / 100;
        let h = (self.day as i32 + 13 * (m + 1) / 5 + k + k / 4 + j / 4 + 5 * j) % 7;
        // Zeller: 0 = Saturday; remap to 0 = Monday.
        ((h + 5) % 7) as u8
    }

    /// English weekday name.
    pub fn weekday_name(&self) -> &'static str {
        const NAMES: [&str; 7] = [
            "monday",
            "tuesday",
            "wednesday",
            "thursday",
            "friday",
            "saturday",
            "sunday",
        ];
        NAMES[self.weekday() as usize]
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A typed cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Text(String),
    Date(Date),
}

impl Value {
    /// Numeric view (ints and floats); `None` for text/date/null.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Whether the value is null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Total ordering used by `order by`: null < numbers < text < date,
    /// with numeric types compared numerically.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (a, b) if a.as_f64().is_some() && b.as_f64().is_some() => {
                a.as_f64().unwrap().total_cmp(&b.as_f64().unwrap())
            }
            (Text(a), Text(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Int(_) | Float(_), _) => Ordering::Less,
            (_, Int(_) | Float(_)) => Ordering::Greater,
            (Text(_), Date(_)) => Ordering::Less,
            (Date(_), Text(_)) => Ordering::Greater,
        }
    }

    /// Equality as used by predicates and group keys: numeric types
    /// compare numerically; text comparisons are case-insensitive.
    pub fn loose_eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Text(a), Text(b)) => a.eq_ignore_ascii_case(b),
            (a, b) if a.as_f64().is_some() && b.as_f64().is_some() => {
                (a.as_f64().unwrap() - b.as_f64().unwrap()).abs() < 1e-9
            }
            (a, b) => a == b,
        }
    }

    /// SQL-`like` match with `%` wildcards (case-insensitive).
    pub fn like(&self, pattern: &str) -> bool {
        let Value::Text(s) = self else { return false };
        like_match(&s.to_ascii_lowercase(), &pattern.to_ascii_lowercase())
    }

    /// Canonical key for grouping (case-folded text, formatted numbers).
    pub fn group_key(&self) -> String {
        match self {
            Value::Text(s) => s.to_ascii_lowercase(),
            other => other.to_string(),
        }
    }
}

fn like_match(s: &str, pattern: &str) -> bool {
    // Simple %-only glob matcher, recursive on segment boundaries.
    let parts: Vec<&str> = pattern.split('%').collect();
    if parts.len() == 1 {
        return s == pattern;
    }
    let mut rest = s;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        if i == 0 {
            match rest.strip_prefix(part) {
                Some(r) => rest = r,
                None => return false,
            }
        } else if i == parts.len() - 1 && !pattern.ends_with('%') {
            return rest.ends_with(part);
        } else {
            match rest.find(part) {
                Some(pos) => rest = &rest[pos + part.len()..],
                None => return false,
            }
        }
    }
    true
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x:.2}")
                }
            }
            Value::Text(s) => f.write_str(s),
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_display_is_iso() {
        assert_eq!(Date::new(2010, 3, 7).to_string(), "2010-03-07");
    }

    #[test]
    fn weekday_known_dates() {
        // 2000-01-01 was a Saturday; 2024-01-01 a Monday.
        assert_eq!(Date::new(2000, 1, 1).weekday_name(), "saturday");
        assert_eq!(Date::new(2024, 1, 1).weekday_name(), "monday");
    }

    #[test]
    #[should_panic(expected = "month")]
    fn invalid_month_panics() {
        let _ = Date::new(2020, 13, 1);
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert!(Value::Int(2).loose_eq(&Value::Float(2.0)));
        assert_eq!(Value::Int(1).total_cmp(&Value::Float(1.5)), Ordering::Less);
    }

    #[test]
    fn text_equality_is_case_insensitive() {
        assert!(Value::Text("USA".into()).loose_eq(&Value::Text("usa".into())));
    }

    #[test]
    fn null_sorts_first() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(-100)), Ordering::Less);
    }

    #[test]
    fn like_wildcards() {
        let v = Value::Text("Springfield".into());
        assert!(v.like("%field"));
        assert!(v.like("spring%"));
        assert!(v.like("%ring%"));
        assert!(v.like("springfield"));
        assert!(!v.like("%xyz%"));
        assert!(!Value::Int(3).like("%3%"));
    }

    #[test]
    fn float_display_drops_trailing_zero_fraction() {
        assert_eq!(Value::Float(4.0).to_string(), "4");
        assert_eq!(Value::Float(4.25).to_string(), "4.25");
    }

    #[test]
    fn group_key_folds_case() {
        assert_eq!(Value::Text("England".into()).group_key(), "england");
        assert_eq!(Value::Int(7).group_key(), "7");
    }
}
