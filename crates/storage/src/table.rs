//! Column definitions, tables, and databases.

use crate::value::Value;
use vql::schema::{DbSchema, TableSchema};

/// Column data types understood by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    Int,
    Float,
    Text,
    Date,
}

impl ColumnType {
    /// Whether values of this type can feed `sum`/`avg`.
    pub fn is_numeric(&self) -> bool {
        matches!(self, ColumnType::Int | ColumnType::Float)
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub ty: ColumnType,
}

impl Column {
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Self {
            name: name.into(),
            ty,
        }
    }
}

/// An in-memory table: definition plus row storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    pub name: String,
    pub columns: Vec<Column>,
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        Self {
            name: name.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row after checking its arity.
    ///
    /// # Panics
    /// Panics if the row length does not match the column count.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity {} != column count {} in table {}",
            row.len(),
            self.columns.len(),
            self.name
        );
        self.rows.push(row);
    }

    /// Index of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }
}

/// A named collection of tables.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Database {
    pub name: String,
    /// Domain tag used for cross-domain partitioning (e.g. "academic").
    pub domain: String,
    pub tables: Vec<Table>,
}

impl Database {
    pub fn new(name: impl Into<String>, domain: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            domain: domain.into(),
            tables: Vec::new(),
        }
    }

    /// Adds a table.
    pub fn add_table(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Looks up a table by (case-insensitive) name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// The name-only schema view used by vql's standardizer and encoder.
    pub fn schema(&self) -> DbSchema {
        DbSchema::new(
            self.name.clone(),
            self.tables
                .iter()
                .map(|t| TableSchema::new(t.name.clone(), t.column_names()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artist_table() -> Table {
        let mut t = Table::new(
            "artist",
            vec![
                Column::new("artist_id", ColumnType::Int),
                Column::new("name", ColumnType::Text),
                Column::new("country", ColumnType::Text),
            ],
        );
        t.push_row(vec![
            Value::Int(1),
            Value::Text("vijay".into()),
            Value::Text("united states".into()),
        ]);
        t
    }

    #[test]
    fn push_row_checks_arity() {
        let t = artist_table();
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn wrong_arity_panics() {
        let mut t = artist_table();
        t.push_row(vec![Value::Int(2)]);
    }

    #[test]
    fn column_index_is_case_insensitive() {
        let t = artist_table();
        assert_eq!(t.column_index("Country"), Some(2));
        assert_eq!(t.column_index("missing"), None);
    }

    #[test]
    fn database_schema_view() {
        let mut db = Database::new("theme_gallery", "arts");
        db.add_table(artist_table());
        let schema = db.schema();
        assert_eq!(schema.name, "theme_gallery");
        assert_eq!(schema.tables.len(), 1);
        assert_eq!(schema.columns_of("artist").len(), 3);
    }

    #[test]
    fn table_lookup_is_case_insensitive() {
        let mut db = Database::new("g", "arts");
        db.add_table(artist_table());
        assert!(db.table("ARTIST").is_some());
        assert!(db.table("nope").is_none());
    }

    #[test]
    fn numeric_types_flagged() {
        assert!(ColumnType::Int.is_numeric());
        assert!(ColumnType::Float.is_numeric());
        assert!(!ColumnType::Text.is_numeric());
        assert!(!ColumnType::Date.is_numeric());
    }
}
