//! A miniature in-memory relational engine.
//!
//! DataVisT5's corpora need a database underneath them: FeVisQA Type-3
//! answers ("what is the total number of count(film.type)?") must be
//! consistent with the chart a DV query renders, and the Chart2Text-like
//! corpus derives its tables from executed queries. This crate provides the
//! typed substrate:
//!
//! * [`value`] — typed cell values with ordering and display;
//! * [`table`] — column definitions, tables, and databases;
//! * [`exec`] — an executor that evaluates a parsed [`vql::Query`]
//!   (projection, filtering with `in`-subqueries, join, grouping with the
//!   five aggregates, temporal binning, ordering) into a [`exec::ResultTable`];
//! * chart construction ([`exec::to_chart`]) mapping results onto the
//!   [`vql::Chart`] model.
//!
//! The engine is intentionally small — single join, conjunctive filters —
//! exactly the fragment the DV query language can express.

pub mod csv;
pub mod exec;
pub mod table;
pub mod value;

pub use csv::{table_from_csv, table_to_csv, CsvError};
pub use exec::{execute, to_chart, ExecError, ResultTable};
pub use table::{Column, ColumnType, Database, Table};
pub use value::{Date, Value};
