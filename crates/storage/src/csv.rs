//! CSV import/export for tables.
//!
//! Lets downstream users load their own data into the engine (the
//! `dashboard_report` example consumes any database, not just synthetic
//! ones). The dialect is minimal but correct: comma separation, `"`
//! quoting with `""` escapes, one header row.

use std::fmt::Write as _;

use crate::table::{Column, ColumnType, Table};
use crate::value::{Date, Value};

/// CSV parse/serialize failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A row had a different arity than the header.
    Ragged {
        line: usize,
        expected: usize,
        got: usize,
    },
    /// Unterminated quoted field.
    UnterminatedQuote { line: usize },
    /// The input had no header row.
    Empty,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Ragged {
                line,
                expected,
                got,
            } => {
                write!(f, "line {line}: expected {expected} fields, got {got}")
            }
            CsvError::UnterminatedQuote { line } => {
                write!(f, "line {line}: unterminated quoted field")
            }
            CsvError::Empty => f.write_str("empty csv input"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Splits one CSV record honouring quotes; returns the fields.
fn split_record(line: &str, line_no: usize) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut field)),
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote { line: line_no });
    }
    fields.push(field);
    Ok(fields)
}

/// Infers the narrowest column type that fits every value in a column.
fn infer_type(values: &[&str]) -> ColumnType {
    let mut ty = ColumnType::Int;
    for v in values {
        if v.is_empty() {
            continue;
        }
        match ty {
            ColumnType::Int => {
                if v.parse::<i64>().is_ok() {
                } else if v.parse::<f64>().is_ok() {
                    ty = ColumnType::Float;
                } else if parse_date(v).is_some() {
                    ty = ColumnType::Date;
                } else {
                    return ColumnType::Text;
                }
            }
            ColumnType::Float => {
                if v.parse::<f64>().is_err() {
                    return ColumnType::Text;
                }
            }
            ColumnType::Date => {
                if parse_date(v).is_none() {
                    return ColumnType::Text;
                }
            }
            ColumnType::Text => return ColumnType::Text,
        }
    }
    ty
}

fn parse_date(s: &str) -> Option<Date> {
    let mut parts = s.split('-');
    let y: i32 = parts.next()?.parse().ok()?;
    let m: u8 = parts.next()?.parse().ok()?;
    let d: u8 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(Date::new(y, m, d))
}

fn parse_value(s: &str, ty: ColumnType) -> Value {
    if s.is_empty() {
        return Value::Null;
    }
    match ty {
        ColumnType::Int => s.parse().map(Value::Int).unwrap_or(Value::Null),
        ColumnType::Float => s.parse().map(Value::Float).unwrap_or(Value::Null),
        ColumnType::Date => parse_date(s).map(Value::Date).unwrap_or(Value::Null),
        ColumnType::Text => Value::Text(s.to_string()),
    }
}

/// Parses CSV text (header + rows) into a typed table, inferring column
/// types from the data.
pub fn table_from_csv(name: &str, csv: &str) -> Result<Table, CsvError> {
    let mut lines = csv
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines.next().ok_or(CsvError::Empty)?;
    let headers = split_record(header, 1)?;
    let mut raw_rows: Vec<Vec<String>> = Vec::new();
    for (i, line) in lines {
        let fields = split_record(line, i + 1)?;
        if fields.len() != headers.len() {
            return Err(CsvError::Ragged {
                line: i + 1,
                expected: headers.len(),
                got: fields.len(),
            });
        }
        raw_rows.push(fields);
    }
    let columns: Vec<Column> = headers
        .iter()
        .enumerate()
        .map(|(c, h)| {
            let col_vals: Vec<&str> = raw_rows.iter().map(|r| r[c].as_str()).collect();
            Column::new(h.trim(), infer_type(&col_vals))
        })
        .collect();
    let mut table = Table::new(name, columns);
    for raw in &raw_rows {
        let row = raw
            .iter()
            .enumerate()
            .map(|(c, v)| parse_value(v.trim(), table.columns[c].ty))
            .collect();
        table.push_row(row);
    }
    Ok(table)
}

/// Serializes a table as CSV (header + rows).
pub fn table_to_csv(table: &Table) -> String {
    let mut out = String::new();
    let quote = |s: &str| -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let header: Vec<String> = table.columns.iter().map(|c| quote(&c.name)).collect();
    let _ = writeln!(out, "{}", header.join(","));
    for row in &table.rows {
        let cells: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                other => quote(&other.to_string()),
            })
            .collect();
        let _ = writeln!(out, "{}", cells.join(","));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "name,age,joined,score\n\
                          ada,31,2019-04-02,9.5\n\
                          \"lee, jr\",28,2020-11-30,7\n\
                          grace,45,2018-01-15,8.25\n";

    #[test]
    fn parses_and_infers_types() {
        let t = table_from_csv("people", SAMPLE).unwrap();
        assert_eq!(t.columns.len(), 4);
        assert_eq!(t.columns[0].ty, ColumnType::Text);
        assert_eq!(t.columns[1].ty, ColumnType::Int);
        assert_eq!(t.columns[2].ty, ColumnType::Date);
        assert_eq!(t.columns[3].ty, ColumnType::Float);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[1][0], Value::Text("lee, jr".into()));
    }

    #[test]
    fn roundtrip_preserves_content() {
        let t = table_from_csv("people", SAMPLE).unwrap();
        let csv = table_to_csv(&t);
        let t2 = table_from_csv("people", &csv).unwrap();
        assert_eq!(t.rows, t2.rows);
        assert_eq!(t.column_names(), t2.column_names());
    }

    #[test]
    fn quoted_quotes_roundtrip() {
        let csv = "msg\n\"she said \"\"hi\"\"\"\n";
        let t = table_from_csv("m", csv).unwrap();
        assert_eq!(t.rows[0][0], Value::Text("she said \"hi\"".into()));
        let again = table_from_csv("m", &table_to_csv(&t)).unwrap();
        assert_eq!(t.rows, again.rows);
    }

    #[test]
    fn ragged_rows_error_with_line() {
        let csv = "a,b\n1,2\n3\n";
        match table_from_csv("t", csv) {
            Err(CsvError::Ragged {
                line,
                expected,
                got,
            }) => {
                assert_eq!((line, expected, got), (3, 2, 1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unterminated_quote_errors() {
        assert!(matches!(
            table_from_csv("t", "a\n\"oops\n"),
            Err(CsvError::UnterminatedQuote { .. })
        ));
    }

    #[test]
    fn empty_input_errors() {
        assert_eq!(table_from_csv("t", "\n\n"), Err(CsvError::Empty));
    }

    #[test]
    fn empty_cells_become_null() {
        let t = table_from_csv("t", "a,b\n1,\n,2\n").unwrap();
        assert_eq!(t.rows[0][1], Value::Null);
        assert_eq!(t.rows[1][0], Value::Null);
    }

    #[test]
    fn imported_table_is_queryable() {
        let t = table_from_csv("people", SAMPLE).unwrap();
        let mut db = crate::table::Database::new("csvdb", "import");
        db.add_table(t);
        let q = vql::parse_query(
            "visualize bar select people.name, people.score from people where people.age > 30",
        )
        .unwrap();
        let r = crate::exec::execute(&q, &db).unwrap();
        assert_eq!(r.rows.len(), 2);
    }
}
