//! DV query execution.
//!
//! [`execute`] evaluates a (preferably standardized) [`vql::Query`] against
//! a [`Database`] and returns a [`ResultTable`]; [`to_chart`] lifts a result
//! onto the [`vql::Chart`] model. The supported fragment is exactly what DV
//! queries express: one optional inner join, conjunctive filters (including
//! `in`/`not in` sub-selects), temporal binning, grouping with the five SQL
//! aggregates, and single-key ordering.

use std::collections::HashMap;
use std::fmt;

use vql::ast::{AggFunc, BinUnit, CmpOp, ColExpr, ColumnRef, Literal, Predicate, Query, Subquery};
use vql::encode::LinearTable;
use vql::{Chart, Series};

use crate::table::Database;
use crate::value::Value;

/// Execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    UnknownTable(String),
    UnknownColumn(String),
    /// An aggregate applied to a non-numeric column, etc.
    Type(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            ExecError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            ExecError::Type(msg) => write!(f, "type error: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A materialized query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultTable {
    /// Standardized header per output column (e.g. `count ( artist.country )`).
    pub headers: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl ResultTable {
    /// Converts to the text-linearizable view used by DV knowledge
    /// encoding.
    pub fn to_linear(&self) -> LinearTable {
        LinearTable::new(
            self.headers.clone(),
            self.rows
                .iter()
                .map(|r| r.iter().map(|v| v.to_string()).collect())
                .collect(),
        )
    }
}

/// Working relation: qualified column names plus row storage.
struct Relation {
    names: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl Relation {
    fn from_table(db: &Database, table: &str) -> Result<Relation, ExecError> {
        let t = db
            .table(table)
            .ok_or_else(|| ExecError::UnknownTable(table.to_string()))?;
        let tname = t.name.to_ascii_lowercase();
        Ok(Relation {
            names: t
                .columns
                .iter()
                .map(|c| format!("{tname}.{}", c.name.to_ascii_lowercase()))
                .collect(),
            rows: t.rows.clone(),
        })
    }

    /// Resolves a column reference to an index: qualified names match
    /// exactly; bare names match a unique suffix.
    fn resolve(&self, col: &ColumnRef) -> Result<usize, ExecError> {
        let needle = col.to_string().to_ascii_lowercase();
        if col.table.is_some() {
            return self
                .names
                .iter()
                .position(|n| *n == needle)
                .ok_or(ExecError::UnknownColumn(needle));
        }
        let suffix = format!(".{needle}");
        let hits: Vec<usize> = self
            .names
            .iter()
            .enumerate()
            .filter(|(_, n)| n.ends_with(&suffix))
            .map(|(i, _)| i)
            .collect();
        match hits.as_slice() {
            [one] => Ok(*one),
            _ => Err(ExecError::UnknownColumn(needle)),
        }
    }
}

/// Executes a DV query against a database.
pub fn execute(query: &Query, db: &Database) -> Result<ResultTable, ExecError> {
    let mut rel = Relation::from_table(db, &query.from)?;

    if let Some(join) = &query.join {
        let right = Relation::from_table(db, &join.table)?;
        // Join keys may be written either way around; normalise to
        // (left-rel key, right-rel key).
        let (lkey, rkey) = match (rel.resolve(&join.left), right.resolve(&join.right)) {
            (Ok(l), Ok(r)) => (l, r),
            _ => (rel.resolve(&join.right)?, right.resolve(&join.left)?),
        };
        let mut names = rel.names.clone();
        names.extend(right.names.iter().cloned());
        let mut rows = Vec::new();
        for lrow in &rel.rows {
            for rrow in &right.rows {
                if lrow[lkey].loose_eq(&rrow[rkey]) {
                    let mut combined = lrow.clone();
                    combined.extend(rrow.iter().cloned());
                    rows.push(combined);
                }
            }
        }
        rel = Relation { names, rows };
    }

    // Conjunctive filters.
    for pred in &query.filters {
        let keep = eval_filter(&rel, pred, db)?;
        rel.rows = rel
            .rows
            .into_iter()
            .zip(keep)
            .filter_map(|(row, k)| k.then_some(row))
            .collect();
    }

    // Temporal binning rewrites the binned column in place.
    if let Some(bin) = &query.bin {
        let idx = rel.resolve(&bin.column)?;
        for row in &mut rel.rows {
            row[idx] = bin_value(&row[idx], bin.unit);
        }
    }

    let has_agg = query.select.iter().any(|s| s.agg().is_some());
    let headers: Vec<String> = query.select.iter().map(|s| s.to_string()).collect();

    let rows = if has_agg || !query.group_by.is_empty() {
        aggregate(&rel, query)?
    } else {
        project(&rel, query)?
    };

    let mut result = ResultTable { headers, rows };
    apply_order(&mut result, query);
    Ok(result)
}

fn eval_filter(rel: &Relation, pred: &Predicate, db: &Database) -> Result<Vec<bool>, ExecError> {
    match pred {
        Predicate::Compare { left, op, right } => {
            let idx = rel.resolve(left)?;
            Ok(rel
                .rows
                .iter()
                .map(|row| compare(&row[idx], *op, right))
                .collect())
        }
        Predicate::In { left, negated, sub } => {
            let idx = rel.resolve(left)?;
            let members = execute_subquery(sub, db)?;
            Ok(rel
                .rows
                .iter()
                .map(|row| {
                    let found = members.iter().any(|m| m.loose_eq(&row[idx]));
                    found != *negated
                })
                .collect())
        }
    }
}

fn compare(value: &Value, op: CmpOp, lit: &Literal) -> bool {
    let rhs = match lit {
        Literal::Number(n) => Value::Float(*n),
        Literal::Text(s) => Value::Text(s.clone()),
    };
    match op {
        CmpOp::Eq => value.loose_eq(&rhs),
        CmpOp::Ne => !value.loose_eq(&rhs),
        CmpOp::Like => match lit {
            Literal::Text(p) => value.like(p),
            Literal::Number(_) => false,
        },
        ordered => {
            let cmp = value.total_cmp(&rhs);
            match ordered {
                CmpOp::Lt => cmp == std::cmp::Ordering::Less,
                CmpOp::Le => cmp != std::cmp::Ordering::Greater,
                CmpOp::Gt => cmp == std::cmp::Ordering::Greater,
                CmpOp::Ge => cmp != std::cmp::Ordering::Less,
                _ => unreachable!(),
            }
        }
    }
}

/// Evaluates an `in`-subquery into its value list.
fn execute_subquery(sub: &Subquery, db: &Database) -> Result<Vec<Value>, ExecError> {
    let mut rel = Relation::from_table(db, &sub.from)?;
    if let Some(join) = &sub.join {
        let right = Relation::from_table(db, &join.table)?;
        let (lkey, rkey) = match (rel.resolve(&join.left), right.resolve(&join.right)) {
            (Ok(l), Ok(r)) => (l, r),
            _ => (rel.resolve(&join.right)?, right.resolve(&join.left)?),
        };
        let mut names = rel.names.clone();
        names.extend(right.names.iter().cloned());
        let mut rows = Vec::new();
        for lrow in &rel.rows {
            for rrow in &right.rows {
                if lrow[lkey].loose_eq(&rrow[rkey]) {
                    let mut combined = lrow.clone();
                    combined.extend(rrow.iter().cloned());
                    rows.push(combined);
                }
            }
        }
        rel = Relation { names, rows };
    }
    for pred in &sub.filters {
        let keep = eval_filter(&rel, pred, db)?;
        rel.rows = rel
            .rows
            .into_iter()
            .zip(keep)
            .filter_map(|(row, k)| k.then_some(row))
            .collect();
    }
    let idx = rel.resolve(&sub.select)?;
    Ok(rel.rows.iter().map(|r| r[idx].clone()).collect())
}

fn bin_value(v: &Value, unit: BinUnit) -> Value {
    match v {
        Value::Date(d) => Value::Text(match unit {
            BinUnit::Year => format!("{:04}", d.year),
            BinUnit::Month => format!("{:04}-{:02}", d.year, d.month),
            BinUnit::Day => d.to_string(),
            BinUnit::Weekday => d.weekday_name().to_string(),
        }),
        // Integers can be year-like; bin them as themselves.
        other => Value::Text(other.to_string()),
    }
}

fn project(rel: &Relation, query: &Query) -> Result<Vec<Vec<Value>>, ExecError> {
    let indices: Vec<usize> = query
        .select
        .iter()
        .map(|s| rel.resolve(s.column_ref()))
        .collect::<Result<_, _>>()?;
    Ok(rel
        .rows
        .iter()
        .map(|row| indices.iter().map(|&i| row[i].clone()).collect())
        .collect())
}

fn aggregate(rel: &Relation, query: &Query) -> Result<Vec<Vec<Value>>, ExecError> {
    // Group key: explicit group-by columns, or implicitly every non-agg
    // select item (covers `bin … by …` queries that omit `group by`).
    let key_cols: Vec<usize> = if query.group_by.is_empty() {
        query
            .select
            .iter()
            .filter(|s| s.agg().is_none())
            .map(|s| rel.resolve(s.column_ref()))
            .collect::<Result<_, _>>()?
    } else {
        query
            .group_by
            .iter()
            .map(|c| rel.resolve(c))
            .collect::<Result<_, _>>()?
    };

    let mut order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, Vec<&Vec<Value>>> = HashMap::new();
    for row in &rel.rows {
        let key = key_cols
            .iter()
            .map(|&i| row[i].group_key())
            .collect::<Vec<_>>()
            .join("\u{1f}");
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(row);
    }
    // A global aggregate without grouping (no key columns) still produces
    // one row.
    if key_cols.is_empty() && groups.is_empty() && !rel.rows.is_empty() {
        unreachable!("covered by grouping loop");
    }
    if key_cols.is_empty() && rel.rows.is_empty() {
        return Ok(Vec::new());
    }

    let mut out = Vec::with_capacity(groups.len());
    for key in &order {
        let rows = &groups[key];
        let mut out_row = Vec::with_capacity(query.select.len());
        for item in &query.select {
            match item {
                ColExpr::Column(c) => {
                    let idx = rel.resolve(c)?;
                    out_row.push(rows[0][idx].clone());
                }
                ColExpr::Agg(func, c) => {
                    out_row.push(apply_agg(rel, rows, *func, c)?);
                }
            }
        }
        out.push(out_row);
    }
    Ok(out)
}

fn apply_agg(
    rel: &Relation,
    rows: &[&Vec<Value>],
    func: AggFunc,
    col: &ColumnRef,
) -> Result<Value, ExecError> {
    if func == AggFunc::Count {
        if col.is_wildcard() {
            return Ok(Value::Int(rows.len() as i64));
        }
        let idx = rel.resolve(col)?;
        let n = rows.iter().filter(|r| !r[idx].is_null()).count();
        return Ok(Value::Int(n as i64));
    }
    let idx = rel.resolve(col)?;
    let nums: Vec<f64> = rows.iter().filter_map(|r| r[idx].as_f64()).collect();
    if nums.is_empty() {
        return Ok(Value::Null);
    }
    Ok(match func {
        AggFunc::Sum => Value::Float(nums.iter().sum()),
        AggFunc::Avg => Value::Float(nums.iter().sum::<f64>() / nums.len() as f64),
        AggFunc::Max => Value::Float(nums.iter().copied().fold(f64::NEG_INFINITY, f64::max)),
        AggFunc::Min => Value::Float(nums.iter().copied().fold(f64::INFINITY, f64::min)),
        AggFunc::Count => unreachable!(),
    })
}

/// Sorts the result in place if the order-by expression appears in the
/// select list; unknown expressions leave the result unordered (mirroring a
/// forgiving chart renderer).
fn apply_order(result: &mut ResultTable, query: &Query) {
    let Some(order) = &query.order_by else { return };
    let Some(col) = query.select.iter().position(|s| s == &order.expr) else {
        return;
    };
    result.rows.sort_by(|a, b| a[col].total_cmp(&b[col]));
    if order.dir == vql::OrderDir::Desc {
        result.rows.reverse();
    }
}

/// Builds the chart model for a query's result.
///
/// Column 0 is the x channel, column 1 the y channel; a third column, when
/// present on grouped chart types, becomes the series (color) channel.
pub fn to_chart(query: &Query, result: &ResultTable) -> Chart {
    let x_label = result.headers.first().cloned().unwrap_or_default();
    let y_label = result.headers.get(1).cloned().unwrap_or_default();
    let series = if query.select.len() >= 3 && query.chart.is_grouped() {
        let mut order: Vec<String> = Vec::new();
        let mut buckets: HashMap<String, Vec<(String, f64)>> = HashMap::new();
        for row in &result.rows {
            let group = row.get(2).map(|v| v.to_string()).unwrap_or_default();
            if !buckets.contains_key(&group) {
                order.push(group.clone());
            }
            buckets.entry(group).or_default().push(point_of(row));
        }
        order
            .into_iter()
            .map(|g| {
                let pts = buckets.remove(&g).unwrap_or_default();
                Series::named(g, pts)
            })
            .collect()
    } else {
        vec![Series::new(
            result.rows.iter().map(|r| point_of(r)).collect(),
        )]
    };
    Chart {
        chart_type: query.chart,
        x_label,
        y_label,
        series,
    }
}

fn point_of(row: &[Value]) -> (String, f64) {
    let label = row.first().map(|v| v.to_string()).unwrap_or_default();
    let value = row.get(1).and_then(|v| v.as_f64()).unwrap_or(0.0);
    (label, value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Column, ColumnType, Table};
    use crate::value::Date;
    use vql::parse_query;

    fn gallery_db() -> Database {
        let mut db = Database::new("theme_gallery", "arts");
        let mut artist = Table::new(
            "artist",
            vec![
                Column::new("artist_id", ColumnType::Int),
                Column::new("name", ColumnType::Text),
                Column::new("country", ColumnType::Text),
                Column::new("age", ColumnType::Int),
                Column::new("year_join", ColumnType::Int),
            ],
        );
        for (id, name, country, age, yj) in [
            (1, "vijay", "united states", 34, 2009),
            (2, "ford", "united states", 41, 2010),
            (3, "oliver", "england", 28, 2011),
            (4, "noah", "united states", 39, 2012),
            (5, "emma", "france", 30, 2012),
        ] {
            artist.push_row(vec![
                Value::Int(id),
                Value::Text(name.into()),
                Value::Text(country.into()),
                Value::Int(age),
                Value::Int(yj),
            ]);
        }
        db.add_table(artist);

        let mut exhibit = Table::new(
            "exhibit",
            vec![
                Column::new("exhibit_id", ColumnType::Int),
                Column::new("artist_id", ColumnType::Int),
                Column::new("theme", ColumnType::Text),
                Column::new("open_date", ColumnType::Date),
            ],
        );
        for (eid, aid, theme, (y, m, d)) in [
            (1, 1, "summer", (2019, 6, 1)),
            (2, 1, "winter", (2019, 12, 1)),
            (3, 3, "summer", (2020, 6, 15)),
            (4, 5, "spring", (2020, 3, 10)),
        ] {
            exhibit.push_row(vec![
                Value::Int(eid),
                Value::Int(aid),
                Value::Text(theme.into()),
                Value::Date(Date::new(y, m, d)),
            ]);
        }
        db.add_table(exhibit);
        db
    }

    #[test]
    fn group_count_matches_hand_computation() {
        let db = gallery_db();
        let q = parse_query(
            "visualize pie select artist.country, count ( artist.country ) from artist \
             group by artist.country",
        )
        .unwrap();
        let r = execute(&q, &db).unwrap();
        assert_eq!(r.headers[1], "count ( artist.country )");
        assert_eq!(r.rows.len(), 3);
        let us = r
            .rows
            .iter()
            .find(|row| row[0].loose_eq(&Value::Text("united states".into())))
            .unwrap();
        assert_eq!(us[1], Value::Int(3));
    }

    #[test]
    fn avg_min_aggregate() {
        let db = gallery_db();
        let q = parse_query(
            "visualize scatter select artist.country, avg ( artist.age ), min ( artist.age ) \
             from artist group by artist.country",
        )
        .unwrap();
        let r = execute(&q, &db).unwrap();
        let us = r
            .rows
            .iter()
            .find(|row| row[0].loose_eq(&Value::Text("united states".into())))
            .unwrap();
        assert!(us[1].as_f64().unwrap() - 38.0 < 1e-9);
        assert_eq!(us[2].as_f64(), Some(34.0));
    }

    #[test]
    fn where_filter_applies() {
        let db = gallery_db();
        let q = parse_query(
            "visualize bar select artist.name, artist.age from artist where artist.age > 30",
        )
        .unwrap();
        let r = execute(&q, &db).unwrap();
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn join_combines_tables() {
        let db = gallery_db();
        let q = parse_query(
            "visualize bar select artist.name, count ( exhibit.exhibit_id ) from artist \
             join exhibit on artist.artist_id = exhibit.artist_id group by artist.name",
        )
        .unwrap();
        let r = execute(&q, &db).unwrap();
        // Artists 1, 3, 5 have exhibits.
        assert_eq!(r.rows.len(), 3);
        let vijay = r
            .rows
            .iter()
            .find(|row| row[0].loose_eq(&Value::Text("vijay".into())))
            .unwrap();
        assert_eq!(vijay[1], Value::Int(2));
    }

    #[test]
    fn join_keys_swapped_still_work() {
        let db = gallery_db();
        let q = parse_query(
            "visualize bar select artist.name, count ( exhibit.exhibit_id ) from artist \
             join exhibit on exhibit.artist_id = artist.artist_id group by artist.name",
        )
        .unwrap();
        assert!(execute(&q, &db).is_ok());
    }

    #[test]
    fn order_by_count_asc_sorts_rows() {
        let db = gallery_db();
        let q = parse_query(
            "visualize bar select artist.country, count ( artist.country ) from artist \
             group by artist.country order by count ( artist.country ) asc",
        )
        .unwrap();
        let r = execute(&q, &db).unwrap();
        let counts: Vec<i64> = r
            .rows
            .iter()
            .map(|row| row[1].as_f64().unwrap() as i64)
            .collect();
        assert_eq!(counts, vec![1, 1, 3]);
    }

    #[test]
    fn order_by_desc_reverses() {
        let db = gallery_db();
        let q = parse_query(
            "visualize bar select artist.country, count ( artist.country ) from artist \
             group by artist.country order by count ( artist.country ) desc",
        )
        .unwrap();
        let r = execute(&q, &db).unwrap();
        assert_eq!(r.rows[0][1], Value::Int(3));
    }

    #[test]
    fn bin_by_year_buckets_dates() {
        let db = gallery_db();
        let q = parse_query(
            "visualize line select exhibit.open_date, count ( exhibit.open_date ) from exhibit \
             bin exhibit.open_date by year",
        )
        .unwrap();
        let r = execute(&q, &db).unwrap();
        assert_eq!(r.rows.len(), 2);
        let y2019 = r
            .rows
            .iter()
            .find(|row| row[0].loose_eq(&Value::Text("2019".into())))
            .unwrap();
        assert_eq!(y2019[1], Value::Int(2));
    }

    #[test]
    fn bin_by_weekday_labels() {
        let db = gallery_db();
        let q = parse_query(
            "visualize bar select exhibit.open_date, count ( exhibit.open_date ) from exhibit \
             bin exhibit.open_date by weekday",
        )
        .unwrap();
        let r = execute(&q, &db).unwrap();
        assert!(r
            .rows
            .iter()
            .all(|row| matches!(&row[0], Value::Text(s) if s.chars().all(|c| c.is_alphabetic()))));
    }

    #[test]
    fn not_in_subquery_excludes_members() {
        let db = gallery_db();
        let q = parse_query(
            "visualize bar select artist.name, artist.age from artist where artist.artist_id \
             not in ( select exhibit.artist_id from exhibit )",
        )
        .unwrap();
        let r = execute(&q, &db).unwrap();
        // Artists 2 and 4 have no exhibits.
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn in_subquery_with_filter() {
        let db = gallery_db();
        let q = parse_query(
            "visualize bar select artist.name, artist.age from artist where artist.artist_id \
             in ( select exhibit.artist_id from exhibit where exhibit.theme = 'summer' )",
        )
        .unwrap();
        let r = execute(&q, &db).unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn unknown_table_is_an_error() {
        let db = gallery_db();
        let q = parse_query("visualize bar select t.a, t.b from missing").unwrap();
        assert_eq!(
            execute(&q, &db),
            Err(ExecError::UnknownTable("missing".into()))
        );
    }

    #[test]
    fn unknown_column_is_an_error() {
        let db = gallery_db();
        let q = parse_query("visualize bar select artist.nope, artist.age from artist").unwrap();
        assert!(matches!(execute(&q, &db), Err(ExecError::UnknownColumn(_))));
    }

    #[test]
    fn chart_model_from_result() {
        let db = gallery_db();
        let q = parse_query(
            "visualize pie select artist.country, count ( artist.country ) from artist \
             group by artist.country",
        )
        .unwrap();
        let r = execute(&q, &db).unwrap();
        let chart = to_chart(&q, &r);
        assert_eq!(chart.part_count(), 3);
        assert_eq!(chart.total(), 5.0);
        assert_eq!(chart.value_of("united states"), Some(3.0));
    }

    #[test]
    fn grouped_chart_splits_series() {
        let db = gallery_db();
        let q = parse_query(
            "visualize stacked bar select artist.country, count ( artist.country ), \
             artist.year_join from artist group by artist.country, artist.year_join",
        )
        .unwrap();
        let r = execute(&q, &db).unwrap();
        let chart = to_chart(&q, &r);
        assert!(chart.series.len() >= 2);
        assert!(chart.series.iter().all(|s| s.name.is_some()));
    }

    #[test]
    fn result_table_linearizes() {
        let db = gallery_db();
        let q = parse_query(
            "visualize pie select artist.country, count ( artist.country ) from artist \
             group by artist.country",
        )
        .unwrap();
        let r = execute(&q, &db).unwrap();
        let lin = r.to_linear();
        assert_eq!(lin.cell_count(), 6);
        let text = vql::encode::encode_table(&lin);
        assert!(text.starts_with("col : artist.country | count ( artist.country ) row 1 :"));
    }

    #[test]
    fn projection_without_aggregates() {
        let db = gallery_db();
        let q = parse_query("visualize scatter select artist.age, artist.year_join from artist")
            .unwrap();
        let r = execute(&q, &db).unwrap();
        assert_eq!(r.rows.len(), 5);
        assert_eq!(r.headers, vec!["artist.age", "artist.year_join"]);
    }
}
