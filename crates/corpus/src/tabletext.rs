//! Table ↔ description corpora: Chart2Text-like and WikiTableText-like.
//!
//! * Chart2Text analogue: each NVBench query's executed result table is
//!   described by a summary sentence (largest / smallest part, totals),
//!   mirroring Statista chart tables plus expert captions.
//! * WikiTableText analogue: single-row fact tables drawn from the
//!   databases with templated factual sentences ("sallim was the publisher
//!   of journey in 2010").
//!
//! Both apply the paper's ≤150-cell filter (§IV-B).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use storage::Database;
use vql::encode::LinearTable;

use crate::domains::column_phrase;
use crate::nvbench::NvBenchExample;

/// Maximum cells kept by the §IV-B filter.
pub const MAX_CELLS: usize = 150;

/// One table→text example.
#[derive(Debug, Clone, PartialEq)]
pub struct TableTextExample {
    pub db_name: String,
    /// The linearized table (input).
    pub table: LinearTable,
    /// The reference description (output).
    pub description: String,
}

/// Builds the Chart2Text-like corpus from executed NVBench queries.
pub fn chart2text_from_nvbench(
    databases: &[Database],
    nvbench: &[NvBenchExample],
    seed: u64,
) -> Vec<TableTextExample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for e in nvbench {
        let Some(db) = databases.iter().find(|d| d.name == e.db_name) else {
            continue;
        };
        let Ok(query) = vql::parse_query(&e.query) else {
            continue;
        };
        let Ok(result) = storage::execute(&query, db) else {
            continue;
        };
        let linear = result.to_linear();
        if linear.cell_count() == 0 || linear.cell_count() > MAX_CELLS {
            continue;
        }
        let chart = storage::to_chart(&query, &result);
        let x_phrase = column_phrase(&query.select[0].column_ref().column);
        let description = if let (Some(max_label), Some(max), Some(min)) = (
            chart.argmax_label().map(|s| s.to_string()),
            chart.max_value(),
            chart.min_value(),
        ) {
            match rng.gen_range(0..3u8) {
                0 => format!(
                    "the table lists {} values of {x_phrase} ; the largest is {max_label} at {} and the smallest value is {}",
                    chart.part_count(),
                    trim_num(max),
                    trim_num(min)
                ),
                1 => format!(
                    "across {} {x_phrase} entries the values total {} , peaking at {max_label} with {}",
                    chart.part_count(),
                    trim_num(chart.total()),
                    trim_num(max)
                ),
                _ => format!(
                    "{max_label} leads the {x_phrase} breakdown at {} while the minimum sits at {}",
                    trim_num(max),
                    trim_num(min)
                ),
            }
        } else {
            format!("a table of {x_phrase} values from the {} table", query.from)
        };
        out.push(TableTextExample {
            db_name: e.db_name.clone(),
            table: linear,
            description,
        });
    }
    out
}

/// Builds the WikiTableText-like corpus: one-row fact slices.
pub fn wikitabletext(databases: &[Database], per_db: usize, seed: u64) -> Vec<TableTextExample> {
    let mut out = Vec::new();
    for db in databases {
        let mut rng = StdRng::seed_from_u64(seed ^ super::nvbench_hash(&db.name));
        for _ in 0..per_db {
            let table = &db.tables[rng.gen_range(0..db.tables.len())];
            if table.rows.is_empty() || table.columns.len() < 3 {
                continue;
            }
            let row = &table.rows[rng.gen_range(0..table.rows.len())];
            // Subject: the first text column; facts: two other columns.
            let Some(subject_idx) = table
                .columns
                .iter()
                .position(|c| c.ty == storage::ColumnType::Text)
            else {
                continue;
            };
            let mut fact_cols: Vec<usize> = (0..table.columns.len())
                .filter(|&i| i != subject_idx && i != 0)
                .collect();
            if fact_cols.is_empty() {
                continue;
            }
            let pick = rng.gen_range(0..fact_cols.len());
            let fact_idx = fact_cols.swap_remove(pick);
            let tname = table.name.to_ascii_lowercase();
            let headers: Vec<String> = table
                .columns
                .iter()
                .map(|c| format!("{tname}.{}", c.name.to_ascii_lowercase()))
                .collect();
            let linear =
                LinearTable::new(headers, vec![row.iter().map(|v| v.to_string()).collect()]);
            if linear.cell_count() > MAX_CELLS {
                continue;
            }
            let subject = row[subject_idx].to_string();
            let fact_phrase = column_phrase(&table.columns[fact_idx].name);
            let fact_value = row[fact_idx].to_string();
            let description = match rng.gen_range(0..3u8) {
                0 => format!("the {fact_phrase} of {subject} is {fact_value}"),
                1 => format!("{subject} has a {fact_phrase} of {fact_value}"),
                _ => format!("for {subject} the recorded {fact_phrase} equals {fact_value}"),
            };
            out.push(TableTextExample {
                db_name: db.name.clone(),
                table: linear,
                description,
            });
        }
    }
    out
}

fn trim_num(v: f64) -> String {
    if v.fract() == 0.0 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::{generate_databases, DomainConfig};
    use crate::nvbench;

    fn setup() -> (Vec<Database>, Vec<NvBenchExample>) {
        let dbs = generate_databases(&DomainConfig {
            seed: 5,
            instances_per_domain: 1,
        });
        let nv = nvbench::generate(&dbs, 6, 11);
        (dbs, nv)
    }

    #[test]
    fn chart2text_examples_respect_cell_filter() {
        let (dbs, nv) = setup();
        let examples = chart2text_from_nvbench(&dbs, &nv, 1);
        assert!(!examples.is_empty());
        for e in &examples {
            assert!(e.table.cell_count() <= MAX_CELLS);
            assert!(!e.description.is_empty());
        }
    }

    #[test]
    fn chart2text_descriptions_reference_extremes() {
        let (dbs, nv) = setup();
        let examples = chart2text_from_nvbench(&dbs, &nv, 2);
        // Most summaries should carry a numeric value.
        let with_digits = examples
            .iter()
            .filter(|e| e.description.chars().any(|c| c.is_ascii_digit()))
            .count();
        assert!(with_digits * 2 > examples.len());
    }

    #[test]
    fn wikitabletext_produces_single_row_tables() {
        let (dbs, _) = setup();
        let examples = wikitabletext(&dbs, 5, 3);
        assert!(!examples.is_empty());
        for e in &examples {
            assert_eq!(e.table.rows.len(), 1);
            assert!(e.table.cell_count() <= MAX_CELLS);
        }
    }

    #[test]
    fn wikitabletext_facts_mention_subject_and_value() {
        let (dbs, _) = setup();
        for e in wikitabletext(&dbs, 4, 4) {
            let row = &e.table.rows[0];
            // The description quotes at least one cell of the row.
            assert!(
                row.iter()
                    .any(|cell| e.description.contains(&cell.to_lowercase())
                        || e.description.contains(cell.as_str())),
                "description '{}' quotes no cell of {row:?}",
                e.description
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (dbs, nv) = setup();
        let a = chart2text_from_nvbench(&dbs, &nv, 9);
        let b = chart2text_from_nvbench(&dbs, &nv, 9);
        assert_eq!(a, b);
        let c = wikitabletext(&dbs, 3, 9);
        let d = wikitabletext(&dbs, 3, 9);
        assert_eq!(c, d);
    }

    #[test]
    fn table_linearization_is_encodable() {
        let (dbs, nv) = setup();
        for e in chart2text_from_nvbench(&dbs, &nv, 5).iter().take(5) {
            let text = vql::encode::encode_table(&e.table);
            assert!(text.starts_with("col :"));
            assert!(text.contains("row 1 :"));
        }
    }
}
