//! FeVisQA: free-form question answering over data visualization.
//!
//! Three question types following Song et al. (2024):
//!
//! * **Type 1** — semantic interpretation ("what is the meaning of this DV
//!   query?"), answered from the query's verbalized description;
//! * **Type 2** — suitability ("is this DV query suitable for the given
//!   database?"), with negatives built by corrupting the query against a
//!   foreign schema;
//! * **Type 3** — data/structure questions ("how many parts are there in
//!   the chart?", "what is the value of the smallest part?", …) whose
//!   answers are *computed by executing the query* on the storage engine,
//!   so ground truth is always consistent with the rendered chart.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use storage::Database;
use vql::encode::LinearTable;

use crate::nvbench::{verbalize_description, NvBenchExample};

/// FeVisQA question taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuestionType {
    /// Semantics of a DV query.
    Type1,
    /// DV–dataset compatibility.
    Type2,
    /// Data retrieval / chart structure.
    Type3,
}

/// One QA example.
#[derive(Debug, Clone, PartialEq)]
pub struct FeVisQaExample {
    pub db_name: String,
    pub question_type: QuestionType,
    pub question: String,
    /// The DV query under discussion (standardized text).
    pub query: String,
    /// Executed result table (context for the model).
    pub table: LinearTable,
    pub answer: String,
}

/// Generates QA pairs for every NVBench example.
pub fn generate(
    databases: &[Database],
    nvbench: &[NvBenchExample],
    seed: u64,
) -> Vec<FeVisQaExample> {
    let mut out = Vec::new();
    for (i, e) in nvbench.iter().enumerate() {
        let Some(db) = databases.iter().find(|d| d.name == e.db_name) else {
            continue;
        };
        let Ok(query) = vql::parse_query(&e.query) else {
            continue;
        };
        let Ok(result) = storage::execute(&query, db) else {
            continue;
        };
        let chart = storage::to_chart(&query, &result);
        let table = result.to_linear();
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64));

        // Type 1: meaning.
        if rng.gen_bool(0.5) {
            let answer = verbalize_description(&query, &mut rng);
            out.push(FeVisQaExample {
                db_name: e.db_name.clone(),
                question_type: QuestionType::Type1,
                question: "what is the meaning of this dv query ?".to_string(),
                query: e.query.clone(),
                table: table.clone(),
                answer,
            });
        }

        // Type 2: suitability — positive for the native schema, negative
        // for a corrupted query referencing a foreign table.
        {
            let suitable = rng.gen_bool(0.5);
            let (query_text, answer) = if suitable {
                (
                    e.query.clone(),
                    "yes , the dv query fits the database".to_string(),
                )
            } else {
                let foreign = databases
                    .iter()
                    .find(|d| d.name != e.db_name)
                    .map(|d| d.tables[0].name.clone())
                    .unwrap_or_else(|| "unknown_table".to_string());
                let corrupted = e
                    .query
                    .replace(&format!("from {}", query.from), &format!("from {foreign}"));
                (
                    corrupted,
                    "no , the dv query references tables missing from the database".to_string(),
                )
            };
            out.push(FeVisQaExample {
                db_name: e.db_name.clone(),
                question_type: QuestionType::Type2,
                question: "is this dv query suitable for the given database ?".to_string(),
                query: query_text,
                table: table.clone(),
                answer,
            });
        }

        // Type 3: rule-generated numeric/structural questions (several per
        // chart, mirroring the paper's dominant type share).
        let y_label = table
            .headers
            .get(1)
            .cloned()
            .unwrap_or_else(|| "the y axis".to_string());
        let mut type3: Vec<(String, String)> = vec![(
            "how many parts are there in the chart ?".to_string(),
            chart.part_count().to_string(),
        )];
        if let Some(min) = chart.min_value() {
            type3.push((
                "what is the value of the smallest part in the chart ?".to_string(),
                trim_num(min),
            ));
        }
        if let Some(max) = chart.max_value() {
            type3.push((
                "what is the value of the largest part in the chart ?".to_string(),
                trim_num(max),
            ));
        }
        if chart.part_count() > 0 {
            type3.push((
                format!("what is the total number of {y_label} ?"),
                trim_num(chart.total()),
            ));
            type3.push((
                "is any equal value of y-axis in the chart ?".to_string(),
                if chart.has_equal_values() {
                    "yes"
                } else {
                    "no"
                }
                .to_string(),
            ));
        }
        if let Some(label) = chart.argmax_label() {
            type3.push((
                "which part is the largest in the chart ?".to_string(),
                label.to_string(),
            ));
        }
        // Keep a random subset (2–4) to vary the mix.
        let keep = rng.gen_range(2..=type3.len().min(4));
        for (question, answer) in type3.into_iter().take(keep) {
            out.push(FeVisQaExample {
                db_name: e.db_name.clone(),
                question_type: QuestionType::Type3,
                question,
                query: e.query.clone(),
                table: table.clone(),
                answer,
            });
        }
    }
    out
}

fn trim_num(v: f64) -> String {
    if v.fract() == 0.0 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::{generate_databases, DomainConfig};
    use crate::nvbench;

    fn setup() -> (Vec<Database>, Vec<FeVisQaExample>) {
        let dbs = generate_databases(&DomainConfig {
            seed: 5,
            instances_per_domain: 1,
        });
        let nv = nvbench::generate(&dbs, 5, 21);
        let qa = generate(&dbs, &nv, 33);
        (dbs, qa)
    }

    #[test]
    fn covers_all_three_types() {
        let (_, qa) = setup();
        for ty in [
            QuestionType::Type1,
            QuestionType::Type2,
            QuestionType::Type3,
        ] {
            assert!(qa.iter().any(|e| e.question_type == ty), "missing {ty:?}");
        }
        // Type 3 dominates, as in Table III.
        let t3 = qa
            .iter()
            .filter(|e| e.question_type == QuestionType::Type3)
            .count();
        assert!(t3 * 2 > qa.len());
    }

    #[test]
    fn type3_answers_match_reexecution() {
        let (dbs, qa) = setup();
        for e in qa.iter().filter(|e| {
            e.question_type == QuestionType::Type3 && e.question.starts_with("how many parts")
        }) {
            let db = dbs.iter().find(|d| d.name == e.db_name).unwrap();
            let q = vql::parse_query(&e.query).unwrap();
            let r = storage::execute(&q, db).unwrap();
            let chart = storage::to_chart(&q, &r);
            assert_eq!(e.answer, chart.part_count().to_string());
        }
    }

    #[test]
    fn type2_negatives_reference_foreign_tables() {
        let (dbs, qa) = setup();
        for e in qa
            .iter()
            .filter(|e| e.question_type == QuestionType::Type2 && e.answer.starts_with("no"))
        {
            let db = dbs.iter().find(|d| d.name == e.db_name).unwrap();
            let q = vql::parse_query(&e.query).unwrap();
            // The corrupted query must indeed fail on the native database.
            assert!(
                storage::execute(&q, db).is_err(),
                "negative example still executes: {}",
                e.query
            );
        }
    }

    #[test]
    fn type2_positives_execute() {
        let (dbs, qa) = setup();
        for e in qa
            .iter()
            .filter(|e| e.question_type == QuestionType::Type2 && e.answer.starts_with("yes"))
        {
            let db = dbs.iter().find(|d| d.name == e.db_name).unwrap();
            let q = vql::parse_query(&e.query).unwrap();
            assert!(storage::execute(&q, db).is_ok());
        }
    }

    #[test]
    fn totals_are_consistent_with_parts() {
        let (_, qa) = setup();
        for e in &qa {
            assert!(!e.answer.is_empty());
            assert!(!e.question.is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, a) = setup();
        let (_, b) = setup();
        assert_eq!(a, b);
    }
}
