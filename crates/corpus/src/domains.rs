//! Seeded generation of relational databases across subject domains.
//!
//! Fifteen domain templates (arts, sports, education, …) each instantiate
//! one or more database instances with independently sampled rows. The
//! domains stand in for the Spider databases behind NVBench/FeVisQA: small
//! dimension tables joined by foreign keys to larger fact tables, with a
//! mix of categorical, numeric, year, and date columns so that every chart
//! type and aggregate has natural targets.
//!
//! Categorical values are single tokens (underscored), which keeps the NL,
//! VQL, and schema modalities over one whitespace-token vocabulary.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use storage::{Column, ColumnType, Database, Date, Table, Value};

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct DomainConfig {
    pub seed: u64,
    pub instances_per_domain: usize,
}

/// How a column's values are produced.
#[derive(Debug, Clone, Copy)]
enum Gen {
    /// 1, 2, 3, … (primary key).
    Serial,
    /// Pick from a word list (unique-ish names).
    Name(&'static [&'static str]),
    /// Pick from a small category list (repeats expected).
    Category(&'static [&'static str]),
    Int(i64, i64),
    Float(f64, f64),
    Year(i32, i32),
    Date(i32, i32),
    /// Foreign key into the serial ids of an earlier table in the spec.
    Fk(usize),
}

#[derive(Debug, Clone, Copy)]
struct ColSpec {
    name: &'static str,
    ty: ColumnType,
    gen: Gen,
}

#[derive(Debug, Clone)]
struct TableSpec {
    name: &'static str,
    min_rows: usize,
    max_rows: usize,
    cols: Vec<ColSpec>,
}

#[derive(Debug, Clone)]
struct DomainSpec {
    domain: &'static str,
    db_base: &'static str,
    tables: Vec<TableSpec>,
}

const NAMES: &[&str] = &[
    "vijay", "ford", "oliver", "noah", "emma", "mia", "lucas", "sofia", "ravi", "chen", "anna",
    "marco", "lena", "omar", "jade", "felix", "nina", "theo", "iris", "hugo", "maya", "liam",
    "zara", "axel",
];
const COUNTRIES: &[&str] = &[
    "united_states",
    "england",
    "france",
    "japan",
    "brazil",
    "india",
    "canada",
    "germany",
];
const CITIES: &[&str] = &[
    "springfield",
    "riverton",
    "lakeview",
    "hillcrest",
    "maplewood",
    "stonebridge",
];
const COLORS: &[&str] = &["red", "blue", "green", "amber", "violet"];

fn col(name: &'static str, ty: ColumnType, gen: Gen) -> ColSpec {
    ColSpec { name, ty, gen }
}

fn table(name: &'static str, rows: (usize, usize), cols: Vec<ColSpec>) -> TableSpec {
    TableSpec {
        name,
        min_rows: rows.0,
        max_rows: rows.1,
        cols,
    }
}

fn domain_specs() -> Vec<DomainSpec> {
    use ColumnType::{Date as D, Float as F, Int as I, Text as T};
    vec![
        DomainSpec {
            domain: "arts",
            db_base: "theme_gallery",
            tables: vec![
                table(
                    "artist",
                    (5, 8),
                    vec![
                        col("artist_id", I, Gen::Serial),
                        col("name", T, Gen::Name(NAMES)),
                        col("country", T, Gen::Category(COUNTRIES)),
                        col("age", I, Gen::Int(22, 60)),
                        col("year_join", I, Gen::Year(2005, 2015)),
                    ],
                ),
                table(
                    "exhibit",
                    (10, 18),
                    vec![
                        col("exhibit_id", I, Gen::Serial),
                        col("artist_id", I, Gen::Fk(0)),
                        col(
                            "theme",
                            T,
                            Gen::Category(&["summer", "winter", "spring", "autumn"]),
                        ),
                        col("open_date", D, Gen::Date(2018, 2021)),
                        col("ticket_price", F, Gen::Float(5.0, 40.0)),
                    ],
                ),
            ],
        },
        DomainSpec {
            domain: "sports",
            db_base: "soccer",
            tables: vec![
                table(
                    "team",
                    (4, 6),
                    vec![
                        col("team_id", I, Gen::Serial),
                        col(
                            "name",
                            T,
                            Gen::Category(&[
                                "columbus_crew",
                                "river_united",
                                "lake_rovers",
                                "hill_rangers",
                                "stone_city",
                                "maple_fc",
                            ]),
                        ),
                        col("city", T, Gen::Category(CITIES)),
                        col("founded", I, Gen::Year(1950, 2000)),
                    ],
                ),
                table(
                    "player",
                    (12, 20),
                    vec![
                        col("player_id", I, Gen::Serial),
                        col("name", T, Gen::Name(NAMES)),
                        col("team_id", I, Gen::Fk(0)),
                        col("years_played", I, Gen::Int(1, 15)),
                        col("goals", I, Gen::Int(0, 40)),
                    ],
                ),
            ],
        },
        DomainSpec {
            domain: "education",
            db_base: "college",
            tables: vec![
                table(
                    "department",
                    (4, 6),
                    vec![
                        col("dept_id", I, Gen::Serial),
                        col(
                            "name",
                            T,
                            Gen::Category(&[
                                "physics",
                                "history",
                                "biology",
                                "mathematics",
                                "literature",
                                "chemistry",
                            ]),
                        ),
                        col("budget", F, Gen::Float(100.0, 900.0)),
                    ],
                ),
                table(
                    "student",
                    (12, 20),
                    vec![
                        col("stuid", I, Gen::Serial),
                        col("lname", T, Gen::Name(NAMES)),
                        col("dept_id", I, Gen::Fk(0)),
                        col("age", I, Gen::Int(18, 30)),
                        col("gpa", F, Gen::Float(2.0, 4.0)),
                    ],
                ),
            ],
        },
        DomainSpec {
            domain: "hospitality",
            db_base: "inn",
            tables: vec![
                table(
                    "rooms",
                    (6, 9),
                    vec![
                        col("roomid", I, Gen::Serial),
                        col(
                            "roomname",
                            T,
                            Gen::Category(&[
                                "recluse", "interim", "frontier", "harbor", "meadow", "cedar",
                                "willow",
                            ]),
                        ),
                        col("bedtype", T, Gen::Category(&["king", "queen", "double"])),
                        col("baseprice", F, Gen::Float(60.0, 250.0)),
                        col(
                            "decor",
                            T,
                            Gen::Category(&["modern", "rustic", "traditional"]),
                        ),
                    ],
                ),
                table(
                    "reservations",
                    (12, 20),
                    vec![
                        col("code", I, Gen::Serial),
                        col("room", I, Gen::Fk(0)),
                        col("checkin", D, Gen::Date(2019, 2021)),
                        col("adults", I, Gen::Int(1, 4)),
                        col("rate", F, Gen::Float(60.0, 300.0)),
                    ],
                ),
            ],
        },
        DomainSpec {
            domain: "aviation",
            db_base: "airline",
            tables: vec![
                table(
                    "airport",
                    (4, 6),
                    vec![
                        col("airport_id", I, Gen::Serial),
                        col("city", T, Gen::Category(CITIES)),
                        col("country", T, Gen::Category(COUNTRIES)),
                        col("elevation", I, Gen::Int(0, 2400)),
                    ],
                ),
                table(
                    "flight",
                    (12, 20),
                    vec![
                        col("flight_id", I, Gen::Serial),
                        col("origin", I, Gen::Fk(0)),
                        col("distance", I, Gen::Int(200, 9000)),
                        col("depart_date", D, Gen::Date(2019, 2021)),
                        col("price", F, Gen::Float(80.0, 900.0)),
                    ],
                ),
            ],
        },
        DomainSpec {
            domain: "retail",
            db_base: "store",
            tables: vec![
                table(
                    "product",
                    (6, 9),
                    vec![
                        col("product_id", I, Gen::Serial),
                        col(
                            "name",
                            T,
                            Gen::Category(&[
                                "lamp", "chair", "desk", "sofa", "shelf", "stool", "bench",
                            ]),
                        ),
                        col(
                            "category",
                            T,
                            Gen::Category(&["lighting", "seating", "storage"]),
                        ),
                        col("price", F, Gen::Float(10.0, 400.0)),
                    ],
                ),
                table(
                    "orders",
                    (12, 22),
                    vec![
                        col("order_id", I, Gen::Serial),
                        col("product_id", I, Gen::Fk(0)),
                        col("quantity", I, Gen::Int(1, 12)),
                        col("order_date", D, Gen::Date(2020, 2022)),
                        col("total", F, Gen::Float(10.0, 900.0)),
                    ],
                ),
            ],
        },
        DomainSpec {
            domain: "entertainment",
            db_base: "film_rank",
            tables: vec![
                table(
                    "film",
                    (5, 8),
                    vec![
                        col("film_id", I, Gen::Serial),
                        col(
                            "title",
                            T,
                            Gen::Category(&[
                                "journey", "horizon", "eclipse", "mirage", "cascade", "ember",
                            ]),
                        ),
                        col(
                            "studio",
                            T,
                            Gen::Category(&["sallim", "northstar", "bluepine"]),
                        ),
                        col("gross_in_dollar", I, Gen::Int(100, 9000)),
                        col(
                            "type",
                            T,
                            Gen::Category(&[
                                "mass_suicide",
                                "mass_human_sacrifice",
                                "mass_suicide_murder",
                            ]),
                        ),
                    ],
                ),
                table(
                    "film_market_estimation",
                    (10, 16),
                    vec![
                        col("estimation_id", I, Gen::Serial),
                        col("film_id", I, Gen::Fk(0)),
                        col("low_estimate", I, Gen::Int(10, 400)),
                        col("high_estimate", I, Gen::Int(400, 2000)),
                        col("year", I, Gen::Year(1990, 2015)),
                    ],
                ),
            ],
        },
        DomainSpec {
            domain: "academia",
            db_base: "conference",
            tables: vec![
                table(
                    "author",
                    (5, 8),
                    vec![
                        col("author_id", I, Gen::Serial),
                        col("name", T, Gen::Name(NAMES)),
                        col(
                            "institution",
                            T,
                            Gen::Category(&["polyu", "hkust", "mit", "oxford", "eth"]),
                        ),
                        col("h_index", I, Gen::Int(3, 60)),
                    ],
                ),
                table(
                    "paper",
                    (12, 18),
                    vec![
                        col("paper_id", I, Gen::Serial),
                        col("author_id", I, Gen::Fk(0)),
                        col(
                            "area",
                            T,
                            Gen::Category(&["database", "vision", "nlp", "systems"]),
                        ),
                        col("citations", I, Gen::Int(0, 500)),
                        col("year", I, Gen::Year(2010, 2023)),
                    ],
                ),
            ],
        },
        DomainSpec {
            domain: "transport",
            db_base: "railway",
            tables: vec![
                table(
                    "station",
                    (4, 7),
                    vec![
                        col("station_id", I, Gen::Serial),
                        col("name", T, Gen::Category(CITIES)),
                        col("platforms", I, Gen::Int(2, 12)),
                    ],
                ),
                table(
                    "train",
                    (10, 18),
                    vec![
                        col("train_id", I, Gen::Serial),
                        col("origin_id", I, Gen::Fk(0)),
                        col("line_color", T, Gen::Category(COLORS)),
                        col("capacity", I, Gen::Int(120, 800)),
                        col("service_date", D, Gen::Date(2018, 2022)),
                    ],
                ),
            ],
        },
        DomainSpec {
            domain: "hr",
            db_base: "company",
            tables: vec![
                table(
                    "office",
                    (4, 6),
                    vec![
                        col("office_id", I, Gen::Serial),
                        col("location", T, Gen::Category(CITIES)),
                        col("floor_count", I, Gen::Int(1, 30)),
                    ],
                ),
                table(
                    "employee",
                    (12, 22),
                    vec![
                        col("employee_id", I, Gen::Serial),
                        col("first_name", T, Gen::Name(NAMES)),
                        col("office_id", I, Gen::Fk(0)),
                        col("salary", F, Gen::Float(30.0, 150.0)),
                        col("hire_year", I, Gen::Year(2008, 2022)),
                    ],
                ),
            ],
        },
        DomainSpec {
            domain: "health",
            db_base: "hospital",
            tables: vec![
                table(
                    "doctor",
                    (4, 7),
                    vec![
                        col("doctor_id", I, Gen::Serial),
                        col("name", T, Gen::Name(NAMES)),
                        col(
                            "specialty",
                            T,
                            Gen::Category(&["cardiology", "oncology", "pediatrics", "neurology"]),
                        ),
                        col("experience", I, Gen::Int(1, 35)),
                    ],
                ),
                table(
                    "patient",
                    (12, 20),
                    vec![
                        col("patient_id", I, Gen::Serial),
                        col("doctor_id", I, Gen::Fk(0)),
                        col("age", I, Gen::Int(1, 95)),
                        col("admit_date", D, Gen::Date(2019, 2022)),
                        col("bill", F, Gen::Float(50.0, 2000.0)),
                    ],
                ),
            ],
        },
        DomainSpec {
            domain: "finance",
            db_base: "bank",
            tables: vec![
                table(
                    "branch",
                    (4, 6),
                    vec![
                        col("branch_id", I, Gen::Serial),
                        col("city", T, Gen::Category(CITIES)),
                        col("opened", I, Gen::Year(1980, 2015)),
                    ],
                ),
                table(
                    "account",
                    (12, 22),
                    vec![
                        col("account_id", I, Gen::Serial),
                        col("branch_id", I, Gen::Fk(0)),
                        col(
                            "kind",
                            T,
                            Gen::Category(&["savings", "checking", "business"]),
                        ),
                        col("balance", F, Gen::Float(100.0, 9000.0)),
                    ],
                ),
            ],
        },
        DomainSpec {
            domain: "music",
            db_base: "concert_hall",
            tables: vec![
                table(
                    "singer",
                    (5, 8),
                    vec![
                        col("singer_id", I, Gen::Serial),
                        col("name", T, Gen::Name(NAMES)),
                        col(
                            "genre",
                            T,
                            Gen::Category(&["jazz", "opera", "folk", "rock"]),
                        ),
                        col("albums", I, Gen::Int(1, 20)),
                    ],
                ),
                table(
                    "concert",
                    (10, 16),
                    vec![
                        col("concert_id", I, Gen::Serial),
                        col("singer_id", I, Gen::Fk(0)),
                        col("attendance", I, Gen::Int(100, 5000)),
                        col("held_date", D, Gen::Date(2017, 2022)),
                    ],
                ),
            ],
        },
        DomainSpec {
            domain: "food",
            db_base: "restaurant",
            tables: vec![
                table(
                    "chef",
                    (4, 6),
                    vec![
                        col("chef_id", I, Gen::Serial),
                        col("name", T, Gen::Name(NAMES)),
                        col(
                            "cuisine",
                            T,
                            Gen::Category(&["italian", "sichuan", "mexican", "thai"]),
                        ),
                        col("stars", I, Gen::Int(1, 3)),
                    ],
                ),
                table(
                    "dish",
                    (10, 18),
                    vec![
                        col("dish_id", I, Gen::Serial),
                        col("chef_id", I, Gen::Fk(0)),
                        col("course", T, Gen::Category(&["starter", "main", "dessert"])),
                        col("price", F, Gen::Float(4.0, 60.0)),
                        col("calories", I, Gen::Int(80, 1200)),
                    ],
                ),
            ],
        },
        DomainSpec {
            domain: "tech",
            db_base: "software",
            tables: vec![
                table(
                    "developer",
                    (5, 8),
                    vec![
                        col("developer_id", I, Gen::Serial),
                        col("name", T, Gen::Name(NAMES)),
                        col("country", T, Gen::Category(COUNTRIES)),
                        col("experience", I, Gen::Int(1, 25)),
                    ],
                ),
                table(
                    "app",
                    (10, 18),
                    vec![
                        col("app_id", I, Gen::Serial),
                        col("developer_id", I, Gen::Fk(0)),
                        col("platform", T, Gen::Category(&["web", "mobile", "desktop"])),
                        col("downloads", I, Gen::Int(100, 90000)),
                        col("release_date", D, Gen::Date(2016, 2023)),
                    ],
                ),
            ],
        },
    ]
}

/// Number of distinct domains (used by statistics tables).
pub fn domain_count() -> usize {
    domain_specs().len()
}

/// Generates every database instance under the configuration.
pub fn generate_databases(cfg: &DomainConfig) -> Vec<Database> {
    let specs = domain_specs();
    let mut out = Vec::with_capacity(specs.len() * cfg.instances_per_domain);
    for (d, spec) in specs.iter().enumerate() {
        for i in 0..cfg.instances_per_domain {
            let seed = cfg
                .seed
                .wrapping_mul(0x9e37_79b9)
                .wrapping_add((d * 131 + i) as u64);
            out.push(instantiate(spec, i + 1, seed));
        }
    }
    out
}

fn instantiate(spec: &DomainSpec, instance: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let name = format!("{}_{instance}", spec.db_base);
    let mut db = Database::new(name, spec.domain);
    let mut serial_counts: Vec<usize> = Vec::with_capacity(spec.tables.len());
    for tspec in &spec.tables {
        let n_rows = rng.gen_range(tspec.min_rows..=tspec.max_rows);
        let columns = tspec
            .cols
            .iter()
            .map(|c| Column::new(c.name, c.ty))
            .collect();
        let mut t = Table::new(tspec.name, columns);
        for r in 0..n_rows {
            let row = tspec
                .cols
                .iter()
                .map(|c| generate_value(c, r, &serial_counts, &mut rng))
                .collect();
            t.push_row(row);
        }
        serial_counts.push(n_rows);
        db.add_table(t);
    }
    db
}

fn generate_value(c: &ColSpec, row: usize, serials: &[usize], rng: &mut StdRng) -> Value {
    match c.gen {
        Gen::Serial => Value::Int(row as i64 + 1),
        Gen::Name(pool) | Gen::Category(pool) => {
            Value::Text(pool[rng.gen_range(0..pool.len())].to_string())
        }
        Gen::Int(lo, hi) => Value::Int(rng.gen_range(lo..=hi)),
        Gen::Float(lo, hi) => {
            // Two-decimal precision keeps table linearizations short.
            let v = rng.gen_range(lo..hi);
            Value::Float((v * 100.0).round() / 100.0)
        }
        Gen::Year(lo, hi) => Value::Int(rng.gen_range(lo..=hi) as i64),
        Gen::Date(ylo, yhi) => {
            let y = rng.gen_range(ylo..=yhi);
            let m = rng.gen_range(1..=12u8);
            let d = rng.gen_range(1..=28u8);
            Value::Date(Date::new(y, m, d))
        }
        Gen::Fk(t) => {
            let n = serials.get(t).copied().unwrap_or(1).max(1);
            Value::Int(rng.gen_range(1..=n as i64))
        }
    }
}

/// Human phrase for a column (NL templates): underscores become spaces.
pub fn column_phrase(column: &str) -> String {
    column.replace('_', " ")
}

/// The canonical join path of a database: fact-table FK → dim-table PK.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinInfo {
    pub dim_table: String,
    pub pk: String,
    pub fact_table: String,
    pub fk: String,
}

/// Join metadata for a generated database (by naming convention,
/// `<base>_<instance>`). Returns `None` for unknown names.
pub fn join_info(db_name: &str) -> Option<JoinInfo> {
    let base = db_name.rsplit_once('_').map(|(b, _)| b).unwrap_or(db_name);
    let specs = domain_specs();
    let spec = specs.iter().find(|s| s.db_base == base)?;
    let dim = &spec.tables[0];
    let fact = &spec.tables[1];
    let fk = fact
        .cols
        .iter()
        .find(|c| matches!(c.gen, Gen::Fk(_)))?
        .name
        .to_string();
    Some(JoinInfo {
        dim_table: dim.name.to_string(),
        pk: dim.cols[0].name.to_string(),
        fact_table: fact.name.to_string(),
        fk,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DomainConfig {
        DomainConfig {
            seed: 42,
            instances_per_domain: 2,
        }
    }

    #[test]
    fn generates_instances_for_every_domain() {
        let dbs = generate_databases(&cfg());
        assert_eq!(dbs.len(), domain_count() * 2);
        // Names unique.
        let mut names: Vec<&str> = dbs.iter().map(|d| d.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), dbs.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_databases(&cfg());
        let b = generate_databases(&cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn instances_differ_in_content() {
        let dbs = generate_databases(&cfg());
        let a = &dbs[0];
        let b = &dbs[1];
        assert_eq!(a.domain, b.domain);
        assert_ne!(a.tables[0].rows, b.tables[0].rows);
    }

    #[test]
    fn foreign_keys_reference_existing_rows() {
        let dbs = generate_databases(&cfg());
        for db in &dbs {
            // Convention: second table's Fk column points at first table's
            // serial ids.
            let dim_rows = db.tables[0].rows.len() as i64;
            let fact = &db.tables[1];
            for (ci, col) in fact.columns.iter().enumerate() {
                if col.name.ends_with("_id") || col.name == "room" {
                    for row in &fact.rows {
                        if let Value::Int(v) = row[ci] {
                            if ci != 0 {
                                assert!(v >= 1 && v <= dim_rows.max(v), "fk out of range");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn every_database_has_joinable_pair() {
        let dbs = generate_databases(&cfg());
        for db in &dbs {
            assert!(db.tables.len() >= 2, "{} lacks a join partner", db.name);
        }
    }

    #[test]
    fn schema_views_are_well_formed() {
        let dbs = generate_databases(&cfg());
        for db in &dbs {
            let schema = db.schema();
            assert!(!schema.tables.is_empty());
            for t in &schema.tables {
                assert!(t.columns.len() >= 3, "{} too narrow", t.name);
            }
        }
    }

    #[test]
    fn phrases_strip_underscores() {
        assert_eq!(column_phrase("year_join"), "year join");
        assert_eq!(column_phrase("price"), "price");
    }
}
