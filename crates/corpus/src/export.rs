//! JSONL export of the generated corpora.
//!
//! Reproducibility artifact: the synthetic NVBench / Chart2Text /
//! WikiTableText / FeVisQA datasets serialize to JSON-lines files in the
//! layout the original releases use (one example per line with split
//! annotations), so external tooling can consume them without linking this
//! crate.

use std::io::Write;
use std::path::Path;

use serde::Serialize;

use crate::{Corpus, QuestionType};

#[derive(Serialize)]
struct NvRecord<'a> {
    db_id: &'a str,
    split: &'a str,
    question: &'a str,
    vql: &'a str,
    description: &'a str,
    /// "join" / "non-join" (the Table IV split).
    join_class: &'a str,
    /// NVBench-style difficulty from the query's clause count.
    hardness: &'static str,
}

#[derive(Serialize)]
struct QaRecord<'a> {
    db_id: &'a str,
    split: &'a str,
    question_type: u8,
    question: &'a str,
    vql: &'a str,
    table: String,
    answer: &'a str,
}

#[derive(Serialize)]
struct TableRecord<'a> {
    db_id: &'a str,
    split: &'a str,
    source: &'a str,
    table: String,
    description: &'a str,
}

/// Serializes one dataset record per line.
fn write_jsonl<T: Serialize>(path: &Path, records: &[T]) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    for r in records {
        serde_json::to_writer(&mut f, r)?;
        f.write_all(b"\n")?;
    }
    Ok(())
}

/// Exports every dataset of a corpus into `dir` as
/// `nvbench.jsonl`, `fevisqa.jsonl`, and `tabletext.jsonl`.
pub fn export_jsonl(corpus: &Corpus, dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let split_label = |db: &str| corpus.split_of(db).label();

    let nv: Vec<NvRecord> = corpus
        .nvbench
        .iter()
        .map(|e| NvRecord {
            db_id: &e.db_name,
            split: split_label(&e.db_name),
            question: &e.question,
            vql: &e.query,
            description: &e.description,
            join_class: if e.has_join { "join" } else { "non-join" },
            hardness: vql::parse_query(&e.query)
                .map(|q| q.hardness().label())
                .unwrap_or("unknown"),
        })
        .collect();
    write_jsonl(&dir.join("nvbench.jsonl"), &nv)?;

    let qa: Vec<QaRecord> = corpus
        .fevisqa
        .iter()
        .map(|e| QaRecord {
            db_id: &e.db_name,
            split: split_label(&e.db_name),
            question_type: match e.question_type {
                QuestionType::Type1 => 1,
                QuestionType::Type2 => 2,
                QuestionType::Type3 => 3,
            },
            question: &e.question,
            vql: &e.query,
            table: vql::encode::encode_table(&e.table),
            answer: &e.answer,
        })
        .collect();
    write_jsonl(&dir.join("fevisqa.jsonl"), &qa)?;

    let tt: Vec<TableRecord> = corpus
        .chart2text
        .iter()
        .map(|e| (e, "chart2text"))
        .chain(corpus.wikitabletext.iter().map(|e| (e, "wikitabletext")))
        .map(|(e, source)| TableRecord {
            db_id: &e.db_name,
            split: split_label(&e.db_name),
            source,
            table: vql::encode::encode_table(&e.table),
            description: &e.description,
        })
        .collect();
    write_jsonl(&dir.join("tabletext.jsonl"), &tt)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CorpusConfig;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("datavist5_export_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn corpus() -> Corpus {
        Corpus::generate(&CorpusConfig {
            seed: 5,
            dbs_per_domain: 1,
            queries_per_db: 4,
            facts_per_db: 2,
        })
    }

    #[test]
    fn exports_three_files_with_valid_json() {
        let dir = tmp_dir("basic");
        let c = corpus();
        export_jsonl(&c, &dir).unwrap();
        for name in ["nvbench.jsonl", "fevisqa.jsonl", "tabletext.jsonl"] {
            let text = std::fs::read_to_string(dir.join(name)).unwrap();
            assert!(!text.is_empty(), "{name} empty");
            for line in text.lines() {
                let v: serde_json::Value = serde_json::from_str(line).unwrap();
                assert!(v["db_id"].is_string());
                assert!(v["split"].is_string());
            }
        }
    }

    #[test]
    fn record_counts_match_corpus() {
        let dir = tmp_dir("counts");
        let c = corpus();
        export_jsonl(&c, &dir).unwrap();
        let count = |name: &str| {
            std::fs::read_to_string(dir.join(name))
                .unwrap()
                .lines()
                .count()
        };
        assert_eq!(count("nvbench.jsonl"), c.nvbench.len());
        assert_eq!(count("fevisqa.jsonl"), c.fevisqa.len());
        assert_eq!(
            count("tabletext.jsonl"),
            c.chart2text.len() + c.wikitabletext.len()
        );
    }

    #[test]
    fn join_class_tracks_joins() {
        let dir = tmp_dir("hardness");
        let c = corpus();
        export_jsonl(&c, &dir).unwrap();
        let text = std::fs::read_to_string(dir.join("nvbench.jsonl")).unwrap();
        let joins = text
            .lines()
            .filter(|l| l.contains("\"join_class\":\"join\""))
            .count();
        let expected = c.nvbench.iter().filter(|e| e.has_join).count();
        assert_eq!(joins, expected);
    }

    #[test]
    fn hardness_levels_cover_multiple_classes() {
        let dir = tmp_dir("levels");
        let c = corpus();
        export_jsonl(&c, &dir).unwrap();
        let text = std::fs::read_to_string(dir.join("nvbench.jsonl")).unwrap();
        let classes: Vec<&str> = ["easy", "medium", "hard", "extra-hard"]
            .into_iter()
            .filter(|h| text.contains(&format!("\"hardness\":\"{h}\"")))
            .collect();
        assert!(classes.len() >= 2, "only {classes:?} present");
        assert!(!text.contains("\"hardness\":\"unknown\""));
    }
}
