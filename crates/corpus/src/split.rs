//! Cross-domain partitioning of databases.
//!
//! Following §IV-C, *databases* — not individual samples — are divided
//! 70/10/20 into train/valid/test, so that every test-time schema is
//! unseen during training. The shuffle is seeded and deterministic.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;

use storage::Database;

/// Which partition an example belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Split {
    Train,
    Valid,
    Test,
}

impl Split {
    pub const ALL: [Split; 3] = [Split::Train, Split::Valid, Split::Test];

    pub fn label(&self) -> &'static str {
        match self {
            Split::Train => "train",
            Split::Valid => "valid",
            Split::Test => "test",
        }
    }
}

/// Database-name → split assignment.
#[derive(Debug, Clone, Default)]
pub struct DbSplit {
    // Ordered map: `databases_in` iterates it into reported lists, so the
    // container must not impose hash order (determinism audit).
    assignment: BTreeMap<String, Split>,
}

impl DbSplit {
    /// The split of a database (unknown names land in train, the safe
    /// default for ad-hoc databases).
    pub fn of(&self, db_name: &str) -> Split {
        self.assignment
            .get(db_name)
            .copied()
            .unwrap_or(Split::Train)
    }

    /// Database names in a split.
    pub fn databases_in(&self, split: Split) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .assignment
            .iter()
            .filter(|(_, s)| **s == split)
            .map(|(n, _)| n.as_str())
            .collect();
        v.sort();
        v
    }

    /// Number of databases per split.
    pub fn counts(&self) -> (usize, usize, usize) {
        let c = |s: Split| self.assignment.values().filter(|v| **v == s).count();
        (c(Split::Train), c(Split::Valid), c(Split::Test))
    }
}

/// Splits databases 70/10/20 with at least one database per split.
///
/// The split is at *database-instance* level: every test database is
/// unseen, while its subject domain may be shared with a sibling training
/// instance. This mirrors NVBench's practical redundancy (templatic
/// questions over related schemas) and is the honest setting for a
/// word-level tokenizer, which — unlike the original subword models —
/// cannot compose identifiers it never saw trained (see DESIGN.md).
pub fn split_databases(databases: &[Database], seed: u64) -> DbSplit {
    let mut names: Vec<String> = databases.iter().map(|d| d.name.clone()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    names.shuffle(&mut rng);
    let n = names.len();
    let n_test = ((n as f64 * 0.2).round() as usize)
        .max(1)
        .min(n.saturating_sub(2).max(1));
    let n_valid = ((n as f64 * 0.1).round() as usize).max(1);
    let mut assignment = BTreeMap::new();
    for (i, name) in names.into_iter().enumerate() {
        let split = if i < n_test {
            Split::Test
        } else if i < n_test + n_valid {
            Split::Valid
        } else {
            Split::Train
        };
        assignment.insert(name, split);
    }
    DbSplit { assignment }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::{generate_databases, DomainConfig};

    fn dbs() -> Vec<Database> {
        generate_databases(&DomainConfig {
            seed: 3,
            instances_per_domain: 2,
        })
    }

    #[test]
    fn proportions_are_roughly_70_10_20() {
        let databases = dbs();
        let split = split_databases(&databases, 9);
        let (train, valid, test) = split.counts();
        assert_eq!(train + valid + test, databases.len());
        assert!(train > test && test > 0 && valid > 0);
        let test_frac = test as f64 / databases.len() as f64;
        assert!(
            (0.1..=0.3).contains(&test_frac),
            "test fraction {test_frac}"
        );
    }

    #[test]
    fn split_is_deterministic() {
        let databases = dbs();
        let a = split_databases(&databases, 9);
        let b = split_databases(&databases, 9);
        for db in &databases {
            assert_eq!(a.of(&db.name), b.of(&db.name));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let databases = dbs();
        let a = split_databases(&databases, 1);
        let b = split_databases(&databases, 2);
        let moved = databases
            .iter()
            .filter(|d| a.of(&d.name) != b.of(&d.name))
            .count();
        assert!(moved > 0);
    }

    #[test]
    fn every_database_assigned_exactly_once() {
        let databases = dbs();
        let split = split_databases(&databases, 5);
        let mut total = 0;
        for s in Split::ALL {
            total += split.databases_in(s).len();
        }
        assert_eq!(total, databases.len());
    }

    #[test]
    fn unknown_database_defaults_to_train() {
        let split = DbSplit::default();
        assert_eq!(split.of("nope"), Split::Train);
    }

    #[test]
    fn single_database_still_splits() {
        let databases: Vec<Database> = dbs().into_iter().take(3).collect();
        let split = split_databases(&databases, 7);
        let (train, valid, test) = split.counts();
        assert_eq!(train + valid + test, 3);
        assert!(test >= 1);
    }
}
