//! Synthetic corpus construction (§IV of the paper).
//!
//! The original DataVisT5 trains on four public corpora (NVBench,
//! Chart2Text/Statista, WikiTableText, FeVisQA) that are not available in
//! this environment. This crate builds the closest synthetic equivalents on
//! top of the [`storage`] engine so that every downstream code path — DV
//! knowledge encoding, schema filtration, hybrid pre-training, multi-task
//! fine-tuning, and all four evaluations — runs unchanged:
//!
//! * [`domains`] — seeded generation of relational databases across
//!   fifteen subject domains (the stand-in for Spider's 152 databases);
//! * [`nvbench`] — NL-question ↔ DV-query pairs sampled from a query
//!   grammar and verbalized through a multi-template paraphraser, split
//!   into join and non-join subsets like Table I;
//! * [`tabletext`] — Chart2Text-like chart-table descriptions and
//!   WikiTableText-like row-fact descriptions, with the paper's ≤150-cell
//!   filter;
//! * [`fevisqa`] — the three FeVisQA question types, with numeric answers
//!   computed by executing the DV query (Table III);
//! * [`split`] — cross-domain partitioning: *databases* (not samples) are
//!   split 70/10/20 so test-time schemas are unseen.
//!
//! Everything is deterministic under a seed.

pub mod domains;
pub mod export;
pub mod fevisqa;
pub mod nvbench;
pub mod split;
pub mod tabletext;

pub use domains::{generate_databases, DomainConfig};
pub use fevisqa::{FeVisQaExample, QuestionType};
pub use nvbench::NvBenchExample;
pub use split::{DbSplit, Split};
pub use tabletext::TableTextExample;

use storage::Database;

/// FNV-1a hash of a database name (per-database RNG streams).
pub(crate) fn nvbench_hash(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

/// Corpus-wide generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    pub seed: u64,
    /// Database instances per domain (the paper's Spider source has ~152
    /// databases over ~100 domains; we scale down proportionally).
    pub dbs_per_domain: usize,
    /// Target NVBench-like examples per database.
    pub queries_per_db: usize,
    /// WikiTableText-like facts per database.
    pub facts_per_db: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            seed: 0xda7a_u64,
            dbs_per_domain: 2,
            queries_per_db: 40,
            facts_per_db: 20,
        }
    }
}

/// The assembled corpus: databases plus the four task datasets.
#[derive(Debug, Clone)]
pub struct Corpus {
    pub databases: Vec<Database>,
    pub split: DbSplit,
    pub nvbench: Vec<NvBenchExample>,
    pub chart2text: Vec<TableTextExample>,
    pub wikitabletext: Vec<TableTextExample>,
    pub fevisqa: Vec<FeVisQaExample>,
}

impl Corpus {
    /// Generates the full corpus under a configuration.
    pub fn generate(cfg: &CorpusConfig) -> Corpus {
        let databases = domains::generate_databases(&DomainConfig {
            seed: cfg.seed,
            instances_per_domain: cfg.dbs_per_domain,
        });
        let split = split::split_databases(&databases, cfg.seed ^ 0x5117);
        let nvbench = nvbench::generate(&databases, cfg.queries_per_db, cfg.seed ^ 0x17);
        let chart2text = tabletext::chart2text_from_nvbench(&databases, &nvbench, cfg.seed ^ 0x29);
        let wikitabletext = tabletext::wikitabletext(&databases, cfg.facts_per_db, cfg.seed ^ 0x31);
        let fevisqa = fevisqa::generate(&databases, &nvbench, cfg.seed ^ 0x43);
        Corpus {
            databases,
            split,
            nvbench,
            chart2text,
            wikitabletext,
            fevisqa,
        }
    }

    /// Looks a database up by name.
    pub fn database(&self, name: &str) -> Option<&Database> {
        self.databases.iter().find(|d| d.name == name)
    }

    /// The split a database belongs to.
    pub fn split_of(&self, db_name: &str) -> Split {
        self.split.of(db_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Corpus {
        Corpus::generate(&CorpusConfig {
            seed: 7,
            dbs_per_domain: 1,
            queries_per_db: 6,
            facts_per_db: 4,
        })
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.nvbench.len(), b.nvbench.len());
        for (x, y) in a.nvbench.iter().zip(b.nvbench.iter()) {
            assert_eq!(x.question, y.question);
            assert_eq!(x.query, y.query);
        }
    }

    #[test]
    fn all_tasks_have_examples() {
        let c = small();
        assert!(!c.databases.is_empty());
        assert!(!c.nvbench.is_empty());
        assert!(!c.chart2text.is_empty());
        assert!(!c.wikitabletext.is_empty());
        assert!(!c.fevisqa.is_empty());
    }

    #[test]
    fn every_example_references_known_database() {
        let c = small();
        for e in &c.nvbench {
            assert!(c.database(&e.db_name).is_some(), "unknown db {}", e.db_name);
        }
        for e in &c.fevisqa {
            assert!(c.database(&e.db_name).is_some());
        }
    }

    #[test]
    fn nvbench_queries_execute_against_their_databases() {
        let c = small();
        for e in &c.nvbench {
            let db = c.database(&e.db_name).unwrap();
            let q = vql::parse_query(&e.query).expect("generated query parses");
            storage::execute(&q, db).expect("generated query executes");
        }
    }
}
