//! NVBench-like NL-question ↔ DV-query pairs.
//!
//! Queries are sampled from a pattern grammar (count / aggregate / scatter
//! / binned line / grouped charts, with optional filters, ordering, and a
//! join path), built directly as standardized ASTs, and validated by
//! executing them — every emitted query parses, executes, and renders a
//! small chart. Questions and reference descriptions come from a
//! multi-template paraphraser, so one query pattern has several surface
//! forms (the learning signal BLEU-style metrics need).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use storage::{ColumnType, Database, Table};
use vql::ast::{
    AggFunc, Bin, BinUnit, ChartType, CmpOp, ColExpr, ColumnRef, Join, Literal, OrderBy, OrderDir,
    Predicate, Query,
};

use crate::domains::{column_phrase, join_info};

/// One NVBench-like example.
#[derive(Debug, Clone, PartialEq)]
pub struct NvBenchExample {
    pub db_name: String,
    /// The natural-language question.
    pub question: String,
    /// The gold DV query in standardized text form.
    pub query: String,
    /// A reference textual description (vis-to-text ground truth).
    pub description: String,
    pub has_join: bool,
}

/// Column classification for sampling.
struct ColumnPools {
    categorical: Vec<String>,
    numeric: Vec<String>,
    temporal: Vec<String>,
}

fn classify(table: &Table, exclude: &[&str]) -> ColumnPools {
    let mut pools = ColumnPools {
        categorical: Vec::new(),
        numeric: Vec::new(),
        temporal: Vec::new(),
    };
    for (i, c) in table.columns.iter().enumerate() {
        if exclude.iter().any(|e| e.eq_ignore_ascii_case(&c.name)) {
            continue;
        }
        // Serial primary keys (first column) are ids, not data.
        if i == 0 {
            continue;
        }
        match c.ty {
            ColumnType::Text => pools.categorical.push(c.name.clone()),
            ColumnType::Int | ColumnType::Float => pools.numeric.push(c.name.clone()),
            ColumnType::Date => pools.temporal.push(c.name.clone()),
        }
    }
    pools
}

/// Generates up to `per_db` validated examples for each database.
pub fn generate(databases: &[Database], per_db: usize, seed: u64) -> Vec<NvBenchExample> {
    let mut out = Vec::new();
    for db in databases {
        let mut rng = StdRng::seed_from_u64(seed ^ crate::nvbench_hash(&db.name));
        let mut seen: HashSet<String> = HashSet::new();
        let mut produced = 0usize;
        let mut attempts = 0usize;
        while produced < per_db && attempts < per_db * 20 {
            attempts += 1;
            if let Some(example) = sample_example(db, &mut rng) {
                if seen.insert(example.query.clone()) {
                    out.push(example);
                    produced += 1;
                }
            }
        }
    }
    out
}

fn sample_example(db: &Database, rng: &mut StdRng) -> Option<NvBenchExample> {
    // Roughly the paper's join ratio (≈40% of NVBench uses joins).
    let want_join = rng.gen_bool(0.4);
    let query = if want_join {
        sample_join_query(db, rng)?
    } else {
        sample_single_query(db, rng)?
    };
    // Validate by executing; keep charts small and non-empty.
    let result = storage::execute(&query, db).ok()?;
    if result.rows.is_empty() || result.rows.len() > 14 {
        return None;
    }
    let question = verbalize_question(&query, rng);
    let description = verbalize_description(&query, rng);
    Some(NvBenchExample {
        db_name: db.name.clone(),
        question,
        query: query.to_string(),
        description,
        has_join: query.has_join(),
    })
}

fn pick<'a, T>(rng: &mut StdRng, xs: &'a [T]) -> Option<&'a T> {
    if xs.is_empty() {
        None
    } else {
        Some(&xs[rng.gen_range(0..xs.len())])
    }
}

fn qualified(table: &str, col: &str) -> ColumnRef {
    ColumnRef::qualified(table.to_string(), col.to_string())
}

/// Single-table patterns.
fn sample_single_query(db: &Database, rng: &mut StdRng) -> Option<Query> {
    let table = pick(rng, &db.tables)?;
    let join = join_info(&db.name);
    let fk: Vec<&str> = join
        .iter()
        .flat_map(|j| [j.fk.as_str(), j.pk.as_str()])
        .collect();
    let pools = classify(table, &fk);
    let tname = table.name.clone();
    let pattern = rng.gen_range(0..10u8);
    let mut query = match pattern {
        // Count per category: pie or bar.
        0..=2 => {
            let x = pick(rng, &pools.categorical)?.clone();
            let chart = if rng.gen_bool(0.4) {
                ChartType::Pie
            } else {
                ChartType::Bar
            };
            let xr = qualified(&tname, &x);
            Query {
                chart,
                select: vec![
                    ColExpr::Column(xr.clone()),
                    ColExpr::Agg(AggFunc::Count, xr.clone()),
                ],
                from: tname.clone(),
                join: None,
                filters: vec![],
                group_by: vec![xr],
                order_by: None,
                bin: None,
            }
        }
        // Aggregate per category (bar).
        3..=5 => {
            let x = pick(rng, &pools.categorical)?.clone();
            let y = pick(rng, &pools.numeric)?.clone();
            let agg = *pick(
                rng,
                &[AggFunc::Sum, AggFunc::Avg, AggFunc::Max, AggFunc::Min],
            )?;
            let xr = qualified(&tname, &x);
            Query {
                chart: ChartType::Bar,
                select: vec![
                    ColExpr::Column(xr.clone()),
                    ColExpr::Agg(agg, qualified(&tname, &y)),
                ],
                from: tname.clone(),
                join: None,
                filters: vec![],
                group_by: vec![xr],
                order_by: None,
                bin: None,
            }
        }
        // Raw scatter of two numerics.
        6 => {
            if pools.numeric.len() < 2 {
                return None;
            }
            let i = rng.gen_range(0..pools.numeric.len());
            let mut j = rng.gen_range(0..pools.numeric.len());
            if j == i {
                j = (j + 1) % pools.numeric.len();
            }
            Query::new(
                ChartType::Scatter,
                vec![
                    ColExpr::Column(qualified(&tname, &pools.numeric[i])),
                    ColExpr::Column(qualified(&tname, &pools.numeric[j])),
                ],
                tname.clone(),
            )
        }
        // Two aggregates of one numeric per category (scatter).
        7 => {
            let x = pick(rng, &pools.categorical)?.clone();
            let y = pick(rng, &pools.numeric)?.clone();
            let (a1, a2) = match rng.gen_range(0..3u8) {
                0 => (AggFunc::Avg, AggFunc::Min),
                1 => (AggFunc::Avg, AggFunc::Max),
                _ => (AggFunc::Max, AggFunc::Min),
            };
            Query {
                chart: ChartType::Scatter,
                select: vec![
                    ColExpr::Agg(a1, qualified(&tname, &y)),
                    ColExpr::Agg(a2, qualified(&tname, &y)),
                ],
                from: tname.clone(),
                join: None,
                filters: vec![],
                group_by: vec![qualified(&tname, &x)],
                order_by: None,
                bin: None,
            }
        }
        // Temporal bin (line/bar).
        8 => {
            let d = pick(rng, &pools.temporal)?.clone();
            let unit = *pick(rng, &[BinUnit::Year, BinUnit::Month, BinUnit::Weekday])?;
            let chart = if rng.gen_bool(0.7) {
                ChartType::Line
            } else {
                ChartType::Bar
            };
            let dr = qualified(&tname, &d);
            Query {
                chart,
                select: vec![
                    ColExpr::Column(dr.clone()),
                    ColExpr::Agg(AggFunc::Count, dr.clone()),
                ],
                from: tname.clone(),
                join: None,
                filters: vec![],
                group_by: vec![],
                order_by: None,
                bin: Some(Bin { column: dr, unit }),
            }
        }
        // Grouped chart over two categoricals.
        _ => {
            if pools.categorical.len() < 2 {
                return None;
            }
            let i = rng.gen_range(0..pools.categorical.len());
            let mut j = rng.gen_range(0..pools.categorical.len());
            if j == i {
                j = (j + 1) % pools.categorical.len();
            }
            let x = qualified(&tname, &pools.categorical[i]);
            let color = qualified(&tname, &pools.categorical[j]);
            let chart = *pick(
                rng,
                &[
                    ChartType::StackedBar,
                    ChartType::GroupedLine,
                    ChartType::GroupedScatter,
                ],
            )?;
            Query {
                chart,
                select: vec![
                    ColExpr::Column(x.clone()),
                    ColExpr::Agg(AggFunc::Count, x.clone()),
                    ColExpr::Column(color.clone()),
                ],
                from: tname.clone(),
                join: None,
                filters: vec![],
                group_by: vec![x, color],
                order_by: None,
                bin: None,
            }
        }
    };
    maybe_add_filter(&mut query, table, &pools, rng);
    maybe_add_order(&mut query, rng);
    Some(query)
}

/// Join patterns: aggregate fact rows per dim category.
fn sample_join_query(db: &Database, rng: &mut StdRng) -> Option<Query> {
    let info = join_info(&db.name)?;
    let dim = db.table(&info.dim_table)?;
    let fact = db.table(&info.fact_table)?;
    let dim_pools = classify(dim, &[&info.pk]);
    let fact_pools = classify(fact, &[&info.fk]);
    let x = pick(rng, &dim_pools.categorical)?.clone();
    let xr = qualified(&info.dim_table, &x);
    let join = Join {
        table: info.dim_table.clone(),
        left: qualified(&info.fact_table, &info.fk),
        right: qualified(&info.dim_table, &info.pk),
    };
    let y_expr = if fact_pools.numeric.is_empty() || rng.gen_bool(0.5) {
        ColExpr::Agg(AggFunc::Count, qualified(&info.fact_table, &info.fk))
    } else {
        let y = pick(rng, &fact_pools.numeric)?.clone();
        let agg = *pick(
            rng,
            &[AggFunc::Sum, AggFunc::Avg, AggFunc::Max, AggFunc::Min],
        )?;
        ColExpr::Agg(agg, qualified(&info.fact_table, &y))
    };
    let mut query = Query {
        chart: ChartType::Bar,
        select: vec![ColExpr::Column(xr.clone()), y_expr],
        from: info.fact_table.clone(),
        join: Some(join),
        filters: vec![],
        group_by: vec![xr],
        order_by: None,
        bin: None,
    };
    // Filter on a dim categorical or fact numeric, sometimes.
    if rng.gen_bool(0.35) {
        if let Some(filter) =
            sample_filter(dim, &dim_pools, rng).or_else(|| sample_filter(fact, &fact_pools, rng))
        {
            query.filters.push(filter);
        }
    }
    maybe_add_order(&mut query, rng);
    Some(query)
}

fn maybe_add_filter(query: &mut Query, table: &Table, pools: &ColumnPools, rng: &mut StdRng) {
    if !rng.gen_bool(0.3) {
        return;
    }
    // Never filter on the x/grouping column itself.
    let used: Vec<&str> = query
        .select
        .iter()
        .map(|s| s.column_ref().column.as_str())
        .collect();
    let pruned = ColumnPools {
        categorical: pools
            .categorical
            .iter()
            .filter(|c| !used.contains(&c.as_str()))
            .cloned()
            .collect(),
        numeric: pools
            .numeric
            .iter()
            .filter(|c| !used.contains(&c.as_str()))
            .cloned()
            .collect(),
        temporal: vec![],
    };
    if pruned.categorical.is_empty() && pruned.numeric.is_empty() {
        return;
    }
    if let Some(f) = sample_filter(table, &pruned, rng) {
        query.filters.push(f);
    }
}

fn sample_filter(table: &Table, pools: &ColumnPools, rng: &mut StdRng) -> Option<Predicate> {
    let use_cat = !pools.categorical.is_empty() && (pools.numeric.is_empty() || rng.gen_bool(0.5));
    if use_cat {
        let col = pick(rng, &pools.categorical)?.clone();
        let idx = table.column_index(&col)?;
        let row = pick(rng, &table.rows)?;
        let value = row[idx].to_string();
        let op = if rng.gen_bool(0.8) {
            CmpOp::Eq
        } else {
            CmpOp::Ne
        };
        Some(Predicate::Compare {
            left: qualified(&table.name, &col),
            op,
            right: Literal::Text(value),
        })
    } else {
        let col = pick(rng, &pools.numeric)?.clone();
        let idx = table.column_index(&col)?;
        let mut vals: Vec<f64> = table.rows.iter().filter_map(|r| r[idx].as_f64()).collect();
        if vals.is_empty() {
            return None;
        }
        vals.sort_by(|a, b| a.total_cmp(b));
        let threshold = vals[vals.len() / 2].round();
        let op = if rng.gen_bool(0.5) {
            CmpOp::Gt
        } else {
            CmpOp::Lt
        };
        Some(Predicate::Compare {
            left: qualified(&table.name, &col),
            op,
            right: Literal::Number(threshold),
        })
    }
}

fn maybe_add_order(query: &mut Query, rng: &mut StdRng) {
    // Grouped 3-channel charts and raw scatters keep natural order.
    if query.select.len() != 2 || !rng.gen_bool(0.4) {
        return;
    }
    let dir = if rng.gen_bool(0.5) {
        OrderDir::Asc
    } else {
        OrderDir::Desc
    };
    let expr = if rng.gen_bool(0.7) {
        query.select[1].clone()
    } else {
        query.select[0].clone()
    };
    query.order_by = Some(OrderBy { expr, dir });
}

// ---------------------------------------------------------------------
// Verbalization.
// ---------------------------------------------------------------------

fn agg_word(a: AggFunc) -> &'static str {
    match a {
        AggFunc::Count => "number",
        AggFunc::Sum => "total",
        AggFunc::Avg => "average",
        AggFunc::Max => "maximum",
        AggFunc::Min => "minimum",
    }
}

fn chart_phrase(c: ChartType) -> &'static str {
    match c {
        ChartType::Bar => "bar chart",
        ChartType::Pie => "pie chart",
        ChartType::Line => "line chart",
        ChartType::Scatter => "scatter chart",
        ChartType::StackedBar => "stacked bar chart",
        ChartType::GroupedLine => "grouping line chart",
        ChartType::GroupedScatter => "grouping scatter chart",
    }
}

fn op_phrase(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "is",
        CmpOp::Ne => "is not",
        CmpOp::Lt => "is below",
        CmpOp::Le => "is at most",
        CmpOp::Gt => "is above",
        CmpOp::Ge => "is at least",
        CmpOp::Like => "is like",
    }
}

fn literal_phrase(l: &Literal) -> String {
    match l {
        Literal::Number(n) => Literal::Number(*n).to_string(),
        Literal::Text(s) => s.clone(),
    }
}

/// Renders the NL question for a query with template variety.
pub fn verbalize_question(query: &Query, rng: &mut StdRng) -> String {
    let chart = chart_phrase(query.chart);
    let x = &query.select[0];
    let y = query.select.get(1);
    let x_phrase = column_phrase(&x.column_ref().column);
    let table = &query.from;

    let mut body = match (x.agg(), y.and_then(|y| y.agg())) {
        // count per category
        (None, Some(AggFunc::Count)) if query.bin.is_none() => {
            let t = rng.gen_range(0..4u8);
            match t {
                0 => format!(
                    "give me a {chart} about the proportion of the number of {x_phrase} in the {table} table"
                ),
                1 => format!(
                    "show the number of {table} records for each {x_phrase} using a {chart}"
                ),
                2 => format!("how many {table} rows are there for each {x_phrase} , draw a {chart}"),
                _ => format!("plot the count of {x_phrase} grouped by {x_phrase} as a {chart}"),
            }
        }
        // binned temporal count
        (None, Some(AggFunc::Count)) => {
            let unit = query
                .bin
                .as_ref()
                .map(|b| b.unit.keyword())
                .unwrap_or("year");
            match rng.gen_range(0..3u8) {
                0 => format!(
                    "show the number of {table} records per {unit} of {x_phrase} in a {chart}"
                ),
                1 => format!(
                    "draw a {chart} of how many {table} entries happened in each {unit} of {x_phrase}"
                ),
                _ => format!("count {table} rows binned by {unit} of {x_phrase} with a {chart}"),
            }
        }
        // aggregate per category
        (None, Some(agg)) => {
            let y_phrase = column_phrase(&y.unwrap().column_ref().column);
            let word = agg_word(agg);
            match rng.gen_range(0..3u8) {
                0 => format!("show the {word} {y_phrase} for each {x_phrase} in a {chart}"),
                1 => format!(
                    "what is the {word} of {y_phrase} grouped by {x_phrase} , display a {chart}"
                ),
                _ => format!(
                    "draw a {chart} showing {x_phrase} versus the {word} {y_phrase} from the {table} table"
                ),
            }
        }
        // two aggregates (scatter of agg pair)
        (Some(a1), Some(a2)) => {
            let y_phrase = column_phrase(&x.column_ref().column);
            let g_phrase = query
                .group_by
                .first()
                .map(|c| column_phrase(&c.column))
                .unwrap_or_default();
            let (w1, w2) = (agg_word(a1), agg_word(a2));
            let _ = y_phrase;
            let y_col = column_phrase(&x.column_ref().column);
            match rng.gen_range(0..3u8) {
                0 => format!(
                    "just show the {w1} and {w2} {y_col} of the rooms in different {g_phrase} using a {}",
                    chart.trim_end_matches(" chart")
                )
                .replace("rooms", table),
                1 => format!(
                    "compare the {w1} and {w2} of {y_col} across {g_phrase} with a {chart}"
                ),
                _ => format!(
                    "plot the {w1} {y_col} against the {w2} {y_col} for each {g_phrase} in a {chart}"
                ),
            }
        }
        // raw projection (scatter / grouped charts)
        _ => {
            if query.select.len() >= 3 {
                let color = column_phrase(&query.select[2].column_ref().column);
                format!("show the count of {x_phrase} broken down by {color} in a {chart}")
            } else {
                let y_phrase = y
                    .map(|y| column_phrase(&y.column_ref().column))
                    .unwrap_or_default();
                match rng.gen_range(0..2u8) {
                    0 => format!(
                        "plot {x_phrase} against {y_phrase} from the {table} table using a {chart}"
                    ),
                    _ => format!(
                        "show the relationship between {x_phrase} and {y_phrase} of {table} in a {chart}"
                    ),
                }
            }
        }
    };

    if let Some(j) = &query.join {
        // Both tables must surface so n-gram schema filtration (§III-B)
        // can recover the full join path from the question alone.
        body.push_str(&format!(
            " from the {} table joined with the {} table",
            query.from, j.table
        ));
    }
    for f in &query.filters {
        if let Predicate::Compare { left, op, right } = f {
            body.push_str(&format!(
                " for those whose {} {} {}",
                column_phrase(&left.column),
                op_phrase(*op),
                literal_phrase(right)
            ));
        }
    }
    if let Some(o) = &query.order_by {
        let dir_phrase = match o.dir {
            OrderDir::Asc => pick(rng, &["in ascending order", "from low to high"]).unwrap(),
            OrderDir::Desc => pick(rng, &["in descending order", "from high to low"]).unwrap(),
        };
        let target = if o.expr == query.select[0] {
            "the x axis"
        } else {
            "the y axis"
        };
        body.push_str(&format!(" , and rank {target} {dir_phrase}"));
    }
    body
}

/// Renders the reference description (vis-to-text gold) for a query.
pub fn verbalize_description(query: &Query, rng: &mut StdRng) -> String {
    let chart = chart_phrase(query.chart);
    let x_phrase = column_phrase(&query.select[0].column_ref().column);
    let table = &query.from;
    let mut body = match query.select.get(1).and_then(|y| y.agg()) {
        Some(AggFunc::Count) => match rng.gen_range(0..2u8) {
            0 => format!("a {chart} that counts the {table} records in each {x_phrase}"),
            _ => format!("this {chart} presents the number of {table} rows for every {x_phrase}"),
        },
        Some(agg) => {
            let y_phrase = column_phrase(&query.select[1].column_ref().column);
            format!(
                "a {chart} of the {} {y_phrase} for each {x_phrase} in the {table} table",
                agg_word(agg)
            )
        }
        None => {
            let y_phrase = query
                .select
                .get(1)
                .map(|y| column_phrase(&y.column_ref().column))
                .unwrap_or_default();
            format!("a {chart} relating {x_phrase} to {y_phrase} in the {table} table")
        }
    };
    if let Some(j) = &query.join {
        body.push_str(&format!(" joined with {}", j.table));
    }
    for f in &query.filters {
        if let Predicate::Compare { left, op, right } = f {
            body.push_str(&format!(
                " where {} {} {}",
                column_phrase(&left.column),
                op_phrase(*op),
                literal_phrase(right)
            ));
        }
    }
    if let Some(o) = &query.order_by {
        let axis = if o.expr == query.select[0] { "x" } else { "y" };
        let dir = match o.dir {
            OrderDir::Asc => "low to high",
            OrderDir::Desc => "high to low",
        };
        body.push_str(&format!(" , sorted by the {axis} axis from {dir}"));
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::{generate_databases, DomainConfig};

    fn dbs() -> Vec<Database> {
        generate_databases(&DomainConfig {
            seed: 5,
            instances_per_domain: 1,
        })
    }

    #[test]
    fn generates_requested_volume() {
        let databases = dbs();
        let examples = generate(&databases, 10, 1);
        assert!(
            examples.len() >= databases.len() * 7,
            "only {}",
            examples.len()
        );
    }

    #[test]
    fn queries_are_standardized_text() {
        let databases = dbs();
        for e in generate(&databases, 8, 2) {
            assert_eq!(e.query, e.query.to_lowercase());
            let q = vql::parse_query(&e.query).expect("parses");
            assert_eq!(q.to_string(), e.query, "display roundtrip");
        }
    }

    #[test]
    fn every_query_executes_to_nonempty_chart() {
        let databases = dbs();
        for e in generate(&databases, 8, 3) {
            let db = databases.iter().find(|d| d.name == e.db_name).unwrap();
            let q = vql::parse_query(&e.query).unwrap();
            let r = storage::execute(&q, db).unwrap();
            assert!(!r.rows.is_empty());
            assert!(r.rows.len() <= 14);
        }
    }

    #[test]
    fn join_flag_matches_query() {
        let databases = dbs();
        let examples = generate(&databases, 12, 4);
        let joins = examples.iter().filter(|e| e.has_join).count();
        for e in &examples {
            let q = vql::parse_query(&e.query).unwrap();
            assert_eq!(q.has_join(), e.has_join);
        }
        // Roughly the paper's ratio: some but not all queries join.
        assert!(joins > 0 && joins < examples.len());
    }

    #[test]
    fn questions_mention_schema_terms() {
        let databases = dbs();
        for e in generate(&databases, 6, 5) {
            let q = vql::parse_query(&e.query).unwrap();
            // The primary table or a selected column phrase must surface in
            // the question — required for n-gram schema filtration.
            let x_phrase = column_phrase(&q.select[0].column_ref().column);
            assert!(
                e.question.contains(&q.from) || e.question.contains(&x_phrase),
                "question lacks schema anchors: {}",
                e.question
            );
        }
    }

    #[test]
    fn descriptions_are_nonempty_and_mention_chart() {
        let databases = dbs();
        for e in generate(&databases, 6, 6) {
            assert!(e.description.contains("chart"), "{}", e.description);
        }
    }

    #[test]
    fn queries_are_unique_per_db() {
        let databases = dbs();
        let examples = generate(&databases, 15, 7);
        for db in &databases {
            let mut qs: Vec<&str> = examples
                .iter()
                .filter(|e| e.db_name == db.name)
                .map(|e| e.query.as_str())
                .collect();
            let before = qs.len();
            qs.sort();
            qs.dedup();
            assert_eq!(before, qs.len(), "duplicate queries in {}", db.name);
        }
    }
}
