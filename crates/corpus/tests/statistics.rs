//! Statistical invariants of the generated corpora — the structural
//! properties Tables I–III rely on.

use corpus::{Corpus, CorpusConfig, QuestionType, Split};

fn corpus() -> Corpus {
    Corpus::generate(&CorpusConfig {
        seed: 404,
        dbs_per_domain: 2,
        queries_per_db: 12,
        facts_per_db: 6,
    })
}

#[test]
fn join_share_is_paperlike() {
    let c = corpus();
    let joins = c.nvbench.iter().filter(|e| e.has_join).count();
    let share = joins as f64 / c.nvbench.len() as f64;
    // Paper: 38.5% of NVBench instances use joins; the sampler targets 40%.
    assert!((0.2..=0.6).contains(&share), "join share {share}");
}

#[test]
fn split_sizes_follow_70_10_20() {
    let c = corpus();
    let count = |s: Split| {
        c.nvbench
            .iter()
            .filter(|e| c.split_of(&e.db_name) == s)
            .count() as f64
    };
    let total = c.nvbench.len() as f64;
    assert!(count(Split::Train) / total > 0.5, "train too small");
    assert!(count(Split::Test) / total > 0.08, "test too small");
    assert!(count(Split::Valid) > 0.0, "valid empty");
}

#[test]
fn fevisqa_type_mix_is_type3_heavy() {
    let c = corpus();
    let count = |t: QuestionType| c.fevisqa.iter().filter(|e| e.question_type == t).count();
    let (t1, t2, t3) = (
        count(QuestionType::Type1),
        count(QuestionType::Type2),
        count(QuestionType::Type3),
    );
    // Table III: Type 3 dominates (45650 of 79305), Type 2 > Type 1.
    assert!(t3 > t1 && t3 > t2, "type mix {t1}/{t2}/{t3}");
    assert!(t1 > 0 && t2 > 0);
}

#[test]
fn fevisqa_queries_are_fewer_than_pairs() {
    // Several QA pairs share one DV query, like Table III's
    // 79305 pairs over 13313 queries.
    let c = corpus();
    let mut queries: Vec<&str> = c.fevisqa.iter().map(|e| e.query.as_str()).collect();
    queries.sort();
    queries.dedup();
    assert!(queries.len() * 2 < c.fevisqa.len());
}

#[test]
fn every_chart2text_table_within_cell_budget() {
    let c = corpus();
    for e in &c.chart2text {
        assert!(e.table.cell_count() <= corpus::tabletext::MAX_CELLS);
    }
}

#[test]
fn chart_type_diversity() {
    let c = corpus();
    let mut kinds: Vec<&str> = Vec::new();
    for e in &c.nvbench {
        let kind = e
            .query
            .strip_prefix("visualize ")
            .and_then(|r| r.split(" select").next())
            .unwrap_or("");
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
    }
    // At least bar, pie, scatter, line plus one grouped form.
    assert!(kinds.len() >= 5, "only {kinds:?}");
}

#[test]
fn descriptions_vary_across_examples() {
    // The paraphraser must not emit one template only (BLEU would saturate).
    let c = corpus();
    let mut firsts: Vec<&str> = c
        .nvbench
        .iter()
        .filter_map(|e| e.question.split_whitespace().next())
        .collect();
    firsts.sort();
    firsts.dedup();
    assert!(
        firsts.len() >= 4,
        "question openings too uniform: {firsts:?}"
    );
}
