//! Translations into other Declarative Visualization Languages.
//!
//! The paper (§II) stresses that a DV query "can be converted into
//! visualization specifications for different DVLs". Besides the Vega-Lite
//! emitter in [`crate::vega`], this module provides:
//!
//! * [`to_vega_zero`] — Vega-Zero, the flattened keyword language ncNet
//!   (Luo et al., 2021) decodes into;
//! * [`to_ggplot2`] — an R ggplot2 expression;
//! * [`from_vega_zero`] — the inverse mapping back to a [`Query`], so the
//!   Vega-Zero path is round-trippable.

use crate::ast::{ChartType, ColExpr, OrderDir, Query};
use crate::parser::parse_query;

/// Vega-Zero mark keyword for a chart type.
fn vz_mark(chart: ChartType) -> &'static str {
    match chart {
        ChartType::Bar | ChartType::StackedBar => "bar",
        ChartType::Pie => "arc",
        ChartType::Line | ChartType::GroupedLine => "line",
        ChartType::Scatter | ChartType::GroupedScatter => "point",
    }
}

fn vz_agg(expr: &ColExpr) -> (String, String) {
    match expr {
        ColExpr::Column(c) => ("none".to_string(), c.to_string()),
        ColExpr::Agg(a, c) => (a.keyword().to_string(), c.to_string()),
    }
}

/// Emits the Vega-Zero keyword sequence for a query:
/// `mark <m> data <table> encoding x <col> y aggregate <fn> <col> [color <col>]
/// transform [filter …] [group <col>] [sort <axis> <dir>] [bin <col> by <unit>]`.
pub fn to_vega_zero(query: &Query) -> String {
    let mut out = format!("mark {} data {}", vz_mark(query.chart), query.from);
    let x = &query.select[0];
    let (_, x_col) = vz_agg(x);
    out.push_str(&format!(" encoding x {x_col}"));
    if let Some(y) = query.select.get(1) {
        let (agg, col) = vz_agg(y);
        out.push_str(&format!(" y aggregate {agg} {col}"));
    }
    if let Some(color) = query.select.get(2) {
        let (_, col) = vz_agg(color);
        out.push_str(&format!(" color {col}"));
    }
    let mut transforms = Vec::new();
    for f in &query.filters {
        transforms.push(format!("filter {f}"));
    }
    if let Some(g) = query.group_by.first() {
        transforms.push(format!("group {g}"));
    }
    if let Some(o) = &query.order_by {
        let axis = if &o.expr == x { "x" } else { "y" };
        let dir = match o.dir {
            OrderDir::Asc => "asc",
            OrderDir::Desc => "desc",
        };
        transforms.push(format!("sort {axis} {dir}"));
    }
    if let Some(b) = &query.bin {
        transforms.push(format!("bin {} by {}", b.column, b.unit));
    }
    if !transforms.is_empty() {
        out.push_str(" transform ");
        out.push_str(&transforms.join(" "));
    }
    out
}

/// Parses a Vega-Zero keyword sequence back into a [`Query`].
///
/// Only sequences produced by [`to_vega_zero`] are guaranteed to parse;
/// the function returns `None` on anything malformed.
pub fn from_vega_zero(text: &str) -> Option<Query> {
    let toks: Vec<&str> = text.split_whitespace().collect();
    let pos = |kw: &str| toks.iter().position(|t| *t == kw);
    let mark = toks.get(pos("mark")? + 1)?;
    let data = toks.get(pos("data")? + 1)?;
    let x = toks.get(pos("x")? + 1)?;
    let agg_idx = pos("aggregate")?;
    let agg = toks.get(agg_idx + 1)?;
    let y = toks.get(agg_idx + 2)?;
    let color = pos("color").and_then(|i| toks.get(i + 1));

    // Reconstruct the textual DV query and reuse the main parser.
    let mut q = String::from("visualize ");
    let chart_kw = match (*mark, color.is_some()) {
        ("bar", false) => "bar",
        ("bar", true) => "stacked bar",
        ("arc", _) => "pie",
        ("line", false) => "line",
        ("line", true) => "grouping line",
        ("point", false) => "scatter",
        ("point", true) => "grouping scatter",
        _ => return None,
    };
    q.push_str(chart_kw);
    q.push_str(" select ");
    q.push_str(x);
    q.push_str(", ");
    if *agg == "none" {
        q.push_str(y);
    } else {
        q.push_str(&format!("{agg} ( {y} )"));
    }
    if let Some(c) = color {
        q.push_str(&format!(", {c}"));
    }
    q.push_str(&format!(" from {data}"));
    if let Some(t) = pos("transform") {
        let rest = &toks[t + 1..];
        let mut i = 0;
        let mut filters = Vec::new();
        let mut group = None;
        let mut sort: Option<(String, String)> = None;
        let mut bin: Option<(String, String)> = None;
        while i < rest.len() {
            match rest[i] {
                "filter" => {
                    // filter <col> <op> <value>
                    if i + 3 < rest.len() {
                        filters.push(format!("{} {} {}", rest[i + 1], rest[i + 2], rest[i + 3]));
                    }
                    i += 4;
                }
                "group" => {
                    group = rest.get(i + 1).map(|s| s.to_string());
                    i += 2;
                }
                "sort" => {
                    if i + 2 < rest.len() {
                        sort = Some((rest[i + 1].to_string(), rest[i + 2].to_string()));
                    }
                    i += 3;
                }
                "bin" => {
                    // bin <col> by <unit>
                    if i + 3 < rest.len() {
                        bin = Some((rest[i + 1].to_string(), rest[i + 3].to_string()));
                    }
                    i += 4;
                }
                _ => i += 1,
            }
        }
        if !filters.is_empty() {
            q.push_str(" where ");
            q.push_str(&filters.join(" and "));
        }
        if let Some(g) = group {
            q.push_str(&format!(" group by {g}"));
        }
        if let Some((axis, dir)) = sort {
            let expr = if axis == "x" {
                x.to_string()
            } else if *agg == "none" {
                y.to_string()
            } else {
                format!("{agg} ( {y} )")
            };
            q.push_str(&format!(" order by {expr} {dir}"));
        }
        if let Some((col, unit)) = bin {
            q.push_str(&format!(" bin {col} by {unit}"));
        }
    }
    parse_query(&q).ok()
}

/// Emits an R ggplot2 expression for a query.
pub fn to_ggplot2(query: &Query) -> String {
    let x = &query.select[0];
    let y = query.select.get(1);
    let (x_field, y_field) = (
        field_name(x),
        y.map(field_name).unwrap_or_else(|| "count".to_string()),
    );
    let geom = match query.chart {
        ChartType::Bar | ChartType::StackedBar => "geom_col()",
        ChartType::Pie => "geom_col() + coord_polar(theta = 'y')",
        ChartType::Line | ChartType::GroupedLine => "geom_line()",
        ChartType::Scatter | ChartType::GroupedScatter => "geom_point()",
    };
    let mut aes = format!("x = {x_field}, y = {y_field}");
    if let Some(color) = query.select.get(2) {
        aes.push_str(&format!(", fill = {}", field_name(color)));
    }
    format!("ggplot({}, aes({aes})) + {geom}", query.from)
}

fn field_name(expr: &ColExpr) -> String {
    match expr {
        ColExpr::Column(c) => c.column.clone(),
        ColExpr::Agg(a, c) => format!("{}_{}", a.keyword(), c.column),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Query {
        parse_query(
            "visualize bar select artist.country, count ( artist.country ) from artist \
             where artist.age > 30 group by artist.country order by count ( artist.country ) desc",
        )
        .unwrap()
    }

    #[test]
    fn vega_zero_has_all_clauses() {
        let vz = to_vega_zero(&sample());
        assert!(vz.starts_with("mark bar data artist"));
        assert!(vz.contains("encoding x artist.country"));
        assert!(vz.contains("y aggregate count artist.country"));
        assert!(vz.contains("filter artist.age > 30"));
        assert!(vz.contains("group artist.country"));
        assert!(vz.contains("sort y desc"));
    }

    #[test]
    fn vega_zero_roundtrips() {
        let q = sample();
        let vz = to_vega_zero(&q);
        let back = from_vega_zero(&vz).expect("roundtrip parses");
        assert_eq!(back, q);
    }

    #[test]
    fn vega_zero_roundtrips_grouped_charts() {
        let q =
            parse_query("visualize stacked bar select t.a, count ( t.a ), t.c from t group by t.a")
                .unwrap();
        let vz = to_vega_zero(&q);
        assert!(vz.contains("color t.c"));
        let back = from_vega_zero(&vz).expect("roundtrip parses");
        assert_eq!(back.chart, ChartType::StackedBar);
        assert_eq!(back.select.len(), 3);
    }

    #[test]
    fn vega_zero_roundtrips_bin() {
        let q = parse_query("visualize line select t.d, count ( t.d ) from t bin t.d by month")
            .unwrap();
        let back = from_vega_zero(&to_vega_zero(&q)).unwrap();
        assert_eq!(back.bin, q.bin);
    }

    #[test]
    fn from_vega_zero_rejects_garbage() {
        assert!(from_vega_zero("completely unrelated text").is_none());
        assert!(from_vega_zero("mark ufo data x").is_none());
    }

    #[test]
    fn ggplot_expression_shape() {
        let g = to_ggplot2(&sample());
        assert_eq!(
            g,
            "ggplot(artist, aes(x = country, y = count_country)) + geom_col()"
        );
    }

    #[test]
    fn ggplot_pie_uses_polar() {
        let q = parse_query("visualize pie select t.a, count ( t.a ) from t group by t.a").unwrap();
        assert!(to_ggplot2(&q).contains("coord_polar"));
    }

    #[test]
    fn pure_aggregate_axes_roundtrip() {
        let q =
            parse_query("visualize scatter select avg ( t.p ), min ( t.p ) from t group by t.g")
                .unwrap();
        // x is an aggregate; Vega-Zero's x channel keeps only the column,
        // so the roundtrip is lossy here — assert the documented behaviour.
        let vz = to_vega_zero(&q);
        assert!(vz.contains("encoding x t.p"), "{vz}");
    }
}
