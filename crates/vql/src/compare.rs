//! Component-wise exact-match comparison of DV queries (§V-B).
//!
//! The text-to-vis evaluation decomposes a DV query into three components:
//!
//! * **Vis** — the visualization type (`bar`, `pie`, …);
//! * **Axis** — the `select` list (the x/y/color channel expressions);
//! * **Data** — the data part: source tables, join, filters, grouping,
//!   ordering, and binning.
//!
//! `Vis EM`, `Axis EM` and `Data EM` score each component independently;
//! overall `EM` requires all three to match. Comparison operates on
//! *standardized* ASTs so stylistic differences never count as errors; a
//! prediction that fails to parse scores zero everywhere.

use crate::ast::{ColExpr, Query};

/// Per-component match result for one (prediction, reference) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ComponentMatch {
    pub vis: bool,
    pub axis: bool,
    pub data: bool,
}

impl ComponentMatch {
    /// Overall exact match: every component equal.
    pub fn exact(&self) -> bool {
        self.vis && self.axis && self.data
    }
}

/// Compares two standardized queries component-wise.
pub fn compare_queries(pred: &Query, gold: &Query) -> ComponentMatch {
    ComponentMatch {
        vis: pred.chart == gold.chart,
        axis: axis_equal(&pred.select, &gold.select),
        data: data_equal(pred, gold),
    }
}

/// Axis equality: the select lists must contain the same expressions. The
/// first (x) position is order-sensitive; the remaining channels are
/// compared as sets, since `select x, avg(a), min(b)` and
/// `select x, min(b), avg(a)` render identical axes.
fn axis_equal(a: &[ColExpr], b: &[ColExpr]) -> bool {
    if a.len() != b.len() || a.is_empty() {
        return a.len() == b.len();
    }
    if a[0] != b[0] {
        return false;
    }
    let mut rest: Vec<&ColExpr> = b[1..].iter().collect();
    for item in &a[1..] {
        match rest.iter().position(|r| *r == item) {
            Some(i) => {
                rest.swap_remove(i);
            }
            None => return false,
        }
    }
    true
}

/// Data equality: tables, join, filters (order-insensitive conjunction),
/// grouping, ordering and binning must all agree.
fn data_equal(a: &Query, b: &Query) -> bool {
    if a.from != b.from || a.join != b.join || a.group_by != b.group_by {
        return false;
    }
    if a.order_by != b.order_by || a.bin != b.bin {
        return false;
    }
    if a.filters.len() != b.filters.len() {
        return false;
    }
    let mut rest: Vec<_> = b.filters.iter().collect();
    for f in &a.filters {
        match rest.iter().position(|r| *r == f) {
            Some(i) => {
                rest.swap_remove(i);
            }
            None => return false,
        }
    }
    true
}

/// Aggregated EM scores over a test set (the four columns of Table IV).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EmScores {
    pub vis_em: f64,
    pub axis_em: f64,
    pub data_em: f64,
    pub em: f64,
    pub n: usize,
}

impl EmScores {
    /// Accumulates component matches into aggregate rates.
    pub fn from_matches(matches: &[ComponentMatch]) -> EmScores {
        let n = matches.len();
        if n == 0 {
            return EmScores::default();
        }
        let count = |f: fn(&ComponentMatch) -> bool| {
            matches.iter().filter(|m| f(m)).count() as f64 / n as f64
        };
        EmScores {
            vis_em: count(|m| m.vis),
            axis_em: count(|m| m.axis),
            data_em: count(|m| m.data),
            em: count(|m| m.exact()),
            n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    fn q(text: &str) -> Query {
        parse_query(text).unwrap()
    }

    #[test]
    fn identical_queries_match_fully() {
        let a = q("visualize bar select t.a, count(t.a) from t group by t.a");
        let m = compare_queries(&a, &a);
        assert!(m.vis && m.axis && m.data && m.exact());
    }

    #[test]
    fn wrong_chart_only_breaks_vis() {
        let a = q("visualize bar select t.a, count(t.a) from t group by t.a");
        let b = q("visualize pie select t.a, count(t.a) from t group by t.a");
        let m = compare_queries(&a, &b);
        assert!(!m.vis);
        assert!(m.axis && m.data);
        assert!(!m.exact());
    }

    #[test]
    fn swapped_y_channels_still_match_axis() {
        let a = q("visualize scatter select t.x, avg(t.a), min(t.b) from t");
        let b = q("visualize scatter select t.x, min(t.b), avg(t.a) from t");
        assert!(compare_queries(&a, &b).axis);
    }

    #[test]
    fn swapped_x_channel_breaks_axis() {
        let a = q("visualize scatter select t.x, avg(t.a) from t");
        let b = q("visualize scatter select avg(t.a), t.x from t");
        assert!(!compare_queries(&a, &b).axis);
    }

    #[test]
    fn different_group_by_breaks_data() {
        let a = q("visualize bar select t.a, count(t.a) from t group by t.a");
        let b = q("visualize bar select t.a, count(t.a) from t group by t.b");
        let m = compare_queries(&a, &b);
        assert!(m.vis && m.axis && !m.data);
    }

    #[test]
    fn filter_order_is_insensitive() {
        let a = q("visualize bar select t.a, t.b from t where t.a > 1 and t.b = 'x'");
        let b = q("visualize bar select t.a, t.b from t where t.b = 'x' and t.a > 1");
        assert!(compare_queries(&a, &b).data);
    }

    #[test]
    fn missing_order_by_breaks_data() {
        let a =
            q("visualize bar select t.a, count(t.a) from t group by t.a order by count(t.a) asc");
        let b = q("visualize bar select t.a, count(t.a) from t group by t.a");
        assert!(!compare_queries(&a, &b).data);
    }

    #[test]
    fn em_scores_aggregate() {
        let m1 = ComponentMatch {
            vis: true,
            axis: true,
            data: true,
        };
        let m2 = ComponentMatch {
            vis: true,
            axis: false,
            data: true,
        };
        let s = EmScores::from_matches(&[m1, m2]);
        assert_eq!(s.vis_em, 1.0);
        assert_eq!(s.axis_em, 0.5);
        assert_eq!(s.data_em, 1.0);
        assert_eq!(s.em, 0.5);
        assert_eq!(s.n, 2);
    }

    #[test]
    fn empty_matches_score_zero() {
        let s = EmScores::from_matches(&[]);
        assert_eq!(s.em, 0.0);
        assert_eq!(s.n, 0);
    }
}
