//! Executed-chart model.
//!
//! Rendering a DV query against a database produces a [`Chart`]: the chart
//! type plus labelled data series. FeVisQA Type-3 questions ("how many parts
//! are there in the chart?", "what is the value of the smallest part?") are
//! answered from this model, and the case-study binaries render it as ASCII
//! art in place of the paper's bitmap figures.

use std::fmt;

use crate::ast::ChartType;

/// One data series: an optional group name and `(label, value)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Group (color channel) name for stacked/grouped charts.
    pub name: Option<String>,
    pub points: Vec<(String, f64)>,
}

impl Series {
    pub fn new(points: Vec<(String, f64)>) -> Self {
        Self { name: None, points }
    }

    pub fn named(name: impl Into<String>, points: Vec<(String, f64)>) -> Self {
        Self {
            name: Some(name.into()),
            points,
        }
    }
}

/// The chart produced by executing a DV query.
#[derive(Debug, Clone, PartialEq)]
pub struct Chart {
    pub chart_type: ChartType,
    pub x_label: String,
    pub y_label: String,
    pub series: Vec<Series>,
}

impl Chart {
    /// Total number of rendered parts (bars, slices, points) across series.
    pub fn part_count(&self) -> usize {
        self.series.iter().map(|s| s.points.len()).sum()
    }

    /// All values across series.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.1))
    }

    /// Smallest value in the chart, if any part exists.
    pub fn min_value(&self) -> Option<f64> {
        self.values().fold(None, |acc, v| match acc {
            Some(m) if m <= v => Some(m),
            _ => Some(v),
        })
    }

    /// Largest value in the chart, if any part exists.
    pub fn max_value(&self) -> Option<f64> {
        self.values().fold(None, |acc, v| match acc {
            Some(m) if m >= v => Some(m),
            _ => Some(v),
        })
    }

    /// Sum of all values.
    pub fn total(&self) -> f64 {
        self.values().sum()
    }

    /// Whether any two parts share the same y value (FeVisQA: "is any equal
    /// value of y-axis in the chart?").
    pub fn has_equal_values(&self) -> bool {
        let vals: Vec<f64> = self.values().collect();
        for (i, a) in vals.iter().enumerate() {
            for b in &vals[i + 1..] {
                if (a - b).abs() < 1e-9 {
                    return true;
                }
            }
        }
        false
    }

    /// Value for a label in the first matching series.
    pub fn value_of(&self, label: &str) -> Option<f64> {
        self.series.iter().find_map(|s| {
            s.points
                .iter()
                .find(|(l, _)| l.eq_ignore_ascii_case(label))
                .map(|p| p.1)
        })
    }

    /// Label of the largest part.
    pub fn argmax_label(&self) -> Option<&str> {
        self.series
            .iter()
            .flat_map(|s| s.points.iter())
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|p| p.0.as_str())
    }

    /// Renders a fixed-width ASCII view (bar lengths proportional to value),
    /// the reproduction's stand-in for the paper's chart bitmaps.
    pub fn render_ascii(&self, width: usize) -> String {
        let mut out = format!(
            "[{} chart] {} vs {}\n",
            self.chart_type, self.x_label, self.y_label
        );
        let max = self.max_value().unwrap_or(1.0).max(1e-9);
        let label_w = self
            .series
            .iter()
            .flat_map(|s| s.points.iter())
            .map(|(l, _)| l.len())
            .max()
            .unwrap_or(0);
        for s in &self.series {
            if let Some(name) = &s.name {
                out.push_str(&format!("-- series: {name}\n"));
            }
            for (label, value) in &s.points {
                let bar_len = ((value / max) * width as f64).round().max(0.0) as usize;
                out.push_str(&format!(
                    "{label:<label_w$} | {} {value}\n",
                    "#".repeat(bar_len.min(width))
                ));
            }
        }
        out
    }
}

impl fmt::Display for Chart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_ascii(32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn film_chart() -> Chart {
        // The Figure 8a example: three parts with values 1, 6, 2.
        Chart {
            chart_type: ChartType::Bar,
            x_label: "film.type".into(),
            y_label: "count ( film.type )".into(),
            series: vec![Series::new(vec![
                ("mass human sacrifice".into(), 1.0),
                ("mass suicide".into(), 6.0),
                ("mass suicide murder".into(), 2.0),
            ])],
        }
    }

    #[test]
    fn fevisqa_measures_match_figure8() {
        let c = film_chart();
        assert_eq!(c.part_count(), 3);
        assert_eq!(c.min_value(), Some(1.0));
        assert_eq!(c.max_value(), Some(6.0));
        assert_eq!(c.total(), 9.0);
        assert!(!c.has_equal_values());
    }

    #[test]
    fn equal_values_detected() {
        let mut c = film_chart();
        c.series[0].points.push(("again".into(), 6.0));
        assert!(c.has_equal_values());
    }

    #[test]
    fn value_of_is_case_insensitive() {
        let c = film_chart();
        assert_eq!(c.value_of("Mass Suicide"), Some(6.0));
        assert_eq!(c.value_of("missing"), None);
    }

    #[test]
    fn argmax_label_finds_biggest_part() {
        assert_eq!(film_chart().argmax_label(), Some("mass suicide"));
    }

    #[test]
    fn ascii_render_contains_labels_and_bars() {
        let text = film_chart().render_ascii(20);
        assert!(text.contains("mass suicide"));
        assert!(text.contains('#'));
        assert!(text.starts_with("[bar chart]"));
    }

    #[test]
    fn empty_chart_is_safe() {
        let c = Chart {
            chart_type: ChartType::Pie,
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![],
        };
        assert_eq!(c.part_count(), 0);
        assert_eq!(c.min_value(), None);
        assert_eq!(c.total(), 0.0);
        assert!(!c.has_equal_values());
    }

    #[test]
    fn grouped_series_counts_all_parts() {
        let c = Chart {
            chart_type: ChartType::StackedBar,
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![
                Series::named("a", vec![("p".into(), 1.0)]),
                Series::named("b", vec![("p".into(), 2.0), ("q".into(), 3.0)]),
            ],
        };
        assert_eq!(c.part_count(), 3);
        assert!(c.render_ascii(10).contains("series: a"));
    }
}
