//! DV knowledge encoding (§III-C): linearizing schemas and tables.
//!
//! * schema: `db_name | table: table.col1, table.col2 | other: …`
//! * table: `col : c1 | c2 row 1 : v11 | v12 row 2 : …`
//!
//! Both forms follow the standardized encoding (lowercase, columns
//! qualified by their table) so the text modality and the DV modality share
//! a single surface vocabulary.

use crate::schema::DbSchema;

/// Linearizes a database schema into flat text.
///
/// The database name is prefixed and tables are separated by `|`, each
/// formatted as `table: table.col1, table.col2, …` with qualified,
/// lowercased column names.
pub fn encode_schema(schema: &DbSchema) -> String {
    let mut out = schema.name.to_ascii_lowercase();
    for t in &schema.tables {
        let tname = t.name.to_ascii_lowercase();
        out.push_str(" | ");
        out.push_str(&tname);
        out.push_str(" : ");
        for (i, c) in t.columns.iter().enumerate() {
            if i > 0 {
                out.push_str(" , ");
            }
            out.push_str(&tname);
            out.push('.');
            out.push_str(&c.to_ascii_lowercase());
        }
    }
    out
}

/// A value-level table view for linearization: a header plus rows of
/// display strings. The storage crate converts its typed tables into this.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinearTable {
    /// Column headers, already in standardized form (e.g.
    /// `artist.country`, `count ( artist.country )`).
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl LinearTable {
    pub fn new(headers: Vec<String>, rows: Vec<Vec<String>>) -> Self {
        Self { headers, rows }
    }

    /// Number of cells (`rows × columns`), the quantity the paper filters
    /// on (≤ 150 cells, §IV-B).
    pub fn cell_count(&self) -> usize {
        self.rows.len() * self.headers.len()
    }
}

/// Linearizes a table following TAPAS-style encoding (§III-C):
/// `col : h1 | h2 row 1 : v11 | v12 row 2 : v21 | v22 …`.
pub fn encode_table(table: &LinearTable) -> String {
    let mut out = String::from("col :");
    for (i, h) in table.headers.iter().enumerate() {
        if i > 0 {
            out.push_str(" |");
        }
        out.push(' ');
        out.push_str(&h.to_ascii_lowercase());
    }
    for (r, row) in table.rows.iter().enumerate() {
        out.push_str(&format!(" row {} :", r + 1));
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                out.push_str(" |");
            }
            out.push(' ');
            out.push_str(&v.to_ascii_lowercase());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;

    #[test]
    fn schema_encoding_matches_figure3() {
        let schema = DbSchema::new(
            "theme_gallery",
            vec![TableSchema::new(
                "artist",
                vec![
                    "age".into(),
                    "name".into(),
                    "country".into(),
                    "year_join".into(),
                    "artist_id".into(),
                ],
            )],
        );
        assert_eq!(
            encode_schema(&schema),
            "theme_gallery | artist : artist.age , artist.name , artist.country , \
             artist.year_join , artist.artist_id"
        );
    }

    #[test]
    fn schema_encoding_joins_tables_with_pipe() {
        let schema = DbSchema::new(
            "Soccer_1",
            vec![
                TableSchema::new("Player", vec!["ID".into()]),
                TableSchema::new("Team", vec!["Name".into()]),
            ],
        );
        assert_eq!(
            encode_schema(&schema),
            "soccer_1 | player : player.id | team : team.name"
        );
    }

    #[test]
    fn table_encoding_matches_figure3() {
        let t = LinearTable::new(
            vec!["artist.country".into(), "count ( artist.country )".into()],
            vec![
                vec!["united states".into(), "4".into()],
                vec!["england".into(), "1".into()],
            ],
        );
        assert_eq!(
            encode_table(&t),
            "col : artist.country | count ( artist.country ) \
             row 1 : united states | 4 row 2 : england | 1"
        );
    }

    #[test]
    fn cell_count_is_rows_times_columns() {
        let t = LinearTable::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec![vec!["1".into(), "2".into(), "3".into()]; 4],
        );
        assert_eq!(t.cell_count(), 12);
    }

    #[test]
    fn empty_table_encodes_header_only() {
        let t = LinearTable::new(vec!["x".into()], vec![]);
        assert_eq!(encode_table(&t), "col : x");
        assert_eq!(t.cell_count(), 0);
    }
}
