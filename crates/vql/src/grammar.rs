//! Clause automaton for grammar-constrained decoding.
//!
//! The ncNet baseline decodes under a hard grammar mask: at every step only
//! tokens that can extend the prefix into a valid DV query are allowed.
//! [`GrammarConstraint::allowed_next`] returns that set for a whitespace
//! token prefix, drawing identifiers from the database schema and literal
//! values from a caller-provided pool (string literals are single
//! whitespace tokens that keep their quotes, e.g. `'usa'`).
//!
//! The automaton covers the flat query grammar (no `in`-subqueries); this
//! mirrors the published ncNet, which does not emit nested queries.

use crate::schema::DbSchema;

/// Grammar-constrained next-token oracle over a schema.
pub struct GrammarConstraint {
    tables: Vec<String>,
    columns: Vec<String>,
    /// Literal tokens that may appear after comparison operators
    /// (pre-quoted strings and numbers harvested from the NL question).
    literal_pool: Vec<String>,
}

/// Marker token a decoder may emit to finish the query.
pub const EOS: &str = "</s>";

const AGGS: [&str; 5] = ["count", "sum", "avg", "max", "min"];
const OPS: [&str; 6] = ["=", "!=", "<", "<=", ">", ">="];
const CHART_FIRST: [&str; 6] = ["bar", "pie", "line", "scatter", "stacked", "grouping"];

impl GrammarConstraint {
    /// Builds the oracle, precomputing the lowercase table and qualified
    /// column identifier sets once (they are consulted at every decode
    /// step).
    pub fn new(schema: &DbSchema, literal_pool: Vec<String>) -> Self {
        let tables = schema
            .tables
            .iter()
            .map(|t| t.name.to_ascii_lowercase())
            .collect();
        let mut columns = Vec::new();
        for t in &schema.tables {
            let tn = t.name.to_ascii_lowercase();
            for c in &t.columns {
                columns.push(format!("{tn}.{}", c.to_ascii_lowercase()));
            }
        }
        Self {
            tables,
            columns,
            literal_pool,
        }
    }

    fn table_names(&self) -> &[String] {
        &self.tables
    }

    fn qualified_columns(&self) -> &[String] {
        &self.columns
    }

    /// Legal next tokens (including possibly [`EOS`]) for a prefix of
    /// whitespace tokens. An empty result means the prefix itself is
    /// invalid.
    pub fn allowed_next(&self, prefix: &[&str]) -> Vec<String> {
        use State::*;
        let mut st = ExpectVisualize;
        for tok in prefix {
            st = match self.step(st, tok) {
                Some(next) => next,
                None => return Vec::new(),
            };
        }
        self.allowed_for(st)
    }

    fn step(&self, st: State, tok: &str) -> Option<State> {
        use State::*;
        let is_col = |t: &str| self.qualified_columns().iter().any(|c| c == t);
        let is_table = |t: &str| self.table_names().iter().any(|n| n == t);
        let is_literal = |t: &str| self.literal_pool.iter().any(|l| l == t);
        Some(match (st, tok) {
            (ExpectVisualize, "visualize") => ExpectChart,
            (ExpectChart, "stacked") => ExpectStackedBar,
            (ExpectChart, "grouping") => ExpectGroupingKind,
            (ExpectChart, t) if ["bar", "pie", "line", "scatter"].contains(&t) => ExpectSelect,
            (ExpectStackedBar, "bar") => ExpectSelect,
            (ExpectGroupingKind, t) if ["line", "scatter"].contains(&t) => ExpectSelect,
            (ExpectSelect, "select") => ExpectItem,
            (ExpectItem, t) if AGGS.contains(&t) => ExpectOpenParen,
            (ExpectItem, t) if is_col(t) => AfterItem,
            (ExpectOpenParen, "(") => ExpectAggCol,
            (ExpectAggCol, t) if is_col(t) => ExpectCloseParen,
            (ExpectCloseParen, ")") => AfterItem,
            (AfterItem, ",") => ExpectItem,
            (AfterItem, "from") => ExpectTable,
            (ExpectTable, t) if is_table(t) => AfterFrom,
            (AfterFrom, "join") => ExpectJoinTable,
            (AfterFrom, "where") => ExpectWhereCol,
            (AfterFrom, "group") | (AfterPredicate, "group") | (AfterJoin, "group") => {
                ExpectGroupByKw
            }
            (AfterFrom, "order")
            | (AfterPredicate, "order")
            | (AfterJoin, "order")
            | (AfterGroupCol, "order") => ExpectOrderByKw,
            (AfterFrom, "bin")
            | (AfterPredicate, "bin")
            | (AfterJoin, "bin")
            | (AfterGroupCol, "bin")
            | (AfterOrderDir, "bin") => ExpectBinCol,
            (ExpectJoinTable, t) if is_table(t) => ExpectOn,
            (ExpectOn, "on") => ExpectJoinLeft,
            (ExpectJoinLeft, t) if is_col(t) => ExpectJoinEq,
            (ExpectJoinEq, "=") => ExpectJoinRight,
            (ExpectJoinRight, t) if is_col(t) => AfterJoin,
            (AfterJoin, "where") => ExpectWhereCol,
            (ExpectWhereCol, t) if is_col(t) => ExpectOp,
            (ExpectOp, t) if OPS.contains(&t) || t == "like" => ExpectValue,
            (ExpectValue, t) if is_literal(t) || t.parse::<f64>().is_ok() => AfterPredicate,
            (AfterPredicate, "and") => ExpectWhereCol,
            (ExpectGroupByKw, "by") => ExpectGroupCol,
            (ExpectGroupCol, t) if is_col(t) => AfterGroupCol,
            (AfterGroupCol, ",") => ExpectGroupCol,
            (ExpectOrderByKw, "by") => ExpectOrderItem,
            (ExpectOrderItem, t) if AGGS.contains(&t) => ExpectOrderOpenParen,
            (ExpectOrderItem, t) if is_col(t) => ExpectOrderDir,
            (ExpectOrderOpenParen, "(") => ExpectOrderAggCol,
            (ExpectOrderAggCol, t) if is_col(t) => ExpectOrderCloseParen,
            (ExpectOrderCloseParen, ")") => ExpectOrderDir,
            (ExpectOrderDir, "asc") | (ExpectOrderDir, "desc") => AfterOrderDir,
            (ExpectBinCol, t) if is_col(t) => ExpectBinByKw,
            (ExpectBinByKw, "by") => ExpectBinUnit,
            (ExpectBinUnit, t) if ["year", "month", "day", "weekday"].contains(&t) => Finished,
            _ => return None,
        })
    }

    fn allowed_for(&self, st: State) -> Vec<String> {
        use State::*;
        let strs = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        match st {
            ExpectVisualize => strs(&["visualize"]),
            ExpectChart => strs(&CHART_FIRST),
            ExpectStackedBar => strs(&["bar"]),
            ExpectGroupingKind => strs(&["line", "scatter"]),
            ExpectSelect => strs(&["select"]),
            ExpectItem => {
                let mut v = strs(&AGGS);
                v.extend(self.qualified_columns().iter().cloned());
                v
            }
            ExpectOpenParen | ExpectOrderOpenParen => strs(&["("]),
            ExpectAggCol | ExpectOrderAggCol | ExpectGroupCol | ExpectWhereCol | ExpectJoinLeft
            | ExpectJoinRight | ExpectBinCol => self.qualified_columns().to_vec(),
            ExpectCloseParen | ExpectOrderCloseParen => strs(&[")"]),
            AfterItem => strs(&[",", "from"]),
            ExpectTable | ExpectJoinTable => self.table_names().to_vec(),
            AfterFrom => {
                let mut v = strs(&["join", "where", "group", "order", "bin"]);
                v.push(EOS.to_string());
                v
            }
            ExpectOn => strs(&["on"]),
            ExpectJoinEq => strs(&["="]),
            AfterJoin => {
                let mut v = strs(&["where", "group", "order", "bin"]);
                v.push(EOS.to_string());
                v
            }
            ExpectOp => {
                let mut v = strs(&OPS);
                v.push("like".to_string());
                v
            }
            ExpectValue => self.literal_pool.clone(),
            AfterPredicate => {
                let mut v = strs(&["and", "group", "order", "bin"]);
                v.push(EOS.to_string());
                v
            }
            ExpectGroupByKw | ExpectOrderByKw | ExpectBinByKw => strs(&["by"]),
            AfterGroupCol => {
                let mut v = strs(&[",", "order", "bin"]);
                v.push(EOS.to_string());
                v
            }
            ExpectOrderItem => {
                let mut v = strs(&AGGS);
                v.extend(self.qualified_columns().iter().cloned());
                v
            }
            ExpectOrderDir => strs(&["asc", "desc"]),
            AfterOrderDir => {
                let mut v = strs(&["bin"]);
                v.push(EOS.to_string());
                v
            }
            ExpectBinUnit => strs(&["year", "month", "day", "weekday"]),
            Finished => vec![EOS.to_string()],
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    ExpectVisualize,
    ExpectChart,
    ExpectStackedBar,
    ExpectGroupingKind,
    ExpectSelect,
    ExpectItem,
    ExpectOpenParen,
    ExpectAggCol,
    ExpectCloseParen,
    AfterItem,
    ExpectTable,
    AfterFrom,
    ExpectJoinTable,
    ExpectOn,
    ExpectJoinLeft,
    ExpectJoinEq,
    ExpectJoinRight,
    AfterJoin,
    ExpectWhereCol,
    ExpectOp,
    ExpectValue,
    AfterPredicate,
    ExpectGroupByKw,
    ExpectGroupCol,
    AfterGroupCol,
    ExpectOrderByKw,
    ExpectOrderItem,
    ExpectOrderOpenParen,
    ExpectOrderAggCol,
    ExpectOrderCloseParen,
    ExpectOrderDir,
    AfterOrderDir,
    ExpectBinCol,
    ExpectBinByKw,
    ExpectBinUnit,
    Finished,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;

    fn schema() -> DbSchema {
        DbSchema::new(
            "g",
            vec![
                TableSchema::new("artist", vec!["country".into(), "age".into()]),
                TableSchema::new("exhibit", vec!["artist_id".into()]),
            ],
        )
    }

    #[test]
    fn empty_prefix_requires_visualize() {
        let g = GrammarConstraint::new(&schema(), vec![]);
        assert_eq!(g.allowed_next(&[]), vec!["visualize".to_string()]);
    }

    #[test]
    fn chart_position_offers_all_chart_openers() {
        let g = GrammarConstraint::new(&schema(), vec![]);
        let allowed = g.allowed_next(&["visualize"]);
        assert!(allowed.contains(&"pie".to_string()));
        assert!(allowed.contains(&"stacked".to_string()));
        assert!(!allowed.contains(&"select".to_string()));
    }

    #[test]
    fn select_items_draw_from_schema() {
        let g = GrammarConstraint::new(&schema(), vec![]);
        let allowed = g.allowed_next(&["visualize", "pie", "select"]);
        assert!(allowed.contains(&"artist.country".to_string()));
        assert!(allowed.contains(&"count".to_string()));
        assert!(!allowed.contains(&"artist".to_string()));
    }

    #[test]
    fn complete_query_prefix_allows_eos() {
        let g = GrammarConstraint::new(&schema(), vec![]);
        let prefix = [
            "visualize",
            "pie",
            "select",
            "artist.country",
            ",",
            "count",
            "(",
            "artist.country",
            ")",
            "from",
            "artist",
            "group",
            "by",
            "artist.country",
        ];
        let allowed = g.allowed_next(&prefix);
        assert!(allowed.contains(&EOS.to_string()));
        assert!(allowed.contains(&"order".to_string()));
    }

    #[test]
    fn invalid_prefix_returns_empty() {
        let g = GrammarConstraint::new(&schema(), vec![]);
        assert!(g.allowed_next(&["visualize", "select"]).is_empty());
        assert!(g
            .allowed_next(&["visualize", "pie", "select", "artist"])
            .is_empty());
    }

    #[test]
    fn values_come_from_literal_pool() {
        let g = GrammarConstraint::new(&schema(), vec!["'usa'".into()]);
        let prefix = [
            "visualize",
            "bar",
            "select",
            "artist.country",
            ",",
            "artist.age",
            "from",
            "artist",
            "where",
            "artist.age",
            ">",
        ];
        assert_eq!(g.allowed_next(&prefix), vec!["'usa'".to_string()]);
        let after = [
            "visualize",
            "bar",
            "select",
            "artist.country",
            ",",
            "artist.age",
            "from",
            "artist",
            "where",
            "artist.age",
            ">",
            "'usa'",
        ];
        assert!(g.allowed_next(&after).contains(&"and".to_string()));
    }

    #[test]
    fn numbers_accepted_as_values() {
        let g = GrammarConstraint::new(&schema(), vec!["30".into()]);
        let prefix = [
            "visualize",
            "bar",
            "select",
            "artist.country",
            ",",
            "artist.age",
            "from",
            "artist",
            "where",
            "artist.age",
            ">",
            "30",
        ];
        assert!(g.allowed_next(&prefix).contains(&EOS.to_string()));
    }

    #[test]
    fn join_path_reaches_eos() {
        let g = GrammarConstraint::new(&schema(), vec![]);
        let prefix = [
            "visualize",
            "bar",
            "select",
            "artist.country",
            ",",
            "count",
            "(",
            "artist.country",
            ")",
            "from",
            "artist",
            "join",
            "exhibit",
            "on",
            "artist.age",
            "=",
            "exhibit.artist_id",
            "group",
            "by",
            "artist.country",
        ];
        let allowed = g.allowed_next(&prefix);
        assert!(allowed.contains(&EOS.to_string()));
    }

    #[test]
    fn every_standardized_query_token_is_grammatical() {
        // Walk a full standardized query through the automaton, asserting
        // each token was in the allowed set of its prefix.
        let g = GrammarConstraint::new(&schema(), vec!["'usa'".into()]);
        let toks: Vec<&str> = "visualize bar select artist.country , count ( artist.country ) \
                               from artist where artist.country = 'usa' group by artist.country \
                               order by count ( artist.country ) desc"
            .split_whitespace()
            .collect();
        for i in 0..toks.len() {
            let allowed = g.allowed_next(&toks[..i]);
            assert!(
                allowed.iter().any(|a| a == toks[i]),
                "token {} '{}' not allowed after {:?} (allowed: {:?})",
                i,
                toks[i],
                &toks[..i],
                allowed
            );
        }
        assert!(g.allowed_next(&toks).contains(&EOS.to_string()));
    }
}
