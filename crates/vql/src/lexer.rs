//! Tokenizer for DV query text.
//!
//! The lexer is tolerant of annotator style: keywords in any case, single
//! or double quoted strings, optional whitespace around punctuation, and
//! dotted identifiers (`t1.price` lexes as one [`Token::Ident`]).

use std::fmt;

/// Lexical token of the DV query language.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier word (case preserved; parser folds case for
    /// keyword matching). May contain dots (`table.column`) and `*`.
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Quoted string literal (quotes stripped).
    Str(String),
    LParen,
    RParen,
    Comma,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => f.write_str(s),
            Token::Number(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Comma => f.write_str(","),
            Token::Eq => f.write_str("="),
            Token::Ne => f.write_str("!="),
            Token::Lt => f.write_str("<"),
            Token::Le => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::Ge => f.write_str(">="),
        }
    }
}

/// Lexing failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Splits DV query text into tokens. Input may be arbitrary UTF-8; error
/// offsets are byte positions.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    // Work on (byte_offset, char) pairs so multi-byte characters never
    // split.
    let chars: Vec<(usize, char)> = input.char_indices().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let at = |i: usize| chars.get(i).map(|&(_, c)| c);
    while i < chars.len() {
        let (offset, c) = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ';' => i += 1,
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if at(i + 1) == Some('=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(LexError {
                        offset,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '<' => {
                if at(i + 1) == Some('=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else if at(i + 1) == Some('>') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if at(i + 1) == Some('=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let mut j = i + 1;
                let mut text = String::new();
                while j < chars.len() && chars[j].1 != quote {
                    text.push(chars[j].1);
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(LexError {
                        offset,
                        message: "unterminated string literal".into(),
                    });
                }
                tokens.push(Token::Str(text));
                i = j + 1;
            }
            '*' => {
                tokens.push(Token::Ident("*".into()));
                i += 1;
            }
            c if c.is_ascii_digit()
                || (c == '-' && at(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let mut text = String::from(c);
                i += 1;
                while let Some(d) = at(i) {
                    if d.is_ascii_digit() || d == '.' {
                        text.push(d);
                        i += 1;
                    } else {
                        break;
                    }
                }
                let n: f64 = text.parse().map_err(|_| LexError {
                    offset,
                    message: format!("invalid number '{text}'"),
                })?;
                tokens.push(Token::Number(n));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut text = String::from(c);
                i += 1;
                while let Some(d) = at(i) {
                    if d.is_alphanumeric() || d == '_' || d == '.' {
                        text.push(d);
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(text));
            }
            other => {
                return Err(LexError {
                    offset,
                    message: format!("unexpected character '{other}'"),
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_pie_query() {
        let toks = lex("VISUALIZE PIE SELECT Country, COUNT(Country) FROM artist").unwrap();
        assert_eq!(toks[0], Token::Ident("VISUALIZE".into()));
        assert_eq!(toks[4], Token::Comma);
        assert_eq!(toks[5], Token::Ident("COUNT".into()));
        assert_eq!(toks[6], Token::LParen);
        assert_eq!(toks[8], Token::RParen);
    }

    #[test]
    fn dotted_identifiers_stay_whole() {
        let toks = lex("t1.price >= 2.5").unwrap();
        assert_eq!(toks[0], Token::Ident("t1.price".into()));
        assert_eq!(toks[1], Token::Ge);
        assert_eq!(toks[2], Token::Number(2.5));
    }

    #[test]
    fn both_quote_styles_accepted() {
        let a = lex("name = \"Columbus Crew\"").unwrap();
        let b = lex("name = 'Columbus Crew'").unwrap();
        assert_eq!(a, b);
        assert_eq!(a[2], Token::Str("Columbus Crew".into()));
    }

    #[test]
    fn negative_numbers_and_operators() {
        let toks = lex("x < -3 and y != 7").unwrap();
        assert_eq!(toks[1], Token::Lt);
        assert_eq!(toks[2], Token::Number(-3.0));
        assert_eq!(toks[5], Token::Ne);
    }

    #[test]
    fn angle_ne_is_accepted() {
        let toks = lex("x <> 1").unwrap();
        assert_eq!(toks[1], Token::Ne);
    }

    #[test]
    fn unterminated_string_errors() {
        let err = lex("name = 'oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.offset, 7);
    }

    #[test]
    fn unexpected_character_errors_with_offset() {
        let err = lex("a $ b").unwrap_err();
        assert_eq!(err.offset, 2);
    }

    #[test]
    fn wildcard_star_is_ident() {
        let toks = lex("count(*)").unwrap();
        assert_eq!(toks[2], Token::Ident("*".into()));
    }
}
