//! A lightweight database-schema view shared across the workspace.
//!
//! The storage engine has its own typed catalog; this crate only needs
//! names (database, tables, columns) for standardization, encoding, and
//! grammar-constrained decoding, so the view is deliberately string-based.

/// Names of one table and its columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<String>,
}

impl TableSchema {
    pub fn new(name: impl Into<String>, columns: Vec<String>) -> Self {
        Self {
            name: name.into(),
            columns,
        }
    }
}

/// Names of a database, its tables, and their columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DbSchema {
    pub name: String,
    pub tables: Vec<TableSchema>,
}

impl DbSchema {
    pub fn new(name: impl Into<String>, tables: Vec<TableSchema>) -> Self {
        Self {
            name: name.into(),
            tables,
        }
    }

    /// Looks up a table by (case-insensitive) name.
    pub fn table(&self, name: &str) -> Option<&TableSchema> {
        self.tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// Columns of a table, or an empty slice when absent.
    pub fn columns_of(&self, table: &str) -> &[String] {
        self.table(table)
            .map(|t| t.columns.as_slice())
            .unwrap_or(&[])
    }

    /// Finds the table(s) containing a column name.
    pub fn tables_with_column(&self, column: &str) -> Vec<&str> {
        self.tables
            .iter()
            .filter(|t| t.columns.iter().any(|c| c.eq_ignore_ascii_case(column)))
            .map(|t| t.name.as_str())
            .collect()
    }

    /// A sub-schema restricted to the given tables (used by schema
    /// filtration, §III-B). Tables are kept in the original order.
    pub fn restricted_to(&self, tables: &[&str]) -> DbSchema {
        DbSchema {
            name: self.name.clone(),
            tables: self
                .tables
                .iter()
                .filter(|t| tables.iter().any(|n| n.eq_ignore_ascii_case(&t.name)))
                .cloned()
                .collect(),
        }
    }
}

/// Column-type oracle for semantic lints.
///
/// [`DbSchema`] is deliberately name-only, but the V002 lint (aggregate on
/// a non-numeric column) needs to know which columns can feed `sum`/`avg`.
/// This crate must not depend on the storage engine, so callers that have a
/// typed catalog project it into this map (keys are lowercase
/// `"table.column"`) and pass it to [`crate::validate::lint`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnTypes {
    numeric: std::collections::BTreeMap<String, bool>,
}

impl ColumnTypes {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records whether `table.column` holds numeric values.
    pub fn insert(&mut self, table: &str, column: &str, numeric: bool) {
        self.numeric.insert(
            format!(
                "{}.{}",
                table.to_ascii_lowercase(),
                column.to_ascii_lowercase()
            ),
            numeric,
        );
    }

    /// Whether a qualified column is numeric; `None` when unknown.
    pub fn is_numeric(&self, table: &str, column: &str) -> Option<bool> {
        self.numeric
            .get(&format!(
                "{}.{}",
                table.to_ascii_lowercase(),
                column.to_ascii_lowercase()
            ))
            .copied()
    }

    /// Resolves an *unqualified* column conservatively: `Some(true)` if any
    /// known table holds it as numeric, `Some(false)` if it appears only as
    /// non-numeric, `None` if no table records it at all.
    pub fn is_numeric_anywhere(&self, column: &str) -> Option<bool> {
        let suffix = format!(".{}", column.to_ascii_lowercase());
        let mut seen = false;
        for (key, &numeric) in &self.numeric {
            if key.ends_with(&suffix) {
                if numeric {
                    return Some(true);
                }
                seen = true;
            }
        }
        seen.then_some(false)
    }

    pub fn len(&self) -> usize {
        self.numeric.len()
    }

    pub fn is_empty(&self) -> bool {
        self.numeric.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> DbSchema {
        DbSchema::new(
            "theme_gallery",
            vec![
                TableSchema::new(
                    "artist",
                    vec![
                        "artist_id".into(),
                        "name".into(),
                        "country".into(),
                        "year_join".into(),
                        "age".into(),
                    ],
                ),
                TableSchema::new(
                    "exhibit",
                    vec!["exhibit_id".into(), "artist_id".into(), "theme".into()],
                ),
            ],
        )
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = schema();
        assert!(s.table("ARTIST").is_some());
        assert_eq!(s.columns_of("artist").len(), 5);
        assert!(s.columns_of("missing").is_empty());
    }

    #[test]
    fn tables_with_column_finds_shared_columns() {
        let s = schema();
        let hits = s.tables_with_column("artist_id");
        assert_eq!(hits, vec!["artist", "exhibit"]);
    }

    #[test]
    fn restriction_preserves_order_and_content() {
        let s = schema();
        let sub = s.restricted_to(&["exhibit"]);
        assert_eq!(sub.tables.len(), 1);
        assert_eq!(sub.tables[0].name, "exhibit");
        assert_eq!(sub.name, "theme_gallery");
    }

    #[test]
    fn column_types_lookup_is_case_insensitive() {
        let mut ct = ColumnTypes::new();
        ct.insert("Artist", "Age", true);
        ct.insert("artist", "country", false);
        assert_eq!(ct.is_numeric("ARTIST", "age"), Some(true));
        assert_eq!(ct.is_numeric("artist", "Country"), Some(false));
        assert_eq!(ct.is_numeric("artist", "missing"), None);
        assert_eq!(ct.len(), 2);
    }

    #[test]
    fn unqualified_resolution_is_conservative() {
        let mut ct = ColumnTypes::new();
        ct.insert("artist", "age", true);
        ct.insert("exhibit", "theme", false);
        ct.insert("gallery", "theme", false);
        // Numeric in at least one table → treated as numeric.
        assert_eq!(ct.is_numeric_anywhere("age"), Some(true));
        // Non-numeric everywhere it appears.
        assert_eq!(ct.is_numeric_anywhere("theme"), Some(false));
        // Unknown column.
        assert_eq!(ct.is_numeric_anywhere("nope"), None);
    }
}
