//! Standardized encoding of DV queries (§III-D of the paper).
//!
//! Annotated corpora contain stylistic variation that does not change query
//! semantics but does inflate the learning problem. The paper's five rules
//! are applied here:
//!
//! 1. qualify every selected/filtered column as `table.column`, and expand
//!    `count(*)` into `count(table.key_column)` for uniformity;
//! 2. spaces around parentheses, single quotes for strings — realised by
//!    the canonical `Display` impls in [`crate::ast`];
//! 3. insert an explicit `asc` when `order by` omits a direction — realised
//!    in the parser, which defaults to [`crate::ast::OrderDir::Asc`];
//! 4. drop `AS` clauses and substitute aliases (`T1`, `T2`) with actual
//!    table names — realised in the parser, which resolves aliases eagerly;
//! 5. lowercase everything.
//!
//! [`standardize`] is idempotent: applying it twice yields the same query.

use crate::ast::{ColExpr, ColumnRef, Predicate, Query, Subquery};
use crate::schema::DbSchema;

/// Applies the standardized encoding to a parsed query.
///
/// `schema` supplies the table→column map used to qualify bare columns and
/// to pick the representative column that replaces `count(*)` (the first
/// column of the primary table, which for our corpora is its key).
pub fn standardize(query: &Query, schema: &DbSchema) -> Query {
    let mut q = query.clone();
    lowercase_query(&mut q);
    let primary = q.from.clone();
    let join_table = q.join.as_ref().map(|j| j.table.clone());
    for expr in &mut q.select {
        qualify_expr(expr, &primary, join_table.as_deref(), schema);
    }
    if let Some(j) = &mut q.join {
        qualify_col(&mut j.left, &primary, join_table.as_deref(), schema);
        qualify_col(&mut j.right, &primary, join_table.as_deref(), schema);
    }
    qualify_predicates(&mut q.filters, &primary, join_table.as_deref(), schema);
    for c in &mut q.group_by {
        qualify_col(c, &primary, join_table.as_deref(), schema);
    }
    if let Some(o) = &mut q.order_by {
        qualify_expr(&mut o.expr, &primary, join_table.as_deref(), schema);
    }
    if let Some(b) = &mut q.bin {
        qualify_col(&mut b.column, &primary, join_table.as_deref(), schema);
    }
    q
}

/// Parses and standardizes in one step; `Err` carries the parse failure.
pub fn parse_standardized(text: &str, schema: &DbSchema) -> Result<Query, crate::ParseError> {
    let q = crate::parse_query(text)?;
    Ok(standardize(&q, schema))
}

fn lowercase_query(q: &mut Query) {
    let lower = |c: &mut ColumnRef| {
        if let Some(t) = &mut c.table {
            *t = t.to_ascii_lowercase();
        }
        c.column = c.column.to_ascii_lowercase();
    };
    q.from = q.from.to_ascii_lowercase();
    for s in &mut q.select {
        lower(s.column_ref_mut());
    }
    if let Some(j) = &mut q.join {
        j.table = j.table.to_ascii_lowercase();
        lower(&mut j.left);
        lower(&mut j.right);
    }
    lowercase_predicates(&mut q.filters);
    for c in &mut q.group_by {
        lower(c);
    }
    if let Some(o) = &mut q.order_by {
        lower(o.expr.column_ref_mut());
    }
    if let Some(b) = &mut q.bin {
        lower(&mut b.column);
    }
}

fn lowercase_predicates(preds: &mut [Predicate]) {
    let lower = |c: &mut ColumnRef| {
        if let Some(t) = &mut c.table {
            *t = t.to_ascii_lowercase();
        }
        c.column = c.column.to_ascii_lowercase();
    };
    for p in preds {
        match p {
            Predicate::Compare { left, right, .. } => {
                lower(left);
                if let crate::ast::Literal::Text(s) = right {
                    *s = s.to_ascii_lowercase();
                }
            }
            Predicate::In { left, sub, .. } => {
                lower(left);
                sub.from = sub.from.to_ascii_lowercase();
                lower(&mut sub.select);
                if let Some(j) = &mut sub.join {
                    j.table = j.table.to_ascii_lowercase();
                    lower(&mut j.left);
                    lower(&mut j.right);
                }
                lowercase_predicates(&mut sub.filters);
            }
        }
    }
}

fn qualify_expr(expr: &mut ColExpr, primary: &str, join_table: Option<&str>, schema: &DbSchema) {
    // Rule 1: count(*) -> count(primary.first_column).
    if let ColExpr::Agg(crate::ast::AggFunc::Count, col) = expr {
        if col.is_wildcard() {
            let representative = schema
                .columns_of(primary)
                .first()
                .cloned()
                .unwrap_or_else(|| "*".to_string());
            if representative != "*" {
                *col = ColumnRef::qualified(primary, representative);
            }
            return;
        }
    }
    qualify_col(expr.column_ref_mut(), primary, join_table, schema);
}

fn qualify_col(col: &mut ColumnRef, primary: &str, join_table: Option<&str>, schema: &DbSchema) {
    if col.table.is_some() || col.is_wildcard() {
        return;
    }
    // Prefer the primary table, then the join table, then any table in the
    // schema that contains this column.
    let owner = if contains_column(schema, primary, &col.column) {
        Some(primary.to_string())
    } else if let Some(jt) = join_table {
        if contains_column(schema, jt, &col.column) {
            Some(jt.to_string())
        } else {
            first_owner(schema, &col.column)
        }
    } else {
        first_owner(schema, &col.column)
    };
    col.table = Some(owner.unwrap_or_else(|| primary.to_string()));
}

fn qualify_predicates(
    preds: &mut [Predicate],
    primary: &str,
    join_table: Option<&str>,
    schema: &DbSchema,
) {
    for p in preds {
        match p {
            Predicate::Compare { left, .. } => qualify_col(left, primary, join_table, schema),
            Predicate::In { left, sub, .. } => {
                qualify_col(left, primary, join_table, schema);
                qualify_subquery(sub, schema);
            }
        }
    }
}

fn qualify_subquery(sub: &mut Subquery, schema: &DbSchema) {
    let primary = sub.from.clone();
    let join_table = sub.join.as_ref().map(|j| j.table.clone());
    qualify_col(&mut sub.select, &primary, join_table.as_deref(), schema);
    if let Some(j) = &mut sub.join {
        qualify_col(&mut j.left, &primary, join_table.as_deref(), schema);
        qualify_col(&mut j.right, &primary, join_table.as_deref(), schema);
    }
    qualify_predicates(&mut sub.filters, &primary, join_table.as_deref(), schema);
}

fn contains_column(schema: &DbSchema, table: &str, column: &str) -> bool {
    schema
        .columns_of(table)
        .iter()
        .any(|c| c.eq_ignore_ascii_case(column))
}

fn first_owner(schema: &DbSchema, column: &str) -> Option<String> {
    schema
        .tables_with_column(column)
        .first()
        .map(|s| s.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use crate::schema::TableSchema;

    fn gallery_schema() -> DbSchema {
        DbSchema::new(
            "theme_gallery",
            vec![TableSchema::new(
                "artist",
                vec![
                    "artist_id".into(),
                    "name".into(),
                    "country".into(),
                    "year_join".into(),
                    "age".into(),
                ],
            )],
        )
    }

    fn soccer_schema() -> DbSchema {
        DbSchema::new(
            "soccer_1",
            vec![
                TableSchema::new(
                    "player",
                    vec![
                        "player_id".into(),
                        "name".into(),
                        "team_id".into(),
                        "years_played".into(),
                    ],
                ),
                TableSchema::new("team", vec!["id".into(), "name".into()]),
            ],
        )
    }

    #[test]
    fn qualifies_bare_columns_with_primary_table() {
        let q = parse_query(
            "VISUALIZE PIE SELECT Country, COUNT(Country) FROM artist GROUP BY Country",
        )
        .unwrap();
        let s = standardize(&q, &gallery_schema());
        assert_eq!(
            s.to_string(),
            "visualize pie select artist.country , count ( artist.country ) \
             from artist group by artist.country"
        );
    }

    #[test]
    fn expands_count_star_to_first_column() {
        let q =
            parse_query("visualize bar select name, count(*) from player group by name").unwrap();
        let s = standardize(&q, &soccer_schema());
        assert_eq!(
            s.select[1].column_ref(),
            &ColumnRef::qualified("player", "player_id")
        );
    }

    #[test]
    fn figure4_join_example_matches_paper() {
        // Paper Figure 4: aliases resolved, count(*) specified, single
        // quotes, explicit asc, lowercase.
        let raw = "VISUALIZE BAR SELECT T1.years_played, COUNT(T1.years_played) FROM player AS T1 \
                   JOIN team AS T2 ON T1.team_id = T2.id WHERE T2.name = \"Columbus Crew\" \
                   GROUP BY T1.years_played ORDER BY COUNT(T1.years_played)";
        let q = parse_query(raw).unwrap();
        let s = standardize(&q, &soccer_schema());
        assert_eq!(
            s.to_string(),
            "visualize bar select player.years_played , count ( player.years_played ) from player \
             join team on player.team_id = team.id where team.name = 'columbus crew' \
             group by player.years_played order by count ( player.years_played ) asc"
        );
    }

    #[test]
    fn standardize_is_idempotent() {
        let q = parse_query(
            "visualize bar select name, count(*) from player join team on player.team_id = team.id \
             group by name order by count(*) desc",
        )
        .unwrap();
        let s1 = standardize(&q, &soccer_schema());
        let s2 = standardize(&s1, &soccer_schema());
        assert_eq!(s1, s2);
    }

    #[test]
    fn join_column_prefers_join_table_when_absent_from_primary() {
        // `id` only exists in team.
        let q = parse_query(
            "visualize bar select name, count(name) from player join team on team_id = id group by name",
        )
        .unwrap();
        let s = standardize(&q, &soccer_schema());
        let j = s.join.unwrap();
        assert_eq!(j.left, ColumnRef::qualified("player", "team_id"));
        assert_eq!(j.right, ColumnRef::qualified("team", "id"));
    }

    #[test]
    fn lowercases_string_literals() {
        let q = parse_query("visualize bar select name, age from artist where country = 'USA'")
            .unwrap();
        let s = standardize(&q, &gallery_schema());
        match &s.filters[0] {
            crate::Predicate::Compare { right, .. } => {
                assert_eq!(right, &crate::Literal::Text("usa".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subquery_columns_are_qualified() {
        let schema = DbSchema::new(
            "allergy_1",
            vec![
                TableSchema::new("student", vec!["stuid".into(), "lname".into()]),
                TableSchema::new("has_allergy", vec!["stuid".into(), "allergy".into()]),
            ],
        );
        let q = parse_query(
            "visualize bar select lname, count(lname) from student where stuid not in \
             (select stuid from has_allergy) group by lname",
        )
        .unwrap();
        let s = standardize(&q, &schema);
        match &s.filters[0] {
            crate::Predicate::In { left, sub, .. } => {
                assert_eq!(left, &ColumnRef::qualified("student", "stuid"));
                assert_eq!(sub.select, ColumnRef::qualified("has_allergy", "stuid"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
