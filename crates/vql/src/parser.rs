//! Recursive-descent parser for DV queries.
//!
//! The parser accepts the tolerant surface form found in annotated corpora:
//! keywords in any case, `COUNT(*)`, double-quoted strings, `AS` aliases and
//! bare aliases (`from player as t1` / `from player t1`). Aliases are
//! resolved to their actual table names during parsing (the information is
//! not needed afterwards), which realises rule (4) of the standardized
//! encoding; the remaining rules live in [`crate::standardize`].

use std::collections::HashMap;
use std::fmt;

use crate::ast::{
    AggFunc, Bin, BinUnit, ChartType, CmpOp, ColExpr, ColumnRef, Join, Literal, OrderBy, OrderDir,
    Predicate, Query, Subquery,
};
use crate::lexer::{lex, LexError, Token};

/// Parse failure: lexical or syntactic, with location info.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    Lex(LexError),
    /// Unexpected token (or end of input) at the given token index.
    Syntax {
        at: usize,
        message: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Syntax { at, message } => {
                write!(f, "syntax error at token {at}: {message}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parses DV query text into a [`Query`].
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        aliases: HashMap::new(),
    };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing tokens after query"));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// alias (lowercase) -> actual table name.
    aliases: HashMap<String, String>,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::Syntax {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_word(&self) -> Option<String> {
        match self.peek() {
            Some(Token::Ident(s)) => Some(s.to_ascii_lowercase()),
            _ => None,
        }
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consumes the given keyword (case-insensitive) or fails.
    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek_word() {
            Some(w) if w == kw => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(format!("expected keyword '{kw}'"))),
        }
    }

    /// Consumes the keyword if present; returns whether it was.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_word().as_deref() == Some(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected identifier"))
            }
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        self.expect_kw("visualize")?;
        let chart = self.chart_type()?;
        self.expect_kw("select")?;
        let select = self.select_list()?;
        self.expect_kw("from")?;
        let from = self.table_with_alias()?;
        let join = if self.peek_word().as_deref() == Some("join") {
            Some(self.join_clause()?)
        } else {
            None
        };
        let filters = if self.eat_kw("where") {
            self.predicates()?
        } else {
            Vec::new()
        };
        let mut group_by = Vec::new();
        let mut order_by = None;
        let mut bin = None;
        loop {
            match self.peek_word().as_deref() {
                Some("group") => {
                    self.pos += 1;
                    self.expect_kw("by")?;
                    group_by.push(self.column_ref()?);
                    while matches!(self.peek(), Some(Token::Comma)) {
                        self.pos += 1;
                        group_by.push(self.column_ref()?);
                    }
                }
                Some("order") => {
                    self.pos += 1;
                    self.expect_kw("by")?;
                    let expr = self.col_expr()?;
                    let dir = if self.eat_kw("desc") {
                        OrderDir::Desc
                    } else {
                        // Explicit or implicit asc (§III-D rule 3).
                        self.eat_kw("asc");
                        OrderDir::Asc
                    };
                    order_by = Some(OrderBy { expr, dir });
                }
                Some("bin") => {
                    self.pos += 1;
                    let column = self.column_ref()?;
                    self.expect_kw("by")?;
                    let word = self.ident()?;
                    let unit = BinUnit::from_keyword(&word)
                        .ok_or_else(|| self.err(format!("unknown bin unit '{word}'")))?;
                    bin = Some(Bin { column, unit });
                }
                _ => break,
            }
        }
        let mut q = Query {
            chart,
            select,
            from,
            join,
            filters,
            group_by,
            order_by,
            bin,
        };
        self.resolve_aliases(&mut q);
        Ok(q)
    }

    fn chart_type(&mut self) -> Result<ChartType, ParseError> {
        let first = self.ident()?.to_ascii_lowercase();
        let combined = match first.as_str() {
            "stacked" | "grouping" => {
                let second = self.ident()?.to_ascii_lowercase();
                format!("{first} {second}")
            }
            _ => first,
        };
        ChartType::from_keyword(&combined)
            .ok_or_else(|| self.err(format!("unknown chart type '{combined}'")))
    }

    fn select_list(&mut self) -> Result<Vec<ColExpr>, ParseError> {
        let mut items = vec![self.col_expr()?];
        while matches!(self.peek(), Some(Token::Comma)) {
            self.pos += 1;
            items.push(self.col_expr()?);
        }
        Ok(items)
    }

    fn col_expr(&mut self) -> Result<ColExpr, ParseError> {
        let word = self.ident()?;
        if let Some(agg) = AggFunc::from_keyword(&word) {
            if matches!(self.peek(), Some(Token::LParen)) {
                self.pos += 1;
                let col = self.column_ref()?;
                match self.bump() {
                    Some(Token::RParen) => return Ok(ColExpr::Agg(agg, col)),
                    _ => return Err(self.err("expected ')' after aggregate")),
                }
            }
        }
        Ok(ColExpr::Column(split_ref(&word)))
    }

    fn column_ref(&mut self) -> Result<ColumnRef, ParseError> {
        let word = self.ident()?;
        Ok(split_ref(&word))
    }

    fn table_with_alias(&mut self) -> Result<String, ParseError> {
        let table = self.ident()?;
        if self.eat_kw("as") {
            let alias = self.ident()?;
            self.aliases
                .insert(alias.to_ascii_lowercase(), table.clone());
        } else if let Some(w) = self.peek_word() {
            // Bare alias: an identifier that is not a clause keyword.
            if !is_clause_keyword(&w) {
                self.pos += 1;
                self.aliases.insert(w, table.clone());
            }
        }
        Ok(table)
    }

    fn join_clause(&mut self) -> Result<Join, ParseError> {
        self.expect_kw("join")?;
        let table = self.table_with_alias()?;
        self.expect_kw("on")?;
        let left = self.column_ref()?;
        match self.bump() {
            Some(Token::Eq) => {}
            _ => return Err(self.err("expected '=' in join condition")),
        }
        let right = self.column_ref()?;
        Ok(Join { table, left, right })
    }

    fn predicates(&mut self) -> Result<Vec<Predicate>, ParseError> {
        let mut preds = vec![self.predicate()?];
        while self.eat_kw("and") {
            preds.push(self.predicate()?);
        }
        Ok(preds)
    }

    fn predicate(&mut self) -> Result<Predicate, ParseError> {
        let left = self.column_ref()?;
        // in / not in (subquery)
        if self.eat_kw("not") {
            self.expect_kw("in")?;
            return self.in_predicate(left, true);
        }
        if self.eat_kw("in") {
            return self.in_predicate(left, false);
        }
        if self.eat_kw("like") {
            return match self.bump() {
                Some(Token::Str(s)) => Ok(Predicate::Compare {
                    left,
                    op: CmpOp::Like,
                    right: Literal::Text(s),
                }),
                _ => Err(self.err("expected string after 'like'")),
            };
        }
        let op = match self.bump() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            _ => return Err(self.err("expected comparison operator")),
        };
        let right = match self.bump() {
            Some(Token::Number(n)) => Literal::Number(n),
            Some(Token::Str(s)) => Literal::Text(s),
            // Unquoted literal values appear in sloppy annotations.
            Some(Token::Ident(s)) => Literal::Text(s),
            _ => return Err(self.err("expected literal after operator")),
        };
        Ok(Predicate::Compare { left, op, right })
    }

    fn in_predicate(&mut self, left: ColumnRef, negated: bool) -> Result<Predicate, ParseError> {
        match self.bump() {
            Some(Token::LParen) => {}
            _ => return Err(self.err("expected '(' after in")),
        }
        self.expect_kw("select")?;
        let select = self.column_ref()?;
        self.expect_kw("from")?;
        let from = self.table_with_alias()?;
        let join = if self.peek_word().as_deref() == Some("join") {
            Some(self.join_clause()?)
        } else {
            None
        };
        let filters = if self.eat_kw("where") {
            self.predicates()?
        } else {
            Vec::new()
        };
        match self.bump() {
            Some(Token::RParen) => {}
            _ => return Err(self.err("expected ')' closing subquery")),
        }
        Ok(Predicate::In {
            left,
            negated,
            sub: Box::new(Subquery {
                select,
                from,
                join,
                filters,
            }),
        })
    }

    /// Rewrites every `alias.column` to `table.column` (§III-D rule 4).
    fn resolve_aliases(&self, q: &mut Query) {
        if self.aliases.is_empty() {
            return;
        }
        let fix = |c: &mut ColumnRef| {
            if let Some(t) = &c.table {
                if let Some(actual) = self.aliases.get(&t.to_ascii_lowercase()) {
                    c.table = Some(actual.clone());
                }
            }
        };
        for s in &mut q.select {
            fix(s.column_ref_mut());
        }
        if let Some(j) = &mut q.join {
            fix(&mut j.left);
            fix(&mut j.right);
        }
        fix_predicates(&mut q.filters, &fix);
        for gcol in &mut q.group_by {
            fix(gcol);
        }
        if let Some(o) = &mut q.order_by {
            fix(o.expr.column_ref_mut());
        }
        if let Some(b) = &mut q.bin {
            fix(&mut b.column);
        }
    }
}

fn fix_predicates(preds: &mut [Predicate], fix: &impl Fn(&mut ColumnRef)) {
    for p in preds {
        match p {
            Predicate::Compare { left, .. } => fix(left),
            Predicate::In { left, sub, .. } => {
                fix(left);
                fix(&mut sub.select);
                if let Some(j) = &mut sub.join {
                    fix(&mut j.left);
                    fix(&mut j.right);
                }
                fix_predicates(&mut sub.filters, fix);
            }
        }
    }
}

fn split_ref(word: &str) -> ColumnRef {
    match word.split_once('.') {
        Some((t, c)) => ColumnRef::qualified(t, c),
        None => ColumnRef::bare(word),
    }
}

fn is_clause_keyword(w: &str) -> bool {
    matches!(
        w,
        "join"
            | "on"
            | "where"
            | "and"
            | "group"
            | "order"
            | "by"
            | "bin"
            | "asc"
            | "desc"
            | "in"
            | "not"
            | "like"
            | "as"
            | "select"
            | "from"
            | "visualize"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_pie() {
        let q = parse_query(
            "VISUALIZE PIE SELECT Country, COUNT(Country) FROM artist GROUP BY Country",
        )
        .unwrap();
        assert_eq!(q.chart, ChartType::Pie);
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.from, "artist");
        assert_eq!(q.group_by.len(), 1);
        assert!(!q.has_join());
    }

    #[test]
    fn parses_count_star() {
        let q = parse_query("visualize bar select type, count(*) from film group by type").unwrap();
        match &q.select[1] {
            ColExpr::Agg(AggFunc::Count, c) => assert!(c.is_wildcard()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_join_with_aliases() {
        let q = parse_query(
            "VISUALIZE BAR SELECT T1.name, COUNT(*) FROM player AS T1 JOIN team AS T2 \
             ON T1.team_id = T2.id WHERE T2.name = \"Columbus Crew\" GROUP BY T1.name",
        )
        .unwrap();
        let j = q.join.as_ref().unwrap();
        assert_eq!(j.table, "team");
        // Aliases resolved to actual table names.
        assert_eq!(j.left, ColumnRef::qualified("player", "team_id"));
        assert_eq!(j.right, ColumnRef::qualified("team", "id"));
        assert_eq!(
            q.select[0].column_ref(),
            &ColumnRef::qualified("player", "name")
        );
        match &q.filters[0] {
            Predicate::Compare { left, right, .. } => {
                assert_eq!(left, &ColumnRef::qualified("team", "name"));
                assert_eq!(right, &Literal::Text("Columbus Crew".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_bare_alias() {
        let q =
            parse_query("visualize scatter select t1.a, t2.b from x t1 join y t2 on t1.id = t2.id")
                .unwrap();
        assert_eq!(q.select[0].column_ref(), &ColumnRef::qualified("x", "a"));
        assert_eq!(q.select[1].column_ref(), &ColumnRef::qualified("y", "b"));
    }

    #[test]
    fn parses_order_by_without_direction_as_asc() {
        let q = parse_query(
            "visualize bar select name, count(name) from student group by name order by count(name)",
        )
        .unwrap();
        assert_eq!(q.order_by.unwrap().dir, OrderDir::Asc);
    }

    #[test]
    fn parses_order_by_desc() {
        let q = parse_query("visualize bar select a, b from t order by b desc").unwrap();
        assert_eq!(q.order_by.unwrap().dir, OrderDir::Desc);
    }

    #[test]
    fn parses_bin_clause() {
        let q =
            parse_query("visualize line select date, count(date) from orders bin date by month")
                .unwrap();
        let b = q.bin.unwrap();
        assert_eq!(b.unit, BinUnit::Month);
        assert_eq!(b.column, ColumnRef::bare("date"));
    }

    #[test]
    fn parses_two_word_chart_types() {
        for (text, want) in [
            ("stacked bar", ChartType::StackedBar),
            ("grouping line", ChartType::GroupedLine),
            ("grouping scatter", ChartType::GroupedScatter),
        ] {
            let q = parse_query(&format!("visualize {text} select a, b, c from t")).unwrap();
            assert_eq!(q.chart, want);
        }
    }

    #[test]
    fn parses_not_in_subquery() {
        let q = parse_query(
            "visualize bar select lname, count(lname) from student where stuid not in \
             (select stuid from has_allergy join allergy_type on has_allergy.allergy = \
             allergy_type.allergy where allergy_type.allergytype = 'food') group by lname \
             order by count(lname) asc",
        )
        .unwrap();
        assert!(q.has_join());
        match &q.filters[0] {
            Predicate::In { negated, sub, .. } => {
                assert!(*negated);
                assert_eq!(sub.from, "has_allergy");
                assert!(sub.join.is_some());
                assert_eq!(sub.filters.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn roundtrips_display_and_parse() {
        let text = "visualize scatter select avg ( rooms.baseprice ) , min ( rooms.baseprice ) \
                    from rooms group by rooms.decor";
        let q = parse_query(text).unwrap();
        assert_eq!(q.to_string(), text);
        let q2 = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_query("select a from t").is_err());
        assert!(parse_query("visualize donut select a, b from t").is_err());
        assert!(parse_query("visualize bar select from t").is_err());
        assert!(
            parse_query("visualize bar select a, b from t trailing junk garbage here").is_err()
        );
    }

    #[test]
    fn error_reports_token_position() {
        let err = parse_query("visualize bar choose a from t").unwrap_err();
        match err {
            ParseError::Syntax { at, .. } => assert!(at >= 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}
