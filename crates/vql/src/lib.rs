//! The data-visualization query language (DV query / "VQL") used by
//! DataVisT5.
//!
//! A DV query, introduced by DeepEye and nvBench, couples a chart directive
//! (`visualize bar`) with SQL-like data operations (`select … from … group
//! by … order by …`). This crate provides everything the reproduction needs
//! to treat DV queries as a first-class modality:
//!
//! * [`ast`] — the typed query representation and its canonical
//!   (standardized) textual form.
//! * [`lexer`] / [`parser`] — tolerant parsing of annotator-styled queries
//!   (mixed case, `COUNT(*)`, aliases, double quotes).
//! * [`standardize`] — the five standardized-encoding rules of §III-D of the
//!   paper (qualify columns, expand `count(*)`, explicit `asc`, strip
//!   aliases, lowercase).
//! * [`encode`] — DV knowledge encoding (§III-C): linearizing database
//!   schemas and tables into flat text.
//! * [`compare`] — the Vis/Axis/Data/overall exact-match decomposition used
//!   by the text-to-vis evaluation (§V-B).
//! * [`grammar`] — a clause automaton that yields the set of legal next
//!   tokens for grammar-constrained decoding (the ncNet baseline).
//! * [`vega`] / [`dvl`] / [`svg`] — Vega-Lite, Vega-Zero, and ggplot2
//!   specification emission, plus standalone SVG rendering.
//! * [`chart`] — an executed-chart model (labels/values/groups) used by
//!   FeVisQA ground truth and the case-study figures.

pub mod ast;
pub mod chart;
pub mod compare;
pub mod dvl;
pub mod encode;
pub mod grammar;
pub mod lexer;
pub mod parser;
pub mod schema;
pub mod standardize;
pub mod svg;
pub mod validate;
pub mod vega;

pub use ast::{
    AggFunc, BinUnit, ChartType, CmpOp, ColExpr, ColumnRef, Join, Literal, OrderBy, OrderDir,
    Predicate, Query, Subquery,
};
pub use chart::{Chart, Series};
pub use compare::{compare_queries, ComponentMatch};
pub use parser::{parse_query, ParseError};
pub use schema::{ColumnTypes, DbSchema, TableSchema};
pub use standardize::standardize;
pub use validate::{lint, validate, Issue, LintCounts};
