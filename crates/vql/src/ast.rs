//! Typed representation of DV queries and their canonical textual form.
//!
//! `Display` implementations emit the *standardized encoding* of §III-D:
//! lowercase keywords, fully-qualified `table.column` references, spaces
//! around parentheses, single-quoted string literals, and an explicit `asc`
//! on `order by`. Parsing is more tolerant (see [`crate::parser`]); the
//! printer is strict so that string equality on printed queries matches
//! AST equality on standardized queries.

use std::fmt;

/// The visualization type requested by the `visualize` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChartType {
    Bar,
    Pie,
    Line,
    Scatter,
    StackedBar,
    GroupedLine,
    GroupedScatter,
}

impl ChartType {
    /// Every chart type, in canonical order.
    pub const ALL: [ChartType; 7] = [
        ChartType::Bar,
        ChartType::Pie,
        ChartType::Line,
        ChartType::Scatter,
        ChartType::StackedBar,
        ChartType::GroupedLine,
        ChartType::GroupedScatter,
    ];

    /// The canonical lowercase keyword(s) for this chart type.
    pub fn keyword(&self) -> &'static str {
        match self {
            ChartType::Bar => "bar",
            ChartType::Pie => "pie",
            ChartType::Line => "line",
            ChartType::Scatter => "scatter",
            ChartType::StackedBar => "stacked bar",
            ChartType::GroupedLine => "grouping line",
            ChartType::GroupedScatter => "grouping scatter",
        }
    }

    /// Parses a chart keyword (case-insensitive; multi-word forms are the
    /// two-token sequences `stacked bar`, `grouping line`, `grouping
    /// scatter`).
    pub fn from_keyword(kw: &str) -> Option<ChartType> {
        match kw.to_ascii_lowercase().as_str() {
            "bar" => Some(ChartType::Bar),
            "pie" => Some(ChartType::Pie),
            "line" => Some(ChartType::Line),
            "scatter" => Some(ChartType::Scatter),
            "stacked bar" => Some(ChartType::StackedBar),
            "grouping line" => Some(ChartType::GroupedLine),
            "grouping scatter" => Some(ChartType::GroupedScatter),
            _ => None,
        }
    }

    /// Whether this chart carries a third (color/series) channel.
    pub fn is_grouped(&self) -> bool {
        matches!(
            self,
            ChartType::StackedBar | ChartType::GroupedLine | ChartType::GroupedScatter
        )
    }
}

impl fmt::Display for ChartType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// SQL aggregate functions supported in DV queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Max,
    Min,
}

impl AggFunc {
    pub fn keyword(&self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Max => "max",
            AggFunc::Min => "min",
        }
    }

    pub fn from_keyword(kw: &str) -> Option<AggFunc> {
        match kw.to_ascii_lowercase().as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "avg" => Some(AggFunc::Avg),
            "max" => Some(AggFunc::Max),
            "min" => Some(AggFunc::Min),
            _ => None,
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A (possibly table-qualified) column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Qualifying table name; `None` before standardization.
    pub table: Option<String>,
    /// Column name, or `*` for the wildcard inside `count(*)`.
    pub column: String,
}

impl ColumnRef {
    /// Unqualified reference.
    pub fn bare(column: impl Into<String>) -> Self {
        Self {
            table: None,
            column: column.into(),
        }
    }

    /// Fully-qualified reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        Self {
            table: Some(table.into()),
            column: column.into(),
        }
    }

    /// Whether this is the `*` wildcard.
    pub fn is_wildcard(&self) -> bool {
        self.column == "*"
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => f.write_str(&self.column),
        }
    }
}

/// One item of the `select` list: a plain column or an aggregate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ColExpr {
    Column(ColumnRef),
    Agg(AggFunc, ColumnRef),
}

impl ColExpr {
    /// The underlying column reference.
    pub fn column_ref(&self) -> &ColumnRef {
        match self {
            ColExpr::Column(c) => c,
            ColExpr::Agg(_, c) => c,
        }
    }

    /// Mutable access to the underlying column reference.
    pub fn column_ref_mut(&mut self) -> &mut ColumnRef {
        match self {
            ColExpr::Column(c) => c,
            ColExpr::Agg(_, c) => c,
        }
    }

    /// The aggregate function, if any.
    pub fn agg(&self) -> Option<AggFunc> {
        match self {
            ColExpr::Column(_) => None,
            ColExpr::Agg(a, _) => Some(*a),
        }
    }
}

impl fmt::Display for ColExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColExpr::Column(c) => write!(f, "{c}"),
            // Standardized encoding puts spaces around parentheses (§III-D
            // rule 2).
            ColExpr::Agg(a, c) => write!(f, "{a} ( {c} )"),
        }
    }
}

/// Comparison operators usable in `where` predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Like,
}

impl CmpOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Like => "like",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A literal value on the right-hand side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Number(f64),
    /// String literal; the standardized form uses single quotes.
    Text(String),
}

impl Eq for Literal {}

impl std::hash::Hash for Literal {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Literal::Number(n) => n.to_bits().hash(state),
            Literal::Text(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Literal::Text(s) => write!(f, "'{s}'"),
        }
    }
}

/// A nested `select` usable inside `in` / `not in` predicates.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Subquery {
    pub select: ColumnRef,
    pub from: String,
    pub join: Option<Join>,
    pub filters: Vec<Predicate>,
}

impl fmt::Display for Subquery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select {} from {}", self.select, self.from)?;
        if let Some(j) = &self.join {
            write!(f, " {j}")?;
        }
        if !self.filters.is_empty() {
            write!(f, " where ")?;
            for (i, p) in self.filters.iter().enumerate() {
                if i > 0 {
                    write!(f, " and ")?;
                }
                write!(f, "{p}")?;
            }
        }
        Ok(())
    }
}

/// One conjunct of the `where` clause.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Predicate {
    Compare {
        left: ColumnRef,
        op: CmpOp,
        right: Literal,
    },
    In {
        left: ColumnRef,
        negated: bool,
        sub: Box<Subquery>,
    },
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Compare { left, op, right } => write!(f, "{left} {op} {right}"),
            Predicate::In { left, negated, sub } => {
                let not = if *negated { "not " } else { "" };
                write!(f, "{left} {not}in ( {sub} )")
            }
        }
    }
}

/// An inner join between the primary table and a second table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Join {
    pub table: String,
    pub left: ColumnRef,
    pub right: ColumnRef,
}

impl fmt::Display for Join {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "join {} on {} = {}", self.table, self.left, self.right)
    }
}

/// Sort direction; the standardized encoding always prints it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderDir {
    Asc,
    Desc,
}

impl fmt::Display for OrderDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OrderDir::Asc => "asc",
            OrderDir::Desc => "desc",
        })
    }
}

/// The `order by` clause.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OrderBy {
    pub expr: ColExpr,
    pub dir: OrderDir,
}

impl fmt::Display for OrderBy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "order by {} {}", self.expr, self.dir)
    }
}

/// Temporal binning units for the `bin … by …` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinUnit {
    Year,
    Month,
    Day,
    Weekday,
}

impl BinUnit {
    pub fn keyword(&self) -> &'static str {
        match self {
            BinUnit::Year => "year",
            BinUnit::Month => "month",
            BinUnit::Day => "day",
            BinUnit::Weekday => "weekday",
        }
    }

    pub fn from_keyword(kw: &str) -> Option<BinUnit> {
        match kw.to_ascii_lowercase().as_str() {
            "year" => Some(BinUnit::Year),
            "month" => Some(BinUnit::Month),
            "day" => Some(BinUnit::Day),
            "weekday" => Some(BinUnit::Weekday),
            _ => None,
        }
    }
}

impl fmt::Display for BinUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// The `bin` clause (`bin col by year`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bin {
    pub column: ColumnRef,
    pub unit: BinUnit,
}

impl fmt::Display for Bin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bin {} by {}", self.column, self.unit)
    }
}

/// A complete DV query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Query {
    pub chart: ChartType,
    /// Axis expressions: `[x, y]` or `[x, y, color]` for grouped charts.
    pub select: Vec<ColExpr>,
    /// Primary table.
    pub from: String,
    pub join: Option<Join>,
    /// Conjunctive filters.
    pub filters: Vec<Predicate>,
    pub group_by: Vec<ColumnRef>,
    pub order_by: Option<OrderBy>,
    pub bin: Option<Bin>,
}

impl Query {
    /// A minimal query skeleton for builders/tests.
    pub fn new(chart: ChartType, select: Vec<ColExpr>, from: impl Into<String>) -> Self {
        Self {
            chart,
            select,
            from: from.into(),
            join: None,
            filters: Vec::new(),
            group_by: Vec::new(),
            order_by: None,
            bin: None,
        }
    }

    /// All tables referenced by the query (primary + join).
    pub fn tables(&self) -> Vec<&str> {
        let mut t = vec![self.from.as_str()];
        if let Some(j) = &self.join {
            t.push(j.table.as_str());
        }
        t
    }

    /// Whether the query uses a join (the paper's "w/ join operation"
    /// split).
    pub fn has_join(&self) -> bool {
        self.join.is_some()
            || self.filters.iter().any(|p| match p {
                Predicate::In { sub, .. } => sub.join.is_some(),
                _ => false,
            })
    }

    /// NVBench-style hardness: one point per data operation beyond the
    /// basic select (join, each filter, grouping, ordering, binning,
    /// sub-select, third channel).
    pub fn hardness(&self) -> Hardness {
        let mut score = 0usize;
        if self.join.is_some() {
            score += 2;
        }
        for f in &self.filters {
            score += match f {
                Predicate::Compare { .. } => 1,
                Predicate::In { .. } => 2,
            };
        }
        if !self.group_by.is_empty() {
            score += 1;
        }
        if self.order_by.is_some() {
            score += 1;
        }
        if self.bin.is_some() {
            score += 1;
        }
        if self.select.len() >= 3 {
            score += 1;
        }
        match score {
            0..=1 => Hardness::Easy,
            2 => Hardness::Medium,
            3..=4 => Hardness::Hard,
            _ => Hardness::ExtraHard,
        }
    }
}

/// NVBench-style query difficulty levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Hardness {
    Easy,
    Medium,
    Hard,
    ExtraHard,
}

impl Hardness {
    pub fn label(&self) -> &'static str {
        match self {
            Hardness::Easy => "easy",
            Hardness::Medium => "medium",
            Hardness::Hard => "hard",
            Hardness::ExtraHard => "extra-hard",
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "visualize {} select ", self.chart)?;
        for (i, s) in self.select.iter().enumerate() {
            if i > 0 {
                // Space-separated comma: every surface token is whitespace
                // delimited (rule 2 of the standardized encoding applied
                // uniformly).
                write!(f, " , ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, " from {}", self.from)?;
        if let Some(j) = &self.join {
            write!(f, " {j}")?;
        }
        if !self.filters.is_empty() {
            write!(f, " where ")?;
            for (i, p) in self.filters.iter().enumerate() {
                if i > 0 {
                    write!(f, " and ")?;
                }
                write!(f, "{p}")?;
            }
        }
        if !self.group_by.is_empty() {
            write!(f, " group by ")?;
            for (i, c) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, " , ")?;
                }
                write!(f, "{c}")?;
            }
        }
        if let Some(o) = &self.order_by {
            write!(f, " {o}")?;
        }
        if let Some(b) = &self.bin {
            write!(f, " {b}")?;
        }
        Ok(())
    }
}

pub use self::Bin as BinClause;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query() -> Query {
        Query {
            chart: ChartType::Pie,
            select: vec![
                ColExpr::Column(ColumnRef::qualified("artist", "country")),
                ColExpr::Agg(AggFunc::Count, ColumnRef::qualified("artist", "country")),
            ],
            from: "artist".into(),
            join: None,
            filters: vec![],
            group_by: vec![ColumnRef::qualified("artist", "country")],
            order_by: None,
            bin: None,
        }
    }

    #[test]
    fn display_matches_standardized_form() {
        let q = sample_query();
        assert_eq!(
            q.to_string(),
            "visualize pie select artist.country , count ( artist.country ) \
             from artist group by artist.country"
        );
    }

    #[test]
    fn display_with_all_clauses() {
        let q = Query {
            chart: ChartType::Bar,
            select: vec![
                ColExpr::Column(ColumnRef::qualified("rooms", "decor")),
                ColExpr::Agg(AggFunc::Avg, ColumnRef::qualified("rooms", "baseprice")),
            ],
            from: "rooms".into(),
            join: Some(Join {
                table: "inn".into(),
                left: ColumnRef::qualified("rooms", "inn_id"),
                right: ColumnRef::qualified("inn", "id"),
            }),
            filters: vec![Predicate::Compare {
                left: ColumnRef::qualified("rooms", "beds"),
                op: CmpOp::Ge,
                right: Literal::Number(2.0),
            }],
            group_by: vec![ColumnRef::qualified("rooms", "decor")],
            order_by: Some(OrderBy {
                expr: ColExpr::Agg(AggFunc::Avg, ColumnRef::qualified("rooms", "baseprice")),
                dir: OrderDir::Asc,
            }),
            bin: None,
        };
        assert_eq!(
            q.to_string(),
            "visualize bar select rooms.decor , avg ( rooms.baseprice ) from rooms \
             join inn on rooms.inn_id = inn.id where rooms.beds >= 2 \
             group by rooms.decor order by avg ( rooms.baseprice ) asc"
        );
    }

    #[test]
    fn chart_keyword_roundtrip() {
        for ct in ChartType::ALL {
            assert_eq!(ChartType::from_keyword(ct.keyword()), Some(ct));
        }
        assert_eq!(ChartType::from_keyword("BAR"), Some(ChartType::Bar));
        assert_eq!(ChartType::from_keyword("donut"), None);
    }

    #[test]
    fn grouped_charts_are_flagged() {
        assert!(ChartType::StackedBar.is_grouped());
        assert!(!ChartType::Pie.is_grouped());
    }

    #[test]
    fn literal_display_forms() {
        assert_eq!(Literal::Number(3.0).to_string(), "3");
        assert_eq!(Literal::Number(2.5).to_string(), "2.5");
        assert_eq!(
            Literal::Text("Columbus Crew".into()).to_string(),
            "'Columbus Crew'"
        );
    }

    #[test]
    fn in_subquery_display() {
        let p = Predicate::In {
            left: ColumnRef::qualified("student", "stuid"),
            negated: true,
            sub: Box::new(Subquery {
                select: ColumnRef::qualified("has_allergy", "stuid"),
                from: "has_allergy".into(),
                join: None,
                filters: vec![Predicate::Compare {
                    left: ColumnRef::qualified("has_allergy", "allergy"),
                    op: CmpOp::Eq,
                    right: Literal::Text("food".into()),
                }],
            }),
        };
        assert_eq!(
            p.to_string(),
            "student.stuid not in ( select has_allergy.stuid from has_allergy \
             where has_allergy.allergy = 'food' )"
        );
    }

    #[test]
    fn has_join_detects_subquery_join() {
        let mut q = sample_query();
        assert!(!q.has_join());
        q.filters.push(Predicate::In {
            left: ColumnRef::qualified("artist", "artist_id"),
            negated: false,
            sub: Box::new(Subquery {
                select: ColumnRef::qualified("exhibit", "artist_id"),
                from: "exhibit".into(),
                join: Some(Join {
                    table: "venue".into(),
                    left: ColumnRef::qualified("exhibit", "venue_id"),
                    right: ColumnRef::qualified("venue", "id"),
                }),
                filters: vec![],
            }),
        });
        assert!(q.has_join());
    }

    #[test]
    fn hardness_scales_with_clauses() {
        use crate::parse_query;
        let easy = parse_query("visualize scatter select t.a, t.b from t").unwrap();
        assert_eq!(easy.hardness(), Hardness::Easy);
        let medium = parse_query(
            "visualize bar select t.a, count(t.a) from t group by t.a order by count(t.a) asc",
        )
        .unwrap();
        assert_eq!(medium.hardness(), Hardness::Medium);
        let hard = parse_query(
            "visualize bar select t.a, count(t.a) from t join u on t.id = u.id \
             group by t.a order by count(t.a) desc",
        )
        .unwrap();
        assert_eq!(hard.hardness(), Hardness::Hard);
        let extra = parse_query(
            "visualize stacked bar select t.a, count(t.a), t.c from t join u on t.id = u.id \
             where t.x > 1 and u.y = 'v' group by t.a, t.c order by count(t.a) desc",
        )
        .unwrap();
        assert_eq!(extra.hardness(), Hardness::ExtraHard);
    }

    #[test]
    fn hardness_ordering_is_monotone() {
        assert!(Hardness::Easy < Hardness::Medium);
        assert!(Hardness::Hard < Hardness::ExtraHard);
        assert_eq!(Hardness::ExtraHard.label(), "extra-hard");
    }

    #[test]
    fn tables_lists_join_table() {
        let mut q = sample_query();
        q.join = Some(Join {
            table: "exhibit".into(),
            left: ColumnRef::qualified("artist", "artist_id"),
            right: ColumnRef::qualified("exhibit", "artist_id"),
        });
        assert_eq!(q.tables(), vec!["artist", "exhibit"]);
    }
}
