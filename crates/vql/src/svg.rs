//! SVG chart rendering.
//!
//! The case-study binaries use ASCII charts inline; this module renders
//! the same [`Chart`] model as standalone SVG documents — the closest
//! equivalent of the paper's chart figures that a terminal-only
//! reproduction can produce. Bar, pie, line, and scatter geometries are
//! supported; grouped charts draw one series per color.

use std::fmt::Write as _;

use crate::ast::ChartType;
use crate::chart::Chart;

const WIDTH: f64 = 480.0;
const HEIGHT: f64 = 300.0;
const MARGIN: f64 = 42.0;
const PALETTE: [&str; 6] = [
    "#4C78A8", "#F58518", "#54A24B", "#E45756", "#72B7B2", "#B279A2",
];

/// Renders a chart as a self-contained SVG document.
pub fn to_svg(chart: &Chart) -> String {
    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">"#
    );
    let _ = write!(
        svg,
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    );
    let title = format!("{} vs {}", chart.x_label, chart.y_label);
    let _ = write!(
        svg,
        r#"<text x="{}" y="18" font-family="sans-serif" font-size="12" text-anchor="middle">{}</text>"#,
        WIDTH / 2.0,
        escape(&title)
    );
    match chart.chart_type {
        ChartType::Pie => pie(&mut svg, chart),
        ChartType::Line | ChartType::GroupedLine => line(&mut svg, chart),
        ChartType::Scatter | ChartType::GroupedScatter => scatter(&mut svg, chart),
        ChartType::Bar | ChartType::StackedBar => bars(&mut svg, chart),
    }
    svg.push_str("</svg>");
    svg
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// x pixel of the i-th of n category slots.
fn slot_x(i: usize, n: usize) -> f64 {
    MARGIN + (i as f64 + 0.5) * (WIDTH - 2.0 * MARGIN) / n.max(1) as f64
}

/// y pixel for a value within [0, max].
fn val_y(v: f64, max: f64) -> f64 {
    let usable = HEIGHT - 2.0 * MARGIN;
    HEIGHT - MARGIN - (v / max.max(1e-9)) * usable
}

fn axis(svg: &mut String) {
    let _ = write!(
        svg,
        r#"<line x1="{m}" y1="{b}" x2="{r}" y2="{b}" stroke="black"/><line x1="{m}" y1="{t}" x2="{m}" y2="{b}" stroke="black"/>"#,
        m = MARGIN,
        b = HEIGHT - MARGIN,
        r = WIDTH - MARGIN,
        t = MARGIN
    );
}

fn bars(svg: &mut String, chart: &Chart) {
    axis(svg);
    let max = chart.max_value().unwrap_or(1.0);
    // Collect distinct labels in order for stacked positioning.
    let mut labels: Vec<&str> = Vec::new();
    for s in &chart.series {
        for (l, _) in &s.points {
            if !labels.contains(&l.as_str()) {
                labels.push(l);
            }
        }
    }
    let n = labels.len().max(1);
    let band = (WIDTH - 2.0 * MARGIN) / n as f64;
    let bar_w = band * 0.6 / chart.series.len().max(1) as f64;
    for (si, series) in chart.series.iter().enumerate() {
        let color = PALETTE[si % PALETTE.len()];
        for (label, value) in &series.points {
            let Some(li) = labels.iter().position(|l| l == label) else {
                continue;
            };
            let x = slot_x(li, n) - band * 0.3 + si as f64 * bar_w;
            let y = val_y(*value, max);
            let h = (HEIGHT - MARGIN) - y;
            let _ = write!(
                svg,
                r#"<rect x="{x:.1}" y="{y:.1}" width="{bar_w:.1}" height="{h:.1}" fill="{color}"><title>{}: {value}</title></rect>"#,
                escape(label)
            );
        }
    }
    for (li, label) in labels.iter().enumerate() {
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{}" font-family="sans-serif" font-size="9" text-anchor="middle">{}</text>"#,
            slot_x(li, n),
            HEIGHT - MARGIN + 14.0,
            escape(label)
        );
    }
}

fn pie(svg: &mut String, chart: &Chart) {
    let total = chart.total().max(1e-9);
    let (cx, cy, r) = (WIDTH / 2.0, HEIGHT / 2.0 + 8.0, 95.0);
    let mut angle = -std::f64::consts::FRAC_PI_2;
    let mut idx = 0;
    for series in &chart.series {
        for (label, value) in &series.points {
            let sweep = value / total * std::f64::consts::TAU;
            let (x1, y1) = (cx + r * angle.cos(), cy + r * angle.sin());
            let end = angle + sweep;
            let (x2, y2) = (cx + r * end.cos(), cy + r * end.sin());
            let large = if sweep > std::f64::consts::PI { 1 } else { 0 };
            let color = PALETTE[idx % PALETTE.len()];
            let _ = write!(
                svg,
                r#"<path d="M {cx:.1} {cy:.1} L {x1:.1} {y1:.1} A {r} {r} 0 {large} 1 {x2:.1} {y2:.1} Z" fill="{color}"><title>{}: {value}</title></path>"#,
                escape(label)
            );
            angle = end;
            idx += 1;
        }
    }
}

fn line(svg: &mut String, chart: &Chart) {
    axis(svg);
    let max = chart.max_value().unwrap_or(1.0);
    for (si, series) in chart.series.iter().enumerate() {
        let n = series.points.len();
        let color = PALETTE[si % PALETTE.len()];
        let pts: Vec<String> = series
            .points
            .iter()
            .enumerate()
            .map(|(i, (_, v))| format!("{:.1},{:.1}", slot_x(i, n), val_y(*v, max)))
            .collect();
        let _ = write!(
            svg,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
            pts.join(" ")
        );
    }
}

fn scatter(svg: &mut String, chart: &Chart) {
    axis(svg);
    let max = chart.max_value().unwrap_or(1.0);
    for (si, series) in chart.series.iter().enumerate() {
        let n = series.points.len();
        let color = PALETTE[si % PALETTE.len()];
        for (i, (label, v)) in series.points.iter().enumerate() {
            let _ = write!(
                svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="4" fill="{color}"><title>{}: {v}</title></circle>"#,
                slot_x(i, n),
                val_y(*v, max),
                escape(label)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chart::Series;

    fn chart(ct: ChartType) -> Chart {
        Chart {
            chart_type: ct,
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series::new(vec![
                ("a".into(), 1.0),
                ("b".into(), 3.0),
                ("c".into(), 2.0),
            ])],
        }
    }

    #[test]
    fn bar_svg_has_three_rects() {
        let svg = to_svg(&chart(ChartType::Bar));
        assert_eq!(svg.matches("<rect").count(), 4); // background + 3 bars
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
    }

    #[test]
    fn pie_svg_has_three_slices() {
        let svg = to_svg(&chart(ChartType::Pie));
        assert_eq!(svg.matches("<path").count(), 3);
    }

    #[test]
    fn line_svg_has_polyline() {
        let svg = to_svg(&chart(ChartType::Line));
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn scatter_svg_has_circles() {
        let svg = to_svg(&chart(ChartType::Scatter));
        assert_eq!(svg.matches("<circle").count(), 3);
    }

    #[test]
    fn grouped_series_use_distinct_colors() {
        let c = Chart {
            chart_type: ChartType::StackedBar,
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![
                Series::named("g1", vec![("a".into(), 1.0)]),
                Series::named("g2", vec![("a".into(), 2.0)]),
            ],
        };
        let svg = to_svg(&c);
        assert!(svg.contains(PALETTE[0]) && svg.contains(PALETTE[1]));
    }

    #[test]
    fn labels_are_escaped() {
        let c = Chart {
            chart_type: ChartType::Bar,
            x_label: "a<b".into(),
            y_label: "c&d".into(),
            series: vec![Series::new(vec![("x<y".into(), 1.0)])],
        };
        let svg = to_svg(&c);
        assert!(svg.contains("a&lt;b"));
        assert!(svg.contains("c&amp;d"));
        assert!(!svg.contains("x<y"));
    }

    #[test]
    fn empty_chart_is_valid_svg() {
        let c = Chart {
            chart_type: ChartType::Bar,
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![],
        };
        let svg = to_svg(&c);
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
    }
}
