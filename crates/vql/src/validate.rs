//! Semantic validation of DV queries against a schema.
//!
//! Parsing guarantees syntax; this module checks the semantics an engine
//! would reject at plan time: unknown tables/columns, aggregate arity of
//! the chart's channels, and grouped-chart color requirements. NL2Vis
//! systems commonly report a *validity rate* alongside EM — the fraction
//! of generated queries that would execute at all — and
//! [`validity_rate`] computes exactly that.

use crate::ast::{ColExpr, ColumnRef, Predicate, Query};
use crate::schema::DbSchema;

/// A semantic problem found in a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Issue {
    UnknownTable(String),
    UnknownColumn(String),
    /// Grouped chart types need a third (color) channel.
    MissingColorChannel,
    /// Non-grouped charts must have exactly two channels.
    WrongChannelCount { expected: usize, got: usize },
    /// `group by` present but no aggregate in the select list.
    GroupWithoutAggregate,
    /// An aggregate in the select list but no grouping key at all.
    AggregateWithoutGroup,
}

impl std::fmt::Display for Issue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Issue::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            Issue::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            Issue::MissingColorChannel => f.write_str("grouped chart lacks a color channel"),
            Issue::WrongChannelCount { expected, got } => {
                write!(f, "expected {expected} channels, got {got}")
            }
            Issue::GroupWithoutAggregate => f.write_str("group by without an aggregate"),
            Issue::AggregateWithoutGroup => f.write_str("aggregate without grouping"),
        }
    }
}

/// Validates a query against a schema, returning every issue found.
///
/// An empty result means the query is semantically executable (our engine
/// would accept it).
pub fn validate(query: &Query, schema: &DbSchema) -> Vec<Issue> {
    let mut issues = Vec::new();

    // Tables.
    let mut known_tables: Vec<&str> = Vec::new();
    for t in query.tables() {
        if schema.table(t).is_none() {
            issues.push(Issue::UnknownTable(t.to_string()));
        } else {
            known_tables.push(t);
        }
    }

    // Columns: every qualified reference must exist in its table.
    let mut check_col = |c: &ColumnRef, issues: &mut Vec<Issue>| {
        if c.is_wildcard() {
            return;
        }
        match &c.table {
            Some(t) => {
                let ok = schema
                    .columns_of(t)
                    .iter()
                    .any(|col| col.eq_ignore_ascii_case(&c.column));
                if !ok {
                    issues.push(Issue::UnknownColumn(c.to_string()));
                }
            }
            None => {
                if schema.tables_with_column(&c.column).is_empty() {
                    issues.push(Issue::UnknownColumn(c.to_string()));
                }
            }
        }
    };
    for s in &query.select {
        check_col(s.column_ref(), &mut issues);
    }
    if let Some(j) = &query.join {
        check_col(&j.left, &mut issues);
        check_col(&j.right, &mut issues);
    }
    for p in &query.filters {
        if let Predicate::Compare { left, .. } = p {
            check_col(left, &mut issues);
        }
    }
    for g in &query.group_by {
        check_col(g, &mut issues);
    }
    if let Some(o) = &query.order_by {
        check_col(o.expr.column_ref(), &mut issues);
    }
    if let Some(b) = &query.bin {
        check_col(&b.column, &mut issues);
    }

    // Channel arity.
    let grouped = query.chart.is_grouped();
    if grouped && query.select.len() < 3 {
        issues.push(Issue::MissingColorChannel);
    }
    if !grouped && query.select.len() != 2 {
        issues.push(Issue::WrongChannelCount {
            expected: 2,
            got: query.select.len(),
        });
    }

    // Aggregation discipline.
    let has_agg = query.select.iter().any(|s| s.agg().is_some());
    let has_plain = query
        .select
        .iter()
        .any(|s| matches!(s, ColExpr::Column(_)));
    if !query.group_by.is_empty() && !has_agg {
        issues.push(Issue::GroupWithoutAggregate);
    }
    if has_agg && has_plain && query.group_by.is_empty() && query.bin.is_none() {
        issues.push(Issue::AggregateWithoutGroup);
    }

    issues
}

/// Fraction of prediction strings that parse *and* validate against their
/// schema — the validity-rate metric.
pub fn validity_rate<'a>(
    predictions: impl IntoIterator<Item = (&'a str, &'a DbSchema)>,
) -> f64 {
    let mut total = 0usize;
    let mut valid = 0usize;
    for (text, schema) in predictions {
        total += 1;
        if let Ok(q) = crate::parse_query(text) {
            if validate(&q, schema).is_empty() {
                valid += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        valid as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use crate::schema::TableSchema;

    fn schema() -> DbSchema {
        DbSchema::new(
            "g",
            vec![
                TableSchema::new("artist", vec!["artist_id".into(), "country".into(), "age".into()]),
                TableSchema::new("exhibit", vec!["exhibit_id".into(), "artist_id".into()]),
            ],
        )
    }

    fn q(text: &str) -> Query {
        parse_query(text).unwrap()
    }

    #[test]
    fn valid_query_has_no_issues() {
        let issues = validate(
            &q("visualize pie select artist.country , count ( artist.country ) from artist \
                group by artist.country"),
            &schema(),
        );
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn unknown_table_reported() {
        let issues = validate(
            &q("visualize bar select rooms.a , rooms.b from rooms"),
            &schema(),
        );
        assert!(issues.contains(&Issue::UnknownTable("rooms".into())));
    }

    #[test]
    fn unknown_column_reported() {
        let issues = validate(
            &q("visualize bar select artist.nope , artist.age from artist"),
            &schema(),
        );
        assert!(issues
            .iter()
            .any(|i| matches!(i, Issue::UnknownColumn(c) if c == "artist.nope")));
    }

    #[test]
    fn grouped_chart_needs_color() {
        let issues = validate(
            &q("visualize stacked bar select artist.country , count ( artist.country ) \
                from artist group by artist.country"),
            &schema(),
        );
        assert!(issues.contains(&Issue::MissingColorChannel));
    }

    #[test]
    fn aggregate_without_group_flagged() {
        let issues = validate(
            &q("visualize bar select artist.country , count ( artist.country ) from artist"),
            &schema(),
        );
        assert!(issues.contains(&Issue::AggregateWithoutGroup));
    }

    #[test]
    fn binned_aggregate_needs_no_group() {
        // `bin … by` provides the implicit grouping.
        let issues = validate(
            &q("visualize line select artist.age , count ( artist.age ) from artist \
                bin artist.age by year"),
            &schema(),
        );
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn group_without_aggregate_flagged() {
        let issues = validate(
            &q("visualize bar select artist.country , artist.age from artist \
                group by artist.country"),
            &schema(),
        );
        assert!(issues.contains(&Issue::GroupWithoutAggregate));
    }

    #[test]
    fn validity_rate_counts_parse_and_semantic_failures() {
        let s = schema();
        let preds = vec![
            ("visualize pie select artist.country , count ( artist.country ) from artist group by artist.country", &s),
            ("not a query at all", &s),
            ("visualize bar select rooms.a , rooms.b from rooms", &s),
        ];
        let rate = validity_rate(preds);
        assert!((rate - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_prediction_set_rate_zero() {
        assert_eq!(validity_rate(Vec::<(&str, &DbSchema)>::new()), 0.0);
    }
}
