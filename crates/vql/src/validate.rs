//! Semantic validation and linting of DV queries against a schema.
//!
//! Parsing guarantees syntax; this module checks the semantics an engine
//! would reject at plan time: unknown tables/columns, aggregate arity of
//! the chart's channels, and grouped-chart color requirements. NL2Vis
//! systems commonly report a *validity rate* alongside EM — the fraction
//! of generated queries that would execute at all — and
//! [`validity_rate`] computes exactly that.
//!
//! Every [`Issue`] carries a stable lint code (see [`Issue::code`]) so
//! evaluation harnesses can aggregate model failure modes across runs:
//!
//! | code | meaning |
//! |------|---------|
//! | V001 | unknown column |
//! | V002 | `sum`/`avg` aggregate over a non-numeric column |
//! | V003 | chart/axis arity mismatch (channel count, missing color) |
//! | V004 | unknown table |
//! | V005 | `group by` without an aggregate |
//! | V006 | aggregate without any grouping key |
//!
//! [`validate`] performs the schema-name checks (everything but V002);
//! [`lint`] additionally consults an optional [`ColumnTypes`] oracle for
//! the type-aware V002 pass.

use crate::ast::{AggFunc, ColExpr, ColumnRef, Predicate, Query};
use crate::schema::{ColumnTypes, DbSchema};

/// A semantic problem found in a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Issue {
    UnknownTable(String),
    UnknownColumn(String),
    /// Grouped chart types need a third (color) channel.
    MissingColorChannel,
    /// Non-grouped charts must have exactly two channels.
    WrongChannelCount {
        expected: usize,
        got: usize,
    },
    /// `group by` present but no aggregate in the select list.
    GroupWithoutAggregate,
    /// An aggregate in the select list but no grouping key at all.
    AggregateWithoutGroup,
    /// `sum`/`avg` over a column the type oracle says is non-numeric.
    AggregateOnNonNumeric {
        agg: AggFunc,
        column: String,
    },
}

impl Issue {
    /// The stable lint code reported by evaluation harnesses.
    pub fn code(&self) -> &'static str {
        match self {
            Issue::UnknownColumn(_) => "V001",
            Issue::AggregateOnNonNumeric { .. } => "V002",
            Issue::MissingColorChannel | Issue::WrongChannelCount { .. } => "V003",
            Issue::UnknownTable(_) => "V004",
            Issue::GroupWithoutAggregate => "V005",
            Issue::AggregateWithoutGroup => "V006",
        }
    }
}

impl std::fmt::Display for Issue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] ", self.code())?;
        match self {
            Issue::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            Issue::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            Issue::MissingColorChannel => f.write_str("grouped chart lacks a color channel"),
            Issue::WrongChannelCount { expected, got } => {
                write!(f, "expected {expected} channels, got {got}")
            }
            Issue::GroupWithoutAggregate => f.write_str("group by without an aggregate"),
            Issue::AggregateWithoutGroup => f.write_str("aggregate without grouping"),
            Issue::AggregateOnNonNumeric { agg, column } => {
                write!(f, "{} over non-numeric column '{column}'", agg.keyword())
            }
        }
    }
}

/// Validates a query against a schema, returning every issue found.
///
/// An empty result means the query is semantically executable (our engine
/// would accept it).
pub fn validate(query: &Query, schema: &DbSchema) -> Vec<Issue> {
    let mut issues = Vec::new();

    // Tables.
    let mut known_tables: Vec<&str> = Vec::new();
    for t in query.tables() {
        if schema.table(t).is_none() {
            issues.push(Issue::UnknownTable(t.to_string()));
        } else {
            known_tables.push(t);
        }
    }

    // Columns: every qualified reference must exist in its table.
    let check_col = |c: &ColumnRef, issues: &mut Vec<Issue>| {
        if c.is_wildcard() {
            return;
        }
        match &c.table {
            Some(t) => {
                let ok = schema
                    .columns_of(t)
                    .iter()
                    .any(|col| col.eq_ignore_ascii_case(&c.column));
                if !ok {
                    issues.push(Issue::UnknownColumn(c.to_string()));
                }
            }
            None => {
                if schema.tables_with_column(&c.column).is_empty() {
                    issues.push(Issue::UnknownColumn(c.to_string()));
                }
            }
        }
    };
    for s in &query.select {
        check_col(s.column_ref(), &mut issues);
    }
    if let Some(j) = &query.join {
        check_col(&j.left, &mut issues);
        check_col(&j.right, &mut issues);
    }
    for p in &query.filters {
        if let Predicate::Compare { left, .. } = p {
            check_col(left, &mut issues);
        }
    }
    for g in &query.group_by {
        check_col(g, &mut issues);
    }
    if let Some(o) = &query.order_by {
        check_col(o.expr.column_ref(), &mut issues);
    }
    if let Some(b) = &query.bin {
        check_col(&b.column, &mut issues);
    }

    // Channel arity.
    let grouped = query.chart.is_grouped();
    if grouped && query.select.len() < 3 {
        issues.push(Issue::MissingColorChannel);
    }
    if !grouped && query.select.len() != 2 {
        issues.push(Issue::WrongChannelCount {
            expected: 2,
            got: query.select.len(),
        });
    }

    // Aggregation discipline.
    let has_agg = query.select.iter().any(|s| s.agg().is_some());
    let has_plain = query.select.iter().any(|s| matches!(s, ColExpr::Column(_)));
    if !query.group_by.is_empty() && !has_agg {
        issues.push(Issue::GroupWithoutAggregate);
    }
    if has_agg && has_plain && query.group_by.is_empty() && query.bin.is_none() {
        issues.push(Issue::AggregateWithoutGroup);
    }

    issues
}

/// Full lint pass: [`validate`] plus the type-aware V002 check.
///
/// `sum` and `avg` need numeric inputs; `count`/`min`/`max` are defined for
/// any column type, so only the former pair is checked. When no type oracle
/// is supplied (or a column is absent from it) the V002 check is skipped for
/// that reference — the lint never guesses types.
pub fn lint(query: &Query, schema: &DbSchema, types: Option<&ColumnTypes>) -> Vec<Issue> {
    let mut issues = validate(query, schema);
    let Some(types) = types else {
        return issues;
    };

    let mut check_agg = |expr: &ColExpr| {
        let Some(agg) = expr.agg() else { return };
        if !matches!(agg, AggFunc::Sum | AggFunc::Avg) {
            return;
        }
        let c = expr.column_ref();
        if c.is_wildcard() {
            return;
        }
        let numeric = match &c.table {
            Some(t) => types.is_numeric(t, &c.column),
            None => types.is_numeric_anywhere(&c.column),
        };
        if numeric == Some(false) {
            issues.push(Issue::AggregateOnNonNumeric {
                agg,
                column: c.to_string(),
            });
        }
    };
    for s in &query.select {
        check_agg(s);
    }
    if let Some(o) = &query.order_by {
        check_agg(&o.expr);
    }

    issues
}

/// Fixed-size, copyable tally of lint outcomes over a set of predictions.
///
/// Evaluation harnesses fold one of these over every model-generated query
/// so a run can report *why* predictions miss, not just that they do.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LintCounts {
    /// Predictions examined.
    pub checked: usize,
    /// Predictions that failed to parse (never reach the lint pass).
    pub unparsed: usize,
    /// Parsed predictions with zero lint issues.
    pub clean: usize,
    pub v001: usize,
    pub v002: usize,
    pub v003: usize,
    pub v004: usize,
    pub v005: usize,
    pub v006: usize,
}

impl LintCounts {
    /// Records a prediction that did not parse.
    pub fn record_unparsed(&mut self) {
        self.checked += 1;
        self.unparsed += 1;
    }

    /// Records the lint result for one parsed prediction.
    pub fn record(&mut self, issues: &[Issue]) {
        self.checked += 1;
        if issues.is_empty() {
            self.clean += 1;
        }
        for i in issues {
            match i.code() {
                "V001" => self.v001 += 1,
                "V002" => self.v002 += 1,
                "V003" => self.v003 += 1,
                "V004" => self.v004 += 1,
                "V005" => self.v005 += 1,
                _ => self.v006 += 1,
            }
        }
    }

    /// Merges another tally into this one.
    pub fn absorb(&mut self, other: &LintCounts) {
        self.checked += other.checked;
        self.unparsed += other.unparsed;
        self.clean += other.clean;
        self.v001 += other.v001;
        self.v002 += other.v002;
        self.v003 += other.v003;
        self.v004 += other.v004;
        self.v005 += other.v005;
        self.v006 += other.v006;
    }

    /// Fraction of checked predictions that parsed and linted clean.
    pub fn clean_rate(&self) -> f64 {
        if self.checked == 0 {
            0.0
        } else {
            self.clean as f64 / self.checked as f64
        }
    }
}

impl std::fmt::Display for LintCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} checked, {} clean, {} unparsed | V001:{} V002:{} V003:{} V004:{} V005:{} V006:{}",
            self.checked,
            self.clean,
            self.unparsed,
            self.v001,
            self.v002,
            self.v003,
            self.v004,
            self.v005,
            self.v006
        )
    }
}

/// Fraction of prediction strings that parse *and* validate against their
/// schema — the validity-rate metric.
pub fn validity_rate<'a>(predictions: impl IntoIterator<Item = (&'a str, &'a DbSchema)>) -> f64 {
    let mut total = 0usize;
    let mut valid = 0usize;
    for (text, schema) in predictions {
        total += 1;
        if let Ok(q) = crate::parse_query(text) {
            if validate(&q, schema).is_empty() {
                valid += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        valid as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use crate::schema::TableSchema;

    fn schema() -> DbSchema {
        DbSchema::new(
            "g",
            vec![
                TableSchema::new(
                    "artist",
                    vec!["artist_id".into(), "country".into(), "age".into()],
                ),
                TableSchema::new("exhibit", vec!["exhibit_id".into(), "artist_id".into()]),
            ],
        )
    }

    fn q(text: &str) -> Query {
        parse_query(text).unwrap()
    }

    #[test]
    fn valid_query_has_no_issues() {
        let issues = validate(
            &q(
                "visualize pie select artist.country , count ( artist.country ) from artist \
                group by artist.country",
            ),
            &schema(),
        );
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn unknown_table_reported() {
        let issues = validate(
            &q("visualize bar select rooms.a , rooms.b from rooms"),
            &schema(),
        );
        assert!(issues.contains(&Issue::UnknownTable("rooms".into())));
    }

    #[test]
    fn unknown_column_reported() {
        let issues = validate(
            &q("visualize bar select artist.nope , artist.age from artist"),
            &schema(),
        );
        assert!(issues
            .iter()
            .any(|i| matches!(i, Issue::UnknownColumn(c) if c == "artist.nope")));
    }

    #[test]
    fn grouped_chart_needs_color() {
        let issues = validate(
            &q(
                "visualize stacked bar select artist.country , count ( artist.country ) \
                from artist group by artist.country",
            ),
            &schema(),
        );
        assert!(issues.contains(&Issue::MissingColorChannel));
    }

    #[test]
    fn aggregate_without_group_flagged() {
        let issues = validate(
            &q("visualize bar select artist.country , count ( artist.country ) from artist"),
            &schema(),
        );
        assert!(issues.contains(&Issue::AggregateWithoutGroup));
    }

    #[test]
    fn binned_aggregate_needs_no_group() {
        // `bin … by` provides the implicit grouping.
        let issues = validate(
            &q(
                "visualize line select artist.age , count ( artist.age ) from artist \
                bin artist.age by year",
            ),
            &schema(),
        );
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn group_without_aggregate_flagged() {
        let issues = validate(
            &q(
                "visualize bar select artist.country , artist.age from artist \
                group by artist.country",
            ),
            &schema(),
        );
        assert!(issues.contains(&Issue::GroupWithoutAggregate));
    }

    #[test]
    fn validity_rate_counts_parse_and_semantic_failures() {
        let s = schema();
        let preds = vec![
            ("visualize pie select artist.country , count ( artist.country ) from artist group by artist.country", &s),
            ("not a query at all", &s),
            ("visualize bar select rooms.a , rooms.b from rooms", &s),
        ];
        let rate = validity_rate(preds);
        assert!((rate - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_prediction_set_rate_zero() {
        assert_eq!(validity_rate(Vec::<(&str, &DbSchema)>::new()), 0.0);
    }

    fn types() -> ColumnTypes {
        let mut ct = ColumnTypes::new();
        ct.insert("artist", "artist_id", true);
        ct.insert("artist", "country", false);
        ct.insert("artist", "age", true);
        ct.insert("exhibit", "exhibit_id", true);
        ct.insert("exhibit", "artist_id", true);
        ct
    }

    #[test]
    fn lint_codes_are_stable() {
        assert_eq!(Issue::UnknownColumn("x".into()).code(), "V001");
        assert_eq!(
            Issue::AggregateOnNonNumeric {
                agg: AggFunc::Avg,
                column: "x".into()
            }
            .code(),
            "V002"
        );
        assert_eq!(Issue::MissingColorChannel.code(), "V003");
        assert_eq!(
            Issue::WrongChannelCount {
                expected: 2,
                got: 3
            }
            .code(),
            "V003"
        );
        assert_eq!(Issue::UnknownTable("x".into()).code(), "V004");
        assert_eq!(Issue::GroupWithoutAggregate.code(), "V005");
        assert_eq!(Issue::AggregateWithoutGroup.code(), "V006");
    }

    #[test]
    fn sum_over_text_column_is_linted() {
        let issues = lint(
            &q(
                "visualize bar select artist.country , sum ( artist.country ) from artist \
                group by artist.country",
            ),
            &schema(),
            Some(&types()),
        );
        assert!(issues.iter().any(|i| matches!(
            i,
            Issue::AggregateOnNonNumeric { agg: AggFunc::Sum, column } if column == "artist.country"
        )));
    }

    #[test]
    fn count_over_text_column_is_fine() {
        let issues = lint(
            &q(
                "visualize pie select artist.country , count ( artist.country ) from artist \
                group by artist.country",
            ),
            &schema(),
            Some(&types()),
        );
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn avg_over_numeric_column_is_fine() {
        let issues = lint(
            &q(
                "visualize bar select artist.country , avg ( artist.age ) from artist \
                group by artist.country",
            ),
            &schema(),
            Some(&types()),
        );
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn lint_without_oracle_matches_validate() {
        let query = q(
            "visualize bar select artist.country , sum ( artist.country ) from artist \
                       group by artist.country",
        );
        assert_eq!(lint(&query, &schema(), None), validate(&query, &schema()));
    }

    #[test]
    fn lint_counts_tally_by_code() {
        let s = schema();
        let t = types();
        let mut counts = LintCounts::default();
        counts.record_unparsed();
        counts.record(&lint(
            &q(
                "visualize bar select artist.country , sum ( artist.country ) from artist \
                group by artist.country",
            ),
            &s,
            Some(&t),
        ));
        counts.record(&lint(
            &q(
                "visualize pie select artist.country , count ( artist.country ) from artist \
                group by artist.country",
            ),
            &s,
            Some(&t),
        ));
        assert_eq!(counts.checked, 3);
        assert_eq!(counts.unparsed, 1);
        assert_eq!(counts.clean, 1);
        assert_eq!(counts.v002, 1);
        assert!((counts.clean_rate() - 1.0 / 3.0).abs() < 1e-9);

        let mut total = LintCounts::default();
        total.absorb(&counts);
        total.absorb(&counts);
        assert_eq!(total.checked, 6);
        assert_eq!(total.v002, 2);
    }
}
