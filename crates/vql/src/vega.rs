//! Vega-Lite specification emission.
//!
//! A DV query together with its executed result table converts losslessly
//! into a Vega-Lite v5 specification (the translation the paper describes
//! as "seamless"). Only the channels a DV query can express are emitted:
//! mark type, x/y encodings with aggregate-derived field names, a color
//! channel for grouped charts, and sort order.

use serde_json::{json, Value};

use crate::ast::{ChartType, ColExpr, OrderDir, Query};
use crate::chart::Chart;

/// The Vega-Lite mark string for a chart type.
pub fn mark_for(chart: ChartType) -> &'static str {
    match chart {
        ChartType::Bar | ChartType::StackedBar => "bar",
        ChartType::Pie => "arc",
        ChartType::Line | ChartType::GroupedLine => "line",
        ChartType::Scatter | ChartType::GroupedScatter => "point",
    }
}

fn field_name(expr: &ColExpr) -> String {
    match expr {
        ColExpr::Column(c) => c.to_string(),
        ColExpr::Agg(a, c) => format!("{a}_{c}"),
    }
}

fn field_type(expr: &ColExpr) -> &'static str {
    match expr {
        ColExpr::Column(_) => "nominal",
        ColExpr::Agg(_, _) => "quantitative",
    }
}

/// Emits a Vega-Lite v5 spec for a query and its executed chart.
///
/// The chart's data points become inline `values`; the query's select list
/// drives the encoding channels.
pub fn to_vega_lite(query: &Query, chart: &Chart) -> Value {
    let x = &query.select[0];
    let y = query.select.get(1);
    let color = query.select.get(2);

    let mut values = Vec::new();
    for series in &chart.series {
        for (label, value) in &series.points {
            let mut row = serde_json::Map::new();
            row.insert(field_name(x), json!(label));
            if let Some(y) = y {
                row.insert(field_name(y), json!(value));
            }
            if let (Some(c), Some(name)) = (color, &series.name) {
                row.insert(field_name(c), json!(name));
            }
            values.push(Value::Object(row));
        }
    }

    let mut encoding = serde_json::Map::new();
    if query.chart == ChartType::Pie {
        if let Some(y) = y {
            encoding.insert(
                "theta".into(),
                json!({"field": field_name(y), "type": "quantitative"}),
            );
        }
        encoding.insert(
            "color".into(),
            json!({"field": field_name(x), "type": "nominal"}),
        );
    } else {
        let mut x_enc = serde_json::Map::new();
        x_enc.insert("field".into(), json!(field_name(x)));
        x_enc.insert("type".into(), json!(field_type(x)));
        if let Some(order) = &query.order_by {
            if order.expr == *x {
                x_enc.insert(
                    "sort".into(),
                    json!(match order.dir {
                        OrderDir::Asc => "ascending",
                        OrderDir::Desc => "descending",
                    }),
                );
            } else if y.is_some_and(|yexpr| order.expr == *yexpr) {
                let sign = match order.dir {
                    OrderDir::Asc => "",
                    OrderDir::Desc => "-",
                };
                x_enc.insert("sort".into(), json!(format!("{sign}y")));
            }
        }
        encoding.insert("x".into(), Value::Object(x_enc));
        if let Some(y) = y {
            encoding.insert(
                "y".into(),
                json!({"field": field_name(y), "type": field_type(y)}),
            );
        }
        if let Some(c) = color {
            encoding.insert(
                "color".into(),
                json!({"field": field_name(c), "type": "nominal"}),
            );
        } else if query.chart == ChartType::StackedBar {
            // Grouped charts always color by the third channel; reaching
            // here means the query was malformed, so omit color.
        }
    }

    json!({
        "$schema": "https://vega.github.io/schema/vega-lite/v5.json",
        "description": format!("Rendered from DV query: {query}"),
        "mark": mark_for(query.chart),
        "data": {"values": values},
        "encoding": Value::Object(encoding),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chart::Series;
    use crate::parse_query;

    fn pie_fixture() -> (Query, Chart) {
        let q = parse_query(
            "visualize pie select artist.country, count ( artist.country ) from artist \
             group by artist.country",
        )
        .unwrap();
        let chart = Chart {
            chart_type: ChartType::Pie,
            x_label: "artist.country".into(),
            y_label: "count ( artist.country )".into(),
            series: vec![Series::new(vec![
                ("united states".into(), 4.0),
                ("england".into(), 1.0),
            ])],
        };
        (q, chart)
    }

    #[test]
    fn pie_uses_arc_mark_and_theta() {
        let (q, chart) = pie_fixture();
        let spec = to_vega_lite(&q, &chart);
        assert_eq!(spec["mark"], "arc");
        assert_eq!(spec["encoding"]["theta"]["type"], "quantitative");
        assert_eq!(spec["data"]["values"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn bar_emits_x_y_channels() {
        let q = parse_query("visualize bar select t.a, count ( t.a ) from t group by t.a").unwrap();
        let chart = Chart {
            chart_type: ChartType::Bar,
            x_label: "t.a".into(),
            y_label: "count ( t.a )".into(),
            series: vec![Series::new(vec![("x".into(), 2.0)])],
        };
        let spec = to_vega_lite(&q, &chart);
        assert_eq!(spec["mark"], "bar");
        assert_eq!(spec["encoding"]["x"]["field"], "t.a");
        assert_eq!(spec["encoding"]["y"]["type"], "quantitative");
    }

    #[test]
    fn order_by_y_becomes_sort_directive() {
        let q = parse_query(
            "visualize bar select t.a, count ( t.a ) from t group by t.a \
             order by count ( t.a ) desc",
        )
        .unwrap();
        let chart = Chart {
            chart_type: ChartType::Bar,
            x_label: "t.a".into(),
            y_label: "count".into(),
            series: vec![Series::new(vec![("x".into(), 2.0)])],
        };
        let spec = to_vega_lite(&q, &chart);
        assert_eq!(spec["encoding"]["x"]["sort"], "-y");
    }

    #[test]
    fn grouped_chart_emits_color_channel() {
        let q = parse_query(
            "visualize stacked bar select t.a, sum ( t.b ), t.c from t group by t.a, t.c",
        )
        .unwrap();
        let chart = Chart {
            chart_type: ChartType::StackedBar,
            x_label: "t.a".into(),
            y_label: "sum".into(),
            series: vec![
                Series::named("g1", vec![("x".into(), 1.0)]),
                Series::named("g2", vec![("x".into(), 2.0)]),
            ],
        };
        let spec = to_vega_lite(&q, &chart);
        assert_eq!(spec["encoding"]["color"]["field"], "t.c");
        let values = spec["data"]["values"].as_array().unwrap();
        assert_eq!(values.len(), 2);
        assert_eq!(values[0]["t.c"], "g1");
    }

    #[test]
    fn spec_declares_v5_schema() {
        let (q, chart) = pie_fixture();
        let spec = to_vega_lite(&q, &chart);
        assert!(spec["$schema"].as_str().unwrap().contains("vega-lite/v5"));
    }
}
