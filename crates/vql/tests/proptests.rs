//! Property-based tests for the DV query language: display/parse
//! roundtrips, standardization idempotence, and grammar acceptance of
//! every standardized query.

use proptest::prelude::*;

use vql::ast::{
    AggFunc, Bin, BinUnit, ChartType, CmpOp, ColExpr, ColumnRef, Join, Literal, OrderBy, OrderDir,
    Predicate, Query,
};
use vql::grammar::{GrammarConstraint, EOS};
use vql::schema::{DbSchema, TableSchema};

fn schema() -> DbSchema {
    DbSchema::new(
        "proptest_db",
        vec![
            TableSchema::new(
                "alpha",
                vec![
                    "alpha_id".into(),
                    "kind".into(),
                    "size".into(),
                    "label".into(),
                ],
            ),
            TableSchema::new(
                "beta",
                vec!["beta_id".into(), "alpha_id".into(), "score".into()],
            ),
        ],
    )
}

fn chart_strategy() -> impl Strategy<Value = ChartType> {
    prop::sample::select(ChartType::ALL.to_vec())
}

fn agg_strategy() -> impl Strategy<Value = AggFunc> {
    prop::sample::select(vec![
        AggFunc::Count,
        AggFunc::Sum,
        AggFunc::Avg,
        AggFunc::Max,
        AggFunc::Min,
    ])
}

fn col_strategy() -> impl Strategy<Value = ColumnRef> {
    prop::sample::select(vec![
        ColumnRef::qualified("alpha", "kind"),
        ColumnRef::qualified("alpha", "size"),
        ColumnRef::qualified("alpha", "label"),
        ColumnRef::qualified("beta", "score"),
    ])
}

fn expr_strategy() -> impl Strategy<Value = ColExpr> {
    prop_oneof![
        col_strategy().prop_map(ColExpr::Column),
        (agg_strategy(), col_strategy()).prop_map(|(a, c)| ColExpr::Agg(a, c)),
    ]
}

fn predicate_strategy() -> impl Strategy<Value = Predicate> {
    let op = prop::sample::select(vec![
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ]);
    let lit = prop_oneof![
        (-1000i64..1000).prop_map(|n| Literal::Number(n as f64)),
        "[a-z][a-z_]{0,8}".prop_map(Literal::Text),
    ];
    (col_strategy(), op, lit).prop_map(|(left, op, right)| Predicate::Compare { left, op, right })
}

prop_compose! {
    fn query_strategy()(
        chart in chart_strategy(),
        x in expr_strategy(),
        y in expr_strategy(),
        with_join in any::<bool>(),
        filters in prop::collection::vec(predicate_strategy(), 0..3),
        group in prop::option::of(col_strategy()),
        order_dir in prop::option::of(prop::sample::select(vec![OrderDir::Asc, OrderDir::Desc])),
        with_bin in any::<bool>(),
    ) -> Query {
        let join = with_join.then(|| Join {
            table: "beta".into(),
            left: ColumnRef::qualified("alpha", "alpha_id"),
            right: ColumnRef::qualified("beta", "alpha_id"),
        });
        let order_by = order_dir.map(|dir| OrderBy { expr: y.clone(), dir });
        let bin = with_bin.then(|| Bin {
            column: ColumnRef::qualified("alpha", "size"),
            unit: BinUnit::Year,
        });
        Query {
            chart,
            select: vec![x, y],
            from: "alpha".into(),
            join,
            filters,
            group_by: group.into_iter().collect(),
            order_by,
            bin,
        }
    }
}

proptest! {
    /// The canonical printer and the parser are inverses.
    #[test]
    fn display_parse_roundtrip(q in query_strategy()) {
        let text = q.to_string();
        let parsed = vql::parse_query(&text).expect("canonical text parses");
        prop_assert_eq!(parsed, q);
    }

    /// Standardization is idempotent.
    #[test]
    fn standardize_idempotent(q in query_strategy()) {
        let s = schema();
        let once = vql::standardize(&q, &s);
        let twice = vql::standardize(&once, &s);
        prop_assert_eq!(once, twice);
    }

    /// A query always exactly matches itself and never mismatches its own
    /// chart component.
    #[test]
    fn self_comparison_is_exact(q in query_strategy()) {
        let m = vql::compare_queries(&q, &q);
        prop_assert!(m.exact());
    }

    /// Changing only the chart type breaks Vis EM but not Axis/Data.
    #[test]
    fn chart_flip_isolates_vis(q in query_strategy()) {
        let mut other = q.clone();
        other.chart = if q.chart == ChartType::Bar { ChartType::Pie } else { ChartType::Bar };
        let m = vql::compare_queries(&other, &q);
        prop_assert_eq!(m.vis, other.chart == q.chart);
        prop_assert!(m.axis && m.data);
    }

    /// Every standardized query without sub-selects is accepted token by
    /// token by the grammar automaton (string literals must be single
    /// tokens, which holds for generated identifiers).
    #[test]
    fn grammar_accepts_standardized_queries(q in query_strategy()) {
        let s = schema();
        let std_q = vql::standardize(&q, &s);
        let text = std_q.to_string();
        // Collect literal pool from the query itself.
        let mut pool = Vec::new();
        for f in &std_q.filters {
            if let Predicate::Compare { right, .. } = f {
                pool.push(right.to_string());
            }
        }
        let grammar = GrammarConstraint::new(&s, pool);
        let tokens: Vec<&str> = text.split_whitespace().collect();
        // Skip multi-word string literals (cannot appear from our strategy).
        for i in 0..tokens.len() {
            let allowed = grammar.allowed_next(&tokens[..i]);
            prop_assert!(
                allowed.iter().any(|a| a == tokens[i]),
                "token {} '{}' rejected in '{}' (allowed {:?})",
                i, tokens[i], text, allowed
            );
        }
        let fin = grammar.allowed_next(&tokens);
        prop_assert!(fin.contains(&EOS.to_string()), "no EOS after '{}'", text);
    }

    /// The lexer never panics on arbitrary input.
    #[test]
    fn lexer_total(input in ".{0,200}") {
        let _ = vql::lexer::lex(&input);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_total(input in ".{0,200}") {
        let _ = vql::parse_query(&input);
    }
}
