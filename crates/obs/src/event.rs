//! The structured event stream: one flat, ordered log of everything the
//! layer observed, suitable for the JSONL and Chrome-trace sinks.
//!
//! Events are deterministic modulo timing: two bit-identical runs produce
//! the same sequence of payloads with the same names, deltas, totals, and
//! gauge bit-patterns, differing only in `ts_ns`, `dur_ns`, and
//! `Observe::ns`. [`Event::strip_timing`] zeroes exactly those fields so
//! the double-run test can compare streams for equality.

/// Severity of a [`Payload::Message`] event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Info,
    Warn,
    Error,
}

impl Level {
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

/// What happened. Every variant the collector can record; the JSONL sink
/// round-trips all of them (property-tested).
#[derive(Debug, Clone)]
pub enum Payload {
    /// A span was opened at the given `/`-joined path.
    SpanOpen { path: String },
    /// A span closed; `dur_ns` is its wall-clock duration.
    SpanClose { path: String, dur_ns: u64 },
    /// A counter was bumped; `total` is the running total after the bump.
    Counter {
        name: String,
        delta: u64,
        total: u64,
    },
    /// A gauge was set to an instantaneous value.
    Gauge { name: String, value: f64 },
    /// A duration sample was recorded into the named histogram.
    Observe { name: String, ns: u64 },
    /// A structured log line (also printed to stderr at emission time).
    Message {
        level: Level,
        scope: String,
        text: String,
    },
}

// Manual impl so gauges compare by bit pattern: `NaN == NaN` holds and the
// double-run / round-trip tests are exact rather than float-approximate.
impl PartialEq for Payload {
    fn eq(&self, other: &Payload) -> bool {
        use Payload::*;
        match (self, other) {
            (SpanOpen { path: a }, SpanOpen { path: b }) => a == b,
            (
                SpanClose {
                    path: a,
                    dur_ns: ad,
                },
                SpanClose {
                    path: b,
                    dur_ns: bd,
                },
            ) => a == b && ad == bd,
            (
                Counter {
                    name: a,
                    delta: ad,
                    total: at,
                },
                Counter {
                    name: b,
                    delta: bd,
                    total: bt,
                },
            ) => a == b && ad == bd && at == bt,
            (Gauge { name: a, value: av }, Gauge { name: b, value: bv }) => {
                a == b && av.to_bits() == bv.to_bits()
            }
            (Observe { name: a, ns: an }, Observe { name: b, ns: bn }) => a == b && an == bn,
            (
                Message {
                    level: al,
                    scope: asc,
                    text: atx,
                },
                Message {
                    level: bl,
                    scope: bsc,
                    text: btx,
                },
            ) => al == bl && asc == bsc && atx == btx,
            _ => false,
        }
    }
}

impl Eq for Payload {}

/// One entry in the event stream. `seq` is a process-wide monotonically
/// increasing ordinal (reset by [`crate::reset`]); `ts_ns` comes from
/// [`crate::clock::now_ns`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    pub seq: u64,
    pub ts_ns: u64,
    pub payload: Payload,
}

impl Event {
    /// A copy with every wall-clock-derived field zeroed (`ts_ns`, span
    /// `dur_ns`, observed `ns`). Two identical runs must produce equal
    /// streams after this transform.
    pub fn strip_timing(&self) -> Event {
        let payload = match &self.payload {
            Payload::SpanClose { path, .. } => Payload::SpanClose {
                path: path.clone(),
                dur_ns: 0,
            },
            Payload::Observe { name, .. } => Payload::Observe {
                name: name.clone(),
                ns: 0,
            },
            other => other.clone(),
        };
        Event {
            seq: self.seq,
            ts_ns: 0,
            payload,
        }
    }
}
