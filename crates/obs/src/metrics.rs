//! Fixed-bucket duration histograms.
//!
//! Bucket boundaries are compile-time constants (powers of four from
//! 4096 ns up to 2^40 ns ≈ 18 minutes, plus one overflow bucket), so the
//! rendered distribution is byte-stable across runs and machines: only
//! the counts vary, never the layout.

/// Number of buckets, including the final overflow bucket.
pub const HIST_BUCKETS: usize = 16;

/// Inclusive upper bound of bucket `i` in nanoseconds: `4096 * 4^i` for
/// the first fifteen buckets, `u64::MAX` for the overflow bucket.
pub fn bucket_le(i: usize) -> u64 {
    if i + 1 >= HIST_BUCKETS {
        u64::MAX
    } else {
        1u64 << (12 + 2 * i)
    }
}

/// A histogram of nanosecond durations over the fixed bucket layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Histogram {
    pub counts: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum_ns: u64,
}

impl Histogram {
    /// Records one sample into the first bucket whose upper bound admits
    /// it (`ns <= bucket_le(i)`).
    pub fn observe(&mut self, ns: u64) {
        let mut i = 0;
        while ns > bucket_le(i) {
            i += 1;
        }
        self.counts[i] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_powers_of_four() {
        assert_eq!(bucket_le(0), 4096);
        assert_eq!(bucket_le(1), 16384);
        assert_eq!(bucket_le(14), 1u64 << 40);
        assert_eq!(bucket_le(15), u64::MAX);
    }
}
