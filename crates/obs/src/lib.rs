//! Telescope: the observability layer — hierarchical tracing spans, typed
//! metrics (counters / gauges / histograms), a per-op kernel profiler,
//! and structured sinks (JSONL + Chrome `trace_event`).
//!
//! # Zero overhead when off
//!
//! The layer is gated on the `DATAVIST5_OBS` environment variable (any
//! non-empty value other than `"0"`), or programmatically via
//! [`set_enabled`]. When off, every entry point returns before reading
//! the clock, allocating, or taking the collector lock — instrumented
//! code pays one relaxed atomic load per call site. `ci.sh` enforces this
//! with an overhead smoke test (obs-off throughput within 2% of a
//! recorded baseline).
//!
//! # Determinism
//!
//! All wall-clock reads go through [`clock::now_ns`], the single audited
//! `det-ok:` site for lint D003. Timestamps are attached to events but
//! never feed computation, so two identical runs with the layer enabled
//! stay bitwise-equal in weights and losses, and their event streams are
//! equal after [`Event::strip_timing`]. Aggregates use `BTreeMap`
//! exclusively, so snapshot iteration order is deterministic (lint D001).
//!
//! # Usage
//!
//! ```no_run
//! obs::set_enabled(true);
//! let _run = obs::span!("train");
//! {
//!     let _step = obs::span!("step"); // path: "train/step"
//!     obs::counter_add("train.tokens", 128);
//!     obs::gauge_set("train.loss", 3.25);
//! }
//! drop(_run);
//! let snap = obs::snapshot();
//! assert_eq!(snap.counters["train.tokens"], 128);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, Once};

pub mod clock;
pub mod event;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod sink;
pub mod span;

pub use event::{Event, Level, Payload};
pub use metrics::Histogram;
pub use profile::{KernelEntry, KernelStat, Phase};
pub use span::SpanGuard;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

/// Whether the layer is recording. First call seeds the flag from the
/// `DATAVIST5_OBS` environment variable; [`set_enabled`] overrides it for
/// the rest of the process.
pub fn enabled() -> bool {
    ENV_INIT.call_once(|| {
        let on =
            matches!(std::env::var("DATAVIST5_OBS").as_deref(), Ok(v) if !v.is_empty() && v != "0");
        // par-ok: on/off flag for telemetry only; a stale read skips or adds a sample, never alters computation
        ENABLED.store(on, Ordering::Relaxed);
    });
    // par-ok: telemetry flag read; observability must stay zero-overhead, and stale reads only affect sampling
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off programmatically, overriding the
/// environment (used by `obs_report` and the test suite).
pub fn set_enabled(on: bool) {
    ENV_INIT.call_once(|| {});
    // par-ok: telemetry flag toggle from tests and obs_report; never guards data used by kernels
    ENABLED.store(on, Ordering::Relaxed);
}

/// Per-span aggregate: close count, total wall time, and the tape ops /
/// FLOP estimates attributed while the span was innermost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    pub count: u64,
    pub total_ns: u64,
    pub ops: u64,
    pub flops: u64,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct KernelKey {
    span: String,
    op: &'static str,
    phase: Phase,
}

#[derive(Default)]
struct Collector {
    seq: u64,
    events: Vec<Event>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStat>,
    kernels: BTreeMap<KernelKey, KernelStat>,
}

impl Collector {
    const fn new() -> Collector {
        Collector {
            seq: 0,
            events: Vec::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            spans: BTreeMap::new(),
            kernels: BTreeMap::new(),
        }
    }

    fn push_event(&mut self, ts_ns: u64, payload: Payload) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Event {
            seq,
            ts_ns,
            payload,
        });
    }
}

static COLLECTOR: Mutex<Collector> = Mutex::new(Collector::new());

fn collector() -> MutexGuard<'static, Collector> {
    // A panic while holding the lock (e.g. a should-panic span test)
    // poisons it; the data is plain aggregates, so recover.
    COLLECTOR
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

pub(crate) fn record_event(payload: Payload) {
    let ts = clock::now_ns();
    collector().push_event(ts, payload);
}

pub(crate) fn close_span(path: String, dur_ns: u64) {
    let ts = clock::now_ns();
    let mut c = collector();
    let stat = c.spans.entry(path.clone()).or_default();
    stat.count += 1;
    stat.total_ns = stat.total_ns.saturating_add(dur_ns);
    c.push_event(ts, Payload::SpanClose { path, dur_ns });
}

pub(crate) fn record_kernel_sample(
    span: String,
    op: &'static str,
    phase: Phase,
    ns: u64,
    bytes: u64,
    flops: u64,
) {
    let mut c = collector();
    let stat = c.spans.entry(span.clone()).or_default();
    stat.ops += 1;
    stat.flops = stat.flops.saturating_add(flops);
    let k = c.kernels.entry(KernelKey { span, op, phase }).or_default();
    k.calls += 1;
    k.ns = k.ns.saturating_add(ns);
    k.bytes = k.bytes.saturating_add(bytes);
    k.flops = k.flops.saturating_add(flops);
}

/// Adds `delta` to the named counter and records a counter event carrying
/// the new running total. No-op when disabled.
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let ts = clock::now_ns();
    let mut c = collector();
    let total = {
        let t = c.counters.entry(name.to_string()).or_insert(0);
        *t = t.saturating_add(delta);
        *t
    };
    c.push_event(
        ts,
        Payload::Counter {
            name: name.to_string(),
            delta,
            total,
        },
    );
}

/// Sets the named gauge to an instantaneous value. No-op when disabled.
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let ts = clock::now_ns();
    let mut c = collector();
    c.gauges.insert(name.to_string(), value);
    c.push_event(
        ts,
        Payload::Gauge {
            name: name.to_string(),
            value,
        },
    );
}

/// Records a duration sample into the named fixed-bucket histogram.
/// No-op when disabled.
pub fn observe_ns(name: &str, ns: u64) {
    if !enabled() {
        return;
    }
    let ts = clock::now_ns();
    let mut c = collector();
    c.histograms
        .entry(name.to_string())
        .or_default()
        .observe(ns);
    c.push_event(
        ts,
        Payload::Observe {
            name: name.to_string(),
            ns,
        },
    );
}

fn message(level: Level, scope: &str, text: &str) {
    // Stderr printing is unconditional: the obs layer replaces scattered
    // `eprintln!` diagnostics, and those must keep printing when the
    // layer is off.
    eprintln!("[{scope}] {text}");
    if !enabled() {
        return;
    }
    let ts = clock::now_ns();
    collector().push_event(
        ts,
        Payload::Message {
            level,
            scope: scope.to_string(),
            text: text.to_string(),
        },
    );
}

/// Logs an informational line to stderr as `[scope] text`; also recorded
/// as a structured event when the layer is enabled.
pub fn info(scope: &str, text: impl AsRef<str>) {
    message(Level::Info, scope, text.as_ref());
}

/// Logs a warning (see [`info`] for sink behaviour).
pub fn warn(scope: &str, text: impl AsRef<str>) {
    message(Level::Warn, scope, text.as_ref());
}

/// Logs an error (see [`info`] for sink behaviour).
pub fn error(scope: &str, text: impl AsRef<str>) {
    message(Level::Error, scope, text.as_ref());
}

/// Wall-time stopwatch that is inert when the layer is disabled: `start`
/// reads the clock only when recording, and `stop` returns `None` when it
/// did not.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start_ns: Option<u64>,
}

impl Stopwatch {
    pub fn start() -> Stopwatch {
        Stopwatch {
            start_ns: enabled().then(clock::now_ns),
        }
    }

    /// Elapsed nanoseconds since `start`, or `None` if the layer was
    /// disabled at start time.
    pub fn stop(&self) -> Option<u64> {
        self.start_ns.map(|t0| clock::now_ns().saturating_sub(t0))
    }

    /// Records the elapsed time into the named histogram (and an observe
    /// event). Returns the sample for callers that also want the value.
    pub fn observe(&self, name: &str) -> Option<u64> {
        let ns = self.stop()?;
        observe_ns(name, ns);
        Some(ns)
    }
}

/// A point-in-time copy of everything the collector has aggregated.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub events: Vec<Event>,
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, Histogram>,
    pub spans: BTreeMap<String, SpanStat>,
    /// Flattened kernel rows, sorted by (span, op, phase).
    pub kernels: Vec<KernelEntry>,
}

impl Snapshot {
    /// Aggregates the flattened kernel rows across spans into
    /// per-`(op, phase)` totals — the export surface the perf-trajectory
    /// harness derives its `kernel/<op>/<phase>/...` throughput series
    /// from. `BTreeMap` keyed, so iteration order is deterministic.
    pub fn kernel_totals(&self) -> BTreeMap<(String, Phase), KernelStat> {
        let mut totals: BTreeMap<(String, Phase), KernelStat> = BTreeMap::new();
        for entry in &self.kernels {
            let slot = totals.entry((entry.op.clone(), entry.phase)).or_default();
            slot.calls += entry.stat.calls;
            slot.ns += entry.stat.ns;
            slot.bytes += entry.stat.bytes;
            slot.flops += entry.stat.flops;
        }
        totals
    }
}

/// Clones the current collector state.
pub fn snapshot() -> Snapshot {
    let c = collector();
    Snapshot {
        events: c.events.clone(),
        counters: c.counters.clone(),
        gauges: c.gauges.clone(),
        histograms: c.histograms.clone(),
        spans: c.spans.clone(),
        kernels: c
            .kernels
            .iter()
            .map(|(key, stat)| KernelEntry {
                span: key.span.clone(),
                op: key.op.to_string(),
                phase: key.phase,
                stat: *stat,
            })
            .collect(),
    }
}

/// Clears all recorded events and aggregates, resets the sequence
/// counter, and clears the calling thread's span stack.
pub fn reset() {
    span::clear_stack();
    let mut c = collector();
    *c = Collector::new();
}
