//! Minimal JSON support for the sinks: an escaper, a value tree, and a
//! strict recursive-descent parser.
//!
//! The obs crate deliberately has no dependencies (it sits below `tensor`
//! in the crate graph), so it cannot use the workspace `serde_json` shim.
//! Numbers keep their raw source text in [`Value::Num`] so `u64` values
//! round-trip without passing through `f64` (which would lose precision
//! above 2^53 — sequence numbers and nanosecond timestamps exceed that).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Raw number text as it appeared in the input.
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Quotes and escapes `s` as a JSON string literal (including the
/// surrounding double quotes). Control characters become `\u00XX`; other
/// Unicode is emitted raw (the sinks write UTF-8).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(format!("empty number at offset {start}"));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        Ok(Value::Num(raw.to_string()))
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "non-utf8 \\u escape".to_string())?;
        let v = u16::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("truncated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err("unpaired surrogate".to_string());
                                }
                                0x10000 + ((hi as u32 - 0xd800) << 10) + (lo as u32 - 0xdc00)
                            } else {
                                hi as u32
                            };
                            out.push(
                                char::from_u32(code).ok_or_else(|| "bad codepoint".to_string())?,
                            );
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from a &str,
                    // so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().ok_or("empty string tail")?;
                    if (c as u32) < 0x20 {
                        return Err("raw control character in string".to_string());
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_controls_and_quotes() {
        assert_eq!(
            escape("a\"b\\c\n\u{1}"),
            concat!(r#""a\"b\\c\n"#, r#"\u0001""#)
        );
    }

    #[test]
    fn parse_roundtrips_escaped_string() {
        let v = parse(&escape("a\"b\\c\n\t\u{1}µ💾")).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\n\t\u{1}µ💾"));
    }

    #[test]
    fn parse_keeps_u64_precision() {
        let v = parse("{\"x\": 18446744073709551615}").unwrap();
        assert_eq!(v.get("x").and_then(Value::as_u64), Some(u64::MAX));
    }

    #[test]
    fn parse_surrogate_pair() {
        let v = parse(r#""💾""#).unwrap();
        assert_eq!(v.as_str(), Some("💾"));
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
    }
}
