//! Per-kernel attribution: which ops, under which span, in which phase,
//! spent the time and moved the bytes.
//!
//! The tensor graph calls [`record_kernel`] once per tape node it
//! executes (mark-delta timing around `Graph::push` and per-node backward
//! propagation); the batched decoder and the optimizer record explicit
//! section kernels the tape cannot see. Samples are keyed by
//! `(innermost span path, op name, phase)` so a report can answer "what
//! did the train step spend its time on" per `OpKind`.

/// Which part of the compute a kernel sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    Forward,
    Backward,
    Optimizer,
}

impl Phase {
    pub fn as_str(&self) -> &'static str {
        match self {
            Phase::Forward => "fwd",
            Phase::Backward => "bwd",
            Phase::Optimizer => "opt",
        }
    }

    pub fn parse(s: &str) -> Option<Phase> {
        match s {
            "fwd" => Some(Phase::Forward),
            "bwd" => Some(Phase::Backward),
            "opt" => Some(Phase::Optimizer),
            _ => None,
        }
    }
}

/// Accumulated samples for one `(span, op, phase)` key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStat {
    pub calls: u64,
    pub ns: u64,
    pub bytes: u64,
    pub flops: u64,
}

/// One flattened kernel row in a [`crate::Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelEntry {
    pub span: String,
    pub op: String,
    pub phase: Phase,
    pub stat: KernelStat,
}

/// Records one kernel execution: `ns` of wall time, an estimate of bytes
/// moved and floating-point ops, attributed to the current thread's
/// innermost open span (empty path if none). No-op when disabled.
pub fn record_kernel(op: &'static str, phase: Phase, ns: u64, bytes: u64, flops: u64) {
    if !crate::enabled() {
        return;
    }
    let span = crate::span::current_path().unwrap_or_default();
    crate::record_kernel_sample(span, op, phase, ns, bytes, flops);
}
