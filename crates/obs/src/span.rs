//! Hierarchical spans with RAII guards.
//!
//! `enter("step")` inside an open `"train"` span produces the path
//! `"train/step"`. Paths are per-thread (the stack is thread-local) while
//! the recorded events and aggregates are process-global. When the layer
//! is disabled, [`enter`] returns an inert guard without reading the
//! clock or touching the stack.
//!
//! Spans must close in LIFO order: dropping a guard while an inner span
//! is still open panics with both paths, and [`assert_balanced`] panics
//! listing every span still open — both are exercised by the test suite.

use std::cell::RefCell;

use crate::event::Payload;

struct OpenSpan {
    path: String,
    start_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<OpenSpan>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`enter`]; closing (dropping) it records the
/// span's duration and aggregates it under the span's full path.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    path: Option<String>,
}

/// Opens a span named `name`, nested under the innermost open span of the
/// current thread. No-op (inert guard) when the layer is disabled.
pub fn enter(name: &str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { path: None };
    }
    let start = crate::clock::now_ns();
    let path = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{}/{name}", parent.path),
            None => name.to_string(),
        };
        stack.push(OpenSpan {
            path: path.clone(),
            start_ns: start,
        });
        path
    });
    crate::record_event(Payload::SpanOpen { path: path.clone() });
    SpanGuard { path: Some(path) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(path) = self.path.take() else {
            return;
        };
        let end = crate::clock::now_ns();
        let top = STACK.with(|stack| stack.borrow_mut().pop());
        match top {
            Some(open) if open.path == path => {
                let dur_ns = end.saturating_sub(open.start_ns);
                crate::close_span(path, dur_ns);
            }
            Some(open) => {
                // Put it back so the balance check still sees it, then
                // report the violation (unless already unwinding).
                let inner = open.path.clone();
                STACK.with(|stack| stack.borrow_mut().push(open));
                if !std::thread::panicking() {
                    panic!("span '{path}' closed while inner span '{inner}' is still open");
                }
            }
            None => {
                if !std::thread::panicking() {
                    panic!("span '{path}' closed but the span stack is empty");
                }
            }
        }
    }
}

/// The path of the innermost open span on this thread, if any. Kernel
/// samples are attributed to this path.
pub(crate) fn current_path() -> Option<String> {
    STACK.with(|stack| stack.borrow().last().map(|open| open.path.clone()))
}

/// Clears this thread's span stack (used by [`crate::reset`]).
pub(crate) fn clear_stack() {
    STACK.with(|stack| stack.borrow_mut().clear());
}

/// Panics if any span is still open on the current thread, listing the
/// open paths. Call at the end of a run to prove the trace is well
/// nested.
pub fn assert_balanced() {
    STACK.with(|stack| {
        let stack = stack.borrow();
        if !stack.is_empty() {
            let paths: Vec<&str> = stack.iter().map(|open| open.path.as_str()).collect();
            panic!("unbalanced spans still open: {}", paths.join(", "));
        }
    });
}

/// Opens a span and returns its guard: `let _guard = obs::span!("step");`.
/// Bind the guard to a named `_`-prefixed variable — a bare `_` pattern
/// drops (closes) it immediately.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
}
