//! The audited wall-clock choke point.
//!
//! Every timestamp the observability layer records comes from [`now_ns`],
//! and [`now_ns`] is the only place in non-bench code that reads the
//! system clock. The determinism audit (lint D003) flags clock reads
//! outside `crates/bench/`; this one site carries the repository's single
//! `det-ok:` suppression for it, which keeps the audit's `allowed` list a
//! complete inventory of where wall time can enter the system.
//!
//! Timestamps are *reported only*: they are attached to events and span
//! durations but never feed tensor values, sampling, scheduling, or any
//! other state that affects computation, so double-run bit-equality of
//! weights and losses is preserved with the layer enabled.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the process's first observability clock
/// read. Relative to an arbitrary epoch: only differences are meaningful.
pub fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now); // det-ok: obs::clock is the single audited clock choke point; timestamps are reported only and never feed computation
    epoch.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
