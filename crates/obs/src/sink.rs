//! Event sinks: JSONL (lossless, round-trippable) and Chrome
//! `trace_event` (loadable in `chrome://tracing` / Perfetto).
//!
//! JSONL is the archival format: `read_jsonl(write_jsonl(events))` is the
//! identity for every event type (property-tested). Gauge values are
//! encoded as their IEEE-754 bit pattern (`value_bits`) so the round trip
//! is exact for every `f64` including NaN and infinities; a human-readable
//! `value` string rides along and is ignored on decode.

use crate::event::{Event, Level, Payload};
use crate::json::{escape, parse, Value};

/// Encodes one event as a single-line JSON object.
pub fn encode_event(event: &Event) -> String {
    let head = format!("{{\"seq\":{},\"ts_ns\":{},", event.seq, event.ts_ns);
    let body = match &event.payload {
        Payload::SpanOpen { path } => {
            format!("\"type\":\"span_open\",\"path\":{}", escape(path))
        }
        Payload::SpanClose { path, dur_ns } => {
            format!(
                "\"type\":\"span_close\",\"path\":{},\"dur_ns\":{dur_ns}",
                escape(path)
            )
        }
        Payload::Counter { name, delta, total } => format!(
            "\"type\":\"counter\",\"name\":{},\"delta\":{delta},\"total\":{total}",
            escape(name)
        ),
        Payload::Gauge { name, value } => format!(
            "\"type\":\"gauge\",\"name\":{},\"value_bits\":{},\"value\":{}",
            escape(name),
            value.to_bits(),
            escape(&format!("{value:?}"))
        ),
        Payload::Observe { name, ns } => {
            format!("\"type\":\"observe\",\"name\":{},\"ns\":{ns}", escape(name))
        }
        Payload::Message { level, scope, text } => format!(
            "\"type\":\"message\",\"level\":\"{}\",\"scope\":{},\"text\":{}",
            level.as_str(),
            escape(scope),
            escape(text)
        ),
    };
    format!("{head}{body}}}")
}

/// Serializes events as JSON Lines (one object per line, trailing
/// newline).
pub fn write_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&encode_event(event));
        out.push('\n');
    }
    out
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field '{key}' is not a u64"))
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    Ok(field(v, key)?
        .as_str()
        .ok_or_else(|| format!("field '{key}' is not a string"))?
        .to_string())
}

/// Decodes one JSONL line back into an [`Event`].
pub fn decode_event(line: &str) -> Result<Event, String> {
    let v = parse(line)?;
    let seq = u64_field(&v, "seq")?;
    let ts_ns = u64_field(&v, "ts_ns")?;
    let kind = str_field(&v, "type")?;
    let payload = match kind.as_str() {
        "span_open" => Payload::SpanOpen {
            path: str_field(&v, "path")?,
        },
        "span_close" => Payload::SpanClose {
            path: str_field(&v, "path")?,
            dur_ns: u64_field(&v, "dur_ns")?,
        },
        "counter" => Payload::Counter {
            name: str_field(&v, "name")?,
            delta: u64_field(&v, "delta")?,
            total: u64_field(&v, "total")?,
        },
        "gauge" => Payload::Gauge {
            name: str_field(&v, "name")?,
            value: f64::from_bits(u64_field(&v, "value_bits")?),
        },
        "observe" => Payload::Observe {
            name: str_field(&v, "name")?,
            ns: u64_field(&v, "ns")?,
        },
        "message" => Payload::Message {
            level: Level::parse(&str_field(&v, "level")?)
                .ok_or_else(|| "unknown message level".to_string())?,
            scope: str_field(&v, "scope")?,
            text: str_field(&v, "text")?,
        },
        other => return Err(format!("unknown event type '{other}'")),
    };
    Ok(Event {
        seq,
        ts_ns,
        payload,
    })
}

/// Parses a JSON Lines document produced by [`write_jsonl`].
pub fn read_jsonl(text: &str) -> Result<Vec<Event>, String> {
    text.lines()
        .filter(|line| !line.trim().is_empty())
        .map(decode_event)
        .collect()
}

/// Renders the event stream in Chrome `trace_event` JSON array format.
///
/// Closed spans become complete (`"ph":"X"`) events with microsecond
/// begin/duration, counters become `"ph":"C"` samples, and messages
/// become global instant events. Span-open events are omitted (the close
/// event carries the full interval).
pub fn chrome_trace(events: &[Event]) -> String {
    let mut rows = Vec::new();
    for event in events {
        let ts_us = event.ts_ns as f64 / 1000.0;
        match &event.payload {
            Payload::SpanOpen { .. } => {}
            Payload::SpanClose { path, dur_ns } => {
                let begin_us = event.ts_ns.saturating_sub(*dur_ns) as f64 / 1000.0;
                let dur_us = *dur_ns as f64 / 1000.0;
                rows.push(format!(
                    "{{\"name\":{},\"cat\":\"span\",\"ph\":\"X\",\"ts\":{begin_us:.3},\
                     \"dur\":{dur_us:.3},\"pid\":1,\"tid\":1}}",
                    escape(path)
                ));
            }
            Payload::Counter { name, total, .. } => {
                rows.push(format!(
                    "{{\"name\":{},\"cat\":\"counter\",\"ph\":\"C\",\"ts\":{ts_us:.3},\
                     \"pid\":1,\"tid\":1,\"args\":{{\"value\":{total}}}}}",
                    escape(name)
                ));
            }
            Payload::Gauge { name, value } => {
                let num = if value.is_finite() {
                    format!("{value:?}")
                } else {
                    "null".to_string()
                };
                rows.push(format!(
                    "{{\"name\":{},\"cat\":\"gauge\",\"ph\":\"C\",\"ts\":{ts_us:.3},\
                     \"pid\":1,\"tid\":1,\"args\":{{\"value\":{num}}}}}",
                    escape(name)
                ));
            }
            Payload::Observe { name, ns } => {
                rows.push(format!(
                    "{{\"name\":{},\"cat\":\"observe\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts_us:.3},\"pid\":1,\"tid\":1,\"args\":{{\"ns\":{ns}}}}}",
                    escape(name)
                ));
            }
            Payload::Message { level, scope, text } => {
                rows.push(format!(
                    "{{\"name\":{},\"cat\":\"message\",\"ph\":\"i\",\"s\":\"g\",\
                     \"ts\":{ts_us:.3},\"pid\":1,\"tid\":1,\
                     \"args\":{{\"level\":\"{}\",\"text\":{}}}}}",
                    escape(scope),
                    level.as_str(),
                    escape(text)
                ));
            }
        }
    }
    format!("[\n{}\n]\n", rows.join(",\n"))
}
