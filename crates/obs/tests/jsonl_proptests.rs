//! Property test of the JSONL sink: `read_jsonl(write_jsonl(events))` is
//! the identity for arbitrary event streams covering every payload type,
//! adversarial strings (quotes, backslashes, newlines, control bytes,
//! non-ASCII), full-width integers, and raw-bits gauge values including
//! NaN and the infinities.

use proptest::prelude::*;

use obs::event::{Event, Level, Payload};
use obs::sink::{read_jsonl, write_jsonl};

/// Deterministic string pool exercising every escape path in the encoder.
const NASTY: [&str; 12] = [
    "",
    "plain",
    "with space",
    "quote\"inside",
    "back\\slash",
    "new\nline and tab\t",
    "carriage\rreturn",
    "control\u{1}\u{1f}bytes",
    "span/path/like",
    "ünïcödé — 図表 🎯",
    "</s>",
    "{\"looks\":\"like json\"}",
];

fn pick_str(rng: &mut u64) -> String {
    NASTY[(next(rng) % NASTY.len() as u64) as usize].to_string()
}

/// xorshift64* step; the seed comes from proptest.
fn next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

fn pick_u64(rng: &mut u64) -> u64 {
    match next(rng) % 4 {
        0 => 0,
        1 => u64::MAX,
        2 => next(rng) % 1000,
        _ => next(rng),
    }
}

fn pick_f64(rng: &mut u64) -> f64 {
    match next(rng) % 6 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        _ => f64::from_bits(next(rng)), // arbitrary bits, possibly signaling NaN
    }
}

fn arbitrary_event(rng: &mut u64, seq: u64) -> Event {
    let payload = match next(rng) % 6 {
        0 => Payload::SpanOpen {
            path: pick_str(rng),
        },
        1 => Payload::SpanClose {
            path: pick_str(rng),
            dur_ns: pick_u64(rng),
        },
        2 => Payload::Counter {
            name: pick_str(rng),
            delta: pick_u64(rng),
            total: pick_u64(rng),
        },
        3 => Payload::Gauge {
            name: pick_str(rng),
            value: pick_f64(rng),
        },
        4 => Payload::Observe {
            name: pick_str(rng),
            ns: pick_u64(rng),
        },
        _ => Payload::Message {
            level: match next(rng) % 3 {
                0 => Level::Info,
                1 => Level::Warn,
                _ => Level::Error,
            },
            scope: pick_str(rng),
            text: pick_str(rng),
        },
    };
    Event {
        seq,
        ts_ns: pick_u64(rng),
        payload,
    }
}

proptest! {
    #[test]
    fn jsonl_roundtrips_every_event_type(seed in 0u64..2000) {
        let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let n = 1 + (next(&mut rng) % 24) as usize;
        let events: Vec<Event> = (0..n)
            .map(|i| arbitrary_event(&mut rng, i as u64))
            .collect();
        let text = write_jsonl(&events);
        // One line per event, every line self-contained (no raw newlines
        // leak out of string escaping).
        prop_assert_eq!(text.lines().count(), events.len());
        let back = read_jsonl(&text)
            .map_err(|e| TestCaseError::new(format!("decode failed: {e}\n{text}")))?;
        prop_assert_eq!(back, events);
    }
}
