//! Behavioural tests for the observability layer: span nesting and
//! balance violations, histogram bucket boundaries, counter totals, the
//! JSONL and Chrome-trace sinks, and kernel attribution.
//!
//! The collector and the enabled flag are process-global, so every test
//! serializes on one lock and resets the layer on entry.

use std::sync::{Mutex, MutexGuard};

use obs::event::{Event, Level, Payload};
use obs::metrics::{bucket_le, Histogram, HIST_BUCKETS};
use obs::sink::{chrome_trace, decode_event, read_jsonl, write_jsonl};
use obs::Phase;

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Serializes tests and starts each from a clean, enabled layer.
fn begin() -> MutexGuard<'static, ()> {
    // Should-panic tests poison the lock; the guarded state is reset below.
    let g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::reset();
    obs::set_enabled(true);
    g
}

fn end() {
    obs::set_enabled(false);
    obs::reset();
}

#[test]
fn disabled_layer_records_nothing() {
    let _g = begin();
    obs::set_enabled(false);
    {
        let _s = obs::span!("ghost");
        obs::counter_add("c", 5);
        obs::gauge_set("g", 1.0);
        obs::observe_ns("h", 100);
        obs::info("scope", "printed but not recorded");
        obs::profile::record_kernel("matmul", Phase::Forward, 10, 10, 10);
        assert_eq!(obs::Stopwatch::start().stop(), None);
    }
    let snap = obs::snapshot();
    assert!(snap.events.is_empty());
    assert!(snap.counters.is_empty());
    assert!(snap.gauges.is_empty());
    assert!(snap.histograms.is_empty());
    assert!(snap.spans.is_empty());
    assert!(snap.kernels.is_empty());
    end();
}

#[test]
fn span_paths_nest_and_events_balance() {
    let _g = begin();
    {
        let _a = obs::span!("a");
        {
            let _b = obs::span!("b");
            let _c = obs::span!("c");
        }
        let _b2 = obs::span!("b");
    }
    obs::span::assert_balanced();
    let snap = obs::snapshot();
    assert_eq!(snap.spans["a"].count, 1);
    assert_eq!(snap.spans["a/b"].count, 2);
    assert_eq!(snap.spans["a/b/c"].count, 1);
    let opens: Vec<&str> = snap
        .events
        .iter()
        .filter_map(|e| match &e.payload {
            Payload::SpanOpen { path } => Some(path.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(opens, ["a", "a/b", "a/b/c", "a/b"]);
    // Every open has a close, and parents close after their children.
    let closes: Vec<&str> = snap
        .events
        .iter()
        .filter_map(|e| match &e.payload {
            Payload::SpanClose { path, .. } => Some(path.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(closes, ["a/b/c", "a/b", "a/b", "a"]);
    end();
}

#[test]
#[should_panic(expected = "span 'a' closed while inner span 'a/b' is still open")]
fn closing_outer_span_before_inner_panics_with_both_paths() {
    let _g = begin();
    let outer = obs::span!("a");
    let _inner = obs::span!("b");
    drop(outer);
}

#[test]
#[should_panic(expected = "unbalanced spans still open: leak")]
fn assert_balanced_lists_open_spans() {
    let _g = begin();
    let guard = obs::span!("leak");
    std::mem::forget(guard);
    obs::span::assert_balanced();
}

#[test]
fn histogram_bucket_boundaries_are_inclusive() {
    let mut h = Histogram::default();
    h.observe(0);
    h.observe(bucket_le(0)); // exactly on the first edge: still bucket 0
    h.observe(bucket_le(0) + 1); // one past: bucket 1
    h.observe(bucket_le(14));
    h.observe(bucket_le(14) + 1); // past the last finite edge: overflow
    h.observe(u64::MAX);
    assert_eq!(h.counts[0], 2);
    assert_eq!(h.counts[1], 1);
    assert_eq!(h.counts[14], 1);
    assert_eq!(h.counts[HIST_BUCKETS - 1], 2);
    assert_eq!(h.count, 6);
    // Edges are powers of four from 4096ns: each bucket spans 4x the last.
    for i in 1..HIST_BUCKETS - 1 {
        assert_eq!(bucket_le(i), bucket_le(i - 1) * 4);
    }
    assert_eq!(bucket_le(HIST_BUCKETS - 1), u64::MAX);
}

#[test]
fn counters_carry_running_totals() {
    let _g = begin();
    obs::counter_add("tok", 2);
    obs::counter_add("tok", 3);
    obs::counter_add("other", 7);
    let snap = obs::snapshot();
    assert_eq!(snap.counters["tok"], 5);
    assert_eq!(snap.counters["other"], 7);
    let tok_totals: Vec<u64> = snap
        .events
        .iter()
        .filter_map(|e| match &e.payload {
            Payload::Counter { name, total, .. } if name == "tok" => Some(*total),
            _ => None,
        })
        .collect();
    assert_eq!(tok_totals, [2, 5]);
    end();
}

#[test]
fn stopwatch_feeds_named_histogram() {
    let _g = begin();
    let sw = obs::Stopwatch::start();
    let ns = sw.observe("lat").expect("enabled stopwatch records");
    let snap = obs::snapshot();
    assert_eq!(snap.histograms["lat"].count, 1);
    assert_eq!(snap.histograms["lat"].sum_ns, ns);
    end();
}

#[test]
fn messages_record_only_when_enabled() {
    let _g = begin();
    obs::set_enabled(false);
    obs::warn("scope", "off");
    obs::set_enabled(true);
    obs::error("scope", "on");
    let snap = obs::snapshot();
    let msgs: Vec<(Level, &str, &str)> = snap
        .events
        .iter()
        .filter_map(|e| match &e.payload {
            Payload::Message { level, scope, text } => {
                Some((*level, scope.as_str(), text.as_str()))
            }
            _ => None,
        })
        .collect();
    assert_eq!(msgs, [(Level::Error, "scope", "on")]);
    end();
}

#[test]
fn kernel_samples_attribute_to_innermost_span() {
    let _g = begin();
    {
        let _s = obs::span!("train");
        let _t = obs::span!("step");
        obs::profile::record_kernel("matmul", Phase::Forward, 100, 64, 1000);
        obs::profile::record_kernel("matmul", Phase::Forward, 50, 32, 500);
        obs::profile::record_kernel("matmul", Phase::Backward, 10, 8, 100);
    }
    let snap = obs::snapshot();
    let step = &snap.spans["train/step"];
    assert_eq!(step.ops, 3);
    assert_eq!(step.flops, 1600);
    let fwd = snap
        .kernels
        .iter()
        .find(|k| k.span == "train/step" && k.op == "matmul" && k.phase == Phase::Forward)
        .expect("forward matmul row");
    assert_eq!(fwd.stat.calls, 2);
    assert_eq!(fwd.stat.ns, 150);
    assert_eq!(fwd.stat.bytes, 96);
    assert_eq!(fwd.stat.flops, 1500);
    let bwd = snap
        .kernels
        .iter()
        .find(|k| k.span == "train/step" && k.phase == Phase::Backward)
        .expect("backward matmul row");
    assert_eq!(bwd.stat.calls, 1);
    end();
}

fn sample_events() -> Vec<Event> {
    vec![
        Event {
            seq: 0,
            ts_ns: 10,
            payload: Payload::SpanOpen {
                path: "a/b c".into(),
            },
        },
        Event {
            seq: 1,
            ts_ns: 20,
            payload: Payload::SpanClose {
                path: "a/b c".into(),
                dur_ns: u64::MAX,
            },
        },
        Event {
            seq: 2,
            ts_ns: 30,
            payload: Payload::Counter {
                name: "tok\"s\\".into(),
                delta: 0,
                total: u64::MAX,
            },
        },
        Event {
            seq: 3,
            ts_ns: 40,
            payload: Payload::Gauge {
                name: "loss".into(),
                value: f64::NAN,
            },
        },
        Event {
            seq: 4,
            ts_ns: 50,
            payload: Payload::Observe {
                name: "lat\nency".into(),
                ns: 4096,
            },
        },
        Event {
            seq: 5,
            ts_ns: 60,
            payload: Payload::Message {
                level: Level::Warn,
                scope: "träin".into(),
                text: "tab\there, quote \" and \\ slash \u{1}".into(),
            },
        },
    ]
}

#[test]
fn jsonl_round_trips_known_events_of_every_type() {
    let events = sample_events();
    let text = write_jsonl(&events);
    assert_eq!(text.lines().count(), events.len());
    let back = read_jsonl(&text).expect("decode");
    assert_eq!(back, events); // Gauge NaN compares by bit pattern
}

#[test]
fn decode_rejects_malformed_lines() {
    assert!(decode_event("not json").is_err());
    assert!(decode_event("{\"seq\":0}").is_err());
    assert!(decode_event("{\"seq\":0,\"ts_ns\":1,\"type\":\"nope\"}").is_err());
    assert!(
        read_jsonl("{\"seq\":0,\"ts_ns\":1,\"type\":\"span_open\",\"path\":\"a\"}\ngarbage\n")
            .is_err()
    );
}

#[test]
fn chrome_trace_is_parseable_json_with_duration_rows() {
    let trace = chrome_trace(&sample_events());
    let value = obs::json::parse(&trace).expect("valid JSON");
    let rows = value.as_arr().expect("array");
    // Span-open events are omitted: the close row carries the interval.
    assert_eq!(rows.len(), sample_events().len() - 1);
    let phases: Vec<&str> = rows
        .iter()
        .map(|r| r.get("ph").and_then(|p| p.as_str()).expect("ph"))
        .collect();
    assert!(phases.contains(&"X"), "complete-event row present");
    assert!(phases.contains(&"C"), "counter row present");
    assert!(phases.contains(&"i"), "instant row present");
    // The X row's ts+dur must reconstruct the close timestamp (in us).
    let x = rows
        .iter()
        .find(|r| r.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .unwrap();
    assert_eq!(x.get("name").and_then(|n| n.as_str()), Some("a/b c"));
    end();
}

#[test]
fn strip_timing_zeroes_only_clock_fields() {
    let stripped: Vec<Event> = sample_events().iter().map(Event::strip_timing).collect();
    for e in &stripped {
        assert_eq!(e.ts_ns, 0);
        match &e.payload {
            Payload::SpanClose { dur_ns, .. } => assert_eq!(*dur_ns, 0),
            Payload::Observe { ns, .. } => assert_eq!(*ns, 0),
            _ => {}
        }
    }
    // Sequence numbers and payload identities survive.
    let seqs: Vec<u64> = stripped.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, [0, 1, 2, 3, 4, 5]);
}

#[test]
fn gauge_round_trip_preserves_exact_bits() {
    let _g = begin();
    let v = 0.1f64 + 0.2f64; // not representable tidily: exact bits matter
    obs::gauge_set("g", v);
    let snap = obs::snapshot();
    let text = write_jsonl(&snap.events);
    let back = read_jsonl(&text).expect("decode");
    let Payload::Gauge { value, .. } = &back.last().unwrap().payload else {
        panic!("expected gauge event");
    };
    assert_eq!(value.to_bits(), v.to_bits());
    end();
}
