//! Trainable byte-pair encoding.
//!
//! Matches the subword regime of the original T5 checkpoints: words are
//! split into characters (with an end-of-word marker) and the most frequent
//! adjacent pair is merged repeatedly. Used by span-corruption tests and as
//! an alternative to the word tokenizer for open-vocabulary corpora.

use std::collections::{BTreeMap, HashMap};

const EOW: &str = "</w>";

/// A trained BPE model: an ordered merge list.
#[derive(Debug, Clone)]
pub struct Bpe {
    merges: Vec<(String, String)>,
    /// Merge priority lookup: pair -> rank.
    ranks: HashMap<(String, String), usize>,
}

impl Bpe {
    /// Trains `num_merges` merges on an iterator of texts.
    pub fn train<'a>(texts: impl IntoIterator<Item = &'a str>, num_merges: usize) -> Self {
        // Word frequency table with pre-split symbol sequences.
        // Ordered maps below: `pair_counts` feeds a max_by tie-break and
        // `word_freq` is rebuilt by iteration each round. Both tie-breaks
        // are already total, but ordered containers keep every iteration
        // canonical (determinism audit).
        let mut word_freq: BTreeMap<Vec<String>, usize> = BTreeMap::new();
        for text in texts {
            for word in text.split_ascii_whitespace() {
                let mut symbols: Vec<String> = word.chars().map(|c| c.to_string()).collect();
                symbols.push(EOW.to_string());
                *word_freq.entry(symbols).or_insert(0) += 1;
            }
        }
        let mut merges = Vec::with_capacity(num_merges);
        for _ in 0..num_merges {
            let mut pair_counts: BTreeMap<(String, String), usize> = BTreeMap::new();
            for (symbols, freq) in &word_freq {
                for w in symbols.windows(2) {
                    *pair_counts.entry((w[0].clone(), w[1].clone())).or_insert(0) += freq;
                }
            }
            // Deterministic best pair: max count, ties by lexicographic
            // order.
            let Some((best, count)) = pair_counts
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            else {
                break;
            };
            if count < 2 {
                break;
            }
            word_freq = word_freq
                .into_iter()
                .map(|(symbols, freq)| (merge_symbols(&symbols, &best), freq))
                .collect();
            merges.push(best);
        }
        let ranks = merges
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i))
            .collect();
        Self { merges, ranks }
    }

    /// Number of learned merges.
    pub fn num_merges(&self) -> usize {
        self.merges.len()
    }

    /// Splits text into subword tokens (end-of-word markers kept on the
    /// final subword of each word, enabling lossless decoding).
    pub fn encode(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        for word in text.split_ascii_whitespace() {
            let mut symbols: Vec<String> = word.chars().map(|c| c.to_string()).collect();
            symbols.push(EOW.to_string());
            loop {
                // Find the highest-priority applicable merge.
                let best = symbols
                    .windows(2)
                    .filter_map(|w| {
                        self.ranks
                            .get(&(w[0].clone(), w[1].clone()))
                            .map(|&r| (r, (w[0].clone(), w[1].clone())))
                    })
                    .min_by_key(|(r, _)| *r);
                match best {
                    Some((_, pair)) => symbols = merge_symbols(&symbols, &pair),
                    None => break,
                }
            }
            out.extend(symbols);
        }
        out
    }

    /// Reassembles subword tokens into text.
    pub fn decode(tokens: &[String]) -> String {
        let mut out = String::new();
        for t in tokens {
            if let Some(stripped) = t.strip_suffix(EOW) {
                out.push_str(stripped);
                out.push(' ');
            } else if t == EOW {
                out.push(' ');
            } else {
                out.push_str(t);
            }
        }
        out.trim_end().to_string()
    }
}

fn merge_symbols(symbols: &[String], pair: &(String, String)) -> Vec<String> {
    let mut out = Vec::with_capacity(symbols.len());
    let mut i = 0;
    while i < symbols.len() {
        if i + 1 < symbols.len() && symbols[i] == pair.0 && symbols[i + 1] == pair.1 {
            out.push(format!("{}{}", pair.0, pair.1));
            i += 2;
        } else {
            out.push(symbols[i].clone());
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequent_pairs_merge_first() {
        let bpe = Bpe::train(["low low low lower lowest"], 10);
        assert!(bpe.num_merges() > 0);
        let toks = bpe.encode("low");
        // "low" appears often enough to become few tokens.
        assert!(toks.len() <= 2, "{toks:?}");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let corpus = "visualize bar select artist.country from artist group by artist.country";
        let bpe = Bpe::train([corpus], 50);
        let toks = bpe.encode(corpus);
        assert_eq!(Bpe::decode(&toks), corpus);
    }

    #[test]
    fn unseen_words_fall_back_to_characters() {
        let bpe = Bpe::train(["aaa bbb"], 5);
        let toks = bpe.encode("xyz");
        assert_eq!(Bpe::decode(&toks), "xyz");
        assert!(toks.len() >= 3);
    }

    #[test]
    fn zero_merges_is_character_level() {
        let bpe = Bpe::train(["hello"], 0);
        let toks = bpe.encode("hi");
        assert_eq!(toks, vec!["h", "i", "</w>"]);
    }

    #[test]
    fn training_is_deterministic() {
        let a = Bpe::train(["the quick brown fox the quick"], 20);
        let b = Bpe::train(["the quick brown fox the quick"], 20);
        assert_eq!(a.encode("the quick"), b.encode("the quick"));
    }

    #[test]
    fn more_merges_give_fewer_tokens() {
        let corpus = "grouping scatter grouping line grouping scatter grouping line";
        let small = Bpe::train([corpus], 2);
        let large = Bpe::train([corpus], 40);
        assert!(large.encode(corpus).len() <= small.encode(corpus).len());
    }
}
