//! Vocabulary and tokenization for DataVisT5.
//!
//! The unified encoding of §III-C/D means text, DV queries, schemas, and
//! tables all share one surface vocabulary. Two tokenizers are provided:
//!
//! * [`WordTokenizer`] — whitespace word-level tokenization over a closed
//!   vocabulary fit on the training corpus. This is the tokenizer the
//!   models train with: the synthetic corpora are closed-vocabulary, so
//!   word tokens keep sequences short on a single-core budget.
//! * [`Bpe`] — a trainable byte-pair-encoding tokenizer matching the
//!   subword regime of the original T5/CodeT5+ checkpoints, used by the
//!   span-corruption tests and available for larger vocabularies.
//!
//! Special tokens follow the paper: sentinel masks `<mask_0>` … for T5
//! span corruption, and task prefixes `<nl>`, `<vql>`, `<question>`,
//! `<answer>`, `<schema>`, `<table>`, `<description>` for the Bidirectional
//! Dual-Corpus objectives (Figure 5).

mod bpe;
mod vocab;

pub use bpe::Bpe;
pub use vocab::{Vocab, VocabBuilder};

/// Fixed special-token ids.
pub mod special {
    /// Padding (also the T5 decoder start token).
    pub const PAD: u32 = 0;
    /// End of sequence.
    pub const EOS: u32 = 1;
    /// Unknown token.
    pub const UNK: u32 = 2;

    pub const PAD_TOKEN: &str = "<pad>";
    pub const EOS_TOKEN: &str = "</s>";
    pub const UNK_TOKEN: &str = "<unk>";

    /// Number of sentinel mask tokens reserved for span corruption.
    pub const NUM_SENTINELS: usize = 64;

    /// The sentinel token string for mask index `i` (`<mask_0>`, …).
    pub fn sentinel(i: usize) -> String {
        assert!(i < NUM_SENTINELS, "sentinel index {i} out of range");
        format!("<mask_{i}>")
    }

    /// Task-prefix tokens used by the BDC objectives.
    pub const TASK_TOKENS: [&str; 7] = [
        "<nl>",
        "<vql>",
        "<question>",
        "<answer>",
        "<schema>",
        "<table>",
        "<description>",
    ];
}

/// Word-level tokenizer over a [`Vocab`].
///
/// Encoding splits on ASCII whitespace; unknown words map to
/// [`special::UNK`]. Decoding joins with single spaces and skips padding.
#[derive(Debug, Clone)]
pub struct WordTokenizer {
    vocab: Vocab,
}

impl WordTokenizer {
    /// Wraps an existing vocabulary.
    pub fn new(vocab: Vocab) -> Self {
        Self { vocab }
    }

    /// Fits a vocabulary on an iterator of texts, keeping words whose
    /// frequency is at least `min_freq`.
    pub fn fit<'a>(texts: impl IntoIterator<Item = &'a str>, min_freq: usize) -> Self {
        let mut builder = VocabBuilder::new();
        for t in texts {
            for w in t.split_ascii_whitespace() {
                builder.observe(w);
            }
        }
        Self {
            vocab: builder.build(min_freq),
        }
    }

    /// The underlying vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Encodes text into token ids (no implicit EOS).
    pub fn encode(&self, text: &str) -> Vec<u32> {
        text.split_ascii_whitespace()
            .map(|w| self.vocab.id(w).unwrap_or(special::UNK))
            .collect()
    }

    /// Encodes and appends [`special::EOS`].
    pub fn encode_with_eos(&self, text: &str) -> Vec<u32> {
        let mut ids = self.encode(text);
        ids.push(special::EOS);
        ids
    }

    /// Decodes ids back to text, dropping pad/eos markers.
    pub fn decode(&self, ids: &[u32]) -> String {
        let mut words = Vec::with_capacity(ids.len());
        for &id in ids {
            if id == special::PAD || id == special::EOS {
                continue;
            }
            words.push(self.vocab.token(id).unwrap_or(special::UNK_TOKEN));
        }
        words.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> WordTokenizer {
        WordTokenizer::fit(
            [
                "visualize bar select artist.country , count ( artist.country ) from artist",
                "give me a pie chart about the countries of artists",
            ],
            1,
        )
    }

    #[test]
    fn roundtrip_known_text() {
        let t = fixture();
        let text = "visualize bar select artist.country from artist";
        let ids = t.encode(text);
        assert_eq!(t.decode(&ids), text);
    }

    #[test]
    fn unknown_words_map_to_unk() {
        let t = fixture();
        let ids = t.encode("visualize hexbin");
        assert_eq!(ids[1], special::UNK);
        assert!(t.decode(&ids).contains("<unk>"));
    }

    #[test]
    fn eos_is_appended_and_stripped() {
        let t = fixture();
        let ids = t.encode_with_eos("visualize bar");
        assert_eq!(*ids.last().unwrap(), special::EOS);
        assert_eq!(t.decode(&ids), "visualize bar");
    }

    #[test]
    fn min_freq_prunes_rare_words() {
        let t = WordTokenizer::fit(["a a b"], 2);
        assert!(t.vocab().id("a").is_some());
        assert!(t.vocab().id("b").is_none());
    }

    #[test]
    fn special_tokens_reserved() {
        let t = fixture();
        assert_eq!(t.vocab().id(special::PAD_TOKEN), Some(special::PAD));
        assert_eq!(t.vocab().id(special::EOS_TOKEN), Some(special::EOS));
        assert_eq!(t.vocab().id(special::UNK_TOKEN), Some(special::UNK));
        assert!(t.vocab().id(&special::sentinel(0)).is_some());
        for task in special::TASK_TOKENS {
            assert!(t.vocab().id(task).is_some(), "missing {task}");
        }
    }

    #[test]
    #[should_panic(expected = "sentinel index")]
    fn sentinel_bounds_checked() {
        let _ = special::sentinel(special::NUM_SENTINELS);
    }
}
