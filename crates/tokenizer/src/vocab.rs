//! Vocabulary: bidirectional token ↔ id mapping with reserved specials.

use std::collections::{BTreeMap, HashMap};

use crate::special;

/// An immutable vocabulary. Ids are dense; ids `0..=2` are the pad/eos/unk
/// specials, followed by sentinel masks and task tokens, then corpus words
/// in frequency order (ties broken lexicographically, so construction is
/// deterministic).
#[derive(Debug, Clone)]
pub struct Vocab {
    tokens: Vec<String>,
    index: HashMap<String, u32>,
}

impl Vocab {
    /// Builds a vocabulary from pre-ordered tokens (specials must already
    /// be present at their reserved positions). Prefer [`VocabBuilder`].
    pub fn from_tokens(tokens: Vec<String>) -> Self {
        assert_eq!(tokens[special::PAD as usize], special::PAD_TOKEN);
        assert_eq!(tokens[special::EOS as usize], special::EOS_TOKEN);
        assert_eq!(tokens[special::UNK as usize], special::UNK_TOKEN);
        let index = tokens
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i as u32))
            .collect();
        Self { tokens, index }
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the vocabulary holds only specials.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Id of a token.
    pub fn id(&self, token: &str) -> Option<u32> {
        self.index.get(token).copied()
    }

    /// Token for an id.
    pub fn token(&self, id: u32) -> Option<&str> {
        self.tokens.get(id as usize).map(|s| s.as_str())
    }

    /// All tokens in id order.
    pub fn tokens(&self) -> &[String] {
        &self.tokens
    }
}

/// Accumulates word frequencies and produces a [`Vocab`].
#[derive(Debug, Default)]
pub struct VocabBuilder {
    // Ordered map: `build` drains these counts into the sorted vocab list.
    // The sort's tie-break is already total (count desc, then word), but an
    // ordered container keeps the pipeline hash-order-free end to end
    // (determinism audit).
    counts: BTreeMap<String, usize>,
}

impl VocabBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one occurrence of a word.
    pub fn observe(&mut self, word: &str) {
        *self.counts.entry(word.to_string()).or_insert(0) += 1;
    }

    /// Finalizes into a vocabulary, dropping words rarer than `min_freq`.
    pub fn build(self, min_freq: usize) -> Vocab {
        let mut tokens = vec![
            special::PAD_TOKEN.to_string(),
            special::EOS_TOKEN.to_string(),
            special::UNK_TOKEN.to_string(),
        ];
        for i in 0..special::NUM_SENTINELS {
            tokens.push(special::sentinel(i));
        }
        tokens.extend(special::TASK_TOKENS.iter().map(|s| s.to_string()));
        let reserved: std::collections::HashSet<&str> = tokens.iter().map(|s| s.as_str()).collect();
        let mut words: Vec<(String, usize)> = self
            .counts
            .into_iter()
            .filter(|(w, c)| *c >= min_freq && !reserved.contains(w.as_str()))
            .collect();
        words.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        tokens.extend(words.into_iter().map(|(w, _)| w));
        Vocab::from_tokens(tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_orders_by_frequency_then_lexicographic() {
        let mut b = VocabBuilder::new();
        for w in ["zeta", "alpha", "alpha", "beta", "beta"] {
            b.observe(w);
        }
        let v = b.build(1);
        let base = 3 + special::NUM_SENTINELS + special::TASK_TOKENS.len();
        assert_eq!(v.token(base as u32), Some("alpha"));
        assert_eq!(v.token(base as u32 + 1), Some("beta"));
        assert_eq!(v.token(base as u32 + 2), Some("zeta"));
    }

    #[test]
    fn specials_occupy_reserved_ids() {
        let v = VocabBuilder::new().build(1);
        assert_eq!(v.id("<pad>"), Some(0));
        assert_eq!(v.id("</s>"), Some(1));
        assert_eq!(v.id("<unk>"), Some(2));
        assert_eq!(v.id("<mask_0>"), Some(3));
    }

    #[test]
    fn build_is_deterministic() {
        let make = || {
            let mut b = VocabBuilder::new();
            for w in ["x", "y", "z", "y"] {
                b.observe(w);
            }
            b.build(1)
        };
        assert_eq!(make().tokens(), make().tokens());
    }

    #[test]
    fn observing_a_special_does_not_duplicate_it() {
        let mut b = VocabBuilder::new();
        b.observe("<nl>");
        b.observe("word");
        let v = b.build(1);
        let n = v.tokens().iter().filter(|t| t.as_str() == "<nl>").count();
        assert_eq!(n, 1);
    }

    #[test]
    fn roundtrip_id_token() {
        let mut b = VocabBuilder::new();
        b.observe("hello");
        let v = b.build(1);
        let id = v.id("hello").unwrap();
        assert_eq!(v.token(id), Some("hello"));
        assert_eq!(v.token(9999), None);
    }
}
