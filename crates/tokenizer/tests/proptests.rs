//! Property-based tests for tokenization: roundtrips, determinism, and
//! BPE compression invariants.

use proptest::prelude::*;

use tokenizer::{special, Bpe, WordTokenizer};

fn word() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_.]{0,10}"
}

fn sentence() -> impl Strategy<Value = String> {
    prop::collection::vec(word(), 1..15).prop_map(|w| w.join(" "))
}

proptest! {
    /// Encoding text the tokenizer was fitted on roundtrips exactly.
    #[test]
    fn fitted_text_roundtrips(s in sentence()) {
        let tok = WordTokenizer::fit([s.as_str()], 1);
        let ids = tok.encode(&s);
        prop_assert_eq!(tok.decode(&ids), s);
    }

    /// No fitted word maps to UNK; unfitted words always do.
    #[test]
    fn unk_behaviour(s in sentence(), novel in "[A-Z]{12}") {
        let tok = WordTokenizer::fit([s.as_str()], 1);
        for id in tok.encode(&s) {
            prop_assert_ne!(id, special::UNK);
        }
        let ids = tok.encode(&novel);
        prop_assert_eq!(ids, vec![special::UNK]);
    }

    /// Special ids never collide with corpus words.
    #[test]
    fn specials_reserved(s in sentence()) {
        let tok = WordTokenizer::fit([s.as_str()], 1);
        for w in s.split_whitespace() {
            if let Some(id) = tok.vocab().id(w) {
                prop_assert!(id >= 3, "word '{}' landed on a special id {}", w, id);
            }
        }
    }

    /// BPE decode(encode(x)) == x for arbitrary fitted text.
    #[test]
    fn bpe_roundtrips(s in sentence(), merges in 0usize..60) {
        let bpe = Bpe::train([s.as_str()], merges);
        let toks = bpe.encode(&s);
        prop_assert_eq!(Bpe::decode(&toks), s);
    }

    /// BPE also roundtrips on text it was not trained on.
    #[test]
    fn bpe_roundtrips_unseen(train in sentence(), test in sentence()) {
        let bpe = Bpe::train([train.as_str()], 30);
        let toks = bpe.encode(&test);
        prop_assert_eq!(Bpe::decode(&toks), test);
    }

    /// More merges never yields more tokens on the training text.
    #[test]
    fn bpe_merges_monotone(s in sentence()) {
        let small = Bpe::train([s.as_str()], 5);
        let large = Bpe::train([s.as_str()], 50);
        prop_assert!(large.encode(&s).len() <= small.encode(&s).len());
    }

    /// Encoding is deterministic.
    #[test]
    fn encode_deterministic(s in sentence()) {
        let tok = WordTokenizer::fit([s.as_str()], 1);
        prop_assert_eq!(tok.encode(&s), tok.encode(&s));
    }
}
