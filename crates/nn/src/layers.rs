//! Reusable layers: Linear, Embedding, RMSNorm, feed-forward, and
//! multi-head attention with T5 relative-position buckets.
//!
//! Layers are plain structs holding [`ParamId`]s plus dimensions; a layer's
//! `forward` binds its parameters into the caller's graph. Weight layout is
//! `[d_in, d_out]` so activations stay row-major (`y = x · W`).

use tensor::{Graph, Tensor, Var, XorShift};

use crate::param::{ParamId, ParamSet};

/// Fully-connected layer `y = x·W (+ b)`, optionally carrying a LoRA
/// adapter (see [`crate::lora`]) attached after construction.
#[derive(Debug, Clone)]
pub struct Linear {
    pub w: ParamId,
    pub b: Option<ParamId>,
    pub d_in: usize,
    pub d_out: usize,
    /// Low-rank adapter `(A, B, scale)`; when present the forward pass
    /// computes `x·W + (x·A)·B·scale` with `W` expected frozen.
    pub lora: Option<(ParamId, ParamId, f32)>,
}

impl Linear {
    /// Creates a linear layer with `std = d_in^-0.5` normal init.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        d_in: usize,
        d_out: usize,
        bias: bool,
        rng: &mut XorShift,
    ) -> Self {
        let std = 1.0 / (d_in as f32).sqrt();
        let w = ps.add(
            format!("{name}.w"),
            Tensor::randn(vec![d_in, d_out], std, rng),
        );
        let b = bias.then(|| ps.add(format!("{name}.b"), Tensor::zeros(vec![d_out])));
        Self {
            w,
            b,
            d_in,
            d_out,
            lora: None,
        }
    }

    /// Freezes this layer's weight and attaches a rank-`rank` LoRA adapter
    /// (`B` zero-initialized, so behaviour is unchanged until training).
    pub fn attach_lora(
        &mut self,
        ps: &mut ParamSet,
        name: &str,
        rank: usize,
        alpha: f32,
        rng: &mut XorShift,
    ) {
        ps.freeze(self.w);
        let a = ps.add(
            format!("{name}.lora_a"),
            Tensor::randn(vec![self.d_in, rank], 1.0 / rank as f32, rng),
        );
        let b = ps.add(
            format!("{name}.lora_b"),
            Tensor::zeros(vec![rank, self.d_out]),
        );
        self.lora = Some((a, b, alpha / rank as f32));
    }

    /// Applies the layer to `[n, d_in]` activations.
    pub fn forward(&self, g: &mut Graph, ps: &ParamSet, x: Var) -> Var {
        let w = ps.bind(g, self.w);
        let mut y = g.matmul(x, w);
        if let Some((a, b, scale)) = self.lora {
            let va = ps.bind(g, a);
            let vb = ps.bind(g, b);
            let xa = g.matmul(x, va);
            let xab = g.matmul(xa, vb);
            let delta = g.scale(xab, scale);
            y = g.add(y, delta);
        }
        match self.b {
            Some(b) => {
                let vb = ps.bind(g, b);
                g.add_bias(y, vb)
            }
            None => y,
        }
    }
}

/// Token embedding table.
#[derive(Debug, Clone)]
pub struct Embedding {
    pub table: ParamId,
    pub vocab: usize,
    pub d: usize,
}

impl Embedding {
    pub fn new(ps: &mut ParamSet, name: &str, vocab: usize, d: usize, rng: &mut XorShift) -> Self {
        let table = ps.add(
            format!("{name}.table"),
            Tensor::randn(vec![vocab, d], 0.02, rng),
        );
        Self { table, vocab, d }
    }

    /// Looks up ids into `[len, d]` activations.
    pub fn forward(&self, g: &mut Graph, ps: &ParamSet, ids: &[usize]) -> Var {
        let t = ps.bind(g, self.table);
        g.embedding(t, ids)
    }
}

/// T5-style RMS normalization with learned gain.
#[derive(Debug, Clone)]
pub struct RmsNorm {
    pub gain: ParamId,
    pub eps: f32,
}

impl RmsNorm {
    pub fn new(ps: &mut ParamSet, name: &str, d: usize) -> Self {
        Self {
            gain: ps.add(format!("{name}.gain"), Tensor::filled(vec![d], 1.0)),
            eps: 1e-6,
        }
    }

    pub fn forward(&self, g: &mut Graph, ps: &ParamSet, x: Var) -> Var {
        let gain = ps.bind(g, self.gain);
        g.rms_norm(x, gain, self.eps)
    }
}

/// T5 feed-forward block: `relu(x·W1)·W2` (no biases).
#[derive(Debug, Clone)]
pub struct FeedForward {
    pub wi: Linear,
    pub wo: Linear,
}

impl FeedForward {
    pub fn new(ps: &mut ParamSet, name: &str, d: usize, d_ff: usize, rng: &mut XorShift) -> Self {
        Self {
            wi: Linear::new(ps, &format!("{name}.wi"), d, d_ff, false, rng),
            wo: Linear::new(ps, &format!("{name}.wo"), d_ff, d, false, rng),
        }
    }

    pub fn forward(&self, g: &mut Graph, ps: &ParamSet, x: Var) -> Var {
        let h = self.wi.forward(g, ps, x);
        let h = g.relu(h);
        self.wo.forward(g, ps, h)
    }
}

/// T5 relative-position bias shared by a stack's attention layers.
#[derive(Debug, Clone)]
pub struct RelPosBias {
    pub table: ParamId,
    pub num_buckets: usize,
    pub max_distance: usize,
    pub heads: usize,
    /// Encoders attend both ways; decoders only backwards.
    pub bidirectional: bool,
}

impl RelPosBias {
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        heads: usize,
        bidirectional: bool,
        rng: &mut XorShift,
    ) -> Self {
        let num_buckets = 32;
        Self {
            table: ps.add(
                format!("{name}.table"),
                Tensor::randn(vec![num_buckets, heads], 0.02, rng),
            ),
            num_buckets,
            max_distance: 128,
            heads,
            bidirectional,
        }
    }

    /// The T5 bucket for `relative_position = key_pos - query_pos`.
    pub fn bucket(&self, relative_position: i64) -> usize {
        let mut rp = relative_position;
        let mut nb = self.num_buckets as i64;
        let mut offset = 0i64;
        if self.bidirectional {
            nb /= 2;
            if rp > 0 {
                offset = nb;
            }
            rp = rp.abs();
        } else {
            rp = (-rp).max(0);
        }
        let max_exact = nb / 2;
        let val = if rp < max_exact {
            rp
        } else {
            let log_ratio = (rp as f64 / max_exact as f64).ln()
                / (self.max_distance as f64 / max_exact as f64).ln();
            let v = max_exact + (log_ratio * (nb - max_exact) as f64) as i64;
            v.min(nb - 1)
        };
        (offset + val) as usize
    }

    /// Builds the `[heads, tq, tk]` bias for query positions
    /// `offset..offset+tq` against key positions `0..tk` (the offset serves
    /// incremental decoding).
    pub fn bias(&self, g: &mut Graph, ps: &ParamSet, tq: usize, tk: usize, offset: usize) -> Var {
        let mut ids = Vec::with_capacity(tq * tk);
        for q in 0..tq {
            for k in 0..tk {
                ids.push(self.bucket(k as i64 - (q + offset) as i64));
            }
        }
        let table = ps.bind(g, self.table);
        let flat = g.embedding(table, &ids); // [tq*tk, heads]
        let cube = g.reshape(flat, vec![tq, tk, self.heads]);
        g.permute3(cube, [2, 0, 1])
    }
}

/// Builds an additive causal mask: `-1e9` where `key > query + offset`.
pub fn causal_mask(heads: usize, tq: usize, tk: usize, offset: usize) -> Tensor {
    let mut m = Tensor::zeros(vec![heads, tq, tk]);
    for h in 0..heads {
        for q in 0..tq {
            for k in 0..tk {
                if k > q + offset {
                    m.data_mut()[h * tq * tk + q * tk + k] = -1e9;
                }
            }
        }
    }
    m
}

/// Multi-head attention (T5 style: no biases, scale `dh^-0.5`).
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    pub wq: Linear,
    pub wk: Linear,
    pub wv: Linear,
    pub wo: Linear,
    pub heads: usize,
    pub d_model: usize,
}

impl MultiHeadAttention {
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        d_model: usize,
        heads: usize,
        rng: &mut XorShift,
    ) -> Self {
        assert_eq!(d_model % heads, 0, "d_model must divide into heads");
        Self {
            wq: Linear::new(ps, &format!("{name}.q"), d_model, d_model, false, rng),
            wk: Linear::new(ps, &format!("{name}.k"), d_model, d_model, false, rng),
            wv: Linear::new(ps, &format!("{name}.v"), d_model, d_model, false, rng),
            wo: Linear::new(ps, &format!("{name}.o"), d_model, d_model, false, rng),
            heads,
            d_model,
        }
    }

    fn split_heads(&self, g: &mut Graph, x: Var, t: usize) -> Var {
        let dh = self.d_model / self.heads;
        let cube = g.reshape(x, vec![t, self.heads, dh]);
        g.permute3(cube, [1, 0, 2]) // [H, t, dh]
    }

    /// Attention of `x_q` (`[tq, d]`) over `x_kv` (`[tk, d]`).
    ///
    /// `bias` is an optional `[heads, tq, tk]` additive term (relative
    /// positions and/or causal mask, pre-combined by the caller).
    pub fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        x_q: Var,
        x_kv: Var,
        bias: Option<Var>,
    ) -> Var {
        let tq = g.value(x_q).shape()[0];
        let tk = g.value(x_kv).shape()[0];
        let dh = self.d_model / self.heads;

        let q = self.wq.forward(g, ps, x_q);
        let k = self.wk.forward(g, ps, x_kv);
        let v = self.wv.forward(g, ps, x_kv);
        let q = self.split_heads(g, q, tq);
        let k = self.split_heads(g, k, tk);
        let v = self.split_heads(g, v, tk);

        let scores = g.bmm(q, k, true); // [H, tq, tk]
        let scores = g.scale(scores, 1.0 / (dh as f32).sqrt());
        let scores = match bias {
            Some(b) => g.add(scores, b),
            None => scores,
        };
        let probs = g.softmax(scores);
        let ctx = g.bmm(probs, v, false); // [H, tq, dh]
        let ctx = g.permute3(ctx, [1, 0, 2]); // [tq, H, dh]
        let ctx = g.reshape(ctx, vec![tq, self.d_model]);
        self.wo.forward(g, ps, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> XorShift {
        XorShift::new(12345)
    }

    #[test]
    fn linear_shapes_and_bias() {
        let mut ps = ParamSet::new();
        let mut r = rng();
        let lin = Linear::new(&mut ps, "l", 4, 6, true, &mut r);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::randn(vec![3, 4], 1.0, &mut r), false);
        let y = lin.forward(&mut g, &ps, x);
        assert_eq!(g.value(y).shape(), &[3, 6]);
    }

    #[test]
    fn embedding_returns_rows() {
        let mut ps = ParamSet::new();
        let mut r = rng();
        let emb = Embedding::new(&mut ps, "e", 10, 4, &mut r);
        let mut g = Graph::new();
        let y = emb.forward(&mut g, &ps, &[1, 1, 7]);
        assert_eq!(g.value(y).shape(), &[3, 4]);
        // Repeated id yields identical rows.
        let d = g.value(y).data();
        assert_eq!(&d[0..4], &d[4..8]);
    }

    #[test]
    fn rms_norm_normalizes_rows() {
        let mut ps = ParamSet::new();
        let norm = RmsNorm::new(&mut ps, "n", 8);
        let mut g = Graph::new();
        let mut r = rng();
        let x = g.leaf(Tensor::randn(vec![2, 8], 5.0, &mut r), false);
        let y = norm.forward(&mut g, &ps, x);
        for row in g.value(y).data().chunks(8) {
            let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / 8.0;
            assert!((ms - 1.0).abs() < 1e-3, "row mean square {ms}");
        }
    }

    #[test]
    fn attention_output_shape() {
        let mut ps = ParamSet::new();
        let mut r = rng();
        let attn = MultiHeadAttention::new(&mut ps, "a", 8, 2, &mut r);
        let mut g = Graph::new();
        let xq = g.leaf(Tensor::randn(vec![5, 8], 1.0, &mut r), false);
        let xkv = g.leaf(Tensor::randn(vec![7, 8], 1.0, &mut r), false);
        let y = attn.forward(&mut g, &ps, xq, xkv, None);
        assert_eq!(g.value(y).shape(), &[5, 8]);
    }

    #[test]
    fn causal_mask_blocks_future() {
        let m = causal_mask(1, 3, 3, 0);
        // Row 0 can only see key 0.
        assert_eq!(m.data()[0], 0.0);
        assert_eq!(m.data()[1], -1e9);
        assert_eq!(m.data()[2], -1e9);
        // Row 2 sees everything.
        assert_eq!(&m.data()[6..9], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn causal_mask_with_offset_for_incremental_decode() {
        // A single query at position 2 may see keys 0..=2 of 4.
        let m = causal_mask(1, 1, 4, 2);
        assert_eq!(m.data(), &[0.0, 0.0, 0.0, -1e9]);
    }

    #[test]
    fn causal_attention_ignores_future_tokens() {
        let mut ps = ParamSet::new();
        let mut r = rng();
        let attn = MultiHeadAttention::new(&mut ps, "a", 8, 2, &mut r);
        // Two inputs identical in the first 2 positions, different at 3rd.
        let base = Tensor::randn(vec![3, 8], 1.0, &mut r);
        let mut other = base.clone();
        for v in &mut other.data_mut()[16..24] {
            *v += 1.0;
        }
        let run = |x: Tensor, attn: &MultiHeadAttention, ps: &ParamSet| {
            let mut g = Graph::new();
            let vx = g.leaf(x, false);
            let mask = g.leaf(causal_mask(2, 3, 3, 0), false);
            let y = attn.forward(&mut g, ps, vx, vx, Some(mask));
            g.value(y).data()[..16].to_vec()
        };
        let a = run(base, &attn, &ps);
        let b = run(other, &attn, &ps);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-5, "causality leak: {x} vs {y}");
        }
    }

    #[test]
    fn rel_pos_buckets_are_symmetric_classes() {
        let mut ps = ParamSet::new();
        let mut r = rng();
        let bias = RelPosBias::new(&mut ps, "rb", 4, true, &mut r);
        // Same distance same bucket, opposite signs differ.
        assert_eq!(bias.bucket(3), bias.bucket(3));
        assert_ne!(bias.bucket(3), bias.bucket(-3));
        // Large distances saturate below num_buckets.
        assert!(bias.bucket(10_000) < bias.num_buckets);
        assert!(bias.bucket(-10_000) < bias.num_buckets / 2);
    }

    #[test]
    fn unidirectional_buckets_ignore_future() {
        let mut ps = ParamSet::new();
        let mut r = rng();
        let bias = RelPosBias::new(&mut ps, "rb", 4, false, &mut r);
        // Future keys (rel > 0) collapse to bucket 0 for causal decoders.
        assert_eq!(bias.bucket(5), bias.bucket(1));
        assert_ne!(bias.bucket(-5), bias.bucket(5));
    }

    #[test]
    fn bias_tensor_shape_and_offset() {
        let mut ps = ParamSet::new();
        let mut r = rng();
        let bias = RelPosBias::new(&mut ps, "rb", 4, true, &mut r);
        let mut g = Graph::new();
        let b = bias.bias(&mut g, &ps, 3, 5, 0);
        assert_eq!(g.value(b).shape(), &[4, 3, 5]);
        // With offset 2 and tq 1 the single row equals row 2 of the full
        // bias.
        let mut g2 = Graph::new();
        let b_inc = bias.bias(&mut g2, &ps, 1, 5, 2);
        let full = g.value(b);
        let inc = g2.value(b_inc);
        for h in 0..4 {
            for k in 0..5 {
                let want = full.data()[h * 15 + 2 * 5 + k];
                let got = inc.data()[h * 5 + k];
                assert_eq!(want, got);
            }
        }
    }

    #[test]
    fn feed_forward_learns_sign_flip() {
        // Tiny sanity check that composite layers train end to end.
        let mut ps = ParamSet::new();
        let mut r = rng();
        let ff = FeedForward::new(&mut ps, "ff", 2, 8, &mut r);
        let mut opt = crate::optim::AdamW {
            weight_decay: 0.0,
            ..Default::default()
        };
        let x_data = Tensor::from_vec(vec![4, 2], vec![1.0, 0.0, 0.0, 1.0, -1.0, 0.0, 0.0, -1.0]);
        let y_data = Tensor::from_vec(vec![4, 2], vec![-1.0, 0.0, 0.0, -1.0, 1.0, 0.0, 0.0, 1.0]);
        let mut last = f32::MAX;
        for _ in 0..300 {
            let mut g = Graph::new();
            let x = g.leaf(x_data.clone(), false);
            let y = ff.forward(&mut g, &ps, x);
            let t = g.leaf(y_data.clone(), false);
            let neg_t = g.scale(t, -1.0);
            let diff = g.add(y, neg_t);
            let sq = g.mul(diff, diff);
            let loss = g.sum(sq);
            last = g.value(loss).data()[0];
            g.backward(loss);
            ps.absorb_grads(&g);
            opt.step(&mut ps, 0.01, 1.0);
        }
        assert!(last < 0.05, "loss did not fall: {last}");
    }
}
