//! Cross-request prefix cache for encoder outputs.
//!
//! DataVisT5's standardized encoding puts every request's schema prefix
//! in a canonical text form, so concurrent requests over the same
//! database produce *byte-identical* encoder inputs. The serving engine
//! exploits that redundancy here: the decoder's cross-attention K/V
//! blocks (the only encoder-derived state a decode slot ever reads) are
//! cached keyed by a content hash of the standardized input tokens, and
//! an admission whose input matches a resident entry adopts the cached
//! tensors instead of re-running the encoder.
//!
//! # Exact keying
//!
//! The encoder is bidirectional, so its output depends on *every* input
//! token — a cached entry is only reusable when the whole standardized
//! input matches bit for bit. The cache therefore keys on the full token
//! sequence ("prefix" names the encoder phase, which is the prefix of
//! the request's compute, not a token-level prefix match). Keys are
//! FNV-1a content hashes ([`prefix_hash`]); each entry also retains its
//! full token sequence, and a lookup whose tokens differ from the
//! resident entry's (a 64-bit collision) is treated as a miss and the
//! colliding insert is bypassed — a collision can cost a recompute,
//! never a wrong answer.
//!
//! # Determinism
//!
//! Everything is ordered: entries live in a `BTreeMap` keyed by content
//! hash, recency is a monotonic insertion/touch sequence number in a
//! second `BTreeMap`, and eviction walks that sequence order — the
//! least-recently-used *unpinned* entry goes first, always the same one
//! for the same operation history. No wall clock, no ambient RNG, no
//! hash-order iteration. Double-running one operation trace yields the
//! identical eviction order (`cache_proptests.rs` locks this in).
//!
//! # Bit-invisibility
//!
//! A cache hit hands back the very tensors a cold [`DecodeState::new`]
//! run produced for the same input — the same bits, shared via `Arc`
//! rather than recomputed. Whether the cache is off, cold, pre-warmed,
//! or thrashing under a tiny byte budget, decoded tokens and KV bytes
//! are bitwise identical (`cache_differential.rs`).
//!
//! # Accounting
//!
//! The cache is bounded by an explicit byte budget over tensor payloads
//! (`numel × 4`); [`PrefixCache::bytes`] never exceeds the budget.
//! Entries referenced by a live decode slot are *pinned* and never
//! evicted; an insert that cannot fit after evicting every unpinned
//! entry is bypassed rather than over-committing. Every event carries a
//! registered diagnostic code (`C001` hit, `C002` miss, `C003` evict,
//! `C004` bypass — see `analysis::registry`), and the running tallies
//! surface as `serve.cache.*` obs counters/gauges.
//!
//! [`DecodeState::new`]: crate::t5::DecodeState::new

use std::collections::BTreeMap;
use std::sync::Arc;

use tensor::Tensor;

/// Deterministic 64-bit content hash of a token sequence (FNV-1a over
/// the little-endian bytes of each id). The serving layer's cache key.
pub fn prefix_hash(tokens: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &t in tokens {
        for b in t.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// The encoder-derived state one decode slot needs: per-decoder-layer
/// cross-attention keys and values (`[src_len, d_model]` each), exactly
/// as `DecodeState::new` precomputes them.
#[derive(Debug, Clone)]
pub struct PrefixKv {
    pub cross_k: Vec<Tensor>,
    pub cross_v: Vec<Tensor>,
}

impl PrefixKv {
    /// A deterministic synthetic entry derived purely from `src`: the
    /// payload the scripted serving test double and the cache property
    /// suite stand in for real encoder output. Same `src` → same bits,
    /// different `src` → different bits (content comes from
    /// [`prefix_hash`] mixed per element), so bit-identity assertions
    /// stay meaningful without running a model.
    pub fn synthetic(src: &[u32], layers: usize, d_model: usize) -> PrefixKv {
        let h = prefix_hash(src);
        let fill = |salt: u64| {
            let rows = src.len();
            let data: Vec<f32> = (0..rows * d_model)
                .map(|i| {
                    let mix = h ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (i as u64);
                    // Small exact-in-f32 integers: bit-stable everywhere.
                    (mix % 251) as f32 - 125.0
                })
                .collect();
            Tensor::from_vec(vec![rows, d_model], data)
        };
        PrefixKv {
            cross_k: (0..layers).map(|l| fill(2 * l as u64)).collect(),
            cross_v: (0..layers).map(|l| fill(2 * l as u64 + 1)).collect(),
        }
    }

    /// Payload bytes at four bytes per scalar (the unit of the cache's
    /// byte budget).
    pub fn bytes(&self) -> usize {
        self.cross_k
            .iter()
            .chain(self.cross_v.iter())
            .map(|t| t.numel() * 4)
            .sum()
    }
}

/// Running event tallies. Each field maps to a registered diagnostic
/// code via [`CacheStats::code_tallies`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that adopted a resident entry (C001).
    pub hits: u64,
    /// Lookups that found nothing reusable (C002).
    pub misses: u64,
    /// Entries accepted into the cache.
    pub insertions: u64,
    /// Unpinned LRU entries dropped for space (C003).
    pub evictions: u64,
    /// Inserts left uncached: oversized or colliding (C004).
    pub bypasses: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction in `0.0..=1.0` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// The tallies under their registered diagnostic codes, in code
    /// order — the cross-checkable rendering golden tests pin against
    /// `analysis::registry`.
    pub fn code_tallies(&self) -> [(&'static str, u64); 4] {
        [
            ("C001", self.hits),
            ("C002", self.misses),
            ("C003", self.evictions),
            ("C004", self.bypasses),
        ]
    }
}

/// One cache event, recorded (in event order) when the event log is
/// enabled — the raw stream golden tests pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEvent {
    /// Registered diagnostic code (`C001`/`C002`/`C003`/`C004`).
    pub code: &'static str,
    /// Content hash of the entry the event concerns.
    pub hash: u64,
}

/// One resident entry.
struct Entry {
    /// The full key tokens (collision guard: a hash match with
    /// different tokens is not a hit).
    src: Vec<u32>,
    kv: Arc<PrefixKv>,
    bytes: usize,
    /// Recency stamp: key into `lru`, bumped on every hit.
    seq: u64,
    /// Live decode slots currently referencing this entry. Pinned
    /// entries are never evicted.
    pins: usize,
}

/// A byte-bounded, deterministically evicting LRU over [`PrefixKv`]
/// entries. See the module docs for the full contract.
pub struct PrefixCache {
    cap_bytes: usize,
    /// Content hash → entry.
    entries: BTreeMap<u64, Entry>,
    /// Recency seq → content hash (ascending = least recent first).
    lru: BTreeMap<u64, u64>,
    bytes: usize,
    next_seq: u64,
    stats: CacheStats,
    /// `Some` when event logging is on (tests and goldens only; the
    /// serving path leaves it off so memory stays bounded).
    log: Option<Vec<CacheEvent>>,
}

impl PrefixCache {
    /// An empty cache bounded by `cap_bytes` of tensor payload.
    pub fn new(cap_bytes: usize) -> PrefixCache {
        PrefixCache {
            cap_bytes,
            entries: BTreeMap::new(),
            lru: BTreeMap::new(),
            bytes: 0,
            next_seq: 0,
            stats: CacheStats::default(),
            log: None,
        }
    }

    /// Enables the event log (builder style). Every hit/miss/evict/
    /// bypass is then recorded until drained with [`take_events`].
    ///
    /// [`take_events`]: PrefixCache::take_events
    pub fn with_event_log(mut self) -> PrefixCache {
        self.log = Some(Vec::new());
        self
    }

    /// The byte budget.
    pub fn cap_bytes(&self) -> usize {
        self.cap_bytes
    }

    /// Resident payload bytes; never exceeds [`cap_bytes`].
    ///
    /// [`cap_bytes`]: PrefixCache::cap_bytes
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Resident entry count.
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    /// Entries currently pinned by at least one live slot.
    pub fn pinned_entries(&self) -> usize {
        self.entries.values().filter(|e| e.pins > 0).count()
    }

    /// Running tallies.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drains the event log (empty when logging is off).
    pub fn take_events(&mut self) -> Vec<CacheEvent> {
        self.log.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Whether `src` is resident (no recency bump, no stats).
    pub fn contains(&self, src: &[u32]) -> bool {
        self.entries
            .get(&prefix_hash(src))
            .is_some_and(|e| e.src == src)
    }

    fn record(&mut self, code: &'static str, hash: u64) {
        if let Some(log) = self.log.as_mut() {
            log.push(CacheEvent { code, hash });
        }
    }

    fn publish_gauges(&self) {
        if obs::enabled() {
            obs::gauge_set("serve.cache.bytes", self.bytes as f64);
            obs::gauge_set("serve.cache.entries", self.entries.len() as f64);
        }
    }

    /// Looks `src` up; a hit bumps recency, pins the entry, and returns
    /// the shared tensors plus the content hash to [`unpin`] with at
    /// retirement. A hash collision with different tokens is a miss.
    ///
    /// [`unpin`]: PrefixCache::unpin
    pub fn lookup_pin(&mut self, src: &[u32]) -> Option<(Arc<PrefixKv>, u64)> {
        let hash = prefix_hash(src);
        let next_seq = self.next_seq;
        let hit = match self.entries.get_mut(&hash) {
            Some(e) if e.src == src => {
                self.lru.remove(&e.seq);
                e.seq = next_seq;
                self.lru.insert(next_seq, hash);
                e.pins += 1;
                Some((Arc::clone(&e.kv), hash))
            }
            _ => None,
        };
        self.next_seq += 1;
        if hit.is_some() {
            self.stats.hits += 1;
            self.record("C001", hash);
            if obs::enabled() {
                obs::counter_add("serve.cache.hits", 1);
            }
        } else {
            self.stats.misses += 1;
            self.record("C002", hash);
            if obs::enabled() {
                obs::counter_add("serve.cache.misses", 1);
            }
        }
        hit.inspect(|_| self.publish_gauges())
    }

    /// Inserts the freshly computed `kv` for `src`, returning the shared
    /// tensors and — when the entry was actually cached and pinned — the
    /// content hash to [`unpin`] later. The insert is bypassed (tensors
    /// still returned, nothing cached, `None` pin) when the entry alone
    /// exceeds the byte budget, when evicting every unpinned entry still
    /// cannot make room, or when a different token sequence already owns
    /// the hash.
    ///
    /// [`unpin`]: PrefixCache::unpin
    pub fn insert_pin(&mut self, src: &[u32], kv: PrefixKv) -> (Arc<PrefixKv>, Option<u64>) {
        let hash = prefix_hash(src);
        let bytes = kv.bytes();
        let kv = Arc::new(kv);
        if let Some(existing) = self.entries.get_mut(&hash) {
            if existing.src == src {
                // Raced with itself (two misses before either insert —
                // cannot happen single-threaded, but keep it correct):
                // adopt the resident entry.
                existing.pins += 1;
                let resident = Arc::clone(&existing.kv);
                return (resident, Some(hash));
            }
            self.stats.bypasses += 1;
            self.record("C004", hash);
            if obs::enabled() {
                obs::counter_add("serve.cache.bypasses", 1);
            }
            return (kv, None);
        }
        if bytes > self.cap_bytes || !self.evict_until_fits(bytes) {
            self.stats.bypasses += 1;
            self.record("C004", hash);
            if obs::enabled() {
                obs::counter_add("serve.cache.bypasses", 1);
            }
            return (kv, None);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.insert(
            hash,
            Entry {
                src: src.to_vec(),
                kv: Arc::clone(&kv),
                bytes,
                seq,
                pins: 1,
            },
        );
        self.lru.insert(seq, hash);
        self.bytes += bytes;
        self.stats.insertions += 1;
        if obs::enabled() {
            obs::counter_add("serve.cache.insertions", 1);
        }
        self.publish_gauges();
        (kv, Some(hash))
    }

    /// Evicts unpinned entries in ascending recency order until `need`
    /// more bytes fit inside the budget; returns whether they do.
    fn evict_until_fits(&mut self, need: usize) -> bool {
        while self.bytes + need > self.cap_bytes {
            // Ascending seq = least recently used first; skip pinned.
            let victim = self
                .lru
                .iter()
                .map(|(_, &hash)| hash)
                .find(|hash| self.entries[hash].pins == 0);
            let Some(hash) = victim else {
                return false; // everything left is pinned
            };
            // hot-ok: lru and entries are updated in lockstep (audit() proves it)
            let e = self.entries.remove(&hash).expect("lru names a resident");
            self.lru.remove(&e.seq);
            self.bytes -= e.bytes;
            self.stats.evictions += 1;
            self.record("C003", hash);
            if obs::enabled() {
                obs::counter_add("serve.cache.evictions", 1);
            }
        }
        true
    }

    /// Releases one pin taken by [`lookup_pin`] or [`insert_pin`].
    /// Panics on a hash with no resident entry or no outstanding pin —
    /// both indicate broken slot bookkeeping, not a recoverable state.
    ///
    /// [`lookup_pin`]: PrefixCache::lookup_pin
    /// [`insert_pin`]: PrefixCache::insert_pin
    pub fn unpin(&mut self, hash: u64) {
        let e = self
            .entries
            .get_mut(&hash)
            .unwrap_or_else(|| panic!("unpin of non-resident entry {hash:#x}"));
        assert!(e.pins > 0, "unpin of unpinned entry {hash:#x}");
        e.pins -= 1;
    }

    /// Asserts internal consistency: byte accounting matches the entry
    /// payloads, the budget holds, and the recency index is a bijection
    /// onto the entries. Test teeth — cheap enough to call after every
    /// operation in the property suite.
    pub fn audit(&self) {
        let sum: usize = self.entries.values().map(|e| e.bytes).sum();
        assert_eq!(self.bytes, sum, "byte accounting drifted");
        assert!(
            self.bytes <= self.cap_bytes,
            "resident bytes {} exceed the budget {}",
            self.bytes,
            self.cap_bytes
        );
        assert_eq!(self.lru.len(), self.entries.len(), "lru/entry mismatch");
        for (&seq, hash) in &self.lru {
            let e = &self.entries[hash];
            assert_eq!(e.seq, seq, "recency index names the wrong seq");
            assert_eq!(e.bytes, e.kv.bytes(), "entry bytes drifted");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(fill: f32, rows: usize) -> PrefixKv {
        PrefixKv {
            cross_k: vec![Tensor::filled(vec![rows, 2], fill)],
            cross_v: vec![Tensor::filled(vec![rows, 2], fill + 0.5)],
        }
    }

    #[test]
    fn hash_is_content_determined_and_length_sensitive() {
        assert_eq!(prefix_hash(&[1, 2, 3]), prefix_hash(&[1, 2, 3]));
        assert_ne!(prefix_hash(&[1, 2, 3]), prefix_hash(&[1, 2]));
        assert_ne!(prefix_hash(&[1, 2, 3]), prefix_hash(&[3, 2, 1]));
        assert_ne!(prefix_hash(&[]), prefix_hash(&[0]));
    }

    #[test]
    fn insert_then_lookup_hits_with_identical_bits() {
        let mut c = PrefixCache::new(1 << 20);
        let (_, pin) = c.insert_pin(&[4, 5], kv(1.25, 3));
        c.unpin(pin.expect("cached"));
        let (got, pin) = c.lookup_pin(&[4, 5]).expect("resident entry hits");
        let want = kv(1.25, 3);
        for (a, b) in got.cross_k.iter().zip(want.cross_k.iter()) {
            assert_eq!(a.data().len(), b.data().len());
            for (x, y) in a.data().iter().zip(b.data().iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        c.unpin(pin);
        assert_eq!(c.stats().hits, 1);
        c.audit();
    }

    #[test]
    fn eviction_is_lru_and_skips_pinned() {
        // Each entry is 3*2*4*2 = 48 bytes; budget fits two.
        let mut c = PrefixCache::new(96);
        let (_, pin_a) = c.insert_pin(&[1], kv(1.0, 3));
        let (_, pin_b) = c.insert_pin(&[2], kv(2.0, 3));
        c.unpin(pin_b.unwrap());
        // A stays pinned; inserting C must evict B (the only unpinned).
        let (_, pin_c) = c.insert_pin(&[3], kv(3.0, 3));
        assert!(pin_c.is_some(), "room was made");
        assert!(c.contains(&[1]), "pinned entry survived");
        assert!(!c.contains(&[2]), "unpinned LRU entry evicted");
        assert_eq!(c.stats().evictions, 1);
        // With everything pinned, a further insert is bypassed.
        let (_, pin_d) = c.insert_pin(&[4], kv(4.0, 3));
        assert!(pin_d.is_none(), "all-pinned cache bypasses");
        assert_eq!(c.stats().bypasses, 1);
        c.unpin(pin_a.unwrap());
        c.unpin(pin_c.unwrap());
        c.audit();
    }

    #[test]
    fn oversized_entry_is_bypassed_not_overcommitted() {
        let mut c = PrefixCache::new(16);
        let (kv_back, pin) = c.insert_pin(&[9], kv(1.0, 64));
        assert!(pin.is_none());
        assert_eq!(c.bytes(), 0);
        assert_eq!(c.entries(), 0);
        // The tensors still came back usable.
        assert_eq!(kv_back.cross_k[0].shape(), &[64, 2]);
        c.audit();
    }

    #[test]
    fn recency_bump_on_hit_changes_the_victim() {
        let mut c = PrefixCache::new(96);
        let (_, pa) = c.insert_pin(&[1], kv(1.0, 3));
        let (_, pb) = c.insert_pin(&[2], kv(2.0, 3));
        c.unpin(pa.unwrap());
        c.unpin(pb.unwrap());
        // Touch A so B becomes least recent.
        let (_, pin) = c.lookup_pin(&[1]).unwrap();
        c.unpin(pin);
        let (_, pc) = c.insert_pin(&[3], kv(3.0, 3));
        c.unpin(pc.unwrap());
        assert!(c.contains(&[1]), "recently touched entry survives");
        assert!(!c.contains(&[2]), "stale entry evicted");
        c.audit();
    }

    #[test]
    fn event_log_records_the_code_stream() {
        let mut c = PrefixCache::new(48).with_event_log();
        assert!(c.lookup_pin(&[1]).is_none());
        let (_, pin) = c.insert_pin(&[1], kv(1.0, 3));
        c.unpin(pin.unwrap());
        let (_, pin2) = c.insert_pin(&[2], kv(2.0, 3)); // evicts [1]
        c.unpin(pin2.unwrap());
        let codes: Vec<&str> = c.take_events().iter().map(|e| e.code).collect();
        assert_eq!(codes, ["C002", "C003"]);
        assert!(c.take_events().is_empty(), "log drains");
    }

    #[test]
    #[should_panic(expected = "unpin of non-resident entry")]
    fn unpin_of_unknown_hash_panics() {
        PrefixCache::new(64).unpin(7);
    }
}
