//! Attention LSTM seq2seq — the Seq2Vis baseline.
//!
//! Seq2Vis (Luo et al., 2021) treats text-to-vis as machine translation
//! with an attention-equipped encoder–decoder RNN. This module implements a
//! single-layer LSTM encoder, an LSTM decoder with Luong dot-product
//! attention over encoder states, and a projection head. The same
//! `loss`/`DecodeState`-style interface as [`crate::t5`] lets the training
//! loop and decoders treat both model families uniformly.

use tensor::{Graph, Tensor, Var, XorShift};

use crate::layers::{Embedding, Linear};
use crate::param::{ParamId, ParamSet};
use crate::t5::DECODER_START;

/// LSTM hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct LstmConfig {
    pub vocab: usize,
    pub d_emb: usize,
    pub hidden: usize,
}

impl LstmConfig {
    /// The Seq2Vis-scale preset.
    pub fn seq2vis(vocab: usize) -> Self {
        Self {
            vocab,
            d_emb: 48,
            hidden: 64,
        }
    }
}

/// One LSTM cell: four gates, each with input and recurrent weights.
#[derive(Debug, Clone)]
struct LstmCell {
    wx: [Linear; 4],
    wh: [Linear; 4],
    bias: [ParamId; 4],
    hidden: usize,
}

const GATES: [&str; 4] = ["i", "f", "g", "o"];

impl LstmCell {
    fn new(ps: &mut ParamSet, name: &str, d_in: usize, hidden: usize, rng: &mut XorShift) -> Self {
        let wx = std::array::from_fn(|k| {
            Linear::new(
                ps,
                &format!("{name}.wx_{}", GATES[k]),
                d_in,
                hidden,
                false,
                rng,
            )
        });
        let wh = std::array::from_fn(|k| {
            Linear::new(
                ps,
                &format!("{name}.wh_{}", GATES[k]),
                hidden,
                hidden,
                false,
                rng,
            )
        });
        let bias = std::array::from_fn(|k| {
            // Forget-gate bias starts at 1 (standard recipe).
            let init = if k == 1 { 1.0 } else { 0.0 };
            ps.add(
                format!("{name}.b_{}", GATES[k]),
                Tensor::filled(vec![hidden], init),
            )
        });
        Self {
            wx,
            wh,
            bias,
            hidden,
        }
    }

    /// One recurrence step: `(h', c') = cell(x, h, c)` with `[1, *]` rows.
    fn step(&self, g: &mut Graph, ps: &ParamSet, x: Var, h: Var, c: Var) -> (Var, Var) {
        let gate = |g: &mut Graph, k: usize| -> Var {
            let a = self.wx[k].forward(g, ps, x);
            let b = self.wh[k].forward(g, ps, h);
            let sum = g.add(a, b);
            let bias = ps.bind(g, self.bias[k]);
            g.add_bias(sum, bias)
        };
        let i_raw = gate(g, 0);
        let i = g.sigmoid(i_raw);
        let f_raw = gate(g, 1);
        let f = g.sigmoid(f_raw);
        let g_raw = gate(g, 2);
        let g_act = g.tanh(g_raw);
        let o_raw = gate(g, 3);
        let o = g.sigmoid(o_raw);
        let fc = g.mul(f, c);
        let ig = g.mul(i, g_act);
        let c_new = g.add(fc, ig);
        let tanh_c = g.tanh(c_new);
        let h_new = g.mul(o, tanh_c);
        (h_new, c_new)
    }

    fn zero_state(&self, g: &mut Graph) -> (Var, Var) {
        let h = g.leaf(Tensor::zeros(vec![1, self.hidden]), false);
        let c = g.leaf(Tensor::zeros(vec![1, self.hidden]), false);
        (h, c)
    }
}

/// The Seq2Vis model: LSTM encoder + attention LSTM decoder.
#[derive(Debug, Clone)]
pub struct LstmSeq2Seq {
    pub cfg: LstmConfig,
    emb: Embedding,
    enc: LstmCell,
    dec: LstmCell,
    /// Luong combination: `tanh(h·Wc1 + ctx·Wc2)`.
    combine_h: Linear,
    combine_ctx: Linear,
    proj: Linear,
}

impl LstmSeq2Seq {
    pub fn new(ps: &mut ParamSet, prefix: &str, cfg: LstmConfig, rng: &mut XorShift) -> Self {
        Self {
            emb: Embedding::new(ps, &format!("{prefix}.emb"), cfg.vocab, cfg.d_emb, rng),
            enc: LstmCell::new(ps, &format!("{prefix}.enc"), cfg.d_emb, cfg.hidden, rng),
            dec: LstmCell::new(ps, &format!("{prefix}.dec"), cfg.d_emb, cfg.hidden, rng),
            combine_h: Linear::new(
                ps,
                &format!("{prefix}.comb_h"),
                cfg.hidden,
                cfg.hidden,
                false,
                rng,
            ),
            combine_ctx: Linear::new(
                ps,
                &format!("{prefix}.comb_ctx"),
                cfg.hidden,
                cfg.hidden,
                false,
                rng,
            ),
            proj: Linear::new(
                ps,
                &format!("{prefix}.proj"),
                cfg.hidden,
                cfg.vocab,
                true,
                rng,
            ),
            cfg,
        }
    }

    /// Encodes source ids into per-step states `[ts, hidden]` plus the
    /// final `(h, c)`.
    ///
    /// The whole sequence is embedded with one table gather and sliced per
    /// step — one embedding-gradient allocation per graph instead of one
    /// per token.
    fn encode(&self, g: &mut Graph, ps: &ParamSet, src: &[usize]) -> (Var, Var, Var) {
        let embedded = self.emb.forward(g, ps, src);
        let (mut h, mut c) = self.enc.zero_state(g);
        let mut states = Vec::with_capacity(src.len());
        for t in 0..src.len() {
            let x = g.slice_rows(embedded, t, 1);
            let (h2, c2) = self.enc.step(g, ps, x, h, c);
            h = h2;
            c = c2;
            states.push(h);
        }
        let enc_states = g.concat_rows(&states);
        (enc_states, h, c)
    }

    /// One decoder step with attention; returns `(logits_row, h, c)`.
    fn dec_step(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        tok: usize,
        enc_states: Var,
        h: Var,
        c: Var,
    ) -> (Var, Var, Var) {
        let x = self.emb.forward(g, ps, &[tok]);
        self.dec_step_embedded(g, ps, x, enc_states, h, c)
    }

    /// Decoder step on a pre-embedded `[1, d]` input.
    fn dec_step_embedded(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        x: Var,
        enc_states: Var,
        h: Var,
        c: Var,
    ) -> (Var, Var, Var) {
        let (h, c) = self.dec.step(g, ps, x, h, c);
        // Luong dot attention over encoder states.
        let scores = g.matmul_nt(h, enc_states); // [1, ts]
        let probs = g.softmax(scores);
        let ctx = g.matmul(probs, enc_states); // [1, hidden]
        let a = self.combine_h.forward(g, ps, h);
        let b = self.combine_ctx.forward(g, ps, ctx);
        let sum = g.add(a, b);
        let combined = g.tanh(sum);
        let logits = self.proj.forward(g, ps, combined);
        (logits, h, c)
    }

    /// Teacher-forced cross-entropy loss, mirroring [`crate::t5::T5Model::loss`].
    pub fn loss(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        src: &[u32],
        tgt: &[u32],
        smoothing: f32,
    ) -> Var {
        assert!(!tgt.is_empty(), "empty target sequence");
        let src: Vec<usize> = src.iter().map(|&t| t as usize).collect();
        let (enc_states, mut h, mut c) = self.encode(g, ps, &src);
        let mut dec_input = vec![DECODER_START as usize];
        dec_input.extend(tgt[..tgt.len() - 1].iter().map(|&t| t as usize));
        let dec_embedded = self.emb.forward(g, ps, &dec_input);
        let mut logit_rows = Vec::with_capacity(dec_input.len());
        for t in 0..dec_input.len() {
            let x = g.slice_rows(dec_embedded, t, 1);
            let (logits, h2, c2) = self.dec_step_embedded(g, ps, x, enc_states, h, c);
            h = h2;
            c = c2;
            logit_rows.push(logits);
        }
        let all = g.concat_rows(&logit_rows);
        let targets: Vec<usize> = tgt.iter().map(|&t| t as usize).collect();
        g.cross_entropy(all, &targets, smoothing)
    }

    /// Evaluation loss without dropout (the LSTM has none, so this simply
    /// runs `loss` on a throwaway graph).
    pub fn eval_loss(&self, ps: &ParamSet, src: &[u32], tgt: &[u32]) -> f32 {
        let mut g = Graph::new();
        let l = self.loss(&mut g, ps, src, tgt, 0.0);
        g.value(l).data()[0]
    }

    /// Starts incremental decoding for a source sequence.
    pub fn start_decode<'m>(&'m self, ps: &'m ParamSet, src: &[u32]) -> LstmDecodeState<'m> {
        let mut g = Graph::new();
        let src: Vec<usize> = src.iter().map(|&t| t as usize).collect();
        let (enc_states, h, c) = self.encode(&mut g, ps, &src);
        LstmDecodeState {
            model: self,
            ps,
            enc_states: g.value(enc_states).clone(),
            h: g.value(h).clone(),
            c: g.value(c).clone(),
        }
    }
}

/// Incremental decoding state for [`LstmSeq2Seq`].
#[derive(Clone)]
pub struct LstmDecodeState<'m> {
    model: &'m LstmSeq2Seq,
    ps: &'m ParamSet,
    enc_states: Tensor,
    h: Tensor,
    c: Tensor,
}

impl LstmDecodeState<'_> {
    /// Feeds one token, returning next-token logits.
    pub fn step(&mut self, token: u32) -> Vec<f32> {
        let mut g = Graph::new();
        let enc = g.leaf(self.enc_states.clone(), false);
        let h = g.leaf(self.h.clone(), false);
        let c = g.leaf(self.c.clone(), false);
        let (logits, h2, c2) = self
            .model
            .dec_step(&mut g, self.ps, token as usize, enc, h, c);
        self.h = g.value(h2).clone();
        self.c = g.value(c2).clone();
        g.value(logits).data().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::AdamW;

    fn build() -> (LstmSeq2Seq, ParamSet) {
        let mut ps = ParamSet::new();
        let mut rng = XorShift::new(11);
        let cfg = LstmConfig {
            vocab: 16,
            d_emb: 8,
            hidden: 12,
        };
        let m = LstmSeq2Seq::new(&mut ps, "s2v", cfg, &mut rng);
        (m, ps)
    }

    #[test]
    fn loss_is_finite() {
        let (m, ps) = build();
        let mut g = Graph::new();
        let l = m.loss(&mut g, &ps, &[3, 4, 5, 1], &[6, 7, 1], 0.0);
        assert!(g.value(l).data()[0].is_finite());
    }

    #[test]
    fn incremental_decode_matches_training_path() {
        let (m, ps) = build();
        let src = [3u32, 4, 5, 1];
        let prefix = [DECODER_START, 6, 7];
        // Training-path logits.
        let mut g = Graph::new();
        let src_usize: Vec<usize> = src.iter().map(|&t| t as usize).collect();
        let (enc, mut h, mut c) = m.encode(&mut g, &ps, &src_usize);
        let mut rows = Vec::new();
        for &tok in &prefix {
            let (logits, h2, c2) = m.dec_step(&mut g, &ps, tok as usize, enc, h, c);
            h = h2;
            c = c2;
            rows.push(g.value(logits).data().to_vec());
        }
        // Incremental path.
        let mut state = m.start_decode(&ps, &src);
        for (i, &tok) in prefix.iter().enumerate() {
            let got = state.step(tok);
            for (a, b) in got.iter().zip(rows[i].iter()) {
                assert!((a - b).abs() < 1e-4, "pos {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn training_reduces_loss() {
        let (m, mut ps) = build();
        let mut opt = AdamW {
            weight_decay: 0.0,
            ..Default::default()
        };
        let pairs: Vec<(Vec<u32>, Vec<u32>)> = vec![
            (vec![3, 4, 1], vec![4, 3, 1]),
            (vec![5, 6, 1], vec![6, 5, 1]),
        ];
        let before: f32 = pairs.iter().map(|(s, t)| m.eval_loss(&ps, s, t)).sum();
        for step in 0..150 {
            let (s, t) = &pairs[step % pairs.len()];
            let mut g = Graph::new();
            let l = m.loss(&mut g, &ps, s, t, 0.0);
            g.backward(l);
            ps.absorb_grads(&g);
            opt.step(&mut ps, 5e-3, 1.0);
        }
        let after: f32 = pairs.iter().map(|(s, t)| m.eval_loss(&ps, s, t)).sum();
        assert!(after < before * 0.5, "{before} -> {after}");
    }

    #[test]
    fn decode_state_clone_is_independent() {
        let (m, ps) = build();
        let state = m.start_decode(&ps, &[3, 4, 1]);
        let mut a = state.clone();
        let mut b = state;
        let la = a.step(DECODER_START);
        let _ = a.step(5);
        let lb = b.step(DECODER_START);
        // First-step logits agree even after `a` advanced further.
        for (x, y) in la.iter().zip(lb.iter()) {
            assert_eq!(x, y);
        }
    }
}
