//! Named parameter storage shared across training graphs.
//!
//! A [`ParamSet`] owns every trainable tensor of a model together with its
//! gradient accumulator and Adam moments. Each forward pass binds the
//! parameters it touches into a fresh [`tensor::Graph`] (see
//! [`ParamSet::bind`]); after `backward`, [`ParamSet::absorb_grads`] pulls
//! gradients back out. This keeps the tape single-use and interior-
//! mutability-free while one parameter store serves thousands of graphs.

use std::collections::HashMap;
use std::path::Path;

use tensor::{Graph, Tensor, Var};

use crate::ckpt::{self, Checkpoint, CkptError, OptimState, ParamEntry, StdIo};
use crate::optim::AdamW;

/// Handle to a parameter inside a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub usize);

#[derive(Debug, Clone)]
pub(crate) struct Param {
    pub name: String,
    pub value: Tensor,
    pub grad: Tensor,
    /// First Adam moment.
    pub m: Tensor,
    /// Second Adam moment.
    pub v: Tensor,
    /// Frozen parameters are bound as constants and skipped by the
    /// optimizer (LoRA base weights).
    pub frozen: bool,
}

/// Owns model parameters, their gradients, and optimizer state.
#[derive(Debug, Default, Clone)]
pub struct ParamSet {
    params: Vec<Param>,
    by_name: HashMap<String, usize>,
}

impl ParamSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter under a unique name.
    ///
    /// # Panics
    /// Panics on duplicate names.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate parameter name '{name}'"
        );
        let shape = value.shape().to_vec();
        let id = self.params.len();
        self.by_name.insert(name.clone(), id);
        self.params.push(Param {
            name,
            grad: Tensor::zeros(shape.clone()),
            m: Tensor::zeros(shape.clone()),
            v: Tensor::zeros(shape),
            value,
            frozen: false,
        });
        ParamId(id)
    }

    /// Number of parameters tensors.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar parameter count (for the model-size tables).
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.numel()).sum()
    }

    /// Scalar count over live (non-frozen) parameters only — the
    /// population the optimizer actually touches.
    pub fn live_scalars(&self) -> usize {
        self.params
            .iter()
            .filter(|p| !p.frozen)
            .map(|p| p.value.numel())
            .sum()
    }

    /// Marks a parameter as frozen (bound as constant, never updated).
    pub fn freeze(&mut self, id: ParamId) {
        self.params[id.0].frozen = true;
    }

    /// Freezes every parameter currently registered (used before adding
    /// LoRA adapters).
    pub fn freeze_all(&mut self) {
        for p in &mut self.params {
            p.frozen = true;
        }
    }

    /// Whether a parameter is frozen.
    pub fn is_frozen(&self, id: ParamId) -> bool {
        self.params[id.0].frozen
    }

    /// Read access to a parameter's value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutable access (weight tying / manual init).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    /// The registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// All parameter names in registration order.
    pub fn names(&self) -> Vec<String> {
        self.params.iter().map(|p| p.name.clone()).collect()
    }

    /// Looks a parameter up by name.
    pub fn by_name(&self, name: &str) -> Option<ParamId> {
        self.by_name.get(name).copied().map(ParamId)
    }

    /// Binds a parameter into a graph: trainable leaf for live parameters,
    /// constant leaf for frozen ones.
    pub fn bind(&self, graph: &mut Graph, id: ParamId) -> Var {
        let p = &self.params[id.0];
        if p.frozen {
            graph.leaf(p.value.clone(), false)
        } else {
            graph.param(p.value.clone(), id.0)
        }
    }

    /// Accumulates the gradients a finished graph computed into the
    /// parameter store (called once per graph after `backward`).
    pub fn absorb_grads(&mut self, graph: &Graph) {
        let sw = obs::Stopwatch::start();
        let mut moved = 0u64;
        for (hook, grad) in graph.param_grads() {
            self.params[hook].grad.add_assign(grad);
            moved += grad.numel() as u64;
        }
        if let Some(ns) = sw.stop() {
            // Read the graph gradient + accumulator, write the sum back.
            obs::profile::record_kernel(
                "absorb_grads",
                obs::Phase::Optimizer,
                ns,
                12 * moved,
                moved,
            );
        }
    }

    /// Clears gradient accumulators.
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.data_mut().fill(0.0);
        }
    }

    /// Global L2 norm of all live gradients.
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .filter(|p| !p.frozen)
            .map(|p| {
                let n = p.grad.l2_norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    pub(crate) fn params_mut(&mut self) -> &mut [Param] {
        &mut self.params
    }

    /// First Adam moment of a parameter (for checkpoint verification).
    pub fn adam_m(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].m
    }

    /// Second Adam moment of a parameter (for checkpoint verification).
    pub fn adam_v(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].v
    }

    /// Snapshots every parameter (and, when an optimizer is given, its
    /// Adam moments and step count) into a checkpoint-v2 value.
    pub fn snapshot(&self, optim: Option<&AdamW>) -> Checkpoint {
        let params = self
            .params
            .iter()
            .map(|p| ParamEntry {
                name: p.name.clone(),
                shape: p.value.shape().to_vec(),
                data: p.value.data().to_vec(),
                frozen: p.frozen,
            })
            .collect();
        let optim = optim.map(|o| OptimState {
            steps: o.steps_taken() as u64,
            m: self.params.iter().map(|p| p.m.data().to_vec()).collect(),
            v: self.params.iter().map(|p| p.v.data().to_vec()).collect(),
        });
        Checkpoint {
            params,
            optim,
            train: None,
        }
    }

    /// Restores parameter values (and Adam moments + frozen flags when the
    /// checkpoint carries an optimizer section) from a decoded checkpoint.
    ///
    /// Parameters are matched by name; unknown names and shape mismatches
    /// are typed errors so silent architecture drift cannot happen. Model
    /// parameters absent from the checkpoint keep their current values.
    pub fn restore(&mut self, ckpt: &Checkpoint) -> Result<(), CkptError> {
        // Validate everything before mutating anything, so a mismatched
        // checkpoint cannot leave the model half-restored.
        let mut ids = Vec::with_capacity(ckpt.params.len());
        for e in &ckpt.params {
            let id = self
                .by_name(&e.name)
                .ok_or_else(|| CkptError::UnknownParam(e.name.clone()))?;
            if self.params[id.0].value.shape() != e.shape.as_slice() {
                return Err(CkptError::ShapeMismatch {
                    name: e.name.clone(),
                    model: self.params[id.0].value.shape().to_vec(),
                    ckpt: e.shape.clone(),
                });
            }
            ids.push(id);
        }
        if let Some(o) = &ckpt.optim {
            if o.m.len() != ckpt.params.len() || o.v.len() != ckpt.params.len() {
                return Err(CkptError::Corrupt(
                    "optimizer section misaligned with params".into(),
                ));
            }
        }
        for (i, (e, id)) in ckpt.params.iter().zip(&ids).enumerate() {
            let p = &mut self.params[id.0];
            p.value = Tensor::from_vec(e.shape.clone(), e.data.clone());
            if let Some(o) = &ckpt.optim {
                p.m = Tensor::from_vec(e.shape.clone(), o.m[i].clone());
                p.v = Tensor::from_vec(e.shape.clone(), o.v[i].clone());
                p.frozen = e.frozen;
            }
        }
        Ok(())
    }

    /// Serializes values (not optimizer state) to a checkpoint-v2 file:
    /// length-prefixed, CRC32-checksummed, atomically written.
    pub fn save(&self, path: &Path) -> Result<(), CkptError> {
        ckpt::save(&mut StdIo, path, &self.snapshot(None))
    }

    /// Loads values from a checkpoint-v2 file into matching names.
    ///
    /// Returns typed errors for missing files, short reads, bad magic,
    /// version skew, CRC mismatches, unknown names, and shape mismatches
    /// — never panics on truncated or garbage input.
    pub fn load(&mut self, path: &Path) -> Result<(), CkptError> {
        self.restore(&ckpt::load(&StdIo, path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_absorb_roundtrip() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::filled(vec![2, 2], 1.0));
        let mut g = Graph::new();
        let vw = ps.bind(&mut g, w);
        let x = g.leaf(Tensor::filled(vec![1, 2], 2.0), false);
        let y = g.matmul(x, vw);
        let loss = g.sum(y);
        g.backward(loss);
        ps.absorb_grads(&g);
        assert!(ps.params[0].grad.data().iter().all(|&v| v == 2.0));
        ps.zero_grads();
        assert!(ps.params[0].grad.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn frozen_params_get_no_grads() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::filled(vec![2, 2], 1.0));
        ps.freeze(w);
        let mut g = Graph::new();
        let vw = ps.bind(&mut g, w);
        let x = g.leaf(Tensor::filled(vec![1, 2], 2.0), false);
        let y = g.matmul(x, vw);
        let loss = g.sum(y);
        g.backward(loss);
        ps.absorb_grads(&g);
        assert!(ps.params[0].grad.data().iter().all(|&v| v == 0.0));
        assert_eq!(ps.grad_norm(), 0.0);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_panic() {
        let mut ps = ParamSet::new();
        ps.add("w", Tensor::zeros(vec![1]));
        ps.add("w", Tensor::zeros(vec![1]));
    }

    #[test]
    fn grad_accumulation_across_graphs() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::filled(vec![1, 1], 3.0));
        for _ in 0..2 {
            let mut g = Graph::new();
            let vw = ps.bind(&mut g, w);
            let loss = g.sum(vw);
            g.backward(loss);
            ps.absorb_grads(&g);
        }
        assert_eq!(ps.params[0].grad.data()[0], 2.0);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("datavist5_param_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.bin");
        let mut ps = ParamSet::new();
        ps.add("a", Tensor::from_vec(vec![2], vec![1.5, -2.5]));
        ps.add("b", Tensor::from_vec(vec![1, 3], vec![0.0, 1.0, 2.0]));
        ps.save(&path).unwrap();
        let mut other = ParamSet::new();
        other.add("a", Tensor::zeros(vec![2]));
        other.add("b", Tensor::zeros(vec![1, 3]));
        other.load(&path).unwrap();
        assert_eq!(other.value(ParamId(0)).data(), &[1.5, -2.5]);
        assert_eq!(other.value(ParamId(1)).data(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let dir = std::env::temp_dir().join("datavist5_param_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.bin");
        let mut ps = ParamSet::new();
        ps.add("a", Tensor::zeros(vec![2]));
        ps.save(&path).unwrap();
        let mut other = ParamSet::new();
        other.add("a", Tensor::zeros(vec![3]));
        assert!(other.load(&path).is_err());
    }

    #[test]
    fn num_scalars_counts_all() {
        let mut ps = ParamSet::new();
        ps.add("a", Tensor::zeros(vec![2, 3]));
        ps.add("b", Tensor::zeros(vec![5]));
        assert_eq!(ps.num_scalars(), 11);
    }
}
