//! AdamW optimizer and learning-rate schedules.

use crate::param::ParamSet;

/// Learning-rate schedule: linear warmup to a peak followed by linear
/// decay to zero at `total_steps` (the paper's 0.1 warmup-rate regimen),
/// or a constant rate.
#[derive(Debug, Clone, Copy)]
pub enum LrSchedule {
    Constant(f32),
    LinearWarmup {
        peak: f32,
        warmup_steps: usize,
        total_steps: usize,
    },
}

impl LrSchedule {
    /// The paper's schedule: warmup over the first `warmup_rate` fraction
    /// of training.
    pub fn warmup_rate(peak: f32, warmup_rate: f32, total_steps: usize) -> Self {
        let warmup_steps = ((total_steps as f32 * warmup_rate) as usize).max(1);
        LrSchedule::LinearWarmup {
            peak,
            warmup_steps,
            total_steps,
        }
    }

    /// Learning rate at a (0-based) step.
    pub fn at(&self, step: usize) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::LinearWarmup {
                peak,
                warmup_steps,
                total_steps,
            } => {
                if step < warmup_steps {
                    peak * (step + 1) as f32 / warmup_steps as f32
                } else if step >= total_steps {
                    0.0
                } else {
                    let rest = (total_steps - warmup_steps).max(1) as f32;
                    peak * (total_steps - step) as f32 / rest
                }
            }
        }
    }
}

/// AdamW with decoupled weight decay and global-norm gradient clipping.
#[derive(Debug, Clone)]
pub struct AdamW {
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// Decoupled weight decay (the paper uses 0.01).
    pub weight_decay: f32,
    /// Clip gradients to this global L2 norm before stepping (0 disables).
    pub clip_norm: f32,
    pub(crate) step: usize,
}

impl Default for AdamW {
    fn default() -> Self {
        Self {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            clip_norm: 1.0,
            step: 0,
        }
    }
}

impl AdamW {
    /// Number of optimizer steps taken.
    pub fn steps_taken(&self) -> usize {
        self.step
    }

    /// Restores the step counter from a checkpoint so bias correction
    /// continues exactly where the interrupted run left off.
    pub fn set_steps_taken(&mut self, steps: usize) {
        self.step = steps;
    }

    /// Applies one update using accumulated gradients, then zeroes them.
    /// `scale` divides gradients first (use `1/accumulated_batches`).
    pub fn step(&mut self, params: &mut ParamSet, lr: f32, scale: f32) {
        let sw = obs::Stopwatch::start();
        self.step += 1;
        let t = self.step as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);

        // Global-norm clipping over the scaled gradients.
        let mut clip_factor = 1.0f32;
        if self.clip_norm > 0.0 {
            let norm = params.grad_norm() * scale;
            if norm > self.clip_norm {
                clip_factor = self.clip_norm / norm;
            }
        }
        let g_scale = scale * clip_factor;

        for p in params.params_mut() {
            if p.frozen {
                continue;
            }
            let (value, grad, m, v) = (
                p.value.data_mut(),
                p.grad.data_mut(),
                p.m.data_mut(),
                p.v.data_mut(),
            );
            for i in 0..value.len() {
                let g = grad[i] * g_scale;
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
                let m_hat = m[i] / bias1;
                let v_hat = v[i] / bias2;
                value[i] -= lr * (m_hat / (v_hat.sqrt() + self.eps) + self.weight_decay * value[i]);
                grad[i] = 0.0;
            }
        }
        if let Some(ns) = sw.stop() {
            // Per live scalar: read value/grad/m/v, write all four back
            // (~32 bytes), ~12 arithmetic ops for moments + update.
            let n = params.live_scalars() as u64;
            obs::profile::record_kernel("adamw_step", obs::Phase::Optimizer, ns, 32 * n, 12 * n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::{Graph, Tensor};

    #[test]
    fn schedule_warms_up_then_decays() {
        let s = LrSchedule::warmup_rate(1.0, 0.1, 100);
        assert!(s.at(0) < s.at(5));
        assert!((s.at(9) - 1.0).abs() < 1e-6);
        assert!(s.at(50) < 1.0);
        assert!(s.at(99) > 0.0);
        assert_eq!(s.at(100), 0.0);
    }

    #[test]
    fn constant_schedule_is_flat() {
        let s = LrSchedule::Constant(0.5);
        assert_eq!(s.at(0), 0.5);
        assert_eq!(s.at(1000), 0.5);
    }

    /// Minimizing (w - 3)^2 should converge to w ≈ 3.
    #[test]
    fn adamw_converges_on_quadratic() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::scalar(0.0));
        let mut opt = AdamW {
            weight_decay: 0.0,
            clip_norm: 0.0,
            ..AdamW::default()
        };
        for _ in 0..800 {
            let mut g = Graph::new();
            let vw = ps.bind(&mut g, w);
            let c = g.leaf(Tensor::scalar(-3.0), false);
            let diff = g.add(vw, c);
            let sq = g.mul(diff, diff);
            let loss = g.sum(sq);
            g.backward(loss);
            ps.absorb_grads(&g);
            opt.step(&mut ps, 0.05, 1.0);
        }
        let w_val = ps.value(w).data()[0];
        assert!((w_val - 3.0).abs() < 0.05, "w = {w_val}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::scalar(1.0));
        let mut opt = AdamW {
            weight_decay: 0.1,
            ..AdamW::default()
        };
        // Zero gradient: only decay acts.
        opt.step(&mut ps, 0.1, 1.0);
        assert!(ps.value(w).data()[0] < 1.0);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::scalar(0.0));
        let mut g = Graph::new();
        let vw = ps.bind(&mut g, w);
        let big = g.scale(vw, 1e6);
        let loss = g.sum(big);
        g.backward(loss);
        ps.absorb_grads(&g);
        let mut opt = AdamW::default();
        opt.step(&mut ps, 0.1, 1.0);
        // Despite the huge gradient, Adam + clipping keeps the step small.
        assert!(ps.value(w).data()[0].abs() < 1.0);
    }

    #[test]
    fn frozen_params_unchanged_by_step() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::scalar(5.0));
        ps.freeze(w);
        let mut opt = AdamW::default();
        opt.step(&mut ps, 0.1, 1.0);
        assert_eq!(ps.value(w).data()[0], 5.0);
    }
}
