//! Neural-network substrate: layers, sequence models, optimization, and
//! decoding.
//!
//! Everything DataVisT5 trains is built here on top of the [`tensor`]
//! autodiff tape:
//!
//! * [`param`] — named parameter storage with Adam state, freezing (for
//!   LoRA), and checkpoint snapshot/restore;
//! * [`ckpt`] — the crash-safe checkpoint-v2 format: CRC32-checksummed,
//!   atomically written (tmp + fsync + rename, last-good rotation), with
//!   optimizer/RNG/data-cursor state for bit-identical resume and a
//!   fault-injection I/O layer;
//! * [`optim`] — AdamW with global-norm gradient clipping and the linear
//!   warmup/decay schedule the paper trains with;
//! * [`layers`] — Linear, Embedding, RMSNorm, feed-forward, multi-head
//!   attention with T5 relative-position buckets;
//! * [`t5`] — the T5-style encoder–decoder (pre-norm, shared relative bias,
//!   tied embeddings) with a KV-cached incremental decoder;
//! * [`batch`] — the cross-request batched inference engine: concurrent
//!   decodes packed into shared `[N, d]` matmuls, bit-identical to the
//!   sequential path, with continuous slot-based batching;
//! * [`prefix_cache`] — the cross-request encoder-output cache: decoder
//!   cross-attention K/V blocks keyed by a content hash of the
//!   standardized input, byte-bounded with deterministic LRU eviction
//!   and pinning, bit-invisible to decoded tokens;
//! * [`lstm`] — the attention LSTM seq2seq used by the Seq2Vis baseline;
//! * [`lora`] — low-rank adapters over frozen linear weights;
//! * [`decode`] / [`sample`] — greedy, beam, grammar-constrained, and
//!   temperature/top-k sampling decoders;
//! * [`train`] — a seq2seq training loop with gradient accumulation.

pub mod batch;
pub mod ckpt;
pub mod decode;
pub mod layers;
pub mod lora;
pub mod lstm;
pub mod optim;
pub mod param;
pub mod prefix_cache;
pub mod sample;
pub mod t5;
pub mod train;

pub use batch::BatchedDecodeState;
pub use ckpt::{CheckpointIo, CkptError, FaultIo, FaultMode, FaultPlan, StdIo};
pub use decode::{batched_greedy_decode, beam_decode, greedy_decode};
pub use optim::{AdamW, LrSchedule};
pub use param::{ParamId, ParamSet};
pub use prefix_cache::{prefix_hash, CacheStats, PrefixCache, PrefixKv};
pub use t5::{T5Config, T5Model};
