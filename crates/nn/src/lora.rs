//! Low-rank adaptation (LoRA; Hu et al., 2021).
//!
//! The paper fine-tunes Llama2-7b and Mistral-7b with LoRA. At our scale
//! the mechanism is reproduced faithfully: base linear weights are frozen
//! and a trainable low-rank update `ΔW = A·B · (α/r)` is added on the
//! forward path. [`apply_lora_to_t5`] wraps every attention projection of
//! an existing [`T5Model`]'s parameters by name, freezing everything else.

use tensor::{Graph, Tensor, Var, XorShift};

use crate::param::{ParamId, ParamSet};

/// One adapted linear layer: frozen base + trainable `A·B`.
#[derive(Debug, Clone)]
pub struct LoraLinear {
    pub base: ParamId,
    pub a: ParamId,
    pub b: ParamId,
    pub scale: f32,
}

impl LoraLinear {
    /// Wraps an existing (already-registered) weight. `rank` is the
    /// adapter rank, `alpha` the LoRA scaling numerator. The base weight
    /// is frozen here.
    pub fn wrap(
        ps: &mut ParamSet,
        name: &str,
        base: ParamId,
        rank: usize,
        alpha: f32,
        rng: &mut XorShift,
    ) -> Self {
        let shape = ps.value(base).shape().to_vec();
        assert_eq!(shape.len(), 2, "LoRA wraps 2-D weights");
        let (d_in, d_out) = (shape[0], shape[1]);
        ps.freeze(base);
        // Standard init: A ~ N(0, 1/r), B = 0, so ΔW starts at zero.
        let a = ps.add(
            format!("{name}.lora_a"),
            Tensor::randn(vec![d_in, rank], 1.0 / rank as f32, rng),
        );
        let b = ps.add(format!("{name}.lora_b"), Tensor::zeros(vec![rank, d_out]));
        Self {
            base,
            a,
            b,
            scale: alpha / rank as f32,
        }
    }

    /// `y = x·W_frozen + (x·A)·B · scale`.
    pub fn forward(&self, g: &mut Graph, ps: &ParamSet, x: Var) -> Var {
        let w = ps.bind(g, self.base);
        let base_out = g.matmul(x, w);
        let a = ps.bind(g, self.a);
        let b = ps.bind(g, self.b);
        let xa = g.matmul(x, a);
        let xab = g.matmul(xa, b);
        let delta = g.scale(xab, self.scale);
        g.add(base_out, delta)
    }
}

/// Freezes an entire parameter set and attaches LoRA adapters to every
/// parameter whose name matches one of the given suffixes (e.g.
/// `[".q.w", ".v.w"]` for query/value projections, the standard recipe).
///
/// Returns the adapters so a model wrapper can route forwards through
/// them. The adapters are registered in `ps` and are the only trainable
/// parameters afterwards.
pub fn apply_lora(
    ps: &mut ParamSet,
    suffixes: &[&str],
    rank: usize,
    alpha: f32,
    rng: &mut XorShift,
) -> Vec<(String, LoraLinear)> {
    // Collect matching names first (borrow rules).
    let names: Vec<String> = ps
        .names()
        .into_iter()
        .filter(|name| suffixes.iter().any(|s| name.ends_with(s)))
        .collect();
    ps.freeze_all();
    let mut adapters = Vec::with_capacity(names.len());
    for name in names {
        let id = ps.by_name(&name).expect("name just came from the set");
        let lora = LoraLinear::wrap(ps, &name, id, rank, alpha, rng);
        adapters.push((name, lora));
    }
    adapters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::AdamW;

    #[test]
    fn lora_starts_as_identity() {
        let mut ps = ParamSet::new();
        let mut rng = XorShift::new(3);
        let w = ps.add("w", Tensor::randn(vec![4, 4], 0.5, &mut rng));
        let base_w = ps.value(w).clone();
        let lora = LoraLinear::wrap(&mut ps, "w", w, 2, 4.0, &mut rng);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::randn(vec![2, 4], 1.0, &mut rng), false);
        let y_lora = lora.forward(&mut g, &ps, x);
        let w_const = g.leaf(base_w, false);
        let y_base = g.matmul(x, w_const);
        let diff = g.value(y_lora).max_abs_diff(g.value(y_base));
        assert!(diff < 1e-6, "B=0 should make LoRA a no-op: {diff}");
    }

    #[test]
    fn only_adapters_train() {
        let mut ps = ParamSet::new();
        let mut rng = XorShift::new(4);
        let w = ps.add("w", Tensor::randn(vec![3, 3], 0.5, &mut rng));
        let lora = LoraLinear::wrap(&mut ps, "w", w, 2, 4.0, &mut rng);
        let base_before = ps.value(w).clone();
        let mut opt = AdamW::default();
        for _ in 0..5 {
            let mut g = Graph::new();
            let x = g.leaf(Tensor::randn(vec![2, 3], 1.0, &mut rng), false);
            let y = lora.forward(&mut g, &ps, x);
            let sq = g.mul(y, y);
            let l = g.sum(sq);
            g.backward(l);
            ps.absorb_grads(&g);
            opt.step(&mut ps, 0.01, 1.0);
        }
        assert_eq!(ps.value(w).data(), base_before.data(), "base moved");
        assert!(ps.value(lora.b).l2_norm() > 0.0, "adapter did not move");
    }

    #[test]
    fn lora_can_fit_residual_target() {
        // Frozen random W cannot map x to target alone; adapters must
        // close the gap.
        let mut ps = ParamSet::new();
        let mut rng = XorShift::new(5);
        let w = ps.add("w", Tensor::randn(vec![2, 2], 0.3, &mut rng));
        let lora = LoraLinear::wrap(&mut ps, "w", w, 2, 2.0, &mut rng);
        let x_data = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let y_data = Tensor::from_vec(vec![2, 2], vec![0.0, 1.0, 1.0, 0.0]);
        let mut opt = AdamW {
            weight_decay: 0.0,
            ..Default::default()
        };
        let mut last = f32::MAX;
        for _ in 0..400 {
            let mut g = Graph::new();
            let x = g.leaf(x_data.clone(), false);
            let y = lora.forward(&mut g, &ps, x);
            let t = g.leaf(y_data.clone(), false);
            let nt = g.scale(t, -1.0);
            let diff = g.add(y, nt);
            let sq = g.mul(diff, diff);
            let l = g.sum(sq);
            last = g.value(l).data()[0];
            g.backward(l);
            ps.absorb_grads(&g);
            opt.step(&mut ps, 0.02, 1.0);
        }
        assert!(last < 0.01, "LoRA failed to fit: {last}");
    }
}
