//! Cross-request batched incremental decoding.
//!
//! [`BatchedDecodeState`] holds up to `capacity` independent decode
//! requests (each with its own KV caches and its own ragged length) and
//! advances any subset of them one token per [`step_packed`] call. The
//! per-layer projections, feed-forward, and the vocabulary logits of all
//! active requests are packed into single `[N, d] × [d, d']` matmuls, so
//! the model weights stream through the cache once per step instead of
//! once per request — and, unlike the sequential [`DecodeState`], no
//! autodiff tape is recorded and no weight tensor is cloned.
//!
//! # Exact equivalence with the sequential path
//!
//! Every request's logits are bit-identical to what [`DecodeState::step`]
//! would produce, a property the differential suite in
//! `crates/nn/tests/batched_differential.rs` locks in. This works because
//! the packed matmuls process rows independently (`tensor::kernels` docs),
//! every row-wise op (`rms_norm`, softmax, ReLU, residual adds) is applied
//! with the same accumulation order as the tape ops, and the per-slot
//! attention loops below mirror the kernel loops the tape path runs —
//! including the exact-zero skip in `mm_nn` and the
//! multiply-by-reciprocal in `softmax_rows`.
//!
//! # Continuous batching
//!
//! A finished request is [`retire`]d, which NaN-poisons its caches (so any
//! accidental read by a later step would propagate to logits and fail the
//! differential tests) and frees its slot for immediate reuse by
//! [`admit`] — the scheduling loop in [`crate::decode::batched_greedy_decode`]
//! refills slots from its pending queue without draining the batch.
//!
//! # Prefix caching
//!
//! With [`BatchedDecodeState::with_prefix_cache`], admissions consult a
//! cross-request [`PrefixCache`]: a request whose standardized input
//! matches a resident entry adopts the cached cross-attention K/V blocks
//! (shared by `Arc`, pinned until retirement) instead of re-running the
//! encoder. The adopted tensors are the same bits a cold encoder run
//! produces, so tokens stay identical cache on, off, cold, warm, or
//! thrashing — `crates/nn/tests/cache_differential.rs` locks that in.
//!
//! [`step_packed`]: BatchedDecodeState::step_packed
//! [`retire`]: BatchedDecodeState::retire
//! [`admit`]: BatchedDecodeState::admit
//! [`DecodeState`]: crate::t5::DecodeState
//! [`DecodeState::step`]: crate::t5::DecodeState::step

use std::sync::Arc;

use tensor::kernels;
use tensor::Tensor;

use crate::layers::{Linear, RelPosBias, RmsNorm};
use crate::param::ParamSet;
use crate::prefix_cache::{CacheStats, PrefixCache, PrefixKv};
use crate::t5::{DecodeState, Positional, T5Model};

/// Where a slot's cross-attention K/V came from.
///
/// Without a prefix cache every slot owns its tensors (`Owned`), exactly
/// as before the cache existed. With a cache attached, slots share the
/// cached tensors by `Arc` (`Shared`) — the same bits whether they were
/// computed this admission or adopted from an earlier request, which is
/// what keeps the cache invisible at the logits level.
enum CrossKv {
    Owned {
        k: Vec<Tensor>,
        v: Vec<Tensor>,
    },
    Shared {
        kv: Arc<PrefixKv>,
        /// The cache pin to release at retirement (`None` when the
        /// insert was bypassed — oversized entry or hash collision).
        pinned: Option<u64>,
    },
}

impl CrossKv {
    fn k(&self, layer: usize) -> &Tensor {
        match self {
            CrossKv::Owned { k, .. } => &k[layer],
            CrossKv::Shared { kv, .. } => &kv.cross_k[layer],
        }
    }

    fn v(&self, layer: usize) -> &Tensor {
        match self {
            CrossKv::Owned { v, .. } => &v[layer],
            CrossKv::Shared { kv, .. } => &kv.cross_v[layer],
        }
    }

    fn bytes(&self) -> usize {
        match self {
            CrossKv::Owned { k, v } => k
                .iter()
                .chain(v.iter())
                .map(|t| t.numel() * 4)
                .sum::<usize>(),
            CrossKv::Shared { kv, .. } => kv.bytes(),
        }
    }
}

/// One resident request: per-layer KV caches plus the decode position.
struct Slot {
    /// Per-decoder-layer cached cross-attention keys/values `[ts, d]`.
    cross: CrossKv,
    /// Per-decoder-layer growing self-attention keys/values `[t, d]`.
    self_k: Vec<Tensor>,
    self_v: Vec<Tensor>,
    /// Number of decoder tokens fed so far.
    t: usize,
    /// Retired slots keep their (poisoned) caches resident until reuse.
    live: bool,
}

/// A slot lifecycle notification from the batcher, in the order the
/// transitions happened. External schedulers ([`crates/serve`]'s engine)
/// drain these with [`BatchedDecodeState::take_slot_events`] and
/// cross-check them against their own admission bookkeeping, so a
/// scheduler bug that admits into an occupied slot or double-retires is
/// caught at the boundary between the two layers rather than as NaN
/// logits three steps later.
///
/// [`crates/serve`]: https://docs.rs/serve
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotEvent {
    /// A request was installed in `slot`; its source had `src_len` tokens.
    Admitted { slot: usize, src_len: usize },
    /// The request in `slot` was retired after consuming `steps` decoder
    /// tokens.
    Retired { slot: usize, steps: usize },
}

/// Batched KV-cached decoding over up to `capacity` concurrent requests.
pub struct BatchedDecodeState<'m> {
    model: &'m T5Model,
    ps: &'m ParamSet,
    slots: Vec<Option<Slot>>,
    scratch: Scratch,
    events: Vec<SlotEvent>,
    /// Cross-request encoder-output cache; `None` = recompute always.
    cache: Option<PrefixCache>,
    /// Self-attention KV rows to pre-reserve per layer at admission
    /// (see [`reserve_steps`](Self::reserve_steps)).
    kv_reserve: usize,
}

/// Step-to-step reusable activation buffers (all `[n, ·]`, row-major).
///
/// Everything a packed step needs lives here so a warm step performs no
/// heap allocation at all — `clear` + `resize` on a buffer that already
/// reached its high-water mark touches only the existing allocation. The
/// counting-allocator test in `crates/serve/tests/zero_alloc.rs` holds
/// the whole tick path to this.
#[derive(Default)]
struct Scratch {
    x: Vec<f32>,
    normed: Vec<f32>,
    q: Vec<f32>,
    k_new: Vec<f32>,
    v_new: Vec<f32>,
    ctx: Vec<f32>,
    proj: Vec<f32>,
    ff_h: Vec<f32>,
    scores: Vec<f32>,
    logits: Vec<f32>,
    /// Duplicate-slot check for `step_packed_into` (reused, not re-allocated).
    seen: Vec<bool>,
    lora: LoraScratch,
}

/// Reusable temporaries for the LoRA delta in [`linear_packed`] (the
/// low-rank product needs two intermediates that used to be fresh `vec!`s
/// per projection per layer per step).
#[derive(Default)]
struct LoraScratch {
    xa: Vec<f32>,
    xab: Vec<f32>,
}

impl<'m> BatchedDecodeState<'m> {
    /// Creates an engine with `capacity` empty slots.
    pub fn new(model: &'m T5Model, ps: &'m ParamSet, capacity: usize) -> Self {
        assert!(capacity > 0, "batch capacity must be positive");
        Self {
            model,
            ps,
            slots: (0..capacity).map(|_| None).collect(),
            scratch: Scratch::default(),
            events: Vec::new(),
            cache: None,
            kv_reserve: 0,
        }
    }

    /// Hints the maximum decode steps any one request will take, so each
    /// admission pre-reserves that many self-attention KV rows per layer
    /// and the per-step [`Tensor::push_row`] appends never reallocate.
    /// The attention-score scratch (whose length tracks the growing KV
    /// depth) is reserved up front for the same reason. Applies to
    /// subsequent admissions; purely a capacity hint — decoded bits are
    /// identical with or without it.
    pub fn reserve_steps(&mut self, max_steps: usize) {
        self.kv_reserve = max_steps;
        self.scratch.scores.reserve(max_steps);
    }

    /// [`new`](Self::new) with a cross-request prefix cache attached:
    /// admissions whose standardized input matches a resident entry
    /// adopt the cached cross-attention K/V instead of re-running the
    /// encoder. Decoded tokens are bit-identical either way (the
    /// `cache_differential` suite locks this in).
    pub fn with_prefix_cache(
        model: &'m T5Model,
        ps: &'m ParamSet,
        capacity: usize,
        cache: PrefixCache,
    ) -> Self {
        let mut s = Self::new(model, ps, capacity);
        s.cache = Some(cache);
        s
    }

    /// The attached prefix cache, if any.
    pub fn prefix_cache(&self) -> Option<&PrefixCache> {
        self.cache.as_ref()
    }

    /// Mutable access to the attached prefix cache (event-log drains).
    pub fn prefix_cache_mut(&mut self) -> Option<&mut PrefixCache> {
        self.cache.as_mut()
    }

    /// Detaches and returns the prefix cache (pre-warming: run one
    /// batch, take the cache back, attach it to the next engine).
    /// Panics if any live slot still pins an entry.
    pub fn take_prefix_cache(&mut self) -> Option<PrefixCache> {
        let cache = self.cache.take();
        if let Some(c) = &cache {
            assert_eq!(
                c.pinned_entries(),
                0,
                "detaching a prefix cache with pinned entries"
            );
        }
        cache
    }

    /// Running cache tallies (`None` when no cache is attached).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(PrefixCache::stats)
    }

    /// Drains the slot admission/retirement log accumulated since the
    /// last call (or construction), in transition order.
    pub fn take_slot_events(&mut self) -> Vec<SlotEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of slots currently free (empty or retired).
    pub fn free_slots(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !matches!(s, Some(Slot { live: true, .. })))
            .count()
    }

    /// Runs the encoder for `src` and installs the request in a free slot,
    /// returning its slot index — or `None` when every slot is live.
    ///
    /// The encoder and the cross-attention K/V precomputation run through
    /// [`DecodeState::new`], so the cached tensors are the sequential
    /// path's own, bit for bit.
    pub fn admit(&mut self, src: &[u32]) -> Option<usize> {
        let idx = self
            .slots
            .iter()
            .position(|s| !matches!(s, Some(Slot { live: true, .. })))?;
        let (model, ps) = (self.model, self.ps);
        let cross = match self.cache.as_mut() {
            None => {
                let mut seq = DecodeState::new(model, ps, src);
                CrossKv::Owned {
                    k: std::mem::take(&mut seq.cross_k),
                    v: std::mem::take(&mut seq.cross_v),
                }
            }
            Some(cache) => match cache.lookup_pin(src) {
                Some((kv, hash)) => CrossKv::Shared {
                    kv,
                    pinned: Some(hash),
                },
                None => {
                    let mut seq = DecodeState::new(model, ps, src);
                    let fresh = PrefixKv {
                        cross_k: std::mem::take(&mut seq.cross_k),
                        cross_v: std::mem::take(&mut seq.cross_v),
                    };
                    let (kv, pinned) = cache.insert_pin(src, fresh);
                    CrossKv::Shared { kv, pinned }
                }
            },
        };
        let layers = model.dec.len();
        let d = model.cfg.d_model;
        self.slots[idx] = Some(Slot {
            cross,
            self_k: (0..layers)
                .map(|_| Tensor::empty_rows(d, self.kv_reserve))
                .collect(),
            self_v: (0..layers)
                .map(|_| Tensor::empty_rows(d, self.kv_reserve))
                .collect(),
            t: 0,
            live: true,
        });
        self.events.push(SlotEvent::Admitted {
            slot: idx,
            src_len: src.len(),
        });
        Some(idx)
    }

    /// Number of decoder tokens the request in `slot` has consumed.
    pub fn slot_len(&self, slot: usize) -> usize {
        self.slots[slot].as_ref().map_or(0, |s| s.t)
    }

    /// Whether `slot` holds a live request.
    pub fn is_live(&self, slot: usize) -> bool {
        matches!(self.slots.get(slot), Some(Some(Slot { live: true, .. })))
    }

    /// Finishes a request: poisons every owned cache row with NaN and
    /// marks the slot free. Poisoned tensors stay resident until `admit`
    /// reuses the slot, so a stale read from any later `step_packed`
    /// surfaces as NaN logits instead of silently borrowing another
    /// request's state. Shared cross-attention tensors belong to the
    /// prefix cache and cannot be poisoned — the slot's reference is
    /// dropped instead (a stale access then panics on the empty
    /// replacement) and the cache pin is released, making the entry
    /// evictable again.
    pub fn retire(&mut self, slot: usize) {
        let s = self.slots[slot]
            .as_mut()
            .unwrap_or_else(|| panic!("retire of empty slot {slot}"));
        assert!(s.live, "retire of already-retired slot {slot}");
        for cache in s.self_k.iter_mut().chain(s.self_v.iter_mut()) {
            cache.data_mut().fill(f32::NAN);
        }
        let unpin = match &mut s.cross {
            CrossKv::Owned { k, v } => {
                for cache in k.iter_mut().chain(v.iter_mut()) {
                    cache.data_mut().fill(f32::NAN);
                }
                None
            }
            CrossKv::Shared { pinned, .. } => {
                let hash = pinned.take();
                s.cross = CrossKv::Owned {
                    k: Vec::new(),
                    v: Vec::new(),
                };
                hash
            }
        };
        s.live = false;
        let steps = s.t;
        self.events.push(SlotEvent::Retired { slot, steps });
        if let Some(hash) = unpin {
            self.cache
                .as_mut()
                // hot-ok: a pin implies a cache — only admissions with a cache pin
                .expect("pinned entry without a cache")
                .unpin(hash);
        }
    }

    fn slot(&self, idx: usize) -> &Slot {
        // hot-ok: batcher contract teeth — callers index only validated live slots
        self.slots[idx].as_ref().expect("empty slot")
    }

    /// Resident KV-cache footprint in bytes: every cache tensor of every
    /// live slot at four bytes per scalar (retired slots keep poisoned
    /// tensors resident but no live request owns them).
    pub fn cache_bytes(&self) -> usize {
        self.slots
            .iter()
            .flatten()
            .filter(|s| s.live)
            .map(|s| {
                s.cross.bytes()
                    + s.self_k
                        .iter()
                        .chain(s.self_v.iter())
                        .map(|t| t.numel() * 4)
                        .sum::<usize>()
            })
            .sum()
    }

    /// Advances every `(slot, previous_token)` pair by one step and returns
    /// their next-token logit rows, in input order.
    ///
    /// Compatibility wrapper over [`step_packed_into`] that allocates a
    /// fresh output buffer per call; the serving engine calls
    /// [`step_packed_into`] directly with recycled buffers.
    ///
    /// [`step_packed_into`]: Self::step_packed_into
    pub fn step_packed(&mut self, active: &[(usize, u32)]) -> Vec<Vec<f32>> {
        // hot-ok: test/compat wrapper — the steady-state path is step_packed_into
        let mut out = Vec::new();
        self.step_packed_into(active, &mut out);
        out
    }

    /// Advances every `(slot, previous_token)` pair by one step, writing
    /// their next-token logit rows into `out` in input order.
    ///
    /// `out` is truncated to `active.len()` and every retained row is
    /// overwritten in place, so a caller handing back the same buffer each
    /// step reuses the row allocations; combined with the [`Scratch`]
    /// buffers and the KV capacity from [`reserve_steps`], a warm step
    /// performs no heap allocation at all (with relative-position bias —
    /// the sinusoidal branch builds a position row per request). The
    /// counting-allocator test in `crates/serve/tests/zero_alloc.rs`
    /// certifies this.
    ///
    /// Requests may sit at different positions (ragged batching); each
    /// attends over exactly its own caches. Listing a slot twice, listing a
    /// retired/empty slot, or passing no requests panics.
    ///
    /// [`reserve_steps`]: Self::reserve_steps
    pub fn step_packed_into(&mut self, active: &[(usize, u32)], out: &mut Vec<Vec<f32>>) {
        // hot-ok: contract teeth — an empty packed step is a scheduler bug
        assert!(!active.is_empty(), "step_packed needs at least one request");
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.seen.clear();
        scratch.seen.resize(self.slots.len(), false);
        for &(slot, _) in active {
            // hot-ok: contract teeth — is_live bounds-checks slot before the index below
            assert!(self.is_live(slot), "step of empty or retired slot {slot}");
            // hot-ok: contract teeth — slot < slots.len() established by is_live above
            assert!(!scratch.seen[slot], "slot {slot} listed twice in one step");
            scratch.seen[slot] = true; // hot-ok: in bounds per the is_live assert
        }

        let m = self.model;
        let ps = self.ps;
        let d = m.cfg.d_model;
        let heads = m.cfg.heads;
        let dh = d / heads;
        let n = active.len();

        // Section profiling: the packed decoder bypasses the autodiff
        // tape (pure scratch-buffer kernels), so the tape profiler never
        // sees it — explicit mark-delta section timers stand in.
        let prof = obs::enabled();
        let mut mark = if prof { obs::clock::now_ns() } else { 0 };
        let (mut t_self, mut t_cross, mut t_ff) = (0u64, 0u64, 0u64);

        // Embed each request's previous token at its own position.
        let table = ps.value(m.emb.table);
        scratch.x.clear();
        scratch.x.resize(n * d, 0.0);
        for (row, &(slot, tok)) in active.iter().enumerate() {
            let id = tok as usize;
            // hot-ok: contract teeth — rejects out-of-vocab ids before the row copy
            assert!(
                id < m.cfg.vocab,
                "token id {id} out of range {}",
                m.cfg.vocab
            );
            let x_row = &mut scratch.x[row * d..(row + 1) * d];
            x_row.copy_from_slice(&table.data()[id * d..(id + 1) * d]);
            if m.cfg.positional == Positional::Sinusoidal {
                let pos = m.sinusoidal(1, self.slot(slot).t);
                for (o, &p) in x_row.iter_mut().zip(pos.data().iter()) {
                    *o += p;
                }
            }
        }

        let t_embed = lap(prof, &mut mark);

        for (l, block) in m.dec.iter().enumerate() {
            // Self-attention: packed projections, per-slot cached attention.
            rms_norm_packed(ps, &block.norm1, &scratch.x, d, &mut scratch.normed);
            linear_packed(
                ps,
                &block.self_attn.wq,
                &scratch.normed,
                n,
                &mut scratch.q,
                &mut scratch.lora,
            );
            linear_packed(
                ps,
                &block.self_attn.wk,
                &scratch.normed,
                n,
                &mut scratch.k_new,
                &mut scratch.lora,
            );
            linear_packed(
                ps,
                &block.self_attn.wv,
                &scratch.normed,
                n,
                &mut scratch.v_new,
                &mut scratch.lora,
            );
            scratch.ctx.clear();
            scratch.ctx.resize(n * d, 0.0);
            for (row, &(slot_idx, _)) in active.iter().enumerate() {
                // hot-ok: liveness of every active slot is asserted at entry
                let slot = self.slots[slot_idx].as_mut().expect("live slot");
                let pos = slot.t;
                // hot-ok: l < dec.len() by loop construction
                let (k_cache, v_cache) = (&mut slot.self_k[l], &mut slot.self_v[l]);
                k_cache.push_row(&scratch.k_new[row * d..(row + 1) * d]);
                v_cache.push_row(&scratch.v_new[row * d..(row + 1) * d]);
                attend_row(
                    &scratch.q[row * d..(row + 1) * d],
                    k_cache,
                    v_cache,
                    m.dec_bias.as_ref().map(|b| (b, ps, pos)),
                    dh,
                    &mut scratch.scores,
                    &mut scratch.ctx[row * d..(row + 1) * d],
                );
            }
            linear_packed(
                ps,
                &block.self_attn.wo,
                &scratch.ctx,
                n,
                &mut scratch.proj,
                &mut scratch.lora,
            );
            add_assign(&mut scratch.x, &scratch.proj);
            t_self += lap(prof, &mut mark);

            // Cross-attention over the precomputed encoder keys/values.
            rms_norm_packed(ps, &block.norm2, &scratch.x, d, &mut scratch.normed);
            linear_packed(
                ps,
                &block.cross_attn.wq,
                &scratch.normed,
                n,
                &mut scratch.q,
                &mut scratch.lora,
            );
            scratch.ctx.clear();
            scratch.ctx.resize(n * d, 0.0);
            for (row, &(slot_idx, _)) in active.iter().enumerate() {
                let slot = self.slot(slot_idx);
                attend_row(
                    &scratch.q[row * d..(row + 1) * d],
                    slot.cross.k(l),
                    slot.cross.v(l),
                    None,
                    dh,
                    &mut scratch.scores,
                    &mut scratch.ctx[row * d..(row + 1) * d],
                );
            }
            linear_packed(
                ps,
                &block.cross_attn.wo,
                &scratch.ctx,
                n,
                &mut scratch.proj,
                &mut scratch.lora,
            );
            add_assign(&mut scratch.x, &scratch.proj);
            t_cross += lap(prof, &mut mark);

            // Feed-forward.
            rms_norm_packed(ps, &block.norm3, &scratch.x, d, &mut scratch.normed);
            linear_packed(
                ps,
                &block.ff.wi,
                &scratch.normed,
                n,
                &mut scratch.ff_h,
                &mut scratch.lora,
            );
            for v in scratch.ff_h.iter_mut() {
                *v = v.max(0.0);
            }
            linear_packed(
                ps,
                &block.ff.wo,
                &scratch.ff_h,
                n,
                &mut scratch.proj,
                &mut scratch.lora,
            );
            add_assign(&mut scratch.x, &scratch.proj);
            t_ff += lap(prof, &mut mark);
        }

        rms_norm_packed(ps, &m.dec_final, &scratch.x, d, &mut scratch.normed);
        // Tied-embedding logits: one [n, d] × [vocab, d]ᵀ matmul for the
        // whole batch, scaled like `T5Model::logits`.
        let vocab = m.cfg.vocab;
        scratch.logits.clear();
        scratch.logits.resize(n * vocab, 0.0);
        kernels::mm_nt(
            &scratch.normed,
            table.data(),
            &mut scratch.logits,
            n,
            d,
            vocab,
            false,
        );
        let factor = 1.0 / (d as f32).sqrt();
        for v in scratch.logits.iter_mut() {
            *v *= factor;
        }

        // Recycle the caller's row buffers: clear + extend on a row that
        // already held a logit vector touches no allocator.
        out.truncate(n);
        for (row, chunk) in scratch.logits.chunks(vocab).enumerate() {
            match out.get_mut(row) {
                Some(buf) => {
                    buf.clear();
                    buf.extend_from_slice(chunk);
                }
                // hot-ok: warm-up only — a row allocated once is recycled by every later step
                None => out.push(chunk.to_vec()),
            }
        }
        for &(slot_idx, _) in active {
            if let Some(s) = self.slots.get_mut(slot_idx).and_then(Option::as_mut) {
                s.t += 1;
            }
        }
        self.scratch = scratch;

        if prof {
            use obs::profile::record_kernel;
            use obs::Phase::Forward;
            let t_logits = lap(prof, &mut mark);
            let rows = n as u64;
            let d64 = d as u64;
            let layers = m.dec.len() as u64;
            let ff = m.cfg.d_ff as u64;
            let v64 = vocab as u64;
            // Bytes: weight matrices streamed once per section plus the
            // packed activations; FLOPs: the dominant matmuls (four d×d
            // projections per self-attn, three per cross-attn, two d×ff
            // for the FFN, one d×vocab for logits).
            record_kernel("batch.embed", Forward, t_embed, 8 * rows * d64, 0);
            record_kernel(
                "batch.self_attn",
                Forward,
                t_self,
                (16 * d64 * d64 + 16 * rows * d64) * layers,
                8 * rows * d64 * d64 * layers,
            );
            record_kernel(
                "batch.cross_attn",
                Forward,
                t_cross,
                (12 * d64 * d64 + 16 * rows * d64) * layers,
                6 * rows * d64 * d64 * layers,
            );
            record_kernel(
                "batch.ff",
                Forward,
                t_ff,
                (8 * d64 * ff + 8 * rows * d64) * layers,
                4 * rows * d64 * ff * layers,
            );
            record_kernel(
                "batch.logits",
                Forward,
                t_logits,
                4 * d64 * v64 + 4 * rows * (d64 + v64),
                2 * rows * d64 * v64,
            );
        }
    }
}

/// Mark-delta section timer: the elapsed time since `mark`, advancing the
/// mark; zero (clock untouched) when profiling is off.
fn lap(prof: bool, mark: &mut u64) -> u64 {
    if !prof {
        return 0;
    }
    let now = obs::clock::now_ns();
    let delta = now.saturating_sub(*mark);
    *mark = now;
    delta
}

/// `y = x·W (+ LoRA delta) (+ bias)` on packed `[n, d_in]` rows, matching
/// `Linear::forward` term order exactly. The LoRA intermediates live in
/// the caller's [`LoraScratch`] so a warm call allocates nothing.
fn linear_packed(
    ps: &ParamSet,
    lin: &Linear,
    x: &[f32],
    n: usize,
    out: &mut Vec<f32>,
    lora: &mut LoraScratch,
) {
    let w = ps.value(lin.w);
    out.clear();
    out.resize(n * lin.d_out, 0.0);
    kernels::mm_nn(x, w.data(), out, n, lin.d_in, lin.d_out, false);
    if let Some((a, b, scale)) = lin.lora {
        let va = ps.value(a);
        let vb = ps.value(b);
        let rank = va.shape()[1];
        lora.xa.clear();
        lora.xa.resize(n * rank, 0.0);
        kernels::mm_nn(x, va.data(), &mut lora.xa, n, lin.d_in, rank, false);
        lora.xab.clear();
        lora.xab.resize(n * lin.d_out, 0.0);
        kernels::mm_nn(
            &lora.xa,
            vb.data(),
            &mut lora.xab,
            n,
            rank,
            lin.d_out,
            false,
        );
        for (o, &dv) in out.iter_mut().zip(lora.xab.iter()) {
            *o += dv * scale;
        }
    }
    if let Some(bid) = lin.b {
        let bias = ps.value(bid);
        for row in out.chunks_mut(lin.d_out) {
            for (o, &bv) in row.iter_mut().zip(bias.data().iter()) {
                *o += bv;
            }
        }
    }
}

/// Row-wise RMS norm on packed `[n, d]` rows, matching `Graph::rms_norm`.
fn rms_norm_packed(ps: &ParamSet, norm: &RmsNorm, x: &[f32], d: usize, out: &mut Vec<f32>) {
    let gain = ps.value(norm.gain);
    out.clear();
    out.extend_from_slice(x);
    for row in out.chunks_mut(d) {
        let ms = row.iter().map(|v| v * v).sum::<f32>() / d as f32;
        let r = (ms + norm.eps).sqrt();
        let inv = 1.0 / r;
        for (o, g) in row.iter_mut().zip(gain.data().iter()) {
            *o = *o * inv * g;
        }
    }
}

fn add_assign(x: &mut [f32], y: &[f32]) {
    for (a, &b) in x.iter_mut().zip(y.iter()) {
        *a += b;
    }
}

/// Single-query multi-head attention of `q` (`[d]`) over `[tk, d]` caches,
/// writing the head-concatenated context into `ctx` (`[d]`).
///
/// Mirrors the tape path of `DecodeState::step` per head: ascending-`k`
/// score dots (the `mm_nt` register accumulation), scale by `dh^-0.5`,
/// optional relative-position bias, `softmax_rows`, then an ascending-`t`
/// probability-weighted sum with the `mm_nn` exact-zero skip.
fn attend_row(
    q: &[f32],
    k_cache: &Tensor,
    v_cache: &Tensor,
    bias: Option<(&RelPosBias, &ParamSet, usize)>,
    dh: usize,
    scores: &mut Vec<f32>,
    ctx: &mut [f32],
) {
    let tk = k_cache.shape()[0];
    let d = k_cache.shape()[1];
    let heads = d / dh;
    let k = k_cache.data();
    let v = v_cache.data();
    let factor = 1.0 / (dh as f32).sqrt();
    for h in 0..heads {
        let q_h = &q[h * dh..(h + 1) * dh];
        scores.clear();
        scores.resize(tk, 0.0);
        for (t, s) in scores.iter_mut().enumerate() {
            let k_row = &k[t * d + h * dh..t * d + (h + 1) * dh];
            let mut acc = 0.0f32;
            for (&qv, &kv) in q_h.iter().zip(k_row.iter()) {
                acc += qv * kv;
            }
            *s = acc;
        }
        for s in scores.iter_mut() {
            *s *= factor;
        }
        if let Some((b, ps, pos)) = bias {
            let table = ps.value(b.table).data();
            for (t, s) in scores.iter_mut().enumerate() {
                let bucket = b.bucket(t as i64 - pos as i64);
                *s += table[bucket * heads + h];
            }
        }
        kernels::softmax_rows(scores, tk);
        let ctx_h = &mut ctx[h * dh..(h + 1) * dh];
        for (t, &p) in scores.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let v_row = &v[t * d + h * dh..t * d + (h + 1) * dh];
            for (c, &vv) in ctx_h.iter_mut().zip(v_row.iter()) {
                *c += p * vv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::t5::{T5Config, DECODER_START};
    use tensor::XorShift;

    fn build(positional: Positional) -> (T5Model, ParamSet) {
        let mut ps = ParamSet::new();
        let mut rng = XorShift::new(7);
        let cfg = T5Config {
            vocab: 20,
            d_model: 16,
            d_ff: 32,
            heads: 2,
            enc_layers: 2,
            dec_layers: 2,
            dropout: 0.0,
            positional,
        };
        let m = T5Model::new(&mut ps, "m", cfg, &mut rng);
        (m, ps)
    }

    #[test]
    fn single_request_step_is_bitwise_equal_to_sequential() {
        for positional in [Positional::RelativeBias, Positional::Sinusoidal] {
            let (m, ps) = build(positional);
            let src = [3u32, 4, 5, 1];
            let mut seq = DecodeState::new(&m, &ps, &src);
            let mut batched = BatchedDecodeState::new(&m, &ps, 2);
            let slot = batched.admit(&src).unwrap();
            let mut prev = DECODER_START;
            for step in 0..6 {
                let want = seq.step(prev);
                let got = &batched.step_packed(&[(slot, prev)])[0];
                for (i, (a, b)) in got.iter().zip(want.iter()).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{positional:?} step {step} logit {i}: {a} vs {b}"
                    );
                }
                prev = (step % 7 + 2) as u32;
            }
        }
    }

    #[test]
    fn slot_reuse_after_retire_matches_fresh_state() {
        let (m, ps) = build(Positional::RelativeBias);
        let mut batched = BatchedDecodeState::new(&m, &ps, 1);
        let slot = batched.admit(&[3, 4, 1]).unwrap();
        batched.step_packed(&[(slot, DECODER_START)]);
        batched.retire(slot);
        assert!(!batched.is_live(slot));
        // The reused slot must behave exactly like a fresh sequential state.
        let slot2 = batched.admit(&[5, 6, 7, 1]).unwrap();
        assert_eq!(slot2, slot);
        let mut seq = DecodeState::new(&m, &ps, &[5, 6, 7, 1]);
        let want = seq.step(DECODER_START);
        let got = &batched.step_packed(&[(slot2, DECODER_START)])[0];
        for (a, b) in got.iter().zip(want.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "retired slot")]
    fn stepping_a_retired_slot_panics() {
        let (m, ps) = build(Positional::RelativeBias);
        let mut batched = BatchedDecodeState::new(&m, &ps, 1);
        let slot = batched.admit(&[3, 1]).unwrap();
        batched.retire(slot);
        batched.step_packed(&[(slot, DECODER_START)]);
    }

    #[test]
    fn slot_events_record_admissions_and_retirements_in_order() {
        let (m, ps) = build(Positional::RelativeBias);
        let mut batched = BatchedDecodeState::new(&m, &ps, 2);
        let a = batched.admit(&[3, 4, 1]).unwrap();
        let b = batched.admit(&[5, 1]).unwrap();
        batched.step_packed(&[(a, DECODER_START), (b, DECODER_START)]);
        batched.retire(b);
        let c = batched.admit(&[6, 1]).unwrap();
        assert_eq!(c, b, "retired slot is reused");
        assert_eq!(
            batched.take_slot_events(),
            vec![
                SlotEvent::Admitted {
                    slot: a,
                    src_len: 3
                },
                SlotEvent::Admitted {
                    slot: b,
                    src_len: 2
                },
                SlotEvent::Retired { slot: b, steps: 1 },
                SlotEvent::Admitted {
                    slot: c,
                    src_len: 2
                },
            ]
        );
        // The log drains: a second take returns only what happened since.
        batched.retire(a);
        assert_eq!(
            batched.take_slot_events(),
            vec![SlotEvent::Retired { slot: a, steps: 1 }]
        );
    }

    #[test]
    fn cached_admission_is_bitwise_equal_and_pins_then_unpins() {
        let (m, ps) = build(Positional::RelativeBias);
        let src = [3u32, 4, 5, 1];
        let mut plain = BatchedDecodeState::new(&m, &ps, 1);
        let mut cached =
            BatchedDecodeState::with_prefix_cache(&m, &ps, 1, PrefixCache::new(1 << 20));
        // First admission misses and inserts; second (after retire) hits.
        for round in 0..2 {
            let a = plain.admit(&src).unwrap();
            let b = cached.admit(&src).unwrap();
            let cache = cached.prefix_cache().unwrap();
            assert_eq!(cache.pinned_entries(), 1, "slot pins its entry");
            assert_eq!(
                cached.cache_bytes(),
                plain.cache_bytes(),
                "round {round}: shared KV accounts like owned KV"
            );
            let want = plain.step_packed(&[(a, DECODER_START)]);
            let got = cached.step_packed(&[(b, DECODER_START)]);
            for (x, y) in got[0].iter().zip(want[0].iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "round {round}");
            }
            plain.retire(a);
            cached.retire(b);
            assert_eq!(cached.prefix_cache().unwrap().pinned_entries(), 0);
        }
        let stats = cached.cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        let cache = cached.take_prefix_cache().unwrap();
        assert!(cache.contains(&src));
        assert!(cached.cache_stats().is_none());
    }

    #[test]
    fn admit_reports_full_capacity() {
        let (m, ps) = build(Positional::RelativeBias);
        let mut batched = BatchedDecodeState::new(&m, &ps, 2);
        assert!(batched.admit(&[3, 1]).is_some());
        assert!(batched.admit(&[4, 1]).is_some());
        assert_eq!(batched.free_slots(), 0);
        assert!(batched.admit(&[5, 1]).is_none());
    }
}
