//! T5-style encoder–decoder sequence model.
//!
//! Architecture follows the T5 family the paper builds on: pre-norm
//! residual blocks with RMS normalization, ReLU feed-forward, relative-
//! position attention bias shared across a stack, tied input/output
//! embeddings, and `<pad>` as the decoder start token. A `Sinusoidal`
//! positional mode turns the same code into the "vanilla Transformer"
//! baseline of the paper's tables.
//!
//! Two forward paths exist:
//!
//! * [`T5Model::loss`] — the training path on the autodiff tape;
//! * [`DecodeState`] — KV-cached incremental inference (one token per
//!   step), used by every decoder in [`crate::decode`]. A unit test checks
//!   the two paths produce identical logits.

use tensor::{Graph, Tensor, Var, XorShift};

use crate::layers::{causal_mask, Embedding, FeedForward, MultiHeadAttention, RelPosBias, RmsNorm};
use crate::param::{ParamId, ParamSet};

/// Positional information scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Positional {
    /// T5 relative-position buckets (the DataVisT5 family).
    RelativeBias,
    /// Fixed sinusoidal absolute encodings (the vanilla Transformer
    /// baseline).
    Sinusoidal,
}

/// Model hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct T5Config {
    pub vocab: usize,
    pub d_model: usize,
    pub d_ff: usize,
    pub heads: usize,
    pub enc_layers: usize,
    pub dec_layers: usize,
    pub dropout: f32,
    pub positional: Positional,
}

impl T5Config {
    /// The "base"-scale preset standing in for the 220M checkpoint.
    pub fn base(vocab: usize) -> Self {
        Self {
            vocab,
            d_model: 64,
            d_ff: 128,
            heads: 4,
            enc_layers: 2,
            dec_layers: 2,
            dropout: 0.1,
            positional: Positional::RelativeBias,
        }
    }

    /// The "large"-scale preset standing in for the 770M checkpoint.
    pub fn large(vocab: usize) -> Self {
        Self {
            vocab,
            d_model: 96,
            d_ff: 192,
            heads: 6,
            enc_layers: 3,
            dec_layers: 3,
            dropout: 0.1,
            positional: Positional::RelativeBias,
        }
    }
}

#[derive(Debug, Clone)]
struct EncBlock {
    norm1: RmsNorm,
    attn: MultiHeadAttention,
    norm2: RmsNorm,
    ff: FeedForward,
}

#[derive(Debug, Clone)]
pub(crate) struct DecBlock {
    pub(crate) norm1: RmsNorm,
    pub(crate) self_attn: MultiHeadAttention,
    pub(crate) norm2: RmsNorm,
    pub(crate) cross_attn: MultiHeadAttention,
    pub(crate) norm3: RmsNorm,
    pub(crate) ff: FeedForward,
}

/// The encoder–decoder model. Parameters live in the [`ParamSet`] passed at
/// construction; the struct holds only ids and hyperparameters.
#[derive(Debug, Clone)]
pub struct T5Model {
    pub cfg: T5Config,
    pub(crate) emb: Embedding,
    enc_bias: Option<RelPosBias>,
    pub(crate) dec_bias: Option<RelPosBias>,
    enc: Vec<EncBlock>,
    pub(crate) dec: Vec<DecBlock>,
    enc_final: RmsNorm,
    pub(crate) dec_final: RmsNorm,
}

/// Decoder start token (T5 uses the pad id).
pub const DECODER_START: u32 = 0;

impl T5Model {
    /// Builds a model, registering parameters under `prefix.*`.
    pub fn new(ps: &mut ParamSet, prefix: &str, cfg: T5Config, rng: &mut XorShift) -> Self {
        let emb = Embedding::new(ps, &format!("{prefix}.emb"), cfg.vocab, cfg.d_model, rng);
        let (enc_bias, dec_bias) = match cfg.positional {
            Positional::RelativeBias => (
                Some(RelPosBias::new(
                    ps,
                    &format!("{prefix}.enc_bias"),
                    cfg.heads,
                    true,
                    rng,
                )),
                Some(RelPosBias::new(
                    ps,
                    &format!("{prefix}.dec_bias"),
                    cfg.heads,
                    false,
                    rng,
                )),
            ),
            Positional::Sinusoidal => (None, None),
        };
        let enc = (0..cfg.enc_layers)
            .map(|i| {
                let n = format!("{prefix}.enc{i}");
                EncBlock {
                    norm1: RmsNorm::new(ps, &format!("{n}.norm1"), cfg.d_model),
                    attn: MultiHeadAttention::new(
                        ps,
                        &format!("{n}.attn"),
                        cfg.d_model,
                        cfg.heads,
                        rng,
                    ),
                    norm2: RmsNorm::new(ps, &format!("{n}.norm2"), cfg.d_model),
                    ff: FeedForward::new(ps, &format!("{n}.ff"), cfg.d_model, cfg.d_ff, rng),
                }
            })
            .collect();
        let dec = (0..cfg.dec_layers)
            .map(|i| {
                let n = format!("{prefix}.dec{i}");
                DecBlock {
                    norm1: RmsNorm::new(ps, &format!("{n}.norm1"), cfg.d_model),
                    self_attn: MultiHeadAttention::new(
                        ps,
                        &format!("{n}.self"),
                        cfg.d_model,
                        cfg.heads,
                        rng,
                    ),
                    norm2: RmsNorm::new(ps, &format!("{n}.norm2"), cfg.d_model),
                    cross_attn: MultiHeadAttention::new(
                        ps,
                        &format!("{n}.cross"),
                        cfg.d_model,
                        cfg.heads,
                        rng,
                    ),
                    norm3: RmsNorm::new(ps, &format!("{n}.norm3"), cfg.d_model),
                    ff: FeedForward::new(ps, &format!("{n}.ff"), cfg.d_model, cfg.d_ff, rng),
                }
            })
            .collect();
        Self {
            emb,
            enc_bias,
            dec_bias,
            enc,
            dec,
            enc_final: RmsNorm::new(ps, &format!("{prefix}.enc_final"), cfg.d_model),
            dec_final: RmsNorm::new(ps, &format!("{prefix}.dec_final"), cfg.d_model),
            cfg,
        }
    }

    /// The embedding table id (exposed for weight-tying inspection).
    pub fn embedding_table(&self) -> ParamId {
        self.emb.table
    }

    /// Converts the model into a LoRA-tuned variant: every existing
    /// parameter is frozen and rank-`rank` adapters are attached to all
    /// attention query/value projections (the standard LoRA recipe).
    pub fn lora_adapt(&mut self, ps: &mut ParamSet, rank: usize, alpha: f32, rng: &mut XorShift) {
        ps.freeze_all();
        for (i, block) in self.enc.iter_mut().enumerate() {
            block
                .attn
                .wq
                .attach_lora(ps, &format!("lora.enc{i}.q"), rank, alpha, rng);
            block
                .attn
                .wv
                .attach_lora(ps, &format!("lora.enc{i}.v"), rank, alpha, rng);
        }
        for (i, block) in self.dec.iter_mut().enumerate() {
            block
                .self_attn
                .wq
                .attach_lora(ps, &format!("lora.dec{i}.self_q"), rank, alpha, rng);
            block
                .self_attn
                .wv
                .attach_lora(ps, &format!("lora.dec{i}.self_v"), rank, alpha, rng);
            block
                .cross_attn
                .wq
                .attach_lora(ps, &format!("lora.dec{i}.cross_q"), rank, alpha, rng);
            block
                .cross_attn
                .wv
                .attach_lora(ps, &format!("lora.dec{i}.cross_v"), rank, alpha, rng);
        }
    }

    pub(crate) fn sinusoidal(&self, len: usize, offset: usize) -> Tensor {
        let d = self.cfg.d_model;
        let mut t = Tensor::zeros(vec![len, d]);
        for pos in 0..len {
            let p = (pos + offset) as f32;
            for i in 0..d / 2 {
                let freq = 1.0 / 10_000f32.powf(2.0 * i as f32 / d as f32);
                t.data_mut()[pos * d + 2 * i] = (p * freq).sin();
                t.data_mut()[pos * d + 2 * i + 1] = (p * freq).cos();
            }
        }
        t
    }

    fn embed(&self, g: &mut Graph, ps: &ParamSet, ids: &[usize], offset: usize) -> Var {
        let x = self.emb.forward(g, ps, ids);
        match self.cfg.positional {
            Positional::RelativeBias => x,
            Positional::Sinusoidal => {
                let pos = g.leaf(self.sinusoidal(ids.len(), offset), false);
                g.add(x, pos)
            }
        }
    }

    fn maybe_dropout(&self, g: &mut Graph, x: Var, train: bool) -> Var {
        if train && self.cfg.dropout > 0.0 {
            g.dropout(x, self.cfg.dropout)
        } else {
            x
        }
    }

    /// Runs the encoder over source ids, returning `[ts, d]` states.
    pub fn encode(&self, g: &mut Graph, ps: &ParamSet, src: &[usize], train: bool) -> Var {
        let ts = src.len();
        let mut x = self.embed(g, ps, src, 0);
        x = self.maybe_dropout(g, x, train);
        let bias = self.enc_bias.as_ref().map(|b| b.bias(g, ps, ts, ts, 0));
        for block in &self.enc {
            let normed = block.norm1.forward(g, ps, x);
            let attn = block.attn.forward(g, ps, normed, normed, bias);
            let attn = self.maybe_dropout(g, attn, train);
            x = g.add(x, attn);
            let normed = block.norm2.forward(g, ps, x);
            let ff = block.ff.forward(g, ps, normed);
            let ff = self.maybe_dropout(g, ff, train);
            x = g.add(x, ff);
        }
        self.enc_final.forward(g, ps, x)
    }

    /// Full-sequence decoder pass (teacher forcing), returning `[tt, d]`.
    pub fn decode_all(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        enc_out: Var,
        dec_input: &[usize],
        train: bool,
    ) -> Var {
        let tt = dec_input.len();
        let mut x = self.embed(g, ps, dec_input, 0);
        x = self.maybe_dropout(g, x, train);
        let mask = g.leaf(causal_mask(self.cfg.heads, tt, tt, 0), false);
        let self_bias = match self.dec_bias.as_ref() {
            Some(b) => {
                let rel = b.bias(g, ps, tt, tt, 0);
                g.add(rel, mask)
            }
            None => mask,
        };
        for block in &self.dec {
            let normed = block.norm1.forward(g, ps, x);
            let attn = block
                .self_attn
                .forward(g, ps, normed, normed, Some(self_bias));
            let attn = self.maybe_dropout(g, attn, train);
            x = g.add(x, attn);
            let normed = block.norm2.forward(g, ps, x);
            let cross = block.cross_attn.forward(g, ps, normed, enc_out, None);
            let cross = self.maybe_dropout(g, cross, train);
            x = g.add(x, cross);
            let normed = block.norm3.forward(g, ps, x);
            let ff = block.ff.forward(g, ps, normed);
            let ff = self.maybe_dropout(g, ff, train);
            x = g.add(x, ff);
        }
        self.dec_final.forward(g, ps, x)
    }

    /// Projects decoder states to vocabulary logits via the tied embedding.
    pub fn logits(&self, g: &mut Graph, ps: &ParamSet, dec_out: Var) -> Var {
        let table = ps.bind(g, self.emb.table);
        let raw = g.matmul_nt(dec_out, table);
        g.scale(raw, 1.0 / (self.cfg.d_model as f32).sqrt())
    }

    /// Teacher-forced cross-entropy loss of `tgt` given `src`.
    ///
    /// The decoder input is `tgt` shifted right with [`DECODER_START`]; the
    /// targets are `tgt` itself (which should end with the tokenizer's EOS).
    pub fn loss(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        src: &[u32],
        tgt: &[u32],
        smoothing: f32,
    ) -> Var {
        assert!(!tgt.is_empty(), "empty target sequence");
        let src: Vec<usize> = src.iter().map(|&t| t as usize).collect();
        let mut dec_input: Vec<usize> = Vec::with_capacity(tgt.len());
        dec_input.push(DECODER_START as usize);
        dec_input.extend(tgt[..tgt.len() - 1].iter().map(|&t| t as usize));
        let targets: Vec<usize> = tgt.iter().map(|&t| t as usize).collect();

        let enc_out = self.encode(g, ps, &src, true);
        let dec_out = self.decode_all(g, ps, enc_out, &dec_input, true);
        let logits = self.logits(g, ps, dec_out);
        g.cross_entropy(logits, &targets, smoothing)
    }

    /// Evaluation loss (dropout disabled).
    pub fn eval_loss(&self, ps: &ParamSet, src: &[u32], tgt: &[u32]) -> f32 {
        let mut g = Graph::new();
        let src: Vec<usize> = src.iter().map(|&t| t as usize).collect();
        let mut dec_input: Vec<usize> = vec![DECODER_START as usize];
        dec_input.extend(tgt[..tgt.len() - 1].iter().map(|&t| t as usize));
        let targets: Vec<usize> = tgt.iter().map(|&t| t as usize).collect();
        let enc_out = self.encode(&mut g, ps, &src, false);
        let dec_out = self.decode_all(&mut g, ps, enc_out, &dec_input, false);
        let logits = self.logits(&mut g, ps, dec_out);
        let l = g.cross_entropy(logits, &targets, 0.0);
        g.value(l).data()[0]
    }
}

/// KV-cached incremental decoding state for one source sequence.
#[derive(Clone)]
pub struct DecodeState<'m> {
    model: &'m T5Model,
    ps: &'m ParamSet,
    /// Per-decoder-layer cached cross-attention keys/values `[ts, d]`.
    pub(crate) cross_k: Vec<Tensor>,
    pub(crate) cross_v: Vec<Tensor>,
    /// Per-decoder-layer growing self-attention keys/values `[t, d]`.
    pub(crate) self_k: Vec<Tensor>,
    pub(crate) self_v: Vec<Tensor>,
    /// Number of tokens fed so far.
    t: usize,
}

impl<'m> DecodeState<'m> {
    /// Runs the encoder and precomputes cross-attention keys/values.
    pub fn new(model: &'m T5Model, ps: &'m ParamSet, src: &[u32]) -> Self {
        let mut g = Graph::new();
        let src: Vec<usize> = src.iter().map(|&t| t as usize).collect();
        let enc_out = model.encode(&mut g, ps, &src, false);
        let mut cross_k = Vec::with_capacity(model.dec.len());
        let mut cross_v = Vec::with_capacity(model.dec.len());
        for block in &model.dec {
            let k = block.cross_attn.wk.forward(&mut g, ps, enc_out);
            let v = block.cross_attn.wv.forward(&mut g, ps, enc_out);
            cross_k.push(g.value(k).clone());
            cross_v.push(g.value(v).clone());
        }
        Self {
            model,
            ps,
            cross_k,
            cross_v,
            self_k: vec![Tensor::zeros(vec![0, model.cfg.d_model]); model.dec.len()],
            self_v: vec![Tensor::zeros(vec![0, model.cfg.d_model]); model.dec.len()],
            t: 0,
        }
    }

    /// Number of decoder tokens consumed.
    pub fn len(&self) -> usize {
        self.t
    }

    /// Whether any step has been taken.
    pub fn is_empty(&self) -> bool {
        self.t == 0
    }

    /// Feeds one decoder token (the previous output, starting with
    /// [`DECODER_START`]) and returns next-token logits.
    pub fn step(&mut self, token: u32) -> Vec<f32> {
        let m = self.model;
        let ps = self.ps;
        let d = m.cfg.d_model;
        let heads = m.cfg.heads;
        let dh = d / heads;
        let pos = self.t;
        let mut g = Graph::new();

        let mut x = m.embed(&mut g, ps, &[token as usize], pos);
        for (l, block) in m.dec.iter().enumerate() {
            // Self-attention with cache.
            let normed = block.norm1.forward(&mut g, ps, x);
            let q = block.self_attn.wq.forward(&mut g, ps, normed);
            let k_new = block.self_attn.wk.forward(&mut g, ps, normed);
            let v_new = block.self_attn.wv.forward(&mut g, ps, normed);
            append_row(&mut self.self_k[l], g.value(k_new));
            append_row(&mut self.self_v[l], g.value(v_new));
            let tk = pos + 1;
            let k_all = g.leaf(self.self_k[l].clone(), false);
            let v_all = g.leaf(self.self_v[l].clone(), false);
            // Heads: q -> [H,1,dh], K/V -> [H,tk,dh].
            let q3 = g.reshape(q, vec![1, heads, dh]);
            let q3 = g.permute3(q3, [1, 0, 2]);
            let k3 = g.reshape(k_all, vec![tk, heads, dh]);
            let k3 = g.permute3(k3, [1, 0, 2]);
            let v3 = g.reshape(v_all, vec![tk, heads, dh]);
            let v3 = g.permute3(v3, [1, 0, 2]);
            let scores = g.bmm(q3, k3, true);
            let mut scores = g.scale(scores, 1.0 / (dh as f32).sqrt());
            if let Some(b) = m.dec_bias.as_ref() {
                let bias = b.bias(&mut g, ps, 1, tk, pos);
                scores = g.add(scores, bias);
            }
            let probs = g.softmax(scores);
            let ctx = g.bmm(probs, v3, false);
            let ctx = g.permute3(ctx, [1, 0, 2]);
            let ctx = g.reshape(ctx, vec![1, d]);
            let attn = block.self_attn.wo.forward(&mut g, ps, ctx);
            x = g.add(x, attn);

            // Cross-attention with precomputed keys/values.
            let normed = block.norm2.forward(&mut g, ps, x);
            let q = block.cross_attn.wq.forward(&mut g, ps, normed);
            let ts = self.cross_k[l].shape()[0];
            let k_all = g.leaf(self.cross_k[l].clone(), false);
            let v_all = g.leaf(self.cross_v[l].clone(), false);
            let q3 = g.reshape(q, vec![1, heads, dh]);
            let q3 = g.permute3(q3, [1, 0, 2]);
            let k3 = g.reshape(k_all, vec![ts, heads, dh]);
            let k3 = g.permute3(k3, [1, 0, 2]);
            let v3 = g.reshape(v_all, vec![ts, heads, dh]);
            let v3 = g.permute3(v3, [1, 0, 2]);
            let scores = g.bmm(q3, k3, true);
            let scores = g.scale(scores, 1.0 / (dh as f32).sqrt());
            let probs = g.softmax(scores);
            let ctx = g.bmm(probs, v3, false);
            let ctx = g.permute3(ctx, [1, 0, 2]);
            let ctx = g.reshape(ctx, vec![1, d]);
            let cross = block.cross_attn.wo.forward(&mut g, ps, ctx);
            x = g.add(x, cross);

            // Feed-forward.
            let normed = block.norm3.forward(&mut g, ps, x);
            let ff = block.ff.forward(&mut g, ps, normed);
            x = g.add(x, ff);
        }
        let x = m.dec_final.forward(&mut g, ps, x);
        let logits = m.logits(&mut g, ps, x);
        self.t += 1;
        g.value(logits).data().to_vec()
    }
}

fn append_row(store: &mut Tensor, row: &Tensor) {
    let d = row.shape()[1];
    let t = store.shape()[0];
    let mut data = std::mem::take(store).into_data();
    data.extend_from_slice(row.data());
    *store = Tensor::from_vec(vec![t + 1, d], data);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(positional: Positional) -> T5Config {
        T5Config {
            vocab: 20,
            d_model: 16,
            d_ff: 32,
            heads: 2,
            enc_layers: 2,
            dec_layers: 2,
            dropout: 0.0,
            positional,
        }
    }

    fn build(positional: Positional) -> (T5Model, ParamSet) {
        let mut ps = ParamSet::new();
        let mut rng = XorShift::new(7);
        let m = T5Model::new(&mut ps, "m", tiny_cfg(positional), &mut rng);
        (m, ps)
    }

    #[test]
    fn loss_is_finite_and_positive() {
        let (m, ps) = build(Positional::RelativeBias);
        let mut g = Graph::new();
        let loss = m.loss(&mut g, &ps, &[3, 4, 5, 1], &[6, 7, 1], 0.0);
        let v = g.value(loss).data()[0];
        assert!(v.is_finite() && v > 0.0, "loss {v}");
    }

    #[test]
    fn loss_backward_reaches_embeddings() {
        let (m, mut ps) = build(Positional::RelativeBias);
        let mut g = Graph::new();
        let loss = m.loss(&mut g, &ps, &[3, 4, 1], &[5, 1], 0.0);
        g.backward(loss);
        ps.absorb_grads(&g);
        let table_grad = &ps;
        let id = m.embedding_table();
        // The embedding grad should be non-zero (tied head guarantees it).
        let norm: f32 = table_grad.value(id).l2_norm();
        assert!(norm > 0.0);
        // More importantly, at least one grad is non-zero.
        assert!(ps.grad_norm() > 0.0);
    }

    #[test]
    fn incremental_decode_matches_full_forward() {
        for positional in [Positional::RelativeBias, Positional::Sinusoidal] {
            let (m, ps) = build(positional);
            let src = [3u32, 4, 5, 6, 1];
            let tgt_prefix = [DECODER_START, 7, 8, 9];

            // Full forward logits at every position.
            let mut g = Graph::new();
            let src_usize: Vec<usize> = src.iter().map(|&t| t as usize).collect();
            let dec_input: Vec<usize> = tgt_prefix.iter().map(|&t| t as usize).collect();
            let enc_out = m.encode(&mut g, &ps, &src_usize, false);
            let dec_out = m.decode_all(&mut g, &ps, enc_out, &dec_input, false);
            let logits = m.logits(&mut g, &ps, dec_out);
            let full = g.value(logits).clone();

            // Incremental decode.
            let mut state = DecodeState::new(&m, &ps, &src);
            for (i, &tok) in tgt_prefix.iter().enumerate() {
                let step_logits = state.step(tok);
                let want = &full.data()[i * m.cfg.vocab..(i + 1) * m.cfg.vocab];
                for (a, b) in step_logits.iter().zip(want.iter()) {
                    assert!(
                        (a - b).abs() < 1e-3,
                        "{positional:?} pos {i}: incremental {a} vs full {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_decode_matches_full_forward_with_lora() {
        // Adapt the model, then give the adapters non-zero weights (B is
        // zero-initialized, so an untouched adapter would be a no-op and
        // the test would not exercise the LoRA branch of the decode path).
        let (mut m, mut ps) = build(Positional::RelativeBias);
        let mut rng = XorShift::new(99);
        m.lora_adapt(&mut ps, 2, 8.0, &mut rng);
        for name in ps.names() {
            if name.ends_with(".lora_b") {
                let id = ps.by_name(&name).unwrap();
                let shape = ps.value(id).shape().to_vec();
                *ps.value_mut(id) = Tensor::randn(shape, 0.5, &mut rng);
            }
        }

        let src = [3u32, 4, 5, 6, 1];
        let tgt_prefix = [DECODER_START, 7, 8, 9];
        let mut g = Graph::new();
        let src_usize: Vec<usize> = src.iter().map(|&t| t as usize).collect();
        let dec_input: Vec<usize> = tgt_prefix.iter().map(|&t| t as usize).collect();
        let enc_out = m.encode(&mut g, &ps, &src_usize, false);
        let dec_out = m.decode_all(&mut g, &ps, enc_out, &dec_input, false);
        let logits = m.logits(&mut g, &ps, dec_out);
        let full = g.value(logits).clone();

        // The adapters must actually change the logits...
        let (plain, plain_ps) = build(Positional::RelativeBias);
        let mut g2 = Graph::new();
        let enc2 = plain.encode(&mut g2, &plain_ps, &src_usize, false);
        let dec2 = plain.decode_all(&mut g2, &plain_ps, enc2, &dec_input, false);
        let logits2 = plain.logits(&mut g2, &plain_ps, dec2);
        let delta = full
            .data()
            .iter()
            .zip(g2.value(logits2).data().iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(delta > 1e-4, "LoRA perturbation had no effect");

        // ...and the incremental decode must match the full forward.
        let mut state = DecodeState::new(&m, &ps, &src);
        for (i, &tok) in tgt_prefix.iter().enumerate() {
            let step_logits = state.step(tok);
            let want = &full.data()[i * m.cfg.vocab..(i + 1) * m.cfg.vocab];
            for (a, b) in step_logits.iter().zip(want.iter()) {
                assert!(
                    (a - b).abs() < 1e-3,
                    "lora pos {i}: incremental {a} vs full {b}"
                );
            }
        }
    }

    #[test]
    fn sinusoidal_positions_distinguish_order() {
        let (m, ps) = build(Positional::Sinusoidal);
        let mut g = Graph::new();
        let a = m.encode(&mut g, &ps, &[3, 4], false);
        let b = m.encode(&mut g, &ps, &[4, 3], false);
        let diff = g
            .value(a)
            .data()
            .iter()
            .zip(g.value(b).data().iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(diff > 1e-4, "order made no difference");
    }

    #[test]
    fn presets_scale_up() {
        let base = T5Config::base(100);
        let large = T5Config::large(100);
        assert!(large.d_model > base.d_model);
        assert!(large.enc_layers > base.enc_layers);
        let mut ps_b = ParamSet::new();
        let mut ps_l = ParamSet::new();
        let mut rng = XorShift::new(1);
        let _ = T5Model::new(&mut ps_b, "b", base, &mut rng);
        let _ = T5Model::new(&mut ps_l, "l", large, &mut rng);
        assert!(ps_l.num_scalars() > ps_b.num_scalars());
    }

    #[test]
    fn training_reduces_loss_on_copy_task() {
        // Teach the tiny model to copy a 3-token sequence; loss must drop
        // substantially, demonstrating the full backward path works.
        let (m, mut ps) = build(Positional::RelativeBias);
        let mut opt = crate::optim::AdamW {
            weight_decay: 0.0,
            ..Default::default()
        };
        let pairs: Vec<(Vec<u32>, Vec<u32>)> = vec![
            (vec![3, 4, 5, 1], vec![3, 4, 5, 1]),
            (vec![6, 7, 8, 1], vec![6, 7, 8, 1]),
            (vec![9, 10, 11, 1], vec![9, 10, 11, 1]),
        ];
        let initial: f32 = pairs.iter().map(|(s, t)| m.eval_loss(&ps, s, t)).sum();
        for step in 0..400 {
            let (s, t) = &pairs[step % pairs.len()];
            let mut g = Graph::new();
            let loss = m.loss(&mut g, &ps, s, t, 0.0);
            g.backward(loss);
            ps.absorb_grads(&g);
            opt.step(&mut ps, 5e-3, 1.0);
        }
        let trained: f32 = pairs.iter().map(|(s, t)| m.eval_loss(&ps, s, t)).sum();
        assert!(
            trained < initial * 0.3,
            "loss did not drop: {initial} -> {trained}"
        );
    }
}
