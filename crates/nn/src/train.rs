//! Seq2seq training loop with gradient accumulation.
//!
//! One example per graph, gradients accumulated over a micro-batch, then a
//! single AdamW step under the configured schedule — the single-core
//! translation of the paper's batched regimen.
//!
//! Every run can optionally be supervised by the Graph Doctor: the static
//! shape/gradient-flow passes inspect the step-0 tape (`doctor`), and the
//! numeric sanitizer re-scans tapes for NaN/Inf on a configurable schedule
//! (`sanitizer`), aborting with the first offending op's backtrace instead
//! of silently training on poisoned values.

use std::path::PathBuf;

use analysis::{SanitizerMode, TapeMode};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tensor::{Graph, Var};

use crate::ckpt::{self, CheckpointIo, FaultIo, FaultPlan, StdIo, TrainState};
use crate::optim::{AdamW, LrSchedule};
use crate::param::ParamSet;

/// One training example: tokenized source and target (target ends in EOS).
pub type Example = (Vec<u32>, Vec<u32>);

/// Anything with a teacher-forced loss — the T5 family and the LSTM both
/// qualify.
pub trait LossModel {
    /// Builds the training loss on the given graph.
    fn train_loss(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        src: &[u32],
        tgt: &[u32],
        smoothing: f32,
    ) -> Var;

    /// Dropout-free evaluation loss.
    fn metric_loss(&self, ps: &ParamSet, src: &[u32], tgt: &[u32]) -> f32;
}

impl LossModel for crate::t5::T5Model {
    fn train_loss(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        src: &[u32],
        tgt: &[u32],
        smoothing: f32,
    ) -> Var {
        self.loss(g, ps, src, tgt, smoothing)
    }

    fn metric_loss(&self, ps: &ParamSet, src: &[u32], tgt: &[u32]) -> f32 {
        self.eval_loss(ps, src, tgt)
    }
}

impl LossModel for crate::lstm::LstmSeq2Seq {
    fn train_loss(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        src: &[u32],
        tgt: &[u32],
        smoothing: f32,
    ) -> Var {
        self.loss(g, ps, src, tgt, smoothing)
    }

    fn metric_loss(&self, ps: &ParamSet, src: &[u32], tgt: &[u32]) -> f32 {
        self.eval_loss(ps, src, tgt)
    }
}

/// Crash-safe checkpointing for a training run.
#[derive(Debug, Clone)]
pub struct CkptConfig {
    /// Checkpoint file (the rotated last-good snapshot lives beside it at
    /// [`ckpt::prev_path`]).
    pub path: PathBuf,
    /// Write a checkpoint every this many optimizer steps.
    pub every: usize,
    /// Attempt to resume from `path` before training (a missing file is a
    /// fresh start; a corrupt one falls back to the last good snapshot).
    pub resume: bool,
    /// Injected fault schedule for the checkpoint writer (fault drills
    /// and the resume-differential suite; `None` = real I/O).
    pub fault: Option<FaultPlan>,
    /// Simulate a SIGKILL immediately after the N-th checkpoint write
    /// (1-based): the loop returns with `interrupted = true`, exactly as
    /// if the process died with the checkpoint durable.
    pub kill_after: Option<usize>,
}

impl CkptConfig {
    /// Periodic checkpointing with resume on, picking up any
    /// `DATAVIST5_FAULT` schedule from the environment.
    pub fn periodic(path: impl Into<PathBuf>, every: usize) -> Self {
        CkptConfig {
            path: path.into(),
            every: every.max(1),
            resume: true,
            fault: FaultPlan::from_env(),
            kill_after: None,
        }
    }

    /// The I/O implementation this configuration selects.
    pub fn make_io(&self) -> Box<dyn CheckpointIo> {
        match self.fault {
            Some(plan) => Box::new(FaultIo::new(plan)),
            None => Box::new(StdIo),
        }
    }
}

/// Training-run configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Optimizer steps to take.
    pub steps: usize,
    /// Examples accumulated per optimizer step.
    pub accum: usize,
    pub schedule: LrSchedule,
    pub smoothing: f32,
    pub seed: u64,
    /// Evaluate on the validation set every this many steps (0 = never).
    pub eval_every: usize,
    /// Run the Graph Doctor's static passes on the step-0 tape, reporting
    /// shape or gradient-flow defects to stderr.
    pub doctor: bool,
    /// Numeric sanitizer schedule; a tripped scan aborts the run with the
    /// first offending op's tape backtrace.
    pub sanitizer: SanitizerMode,
    /// Periodic crash-safe checkpointing and exact resume (None = off).
    pub ckpt: Option<CkptConfig>,
}

impl TrainConfig {
    /// A sensible fine-tuning default at reproduction scale.
    pub fn fine_tune(steps: usize) -> Self {
        Self {
            steps,
            accum: 8,
            schedule: LrSchedule::warmup_rate(3e-3, 0.1, steps),
            smoothing: 0.0,
            seed: 0xdada,
            eval_every: 0,
            doctor: true,
            sanitizer: SanitizerMode::FirstStep,
            ckpt: None,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Mean training loss over the final 10% of steps.
    pub final_train_loss: f32,
    /// Validation losses at each evaluation point.
    pub valid_losses: Vec<f32>,
    pub steps: usize,
    /// Mean training loss of every optimizer step (includes steps
    /// restored from a checkpoint, so the trajectory of a resumed run is
    /// complete and comparable to an uninterrupted one).
    pub step_losses: Vec<f32>,
    /// The run stopped at a simulated kill point (`CkptConfig::kill_after`)
    /// rather than completing its step budget.
    pub interrupted: bool,
    /// Step the run resumed from, when it restored a checkpoint.
    pub resumed_at: Option<usize>,
    /// Checkpoint writes that failed and were skipped mid-run (the
    /// last good snapshot on disk stays untouched). Also tracked
    /// process-wide by the obs counter `ckpt.write_failures`.
    pub ckpt_write_failures: usize,
}

/// Trains a model in place.
///
/// Iterates the dataset in shuffled epochs until `cfg.steps` optimizer
/// steps have been taken. With `cfg.ckpt` set, the loop writes a
/// crash-safe checkpoint (weights, Adam moments, RNG stream, shuffle
/// order, data cursor, loss trajectory) every `every` steps and resumes
/// from it bit-identically: the resumed run's final weights, optimizer
/// state, and per-step losses match an uninterrupted run exactly.
pub fn train_seq2seq<M: LossModel>(
    model: &M,
    ps: &mut ParamSet,
    data: &[Example],
    valid: &[Example],
    cfg: &TrainConfig,
) -> TrainReport {
    assert!(!data.is_empty(), "empty training set");
    let _run_span = obs::span!("train");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..data.len()).collect();
    order.shuffle(&mut rng);
    let mut cursor = 0usize;
    let mut opt = AdamW::default();
    let mut report = TrainReport::default();
    let tail_start = cfg.steps - cfg.steps / 10 - 1;
    let mut tail_sum = 0.0f32;
    let mut tail_n = 0usize;
    let mut start_step = 0usize;
    let mut io = cfg.ckpt.as_ref().map(|c| c.make_io());
    let mut ckpt_writes = 0usize;

    if let Some(c) = &cfg.ckpt {
        if c.resume {
            match ckpt::load_with_fallback(io.as_deref().unwrap(), &c.path) {
                Ok((snap, from_prev)) => {
                    match restore_train_state(&snap, ps, &mut opt, data.len()) {
                        Ok(ts) => {
                            rng = StdRng::from_state(ts.rng_state);
                            order = ts.order.iter().map(|&i| i as usize).collect();
                            cursor = ts.cursor as usize;
                            tail_sum = ts.tail_sum;
                            tail_n = ts.tail_n as usize;
                            report.step_losses = ts.step_losses.clone();
                            report.valid_losses = ts.valid_losses.clone();
                            start_step = (ts.next_step as usize).min(cfg.steps);
                            report.resumed_at = Some(start_step);
                            obs::info(
                                "train",
                                format!(
                                    "resumed from '{}' at step {start_step}{}",
                                    c.path.display(),
                                    if from_prev {
                                        " (last good snapshot)"
                                    } else {
                                        ""
                                    }
                                ),
                            );
                        }
                        Err(e) => obs::warn(
                            "train",
                            format!(
                                "checkpoint '{}' unusable ({e}); training from scratch",
                                c.path.display()
                            ),
                        ),
                    }
                }
                Err(e) if e.is_missing() => {}
                Err(e) => obs::warn(
                    "train",
                    format!(
                        "checkpoint '{}' unusable ({e}); training from scratch",
                        c.path.display()
                    ),
                ),
            }
        }
    }

    for step in start_step..cfg.steps {
        let _step_span = obs::span!("step");
        let mut batch_loss = 0.0f32;
        for micro in 0..cfg.accum {
            if cursor >= order.len() {
                cursor = 0;
                order.shuffle(&mut rng);
            }
            let (src, tgt) = &data[order[cursor]];
            cursor += 1;
            obs::counter_add("train.tokens", (src.len() + tgt.len()) as u64);
            let mut g = Graph::with_seed(cfg.seed ^ (step as u64) << 8);
            let loss = model.train_loss(&mut g, ps, src, tgt, cfg.smoothing);
            if cfg.doctor && step == 0 && micro == 0 {
                let report = analysis::diagnose(&g, loss, TapeMode::Train);
                if !report.is_clean() {
                    obs::warn(
                        "train",
                        format!("graph doctor (step-0 training tape):\n{report}"),
                    );
                }
            }
            batch_loss += g.value(loss).data()[0];
            g.backward(loss);
            if cfg.sanitizer.active_at(step) {
                if let Some(offender) = analysis::sanitize::first_offender(&g) {
                    panic!("numeric sanitizer tripped at step {step}:\n{offender}");
                }
            }
            ps.absorb_grads(&g);
        }
        opt.step(ps, cfg.schedule.at(step), 1.0 / cfg.accum as f32);
        let mean = batch_loss / cfg.accum as f32;
        obs::gauge_set("train.loss", mean as f64);
        report.step_losses.push(mean);
        if step >= tail_start {
            tail_sum += mean;
            tail_n += 1;
        }
        if cfg.eval_every > 0 && (step + 1) % cfg.eval_every == 0 && !valid.is_empty() {
            report.valid_losses.push(eval_mean(model, ps, valid));
        }
        if let Some(c) = &cfg.ckpt {
            if (step + 1) % c.every == 0 {
                ckpt_writes += 1;
                let state = TrainState {
                    rng_state: rng.state(),
                    next_step: (step + 1) as u64,
                    cursor: cursor as u64,
                    order: order.iter().map(|&i| i as u32).collect(),
                    tail_sum,
                    tail_n: tail_n as u64,
                    step_losses: report.step_losses.clone(),
                    valid_losses: report.valid_losses.clone(),
                };
                let snap = ps.snapshot(Some(&opt)).with_train(state);
                if let Err(e) = ckpt::save(io.as_deref_mut().unwrap(), &c.path, &snap) {
                    // A failed write is reported and skipped; the last
                    // good checkpoint on disk stays untouched. `ckpt::save`
                    // bumps the process-wide `ckpt.write_failures` counter.
                    report.ckpt_write_failures += 1;
                    obs::error(
                        "train",
                        format!(
                            "checkpoint write {ckpt_writes} to '{}' failed: {e}",
                            c.path.display()
                        ),
                    );
                }
                if c.kill_after == Some(ckpt_writes) {
                    report.interrupted = true;
                    report.steps = step + 1;
                    report.final_train_loss = if tail_n > 0 {
                        tail_sum / tail_n as f32
                    } else {
                        0.0
                    };
                    warn_on_write_failures(&report);
                    return report;
                }
            }
        }
    }
    report.steps = cfg.steps;
    report.final_train_loss = if tail_n > 0 {
        tail_sum / tail_n as f32
    } else {
        0.0
    };
    warn_on_write_failures(&report);
    report
}

/// End-of-run summary for checkpoint writes that failed mid-training —
/// without this, a run that limped along on a stale snapshot would look
/// healthy (the per-failure error scrolls away; the total does not).
fn warn_on_write_failures(report: &TrainReport) {
    if report.ckpt_write_failures > 0 {
        obs::warn(
            "train",
            format!(
                "run finished with {} failed checkpoint write(s); the on-disk snapshot may be stale",
                report.ckpt_write_failures
            ),
        );
    }
}

/// Restores weights and optimizer state from a checkpoint and validates
/// its training section against the current run (present, and shuffle
/// order sized for this dataset).
fn restore_train_state(
    snap: &ckpt::Checkpoint,
    ps: &mut ParamSet,
    opt: &mut AdamW,
    data_len: usize,
) -> Result<TrainState, ckpt::CkptError> {
    let ts = snap
        .train
        .as_ref()
        .ok_or_else(|| ckpt::CkptError::Corrupt("checkpoint has no training state".into()))?;
    if ts.order.len() != data_len {
        return Err(ckpt::CkptError::Corrupt(format!(
            "shuffle order covers {} examples but the dataset has {data_len}",
            ts.order.len()
        )));
    }
    ps.restore(snap)?;
    if let Some(o) = &snap.optim {
        opt.set_steps_taken(o.steps as usize);
    }
    Ok(ts.clone())
}

/// Mean evaluation loss over a dataset.
pub fn eval_mean<M: LossModel>(model: &M, ps: &ParamSet, data: &[Example]) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    let total: f32 = data.iter().map(|(s, t)| model.metric_loss(ps, s, t)).sum();
    total / data.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::t5::{Positional, T5Config, T5Model};
    use tensor::XorShift;

    fn copy_dataset() -> Vec<Example> {
        (0..6)
            .map(|i| {
                let a = 3 + i;
                let b = 9 + i;
                (vec![a, b, 1], vec![a, b, 1])
            })
            .collect()
    }

    #[test]
    fn training_loop_reduces_loss() {
        let mut ps = ParamSet::new();
        let mut rng = XorShift::new(2);
        let cfg = T5Config {
            vocab: 20,
            d_model: 16,
            d_ff: 32,
            heads: 2,
            enc_layers: 1,
            dec_layers: 1,
            dropout: 0.0,
            positional: Positional::RelativeBias,
        };
        let model = T5Model::new(&mut ps, "m", cfg, &mut rng);
        let data = copy_dataset();
        let before = eval_mean(&model, &ps, &data);
        let tc = TrainConfig {
            steps: 150,
            accum: 3,
            schedule: LrSchedule::Constant(3e-3),
            smoothing: 0.0,
            seed: 1,
            eval_every: 30,
            doctor: true,
            sanitizer: SanitizerMode::FirstStep,
            ckpt: None,
        };
        let report = train_seq2seq(&model, &mut ps, &data, &data, &tc);
        let after = eval_mean(&model, &ps, &data);
        assert!(after < before * 0.7, "{before} -> {after}");
        assert_eq!(report.valid_losses.len(), 5);
        assert!(report.final_train_loss.is_finite());
    }

    #[test]
    #[should_panic(expected = "numeric sanitizer tripped at step 0")]
    fn sanitizer_aborts_on_poisoned_parameters() {
        let mut ps = ParamSet::new();
        let mut rng = XorShift::new(2);
        let cfg = T5Config {
            vocab: 20,
            d_model: 16,
            d_ff: 32,
            heads: 2,
            enc_layers: 1,
            dec_layers: 1,
            dropout: 0.0,
            positional: Positional::RelativeBias,
        };
        let model = T5Model::new(&mut ps, "m", cfg, &mut rng);
        // Poison one parameter: every forward value downstream goes NaN.
        let id = ps.by_name(&ps.names()[0]).unwrap();
        ps.value_mut(id).data_mut()[0] = f32::NAN;
        let mut tc = TrainConfig::fine_tune(2);
        tc.accum = 1;
        let _ = train_seq2seq(&model, &mut ps, &copy_dataset(), &[], &tc);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_dataset_panics() {
        let mut ps = ParamSet::new();
        let mut rng = XorShift::new(2);
        let cfg = T5Config {
            vocab: 8,
            d_model: 8,
            d_ff: 16,
            heads: 2,
            enc_layers: 1,
            dec_layers: 1,
            dropout: 0.0,
            positional: Positional::RelativeBias,
        };
        let model = T5Model::new(&mut ps, "m", cfg, &mut rng);
        let tc = TrainConfig::fine_tune(1);
        let _ = train_seq2seq(&model, &mut ps, &[], &[], &tc);
    }

    #[test]
    fn eval_mean_of_empty_is_zero() {
        let mut ps = ParamSet::new();
        let mut rng = XorShift::new(2);
        let cfg = T5Config {
            vocab: 8,
            d_model: 8,
            d_ff: 16,
            heads: 2,
            enc_layers: 1,
            dec_layers: 1,
            dropout: 0.0,
            positional: Positional::RelativeBias,
        };
        let model = T5Model::new(&mut ps, "m", cfg, &mut rng);
        assert_eq!(eval_mean(&model, &ps, &[]), 0.0);
    }
}
