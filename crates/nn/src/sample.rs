//! Stochastic decoding: temperature and top-k sampling.
//!
//! Greedy/beam decoding (see [`crate::decode`]) is what the benchmark
//! numbers use; sampling is the right tool for the generative tasks when
//! diversity matters (e.g. producing several candidate chart narratives
//! for a dashboard). Deterministic under a seed.

use tensor::XorShift;

use crate::decode::StepDecoder;
use crate::t5::DECODER_START;

/// Sampling configuration.
#[derive(Debug, Clone, Copy)]
pub struct SampleConfig {
    /// Softmax temperature; 0 degenerates to greedy.
    pub temperature: f32,
    /// Keep only the k most likely tokens before sampling (0 = all).
    pub top_k: usize,
    pub seed: u64,
}

impl Default for SampleConfig {
    fn default() -> Self {
        Self {
            temperature: 0.8,
            top_k: 20,
            seed: 0x5a5a,
        }
    }
}

/// Samples a sequence until `eos` or `max_len`.
pub fn sample_decode(
    state: &mut dyn StepDecoder,
    eos: u32,
    max_len: usize,
    cfg: &SampleConfig,
) -> Vec<u32> {
    let mut rng = XorShift::new(cfg.seed);
    let mut out = Vec::new();
    let mut prev = DECODER_START;
    for _ in 0..max_len {
        let logits = state.step(prev);
        let next = sample_token(&logits, cfg, &mut rng);
        if next == eos {
            break;
        }
        out.push(next);
        prev = next;
    }
    out
}

/// Samples one token id from logits under temperature + top-k.
pub fn sample_token(logits: &[f32], cfg: &SampleConfig, rng: &mut XorShift) -> u32 {
    if cfg.temperature <= 0.0 {
        return argmax(logits);
    }
    // Candidate set: top-k by logit (or everything).
    let mut idx: Vec<usize> = (0..logits.len()).collect();
    idx.sort_by(|&a, &b| logits[b].total_cmp(&logits[a]));
    let k = if cfg.top_k == 0 {
        logits.len()
    } else {
        cfg.top_k.min(logits.len())
    };
    let candidates = &idx[..k];
    // Softmax over candidates at the requested temperature.
    let max = logits[candidates[0]];
    let weights: Vec<f32> = candidates
        .iter()
        .map(|&i| ((logits[i] - max) / cfg.temperature).exp())
        .collect();
    let total: f32 = weights.iter().sum();
    let mut target = rng.next_f32() * total;
    for (i, w) in candidates.iter().zip(weights.iter()) {
        if target < *w {
            return *i as u32;
        }
        target -= w;
    }
    candidates[k - 1] as u32
}

fn argmax(xs: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct Flat {
        vocab: usize,
        peak: usize,
    }

    impl StepDecoder for Flat {
        fn step(&mut self, _t: u32) -> Vec<f32> {
            let mut l = vec![0.0; self.vocab];
            l[self.peak] = 4.0;
            l[1] = 1.0; // eos has some mass
            l
        }
    }

    #[test]
    fn zero_temperature_is_greedy() {
        let mut rng = XorShift::new(1);
        let cfg = SampleConfig {
            temperature: 0.0,
            top_k: 0,
            seed: 1,
        };
        let logits = vec![0.1, 0.9, 0.3];
        for _ in 0..10 {
            assert_eq!(sample_token(&logits, &cfg, &mut rng), 1);
        }
    }

    #[test]
    fn top_k_one_is_greedy_at_any_temperature() {
        let mut rng = XorShift::new(2);
        let cfg = SampleConfig {
            temperature: 2.0,
            top_k: 1,
            seed: 2,
        };
        let logits = vec![0.1, 3.0, 0.3, 2.9];
        for _ in 0..10 {
            assert_eq!(sample_token(&logits, &cfg, &mut rng), 1);
        }
    }

    #[test]
    fn sampling_respects_distribution_roughly() {
        let mut rng = XorShift::new(3);
        let cfg = SampleConfig {
            temperature: 1.0,
            top_k: 0,
            seed: 3,
        };
        // p(2) ≈ e² / (e² + 2) — dominant.
        let logits = vec![0.0, 0.0, 2.0];
        let mut counts = [0usize; 3];
        for _ in 0..2000 {
            counts[sample_token(&logits, &cfg, &mut rng) as usize] += 1;
        }
        assert!(counts[2] > 1200, "{counts:?}");
        assert!(counts[0] > 50 && counts[1] > 50, "{counts:?}");
    }

    #[test]
    fn high_temperature_flattens() {
        let mut rng = XorShift::new(4);
        let hot = SampleConfig {
            temperature: 50.0,
            top_k: 0,
            seed: 4,
        };
        let logits = vec![0.0, 0.0, 2.0];
        let mut hot_hits = 0;
        for _ in 0..2000 {
            if sample_token(&logits, &hot, &mut rng) == 2 {
                hot_hits += 1;
            }
        }
        // Near-uniform: the peak token wins only ~1/3 of the time.
        assert!(hot_hits < 1000, "{hot_hits}");
    }

    #[test]
    fn sample_decode_terminates_and_is_seeded() {
        let cfg = SampleConfig::default();
        let a = sample_decode(&mut Flat { vocab: 8, peak: 5 }, 1, 16, &cfg);
        let b = sample_decode(&mut Flat { vocab: 8, peak: 5 }, 1, 16, &cfg);
        assert_eq!(a, b, "same seed must give the same sample");
        assert!(a.len() <= 16);
        assert!(a.iter().all(|&t| t != 1), "eos must not appear in output");
    }

    #[test]
    fn different_seeds_diverge() {
        let a = sample_decode(
            &mut Flat { vocab: 64, peak: 5 },
            1,
            32,
            &SampleConfig {
                temperature: 1.5,
                top_k: 0,
                seed: 7,
            },
        );
        let b = sample_decode(
            &mut Flat { vocab: 64, peak: 5 },
            1,
            32,
            &SampleConfig {
                temperature: 1.5,
                top_k: 0,
                seed: 8,
            },
        );
        assert_ne!(a, b);
    }
}
