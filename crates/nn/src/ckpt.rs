//! Checkpoint v2: crash-safe, integrity-checked, exactly resumable.
//!
//! The seed repo's `ckpt.bin` was a raw dump — no magic, no checksum, no
//! atomicity, weights only. This module replaces it with a format and an
//! I/O discipline built for the failure modes long training runs actually
//! hit:
//!
//! * **Torn writes** — checkpoints are written to a temp file, fsynced,
//!   and renamed into place, so the visible file is always a complete
//!   write. The previous snapshot is rotated to `<name>.prev` first, so
//!   even a corrupted *completed* write (bit rot, truncated rename
//!   target) leaves a last good snapshot to fall back to.
//! * **Silent corruption** — the payload is length-prefixed and protected
//!   by a CRC32; every load verifies the checksum before a single byte is
//!   parsed. Short reads, bad magic, version skew, and CRC mismatches are
//!   distinct typed [`CkptError`]s, never panics and never silently wrong
//!   weights.
//! * **Lost training state** — besides parameter values the format
//!   carries the Adam moments and step count, the training RNG stream
//!   state, the shuffled epoch order and data cursor, and the loss
//!   trajectory, so a killed run resumes *bit-identically*: same weights,
//!   same optimizer state, same per-step losses as the uninterrupted run
//!   (the bar PR 2 set for batched decoding, applied to durability).
//!
//! Fault injection: every writer goes through the [`CheckpointIo`] trait.
//! [`StdIo`] is the real filesystem; [`FaultIo`] wraps it and injects a
//! scheduled write failure, truncation, or bit flip (set
//! `DATAVIST5_FAULT=write-fail@N | truncate@N:B | bit-flip@N:B` or build a
//! [`FaultPlan`] directly). The resume-differential suite uses this to
//! prove every fault mode is detected and survivable.
//!
//! ## On-disk layout
//!
//! ```text
//! offset  size  field
//! 0       8     magic "DVT5CKP2"
//! 8       4     version (u32 le) = 2
//! 12      8     payload length P (u64 le)
//! 20      P     payload (sections below)
//! 20+P    4     CRC32 (IEEE) of the payload bytes
//! ```
//!
//! Payload sections (all integers little-endian):
//!
//! ```text
//! u8           flags: bit0 = optimizer section, bit1 = train section
//! u32          parameter count
//! per param:   u32 name len, name bytes, u8 frozen,
//!              u32 rank, u32 dims…, f32 values…
//! optimizer:   u64 adam step, then per param (same order): f32 m…, f32 v…
//! train:       u64 rng state, u64 next step, u64 cursor,
//!              u64 order len + u32 indices…,
//!              f32 tail_sum, u64 tail_n,
//!              u64 n + f32 per-step losses…, u64 n + f32 valid losses…
//! ```

use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};

pub const MAGIC: [u8; 8] = *b"DVT5CKP2";
pub const VERSION: u32 = 2;
/// Bytes before the payload (magic + version + length prefix).
pub const HEADER_LEN: usize = 20;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Every way loading or saving a checkpoint can fail, as distinct typed
/// variants so callers can tell *missing* from *corrupt* from *skewed*.
#[derive(Debug)]
pub enum CkptError {
    /// The checkpoint file does not exist (not an error for a fresh run).
    Missing(PathBuf),
    /// An underlying filesystem error other than not-found.
    Io(std::io::Error),
    /// The file ended before the named field could be read (truncation).
    ShortRead { context: &'static str },
    /// The first bytes are not the checkpoint magic.
    BadMagic,
    /// The format version is newer or older than this build understands.
    UnsupportedVersion(u32),
    /// The payload checksum does not match: the file is corrupt.
    CrcMismatch { stored: u32, computed: u32 },
    /// The checkpoint names a parameter the model does not have.
    UnknownParam(String),
    /// A parameter's stored shape differs from the model's.
    ShapeMismatch {
        name: String,
        model: Vec<usize>,
        ckpt: Vec<usize>,
    },
    /// Structurally invalid payload (only reachable on CRC collision or a
    /// bug, since the checksum is verified before parsing).
    Corrupt(String),
    /// An injected fault from [`FaultIo`] (test/fault-drill runs only).
    InjectedFault(&'static str),
}

impl CkptError {
    /// Whether this error means "no checkpoint exists" (as opposed to "a
    /// checkpoint exists but is unusable").
    pub fn is_missing(&self) -> bool {
        matches!(self, CkptError::Missing(_))
    }
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Missing(p) => write!(f, "checkpoint not found: {}", p.display()),
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CkptError::ShortRead { context } => {
                write!(f, "checkpoint truncated while reading {context}")
            }
            CkptError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CkptError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (expected {VERSION})")
            }
            CkptError::CrcMismatch { stored, computed } => write!(
                f,
                "checkpoint CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            CkptError::UnknownParam(name) => {
                write!(f, "checkpoint parameter '{name}' not in model")
            }
            CkptError::ShapeMismatch { name, model, ckpt } => write!(
                f,
                "shape mismatch for '{name}': model {model:?} vs checkpoint {ckpt:?}"
            ),
            CkptError::Corrupt(msg) => write!(f, "corrupt checkpoint payload: {msg}"),
            CkptError::InjectedFault(mode) => write!(f, "injected checkpoint fault: {mode}"),
        }
    }
}

impl std::error::Error for CkptError {}

fn io_err(path: &Path, e: std::io::Error) -> CkptError {
    if e.kind() == std::io::ErrorKind::NotFound {
        CkptError::Missing(path.to_path_buf())
    } else {
        CkptError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial, reflected)
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 checksum of a byte slice. Detects all single-bit and
/// single-byte corruptions, which is exactly the bit-flip fault model the
/// proptests exercise.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// In-memory checkpoint model
// ---------------------------------------------------------------------------

/// One parameter tensor as stored on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamEntry {
    pub name: String,
    pub shape: Vec<usize>,
    pub data: Vec<f32>,
    pub frozen: bool,
}

/// Adam optimizer state, aligned index-for-index with the params section.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimState {
    /// Optimizer steps taken so far (the bias-correction exponent).
    pub steps: u64,
    pub m: Vec<Vec<f32>>,
    pub v: Vec<Vec<f32>>,
}

/// Everything beyond weights and moments a training loop needs to resume
/// bit-identically.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainState {
    /// Raw state word of the training RNG (shuffles + sampling stream).
    pub rng_state: u64,
    /// First optimizer step the resumed run should execute.
    pub next_step: u64,
    /// Position inside the current shuffled epoch.
    pub cursor: u64,
    /// The current epoch's shuffled example order (empty for loops that
    /// sample i.i.d. instead of iterating epochs).
    pub order: Vec<u32>,
    /// Accumulated tail-loss sum/count for the final-loss report.
    pub tail_sum: f32,
    pub tail_n: u64,
    /// Mean training loss of every completed optimizer step.
    pub step_losses: Vec<f32>,
    /// Validation losses recorded so far.
    pub valid_losses: Vec<f32>,
}

/// A decoded checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    pub params: Vec<ParamEntry>,
    pub optim: Option<OptimState>,
    pub train: Option<TrainState>,
}

impl Checkpoint {
    /// Attaches training-loop state to a snapshot.
    pub fn with_train(mut self, train: TrainState) -> Self {
        self.train = Some(train);
        self
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, x: u8) {
        self.0.push(x);
    }
    fn u32(&mut self, x: u32) {
        self.0.extend_from_slice(&x.to_le_bytes());
    }
    fn u64(&mut self, x: u64) {
        self.0.extend_from_slice(&x.to_le_bytes());
    }
    fn f32(&mut self, x: f32) {
        self.0.extend_from_slice(&x.to_le_bytes());
    }
    fn f32s(&mut self, xs: &[f32]) {
        self.0.reserve(xs.len() * 4);
        for &x in xs {
            self.f32(x);
        }
    }
    fn bytes(&mut self, b: &[u8]) {
        self.0.extend_from_slice(b);
    }
}

/// Serializes a checkpoint to its on-disk byte representation (header,
/// length-prefixed payload, trailing CRC32).
pub fn encode(ckpt: &Checkpoint) -> Vec<u8> {
    let mut p = Writer(Vec::new());
    let mut flags = 0u8;
    if ckpt.optim.is_some() {
        flags |= 1;
    }
    if ckpt.train.is_some() {
        flags |= 2;
    }
    p.u8(flags);
    p.u32(ckpt.params.len() as u32);
    for e in &ckpt.params {
        p.u32(e.name.len() as u32);
        p.bytes(e.name.as_bytes());
        p.u8(e.frozen as u8);
        p.u32(e.shape.len() as u32);
        for &d in &e.shape {
            p.u32(d as u32);
        }
        p.f32s(&e.data);
    }
    if let Some(o) = &ckpt.optim {
        p.u64(o.steps);
        for (m, v) in o.m.iter().zip(&o.v) {
            p.f32s(m);
            p.f32s(v);
        }
    }
    if let Some(t) = &ckpt.train {
        p.u64(t.rng_state);
        p.u64(t.next_step);
        p.u64(t.cursor);
        p.u64(t.order.len() as u64);
        for &i in &t.order {
            p.u32(i);
        }
        p.f32(t.tail_sum);
        p.u64(t.tail_n);
        p.u64(t.step_losses.len() as u64);
        p.f32s(&t.step_losses);
        p.u64(t.valid_losses.len() as u64);
        p.f32s(&t.valid_losses);
    }
    let payload = p.0;
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let crc = crc32(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CkptError> {
        if self.buf.len() - self.pos < n {
            return Err(CkptError::ShortRead { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self, c: &'static str) -> Result<u8, CkptError> {
        Ok(self.take(1, c)?[0])
    }
    fn u32(&mut self, c: &'static str) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4, c)?.try_into().unwrap()))
    }
    fn u64(&mut self, c: &'static str) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8, c)?.try_into().unwrap()))
    }
    fn f32(&mut self, c: &'static str) -> Result<f32, CkptError> {
        Ok(f32::from_le_bytes(self.take(4, c)?.try_into().unwrap()))
    }
    fn f32s(&mut self, n: usize, c: &'static str) -> Result<Vec<f32>, CkptError> {
        let raw = self.take(n * 4, c)?;
        Ok(raw
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes(b.try_into().unwrap()))
            .collect())
    }
}

/// Parses on-disk bytes into a [`Checkpoint`], verifying magic, version,
/// the length prefix, and the CRC before touching the payload.
pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CkptError> {
    if bytes.len() < MAGIC.len() {
        return Err(CkptError::ShortRead { context: "magic" });
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(CkptError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(CkptError::ShortRead { context: "header" });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(CkptError::UnsupportedVersion(version));
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
    // The length prefix must account for exactly the bytes present: a
    // truncated file (or a corrupted prefix) fails here before any
    // allocation is sized from untrusted data.
    let body = &bytes[HEADER_LEN..];
    if body.len() < 4 || payload_len != body.len() - 4 {
        return Err(CkptError::ShortRead { context: "payload" });
    }
    let (payload, crc_bytes) = body.split_at(payload_len);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    let computed = crc32(payload);
    if stored != computed {
        return Err(CkptError::CrcMismatch { stored, computed });
    }

    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let flags = r.u8("flags")?;
    let count = r.u32("param count")? as usize;
    let mut params = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let name_len = r.u32("name length")? as usize;
        let name = String::from_utf8(r.take(name_len, "name")?.to_vec())
            .map_err(|e| CkptError::Corrupt(format!("non-UTF-8 parameter name: {e}")))?;
        let frozen = r.u8("frozen flag")? != 0;
        let rank = r.u32("rank")? as usize;
        let mut shape = Vec::with_capacity(rank.min(16));
        for _ in 0..rank {
            shape.push(r.u32("dim")? as usize);
        }
        let numel: usize = shape.iter().product();
        let data = r.f32s(numel, "values")?;
        params.push(ParamEntry {
            name,
            shape,
            data,
            frozen,
        });
    }
    let optim = if flags & 1 != 0 {
        let steps = r.u64("adam step")?;
        let mut m = Vec::with_capacity(params.len());
        let mut v = Vec::with_capacity(params.len());
        for e in &params {
            m.push(r.f32s(e.data.len(), "adam m")?);
            v.push(r.f32s(e.data.len(), "adam v")?);
        }
        Some(OptimState { steps, m, v })
    } else {
        None
    };
    let train = if flags & 2 != 0 {
        let rng_state = r.u64("rng state")?;
        let next_step = r.u64("next step")?;
        let cursor = r.u64("cursor")?;
        let order_len = r.u64("order length")? as usize;
        let mut order = Vec::with_capacity(order_len.min(1 << 24));
        for _ in 0..order_len {
            order.push(r.u32("order index")?);
        }
        let tail_sum = r.f32("tail sum")?;
        let tail_n = r.u64("tail count")?;
        let n = r.u64("step-loss count")? as usize;
        let step_losses = r.f32s(n, "step losses")?;
        let n = r.u64("valid-loss count")? as usize;
        let valid_losses = r.f32s(n, "valid losses")?;
        Some(TrainState {
            rng_state,
            next_step,
            cursor,
            order,
            tail_sum,
            tail_n,
            step_losses,
            valid_losses,
        })
    } else {
        None
    };
    if r.pos != payload.len() {
        return Err(CkptError::Corrupt(format!(
            "{} trailing payload bytes",
            payload.len() - r.pos
        )));
    }
    Ok(Checkpoint {
        params,
        optim,
        train,
    })
}

// ---------------------------------------------------------------------------
// I/O layer with fault injection
// ---------------------------------------------------------------------------

/// Filesystem abstraction every checkpoint write and read goes through,
/// so tests (and fault drills) can inject failures without touching the
/// training loop.
pub trait CheckpointIo {
    /// Atomically replaces `path` with `bytes` (all-or-nothing from the
    /// reader's point of view), keeping the previous snapshot at
    /// [`prev_path`].
    fn write_atomic(&mut self, path: &Path, bytes: &[u8]) -> Result<(), CkptError>;

    /// Reads a whole checkpoint file.
    fn read(&self, path: &Path) -> Result<Vec<u8>, CkptError>;
}

/// Sibling path holding the previous (last good) snapshot.
pub fn prev_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".prev");
    path.with_file_name(name)
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// The real filesystem: temp file + fsync + rename, with last-good
/// rotation.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdIo;

impl CheckpointIo for StdIo {
    fn write_atomic(&mut self, path: &Path, bytes: &[u8]) -> Result<(), CkptError> {
        let tmp = tmp_path(path);
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        f.write_all(bytes).map_err(CkptError::Io)?;
        // fsync before rename: the rename must never become visible ahead
        // of the data it names.
        f.sync_all().map_err(CkptError::Io)?;
        drop(f);
        // Rotate the current snapshot to .prev so a corrupted-in-place
        // successor still leaves one good checkpoint behind.
        if path.exists() {
            std::fs::rename(path, prev_path(path)).map_err(CkptError::Io)?;
        }
        std::fs::rename(&tmp, path).map_err(CkptError::Io)?;
        Ok(())
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, CkptError> {
        std::fs::read(path).map_err(|e| io_err(path, e))
    }
}

/// Which corruption a [`FaultIo`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The write fails outright; the target file is untouched.
    WriteFail,
    /// The written file loses its last `n` bytes (a torn tail; `4` chops
    /// exactly the trailing CRC).
    Truncate(usize),
    /// Bit 0 of the byte at this offset is flipped (media corruption).
    BitFlip(usize),
}

/// A scheduled fault: corrupt the `at_write`-th checkpoint write
/// (1-based) with `mode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    pub mode: FaultMode,
    pub at_write: usize,
}

impl FaultPlan {
    /// Parses `DATAVIST5_FAULT`. Grammar:
    /// `write-fail@N`, `truncate@N:B`, `bit-flip@N:B` — corrupt the N-th
    /// checkpoint write, with B = bytes to truncate / byte offset to flip.
    /// Unset or unparsable values mean no fault.
    pub fn from_env() -> Option<FaultPlan> {
        Self::parse(&std::env::var("DATAVIST5_FAULT").ok()?)
    }

    /// Parses the `DATAVIST5_FAULT` grammar from a string.
    pub fn parse(spec: &str) -> Option<FaultPlan> {
        let (mode_s, rest) = spec.split_once('@')?;
        let (at_s, arg_s) = match rest.split_once(':') {
            Some((a, b)) => (a, Some(b)),
            None => (rest, None),
        };
        let at_write: usize = at_s.trim().parse().ok()?;
        let arg = |default: usize| -> Option<usize> {
            match arg_s {
                Some(s) => s.trim().parse().ok(),
                None => Some(default),
            }
        };
        let mode = match mode_s.trim() {
            "write-fail" => FaultMode::WriteFail,
            "truncate" => FaultMode::Truncate(arg(4)?),
            "bit-flip" => FaultMode::BitFlip(arg(0)?),
            _ => return None,
        };
        Some(FaultPlan { mode, at_write })
    }
}

/// A [`CheckpointIo`] that injects one scheduled fault, then behaves
/// normally.
#[derive(Debug)]
pub struct FaultIo {
    plan: FaultPlan,
    writes: usize,
    inner: StdIo,
}

impl FaultIo {
    pub fn new(plan: FaultPlan) -> Self {
        FaultIo {
            plan,
            writes: 0,
            inner: StdIo,
        }
    }

    /// Checkpoint writes attempted so far.
    pub fn writes(&self) -> usize {
        self.writes
    }
}

impl CheckpointIo for FaultIo {
    fn write_atomic(&mut self, path: &Path, bytes: &[u8]) -> Result<(), CkptError> {
        self.writes += 1;
        if self.writes != self.plan.at_write {
            return self.inner.write_atomic(path, bytes);
        }
        match self.plan.mode {
            FaultMode::WriteFail => Err(CkptError::InjectedFault("write-fail")),
            FaultMode::Truncate(n) => {
                let keep = bytes.len().saturating_sub(n);
                self.inner.write_atomic(path, &bytes[..keep])
            }
            FaultMode::BitFlip(offset) => {
                let mut corrupt = bytes.to_vec();
                if !corrupt.is_empty() {
                    let i = offset.min(corrupt.len() - 1);
                    corrupt[i] ^= 0x01;
                }
                self.inner.write_atomic(path, &corrupt)
            }
        }
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, CkptError> {
        self.inner.read(path)
    }
}

// ---------------------------------------------------------------------------
// Save / load entry points
// ---------------------------------------------------------------------------

/// Encodes and atomically writes a checkpoint.
///
/// The single choke point for checkpoint-write observability: successful
/// writes feed the `ckpt.write_ns` latency histogram, failed ones bump
/// the process-wide `ckpt.write_failures` counter (callers keep their own
/// per-run tallies for end-of-run summaries).
pub fn save(io: &mut dyn CheckpointIo, path: &Path, ckpt: &Checkpoint) -> Result<(), CkptError> {
    let sw = obs::Stopwatch::start();
    let result = io.write_atomic(path, &encode(ckpt));
    match &result {
        Ok(()) => {
            sw.observe("ckpt.write_ns");
        }
        Err(_) => obs::counter_add("ckpt.write_failures", 1),
    }
    result
}

/// Reads and decodes the checkpoint at `path`.
pub fn load(io: &dyn CheckpointIo, path: &Path) -> Result<Checkpoint, CkptError> {
    decode(&io.read(path)?)
}

/// Loads `path`, falling back to the rotated last-good snapshot when the
/// primary is corrupt. Returns the checkpoint and whether the fallback
/// was used; when both fail, returns the *primary's* error (the more
/// actionable one).
pub fn load_with_fallback(
    io: &dyn CheckpointIo,
    path: &Path,
) -> Result<(Checkpoint, bool), CkptError> {
    let primary = load(io, path);
    match primary {
        Ok(c) => Ok((c, false)),
        Err(e) => match load(io, &prev_path(path)) {
            Ok(c) => Ok((c, true)),
            Err(_) => Err(e),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            params: vec![
                ParamEntry {
                    name: "enc.w".into(),
                    shape: vec![2, 3],
                    data: vec![1.0, -2.5, 0.0, 3.25, f32::MIN_POSITIVE, 6.0],
                    frozen: false,
                },
                ParamEntry {
                    name: "dec.b".into(),
                    shape: vec![2],
                    data: vec![0.5, -0.5],
                    frozen: true,
                },
            ],
            optim: Some(OptimState {
                steps: 7,
                m: vec![vec![0.1; 6], vec![0.2; 2]],
                v: vec![vec![0.3; 6], vec![0.4; 2]],
            }),
            train: Some(TrainState {
                rng_state: 0xDEAD_BEEF,
                next_step: 12,
                cursor: 3,
                order: vec![2, 0, 1],
                tail_sum: 1.5,
                tail_n: 2,
                step_losses: vec![3.0, 2.5, 2.0],
                valid_losses: vec![2.75],
            }),
        }
    }

    #[test]
    fn encode_decode_roundtrip_is_identity() {
        let c = sample();
        assert_eq!(decode(&encode(&c)).unwrap(), c);
    }

    #[test]
    fn weights_only_roundtrip() {
        let mut c = sample();
        c.optim = None;
        c.train = None;
        assert_eq!(decode(&encode(&c)).unwrap(), c);
    }

    #[test]
    fn truncation_yields_short_read() {
        let bytes = encode(&sample());
        for cut in [bytes.len() - 4, bytes.len() - 1, HEADER_LEN, 5, 0] {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CkptError::ShortRead { .. }),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = encode(&sample());
        bytes[0] ^= 0xFF;
        assert!(matches!(decode(&bytes).unwrap_err(), CkptError::BadMagic));
    }

    #[test]
    fn version_skew_detected() {
        let mut bytes = encode(&sample());
        bytes[8] = 99;
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            CkptError::UnsupportedVersion(99)
        ));
    }

    #[test]
    fn payload_bit_flip_detected_by_crc() {
        let mut bytes = encode(&sample());
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN - 4) / 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            CkptError::CrcMismatch { .. }
        ));
    }

    #[test]
    fn atomic_write_rotates_last_good() {
        let dir = std::env::temp_dir().join("datavist5_ckpt_rotate");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.bin");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(prev_path(&path));
        let mut io = StdIo;
        let mut first = sample();
        first.train = None;
        save(&mut io, &path, &first).unwrap();
        let second = sample();
        save(&mut io, &path, &second).unwrap();
        assert_eq!(load(&io, &path).unwrap(), second);
        assert_eq!(load(&io, &prev_path(&path)).unwrap(), first);
    }

    #[test]
    fn fallback_recovers_from_corrupt_primary() {
        let dir = std::env::temp_dir().join("datavist5_ckpt_fallback");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.bin");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(prev_path(&path));
        let mut io = StdIo;
        let good = sample();
        save(&mut io, &path, &good).unwrap();
        // Second write is bit-flipped mid-payload: primary corrupt.
        let mut fio = FaultIo::new(FaultPlan {
            mode: FaultMode::BitFlip(HEADER_LEN + 10),
            at_write: 1,
        });
        save(&mut fio, &path, &sample()).unwrap();
        assert!(matches!(
            load(&fio, &path).unwrap_err(),
            CkptError::CrcMismatch { .. }
        ));
        let (recovered, from_prev) = load_with_fallback(&fio, &path).unwrap();
        assert!(from_prev);
        assert_eq!(recovered, good);
    }

    #[test]
    fn missing_file_is_typed_missing() {
        let err = load(&StdIo, Path::new("/nonexistent/datavist5/x.bin")).unwrap_err();
        assert!(err.is_missing());
    }

    #[test]
    fn fault_plan_parses_env_grammar() {
        assert_eq!(
            FaultPlan::parse("write-fail@2"),
            Some(FaultPlan {
                mode: FaultMode::WriteFail,
                at_write: 2
            })
        );
        assert_eq!(
            FaultPlan::parse("truncate@1:4"),
            Some(FaultPlan {
                mode: FaultMode::Truncate(4),
                at_write: 1
            })
        );
        assert_eq!(
            FaultPlan::parse("bit-flip@3:100"),
            Some(FaultPlan {
                mode: FaultMode::BitFlip(100),
                at_write: 3
            })
        );
        assert_eq!(
            FaultPlan::parse("truncate@1"),
            Some(FaultPlan {
                mode: FaultMode::Truncate(4),
                at_write: 1
            })
        );
        assert_eq!(FaultPlan::parse("nonsense"), None);
        assert_eq!(FaultPlan::parse("explode@1"), None);
    }
}
