//! Decoding strategies: greedy, beam search, and grammar-constrained.
//!
//! Every sequence model exposes an incremental state with a
//! `step(token) -> logits` method; the [`StepDecoder`] trait unifies them
//! so the same decoding routines drive the T5 family and the LSTM
//! baseline. The decoder start token is the T5 convention (`<pad>`).

use crate::t5::DECODER_START;

/// An incremental decoder: feed the previously produced token, get logits
/// for the next one.
pub trait StepDecoder {
    /// Feeds `token` and returns next-token logits over the vocabulary.
    fn step(&mut self, token: u32) -> Vec<f32>;
}

impl StepDecoder for crate::t5::DecodeState<'_> {
    fn step(&mut self, token: u32) -> Vec<f32> {
        crate::t5::DecodeState::step(self, token)
    }
}

impl StepDecoder for crate::lstm::LstmDecodeState<'_> {
    fn step(&mut self, token: u32) -> Vec<f32> {
        crate::lstm::LstmDecodeState::step(self, token)
    }
}

/// Greedy decoding until `eos` or `max_len` tokens.
///
/// Returns generated tokens excluding the final `eos`.
pub fn greedy_decode(state: &mut dyn StepDecoder, eos: u32, max_len: usize) -> Vec<u32> {
    let mut out = Vec::new();
    let mut prev = DECODER_START;
    for _ in 0..max_len {
        let logits = state.step(prev);
        let next = argmax(&logits);
        if next == eos {
            break;
        }
        out.push(next);
        prev = next;
    }
    out
}

/// Grammar-constrained greedy decoding: at each step the caller maps the
/// emitted prefix to the set of allowed token ids; the argmax is taken
/// over that set only. An empty allowed set terminates decoding.
pub fn constrained_decode(
    state: &mut dyn StepDecoder,
    eos: u32,
    max_len: usize,
    mut allowed: impl FnMut(&[u32]) -> Vec<u32>,
) -> Vec<u32> {
    let mut out = Vec::new();
    let mut prev = DECODER_START;
    for _ in 0..max_len {
        let logits = state.step(prev);
        let mask = allowed(&out);
        if mask.is_empty() {
            break;
        }
        let next = mask
            .iter()
            .copied()
            .max_by(|&a, &b| {
                logits[a as usize]
                    .partial_cmp(&logits[b as usize])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty mask");
        if next == eos {
            break;
        }
        out.push(next);
        prev = next;
    }
    out
}

/// Beam search with length-normalized log-probability scoring.
///
/// Each hypothesis owns a cloned decoder state, so `D` must be `Clone`
/// (cheap for the cached states: a few `[t, d]` tensors).
pub fn beam_decode<D: StepDecoder + Clone>(
    start: D,
    eos: u32,
    max_len: usize,
    beam_width: usize,
) -> Vec<u32> {
    assert!(beam_width >= 1);
    struct Hyp<D> {
        state: D,
        tokens: Vec<u32>,
        log_prob: f32,
        done: bool,
    }
    let mut beams = vec![Hyp {
        state: start,
        tokens: Vec::new(),
        log_prob: 0.0,
        done: false,
    }];
    for _ in 0..max_len {
        if beams.iter().all(|b| b.done) {
            break;
        }
        let mut candidates: Vec<Hyp<D>> = Vec::new();
        for hyp in beams {
            if hyp.done {
                candidates.push(hyp);
                continue;
            }
            let prev = *hyp.tokens.last().unwrap_or(&DECODER_START);
            let mut state = hyp.state.clone();
            let logits = state.step(prev);
            let log_probs = log_softmax(&logits);
            let mut top: Vec<(usize, f32)> = log_probs.iter().copied().enumerate().collect();
            top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            for &(tok, lp) in top.iter().take(beam_width) {
                let mut tokens = hyp.tokens.clone();
                let done = tok as u32 == eos;
                if !done {
                    tokens.push(tok as u32);
                }
                candidates.push(Hyp {
                    state: state.clone(),
                    tokens,
                    log_prob: hyp.log_prob + lp,
                    done,
                });
            }
        }
        candidates.sort_by(|a, b| {
            score(b)
                .partial_cmp(&score(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        candidates.truncate(beam_width);
        beams = candidates;
    }
    fn score<D>(h: &Hyp<D>) -> f32 {
        h.log_prob / (h.tokens.len().max(1) as f32)
    }
    beams
        .into_iter()
        .max_by(|a, b| {
            score(a)
                .partial_cmp(&score(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|h| h.tokens)
        .unwrap_or_default()
}

fn argmax(xs: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best as u32
}

fn log_softmax(xs: &[f32]) -> Vec<f32> {
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum = xs.iter().map(|x| (x - max).exp()).sum::<f32>().ln() + max;
    xs.iter().map(|x| x - log_sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted decoder: at step `t` it returns logits favouring
    /// `script[t]`.
    #[derive(Clone)]
    struct Scripted {
        script: Vec<u32>,
        t: usize,
        vocab: usize,
    }

    impl StepDecoder for Scripted {
        fn step(&mut self, _token: u32) -> Vec<f32> {
            let mut logits = vec![0.0; self.vocab];
            let tok = self.script.get(self.t).copied().unwrap_or(1);
            logits[tok as usize] = 5.0;
            self.t += 1;
            logits
        }
    }

    #[test]
    fn greedy_follows_argmax_until_eos() {
        let mut s = Scripted {
            script: vec![4, 5, 6, 1],
            t: 0,
            vocab: 8,
        };
        assert_eq!(greedy_decode(&mut s, 1, 10), vec![4, 5, 6]);
    }

    #[test]
    fn greedy_respects_max_len() {
        let mut s = Scripted {
            script: vec![4; 100],
            t: 0,
            vocab: 8,
        };
        assert_eq!(greedy_decode(&mut s, 1, 3).len(), 3);
    }

    #[test]
    fn constrained_decoding_overrides_argmax() {
        // Model wants 4 but only 5 is allowed.
        let mut s = Scripted {
            script: vec![4, 1],
            t: 0,
            vocab: 8,
        };
        let out = constrained_decode(&mut s, 1, 10, |prefix| {
            if prefix.is_empty() {
                vec![5]
            } else {
                vec![1]
            }
        });
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn constrained_stops_on_empty_mask() {
        let mut s = Scripted {
            script: vec![4; 10],
            t: 0,
            vocab: 8,
        };
        let out = constrained_decode(&mut s, 1, 10, |prefix| {
            if prefix.len() < 2 {
                vec![4]
            } else {
                vec![]
            }
        });
        assert_eq!(out, vec![4, 4]);
    }

    #[test]
    fn beam_matches_greedy_on_peaked_distributions() {
        let s = Scripted {
            script: vec![3, 6, 2, 1],
            t: 0,
            vocab: 8,
        };
        let beam = beam_decode(s.clone(), 1, 10, 3);
        let mut s2 = s;
        let greedy = greedy_decode(&mut s2, 1, 10);
        assert_eq!(beam, greedy);
    }

    /// A decoder where greedy is suboptimal: token 2 looks best first but
    /// leads to low-probability continuations.
    #[derive(Clone)]
    struct Garden {
        path: Vec<u32>,
    }

    impl StepDecoder for Garden {
        fn step(&mut self, _token: u32) -> Vec<f32> {
            match self.path.as_slice() {
                // Step 0: token 2 slightly beats token 3.
                [] => {
                    self.path.push(99);
                    vec![0.0, 0.0, 1.0, 0.9]
                }
                _ => vec![0.0, 2.0, 0.0, 0.0],
            }
        }
    }

    #[test]
    fn beam_explores_more_than_one_path() {
        // With width 2 both first tokens survive; the final scores differ
        // only via the first step, so beam keeps the greedy winner — this
        // exercises the multi-hypothesis bookkeeping end to end.
        let out = beam_decode(Garden { path: vec![] }, 1, 2, 2);
        assert!(!out.is_empty());
    }
}
