//! Decoding strategies: greedy, beam search, and grammar-constrained.
//!
//! Every sequence model exposes an incremental state with a
//! `step(token) -> logits` method; the [`StepDecoder`] trait unifies them
//! so the same decoding routines drive the T5 family and the LSTM
//! baseline. The decoder start token is the T5 convention (`<pad>`).
//!
//! For T5 models there is also a batched path:
//! [`batched_greedy_decode`] and [`batched_constrained_decode`] drive a
//! [`BatchedDecodeState`] with continuous batching — free slots refill
//! from the pending request queue the moment a request retires — and are
//! token-for-token identical to looping [`greedy_decode`] /
//! [`constrained_decode`] over the requests one at a time (the
//! determinism contracts of [`argmax`] and the masked pick are part of
//! that guarantee and are locked by unit tests).

use crate::batch::BatchedDecodeState;
use crate::param::ParamSet;
use crate::t5::{T5Model, DECODER_START};

/// An incremental decoder: feed the previously produced token, get logits
/// for the next one.
pub trait StepDecoder {
    /// Feeds `token` and returns next-token logits over the vocabulary.
    fn step(&mut self, token: u32) -> Vec<f32>;
}

impl StepDecoder for crate::t5::DecodeState<'_> {
    fn step(&mut self, token: u32) -> Vec<f32> {
        crate::t5::DecodeState::step(self, token)
    }
}

impl StepDecoder for crate::lstm::LstmDecodeState<'_> {
    fn step(&mut self, token: u32) -> Vec<f32> {
        crate::lstm::LstmDecodeState::step(self, token)
    }
}

/// Greedy decoding until `eos` or `max_len` tokens.
///
/// Returns generated tokens excluding the final `eos`.
pub fn greedy_decode(state: &mut dyn StepDecoder, eos: u32, max_len: usize) -> Vec<u32> {
    let mut out = Vec::new();
    let mut prev = DECODER_START;
    for _ in 0..max_len {
        let logits = state.step(prev);
        let next = argmax(&logits);
        if next == eos {
            break;
        }
        out.push(next);
        prev = next;
    }
    out
}

/// Grammar-constrained greedy decoding: at each step the caller maps the
/// emitted prefix to the set of allowed token ids; the argmax is taken
/// over that set only. An empty allowed set terminates decoding.
pub fn constrained_decode(
    state: &mut dyn StepDecoder,
    eos: u32,
    max_len: usize,
    mut allowed: impl FnMut(&[u32]) -> Vec<u32>,
) -> Vec<u32> {
    let mut out = Vec::new();
    let mut prev = DECODER_START;
    for _ in 0..max_len {
        let logits = state.step(prev);
        let mask = allowed(&out);
        if mask.is_empty() {
            break;
        }
        let next = masked_argmax(&logits, &mask);
        if next == eos {
            break;
        }
        out.push(next);
        prev = next;
    }
    out
}

/// Beam search with length-normalized log-probability scoring.
///
/// Each hypothesis owns a cloned decoder state, so `D` must be `Clone`
/// (cheap for the cached states: a few `[t, d]` tensors).
pub fn beam_decode<D: StepDecoder + Clone>(
    start: D,
    eos: u32,
    max_len: usize,
    beam_width: usize,
) -> Vec<u32> {
    assert!(beam_width >= 1);
    struct Hyp<D> {
        state: D,
        tokens: Vec<u32>,
        log_prob: f32,
        done: bool,
    }
    let mut beams = vec![Hyp {
        state: start,
        tokens: Vec::new(),
        log_prob: 0.0,
        done: false,
    }];
    for _ in 0..max_len {
        if beams.iter().all(|b| b.done) {
            break;
        }
        let mut candidates: Vec<Hyp<D>> = Vec::new();
        for hyp in beams {
            if hyp.done {
                candidates.push(hyp);
                continue;
            }
            let prev = *hyp.tokens.last().unwrap_or(&DECODER_START);
            let mut state = hyp.state.clone();
            let logits = state.step(prev);
            let log_probs = log_softmax(&logits);
            let mut top: Vec<(usize, f32)> = log_probs.iter().copied().enumerate().collect();
            top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            for &(tok, lp) in top.iter().take(beam_width) {
                let mut tokens = hyp.tokens.clone();
                let done = tok as u32 == eos;
                if !done {
                    tokens.push(tok as u32);
                }
                candidates.push(Hyp {
                    state: state.clone(),
                    tokens,
                    log_prob: hyp.log_prob + lp,
                    done,
                });
            }
        }
        candidates.sort_by(|a, b| {
            score(b)
                .partial_cmp(&score(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        candidates.truncate(beam_width);
        beams = candidates;
    }
    fn score<D>(h: &Hyp<D>) -> f32 {
        h.log_prob / (h.tokens.len().max(1) as f32)
    }
    beams
        .into_iter()
        .max_by(|a, b| {
            score(a)
                .partial_cmp(&score(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|h| h.tokens)
        .unwrap_or_default()
}

/// Index of the largest logit, breaking ties toward the **lowest** index.
///
/// The tie rule is a determinism contract: the batched and sequential
/// greedy decoders both route through this function, so equal logits can
/// never make the two paths diverge.
pub fn argmax(xs: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best as u32
}

/// The best-scoring token of a non-empty `mask`, breaking ties toward the
/// **last** mask entry (the historical `Iterator::max_by` behaviour of
/// [`constrained_decode`], now shared with the batched path so both pick
/// identically).
pub fn masked_argmax(logits: &[f32], mask: &[u32]) -> u32 {
    mask.iter()
        .copied()
        .max_by(|&a, &b| {
            logits[a as usize]
                .partial_cmp(&logits[b as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        // hot-ok: documented precondition — every caller rejects an empty mask first
        .expect("non-empty mask")
}

/// Numerically stable log-softmax of a logits row.
///
/// An all-`-inf` row (every token masked out) yields all `-inf`
/// log-probabilities rather than the NaN vector the naive
/// `exp(-inf - -inf)` evaluation would produce.
pub fn log_softmax(xs: &[f32]) -> Vec<f32> {
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        return vec![f32::NEG_INFINITY; xs.len()];
    }
    let log_sum = xs.iter().map(|x| (x - max).exp()).sum::<f32>().ln() + max;
    xs.iter().map(|x| x - log_sum).collect()
}

/// Greedy-decodes every request in `srcs` through a
/// [`BatchedDecodeState`] with `capacity` slots, returning per-request
/// outputs in input order.
///
/// Token-for-token identical to running [`greedy_decode`] over a
/// sequential `DecodeState` per request: same per-request step count,
/// same [`argmax`] tie-breaking, bit-identical logits (see
/// [`crate::batch`]). Slots retire on EOS or `max_len` and refill from
/// the pending queue immediately (continuous batching), so a long request
/// never blocks admission of short ones.
pub fn batched_greedy_decode(
    model: &T5Model,
    ps: &ParamSet,
    srcs: &[Vec<u32>],
    eos: u32,
    max_len: usize,
    capacity: usize,
) -> Vec<Vec<u32>> {
    batched_decode_loop(model, ps, srcs, max_len, capacity, |_, logits, _| {
        let next = argmax(logits);
        (next != eos).then_some(next)
    })
}

/// Batched grammar-constrained greedy decoding.
///
/// `allowed(request, prefix)` maps each request's emitted prefix to its
/// allowed token ids, exactly like the closure of [`constrained_decode`];
/// an empty set finishes that request. Per request the output is
/// token-for-token identical to the sequential routine, including the
/// last-entry tie-breaking of [`masked_argmax`].
pub fn batched_constrained_decode(
    model: &T5Model,
    ps: &ParamSet,
    srcs: &[Vec<u32>],
    eos: u32,
    max_len: usize,
    capacity: usize,
    mut allowed: impl FnMut(usize, &[u32]) -> Vec<u32>,
) -> Vec<Vec<u32>> {
    batched_decode_loop(model, ps, srcs, max_len, capacity, |req, logits, prefix| {
        let mask = allowed(req, prefix);
        if mask.is_empty() {
            return None;
        }
        let next = masked_argmax(logits, &mask);
        (next != eos).then_some(next)
    })
}

/// The continuous-batching scheduler shared by the batched decoders.
///
/// `pick(request, logits, prefix)` returns the next token, or `None` to
/// finish the request without emitting (EOS or an empty constraint set).
/// Requests admit in input order whenever a slot is free; each lives for
/// exactly as many packed steps as its sequential counterpart would take.
fn batched_decode_loop(
    model: &T5Model,
    ps: &ParamSet,
    srcs: &[Vec<u32>],
    max_len: usize,
    capacity: usize,
    mut pick: impl FnMut(usize, &[f32], &[u32]) -> Option<u32>,
) -> Vec<Vec<u32>> {
    // hot-ok: per-run output table — allocated once, before the step loop
    let mut outs: Vec<Vec<u32>> = vec![Vec::new(); srcs.len()];
    if srcs.is_empty() || max_len == 0 {
        return outs;
    }
    let _span = obs::span!("decode/batched");
    let obs_on = obs::enabled();
    if obs_on {
        obs::gauge_set("decode.threads", tensor::par::threads() as f64);
    }
    let mut state = BatchedDecodeState::new(model, ps, capacity);
    state.reserve_steps(max_len);
    // hot-ok: per-run slot tables — allocated once, reused by every step
    let mut slot_req: Vec<Option<usize>> = vec![None; capacity];
    // hot-ok: per-run slot tables — allocated once, reused by every step
    let mut slot_prev: Vec<u32> = vec![DECODER_START; capacity];
    // hot-ok: per-run step buffers — recycled by step_packed_into each iteration
    let mut active: Vec<(usize, u32)> = Vec::with_capacity(capacity);
    // hot-ok: per-run step buffers — recycled by step_packed_into each iteration
    let mut logits: Vec<Vec<f32>> = Vec::with_capacity(capacity);
    let mut next_req = 0usize;
    let mut live = 0usize;
    loop {
        // Refill free slots from the pending queue.
        let mut admitted = 0u64;
        while next_req < srcs.len() {
            // hot-ok: next_req < srcs.len() is the loop condition
            let Some(slot) = state.admit(&srcs[next_req]) else {
                break;
            };
            // hot-ok: slot indices come from state.admit, bounded by capacity
            slot_req[slot] = Some(next_req);
            // hot-ok: slot indices come from state.admit, bounded by capacity
            slot_prev[slot] = DECODER_START;
            next_req += 1;
            live += 1;
            admitted += 1;
        }
        if live == 0 {
            break;
        }
        if obs_on {
            if admitted > 0 {
                obs::counter_add("decode.admitted", admitted);
            }
            obs::counter_add("decode.steps", 1);
            obs::gauge_set("decode.slot_occupancy", live as f64 / capacity as f64);
            obs::gauge_set("decode.kv_cache_bytes", state.cache_bytes() as f64);
        }
        active.clear();
        active.extend(
            slot_req
                .iter()
                .enumerate()
                // hot-ok: slot enumerates slot_prev's own indices
                .filter_map(|(slot, req)| req.map(|_| (slot, slot_prev[slot]))),
        );
        state.step_packed_into(&active, &mut logits);
        let mut emitted = 0u64;
        let mut retired = 0u64;
        for (&(slot, _), row) in active.iter().zip(logits.iter()) {
            let Some(req) = slot_req.get(slot).copied().flatten() else {
                continue;
            };
            // hot-ok: req indexes outs, sized to srcs.len() which bounds every req id
            let finished = match pick(req, row, &outs[req]) {
                None => true,
                Some(next) => {
                    // hot-ok: req indexes outs, sized to srcs.len() which bounds every req id
                    outs[req].push(next);
                    // hot-ok: slot came from active, built over slot_prev's indices
                    slot_prev[slot] = next;
                    emitted += 1;
                    // hot-ok: req indexes outs, sized to srcs.len() which bounds every req id
                    outs[req].len() >= max_len
                }
            };
            if finished {
                state.retire(slot);
                // hot-ok: slot came from active, built over slot_req's indices
                slot_req[slot] = None;
                live -= 1;
                retired += 1;
            }
        }
        if obs_on {
            if emitted > 0 {
                obs::counter_add("decode.tokens", emitted);
            }
            if retired > 0 {
                obs::counter_add("decode.retired", retired);
            }
        }
    }
    outs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted decoder: at step `t` it returns logits favouring
    /// `script[t]`.
    #[derive(Clone)]
    struct Scripted {
        script: Vec<u32>,
        t: usize,
        vocab: usize,
    }

    impl StepDecoder for Scripted {
        fn step(&mut self, _token: u32) -> Vec<f32> {
            let mut logits = vec![0.0; self.vocab];
            let tok = self.script.get(self.t).copied().unwrap_or(1);
            logits[tok as usize] = 5.0;
            self.t += 1;
            logits
        }
    }

    #[test]
    fn greedy_follows_argmax_until_eos() {
        let mut s = Scripted {
            script: vec![4, 5, 6, 1],
            t: 0,
            vocab: 8,
        };
        assert_eq!(greedy_decode(&mut s, 1, 10), vec![4, 5, 6]);
    }

    #[test]
    fn greedy_respects_max_len() {
        let mut s = Scripted {
            script: vec![4; 100],
            t: 0,
            vocab: 8,
        };
        assert_eq!(greedy_decode(&mut s, 1, 3).len(), 3);
    }

    #[test]
    fn constrained_decoding_overrides_argmax() {
        // Model wants 4 but only 5 is allowed.
        let mut s = Scripted {
            script: vec![4, 1],
            t: 0,
            vocab: 8,
        };
        let out = constrained_decode(&mut s, 1, 10, |prefix| {
            if prefix.is_empty() {
                vec![5]
            } else {
                vec![1]
            }
        });
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn constrained_stops_on_empty_mask() {
        let mut s = Scripted {
            script: vec![4; 10],
            t: 0,
            vocab: 8,
        };
        let out = constrained_decode(&mut s, 1, 10, |prefix| {
            if prefix.len() < 2 {
                vec![4]
            } else {
                vec![]
            }
        });
        assert_eq!(out, vec![4, 4]);
    }

    #[test]
    fn argmax_breaks_ties_toward_lowest_index() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0, 5.0, 5.0]), 0);
        // NaN never wins (`x > best` is false), and never dethrones a max.
        assert_eq!(argmax(&[1.0, f32::NAN, 2.0]), 2);
    }

    #[test]
    fn masked_argmax_breaks_ties_toward_last_entry() {
        let logits = [0.0, 7.0, 7.0, 1.0];
        assert_eq!(masked_argmax(&logits, &[1, 2]), 2);
        assert_eq!(masked_argmax(&logits, &[2, 1]), 1);
        assert_eq!(masked_argmax(&logits, &[3]), 3);
    }

    #[test]
    fn log_softmax_handles_all_neg_inf_row() {
        let out = log_softmax(&[f32::NEG_INFINITY; 4]);
        assert_eq!(out.len(), 4);
        assert!(
            out.iter().all(|v| *v == f32::NEG_INFINITY),
            "all-masked row must stay -inf, got {out:?}"
        );
    }

    #[test]
    fn log_softmax_normalizes_finite_rows() {
        let out = log_softmax(&[1.0, 2.0, 3.0]);
        let total: f32 = out.iter().map(|v| v.exp()).sum();
        assert!((total - 1.0).abs() < 1e-5, "probs sum to {total}");
        // A partially masked row stays finite on the unmasked entries.
        let masked = log_softmax(&[f32::NEG_INFINITY, 0.0, f32::NEG_INFINITY]);
        assert_eq!(masked[0], f32::NEG_INFINITY);
        assert!((masked[1] - 0.0).abs() < 1e-6);
    }

    #[test]
    fn beam_matches_greedy_on_peaked_distributions() {
        let s = Scripted {
            script: vec![3, 6, 2, 1],
            t: 0,
            vocab: 8,
        };
        let beam = beam_decode(s.clone(), 1, 10, 3);
        let mut s2 = s;
        let greedy = greedy_decode(&mut s2, 1, 10);
        assert_eq!(beam, greedy);
    }

    /// A decoder where greedy is suboptimal: token 2 looks best first but
    /// leads to low-probability continuations.
    #[derive(Clone)]
    struct Garden {
        path: Vec<u32>,
    }

    impl StepDecoder for Garden {
        fn step(&mut self, _token: u32) -> Vec<f32> {
            match self.path.as_slice() {
                // Step 0: token 2 slightly beats token 3.
                [] => {
                    self.path.push(99);
                    vec![0.0, 0.0, 1.0, 0.9]
                }
                _ => vec![0.0, 2.0, 0.0, 0.0],
            }
        }
    }

    #[test]
    fn beam_explores_more_than_one_path() {
        // With width 2 both first tokens survive; the final scores differ
        // only via the first step, so beam keeps the greedy winner — this
        // exercises the multi-hypothesis bookkeeping end to end.
        let out = beam_decode(Garden { path: vec![] }, 1, 2, 2);
        assert!(!out.is_empty());
    }
}
