//! Property tests of the batched inference engine.
//!
//! Two contracts: (1) batched grammar-constrained decoding with an
//! arbitrary (randomly generated, prefix-dependent) mask function agrees
//! with the sequential `constrained_decode` on every request; (2) slot
//! retirement never leaks one request's state into another — retiring
//! NaN-poisons the slot's caches, so if any later packed step read them
//! the survivors' logits would go NaN and their token streams would
//! diverge from the sequential reference. Both are checked across random
//! batch shapes, ragged sources, and retirement schedules.

use proptest::prelude::*;

use nn::decode::{batched_constrained_decode, constrained_decode, greedy_decode};
use nn::param::ParamSet;
use nn::t5::{DecodeState, Positional, T5Config, T5Model};
use tensor::XorShift;

const EOS: u32 = 1;
const MAX_LEN: usize = 10;
const VOCAB: usize = 19;

fn random_model(seed: u64) -> (T5Model, ParamSet) {
    let mut ps = ParamSet::new();
    let mut rng = XorShift::new(seed);
    let cfg = T5Config {
        vocab: VOCAB,
        d_model: 8,
        d_ff: 16,
        heads: 2,
        enc_layers: 1,
        dec_layers: 1,
        dropout: 0.0,
        positional: Positional::RelativeBias,
    };
    let m = T5Model::new(&mut ps, "m", cfg, &mut rng);
    (m, ps)
}

fn random_srcs(seed: u64, count: usize) -> Vec<Vec<u32>> {
    let mut rng = XorShift::new(seed.wrapping_add(1));
    (0..count)
        .map(|_| {
            let len = 1 + (rng.next_u64() % 5) as usize;
            let mut src: Vec<u32> = (0..len)
                .map(|_| 2 + (rng.next_u64() % (VOCAB as u64 - 2)) as u32)
                .collect();
            src.push(EOS);
            src
        })
        .collect()
}

/// A deterministic pseudo-random grammar: the allowed set depends only on
/// `(seed, request, prefix)`, so the sequential and batched closures see
/// identical masks. Sets occasionally go empty (hard stop) and sometimes
/// include EOS.
fn grammar_mask(seed: u64, req: usize, prefix: &[u32]) -> Vec<u32> {
    let mix = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(req as u64 * 7919)
        .wrapping_add(
            prefix
                .iter()
                .fold(0u64, |h, &t| h.wrapping_mul(31).wrapping_add(t as u64)),
        );
    let mut rng = XorShift::new(mix | 1);
    if rng.next_u64().is_multiple_of(13) {
        return Vec::new();
    }
    let mut mask: Vec<u32> = (2..VOCAB as u32)
        .filter(|_| !rng.next_u64().is_multiple_of(3))
        .collect();
    if rng.next_u64().is_multiple_of(4) {
        mask.push(EOS);
    }
    mask
}

proptest! {
    /// Batched constrained decoding with a random grammar mask agrees
    /// with `constrained_decode` per request.
    #[test]
    fn batched_constrained_matches_sequential(
        model_seed in 0u64..200,
        grammar_seed in 0u64..1000,
        batch in 1usize..=8,
        capacity in 1usize..=8,
    ) {
        let (m, ps) = random_model(model_seed);
        let srcs = random_srcs(model_seed ^ grammar_seed, batch);
        let want: Vec<Vec<u32>> = srcs
            .iter()
            .enumerate()
            .map(|(req, src)| {
                let mut state = DecodeState::new(&m, &ps, src);
                constrained_decode(&mut state, EOS, MAX_LEN, |prefix| {
                    grammar_mask(grammar_seed, req, prefix)
                })
            })
            .collect();
        let got = batched_constrained_decode(
            &m, &ps, &srcs, EOS, MAX_LEN, capacity,
            |req, prefix| grammar_mask(grammar_seed, req, prefix),
        );
        prop_assert_eq!(got, want);
    }

    /// Retiring a request mid-batch (which NaN-poisons its slot) never
    /// perturbs the survivors: their greedy outputs stay identical to the
    /// sequential path and entirely finite. A leak of the poisoned caches
    /// into a packed matmul would propagate NaN into the survivors'
    /// logits, making argmax return token 0 and the comparison fail.
    #[test]
    fn retirement_never_leaks_across_slots(
        model_seed in 0u64..200,
        src_seed in 0u64..1000,
        batch in 2usize..=8,
    ) {
        let (m, ps) = random_model(model_seed);
        let srcs = random_srcs(src_seed, batch);
        let want: Vec<Vec<u32>> = srcs
            .iter()
            .map(|src| {
                let mut state = DecodeState::new(&m, &ps, src);
                greedy_decode(&mut state, EOS, MAX_LEN)
            })
            .collect();
        // Capacity below batch forces staggered admissions *and*
        // retirements: survivors keep stepping beside poisoned slots.
        let capacity = 1 + (src_seed as usize % batch);
        let got = nn::decode::batched_greedy_decode(&m, &ps, &srcs, EOS, MAX_LEN, capacity);
        for (r, out) in got.iter().enumerate() {
            prop_assert!(
                out.iter().all(|&t| (t as usize) < VOCAB),
                "request {} produced out-of-vocab token", r
            );
        }
        prop_assert_eq!(got, want);
    }
}
