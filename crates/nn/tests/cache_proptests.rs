//! Property tests for `nn::prefix_cache`: random insert/lookup/unpin
//! traces against a byte-capped cache, auditing after every operation.
//!
//! Invariants locked in:
//! * byte accounting never exceeds the budget (`audit` after every op);
//! * pinned entries are never evicted;
//! * a hit returns tensors bit-identical to what was inserted;
//! * `lookup(x)` immediately after a cached `insert(x)` always hits;
//! * double-running one trace yields the identical event stream —
//!   including eviction order — and identical final tallies.

use nn::prefix_cache::{CacheEvent, CacheStats, PrefixCache, PrefixKv};
use proptest::prelude::*;

const LAYERS: usize = 2;
const D: usize = 4;

#[derive(Debug, Clone)]
enum Op {
    /// Insert a synthetic entry for this source (pin kept for later).
    Insert(Vec<u32>),
    /// Look a source up (pin kept on hit).
    Lookup(Vec<u32>),
    /// Release the n-th outstanding pin (modulo however many exist).
    Unpin(usize),
}

fn src_strategy() -> impl Strategy<Value = Vec<u32>> {
    // A small id space with short sources: collisions of *content*
    // (same source inserted twice) are common, which is exactly the
    // interesting regime for pin/recency bookkeeping.
    prop::collection::vec(0u32..12, 1..6)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        src_strategy().prop_map(Op::Insert),
        src_strategy().prop_map(Op::Lookup),
        (0usize..8).prop_map(Op::Unpin),
    ]
}

fn assert_bits_equal(got: &PrefixKv, src: &[u32]) {
    let want = PrefixKv::synthetic(src, LAYERS, D);
    for (a, b) in got
        .cross_k
        .iter()
        .chain(got.cross_v.iter())
        .zip(want.cross_k.iter().chain(want.cross_v.iter()))
    {
        assert_eq!(a.shape(), b.shape(), "cached tensor shape drifted");
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "cached tensor bits drifted");
        }
    }
}

/// Replays one operation trace, checking every invariant after every
/// operation, and returns the event stream plus final tallies.
fn run_trace(cap_bytes: usize, ops: &[Op]) -> (Vec<CacheEvent>, CacheStats) {
    let mut c = PrefixCache::new(cap_bytes).with_event_log();
    let mut pins: Vec<(u64, Vec<u32>)> = Vec::new();
    for op in ops {
        match op {
            Op::Insert(src) => {
                let (shared, pin) = c.insert_pin(src, PrefixKv::synthetic(src, LAYERS, D));
                assert_bits_equal(&shared, src);
                if let Some(hash) = pin {
                    pins.push((hash, src.clone()));
                    // insert(x) then lookup(x): must hit while pinned.
                    let (again, extra) = c.lookup_pin(src).expect("lookup after insert hits");
                    assert_bits_equal(&again, src);
                    c.unpin(extra);
                }
            }
            Op::Lookup(src) => {
                if let Some((kv, hash)) = c.lookup_pin(src) {
                    assert_bits_equal(&kv, src);
                    pins.push((hash, src.clone()));
                }
            }
            Op::Unpin(n) => {
                if !pins.is_empty() {
                    let (hash, _) = pins.remove(n % pins.len());
                    c.unpin(hash);
                }
            }
        }
        c.audit();
        assert!(c.bytes() <= cap_bytes, "budget exceeded");
        for (_, src) in &pins {
            assert!(c.contains(src), "pinned entry {src:?} was evicted");
        }
    }
    for (hash, _) in pins {
        c.unpin(hash);
    }
    assert_eq!(c.pinned_entries(), 0, "all pins released");
    c.audit();
    (c.take_events(), c.stats())
}

proptest! {
    #[test]
    fn random_traces_hold_all_invariants(
        cap in 64usize..512,
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        run_trace(cap, &ops);
    }

    #[test]
    fn double_run_yields_identical_event_and_eviction_order(
        cap in 64usize..512,
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let (events_a, stats_a) = run_trace(cap, &ops);
        let (events_b, stats_b) = run_trace(cap, &ops);
        prop_assert_eq!(&events_a, &events_b, "event streams diverged");
        prop_assert_eq!(stats_a, stats_b, "tallies diverged");
        // Eviction order specifically: the C003 subsequence.
        let evictions: Vec<u64> = events_a
            .iter()
            .filter(|e| e.code == "C003")
            .map(|e| e.hash)
            .collect();
        let evictions_b: Vec<u64> = events_b
            .iter()
            .filter(|e| e.code == "C003")
            .map(|e| e.hash)
            .collect();
        prop_assert_eq!(evictions, evictions_b);
    }

    #[test]
    fn tiny_budgets_evict_but_never_overcommit(
        ops in prop::collection::vec(src_strategy().prop_map(Op::Insert), 4..40),
    ) {
        // Budget fits roughly one mid-sized entry, so inserts evict
        // almost every time — the hostile regime for the accounting.
        let (events, stats) = run_trace(128, &ops);
        prop_assert_eq!(stats.evictions + stats.bypasses,
            events.iter().filter(|e| e.code == "C003" || e.code == "C004").count() as u64);
    }
}
