//! Resume-differential suite: crash-safe checkpointing must be *exact*.
//!
//! For both size presets the suite kills training at every checkpoint
//! boundary (via `CkptConfig::kill_after`, which returns from the loop
//! right after the N-th durable write — indistinguishable from SIGKILL
//! with the checkpoint on disk), resumes into a freshly built model, and
//! asserts the final weights, Adam moments, and per-step loss trajectory
//! are bit-identical to an uninterrupted run.
//!
//! The fault-injection half drives the same loop through `FaultIo`: a
//! write failure, a truncation that chops exactly the trailing CRC (the
//! CI fault-matrix cell), and a payload bit flip. Every mode must be
//! reported as a typed error and leave the last good snapshot loadable.

use std::path::{Path, PathBuf};

use analysis::SanitizerMode;
use nn::ckpt::{self, CkptError, FaultMode, FaultPlan, StdIo};
use nn::optim::LrSchedule;
use nn::param::ParamSet;
use nn::t5::{T5Config, T5Model};
use nn::train::{train_seq2seq, CkptConfig, Example, TrainConfig, TrainReport};
use tensor::XorShift;

const VOCAB: usize = 24;
const STEPS: usize = 6;
const EVERY: usize = 2;

fn dataset() -> Vec<Example> {
    (0..5)
        .map(|i| {
            let a = 3 + i;
            let b = 9 + i;
            (vec![a, b, 1], vec![b, a, 1])
        })
        .collect()
}

/// Builds the model identically every time: same init RNG, same names.
fn build(cfg: T5Config) -> (T5Model, ParamSet) {
    let mut ps = ParamSet::new();
    let mut rng = XorShift::new(7);
    let m = T5Model::new(&mut ps, "m", cfg, &mut rng);
    (m, ps)
}

fn train_cfg(dir: &Path, kill_after: Option<usize>, fault: Option<FaultPlan>) -> TrainConfig {
    TrainConfig {
        steps: STEPS,
        accum: 2,
        schedule: LrSchedule::warmup_rate(3e-3, 0.2, STEPS),
        smoothing: 0.1,
        seed: 42,
        eval_every: 2,
        doctor: false,
        sanitizer: SanitizerMode::Off,
        ckpt: Some(CkptConfig {
            path: dir.join("ck.bin"),
            every: EVERY,
            resume: true,
            fault,
            kill_after,
        }),
    }
}

/// A fresh scratch directory, cleared of any prior run's checkpoints.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("datavist5_resume_diff_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Bit pattern of every weight and both Adam moments, in name order.
fn fingerprint(ps: &ParamSet) -> Vec<u32> {
    let mut bits = Vec::new();
    for name in ps.names() {
        let id = ps.by_name(&name).unwrap();
        bits.extend(ps.value(id).data().iter().map(|v| v.to_bits()));
        bits.extend(ps.adam_m(id).data().iter().map(|v| v.to_bits()));
        bits.extend(ps.adam_v(id).data().iter().map(|v| v.to_bits()));
    }
    bits
}

fn loss_bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|v| v.to_bits()).collect()
}

/// Kill at every checkpoint boundary, resume, and compare bits against
/// the uninterrupted run.
fn assert_resume_differential(cfg: T5Config, tag: &str) {
    let data = dataset();
    let valid = dataset();

    let dir = scratch(&format!("{tag}_baseline"));
    let (model, mut ps) = build(cfg);
    let baseline: TrainReport =
        train_seq2seq(&model, &mut ps, &data, &valid, &train_cfg(&dir, None, None));
    assert!(!baseline.interrupted);
    assert_eq!(baseline.steps, STEPS);
    assert_eq!(baseline.step_losses.len(), STEPS);
    let baseline_fp = fingerprint(&ps);

    for k in 1..=STEPS / EVERY {
        let dir = scratch(&format!("{tag}_kill{k}"));

        let (model, mut ps) = build(cfg);
        let killed = train_seq2seq(
            &model,
            &mut ps,
            &data,
            &valid,
            &train_cfg(&dir, Some(k), None),
        );
        assert!(
            killed.interrupted,
            "kill {k}: run did not stop at the boundary"
        );
        assert_eq!(killed.steps, k * EVERY);

        // Resume in a fresh process image: new model, new ParamSet.
        let (model, mut ps) = build(cfg);
        let resumed = train_seq2seq(&model, &mut ps, &data, &valid, &train_cfg(&dir, None, None));
        assert!(!resumed.interrupted);
        assert_eq!(
            resumed.resumed_at,
            Some(k * EVERY),
            "kill {k}: resumed from the wrong step"
        );
        assert_eq!(resumed.steps, STEPS);

        assert_eq!(
            fingerprint(&ps),
            baseline_fp,
            "kill {k} ({tag}): weights or Adam moments diverged after resume"
        );
        assert_eq!(
            loss_bits(&resumed.step_losses),
            loss_bits(&baseline.step_losses),
            "kill {k} ({tag}): per-step loss trajectory diverged"
        );
        assert_eq!(
            loss_bits(&resumed.valid_losses),
            loss_bits(&baseline.valid_losses),
            "kill {k} ({tag}): validation trajectory diverged"
        );
        assert_eq!(
            resumed.final_train_loss.to_bits(),
            baseline.final_train_loss.to_bits(),
            "kill {k} ({tag}): final loss diverged"
        );
    }
}

#[test]
fn base_preset_resume_is_bit_identical_at_every_boundary() {
    assert_resume_differential(T5Config::base(VOCAB), "base");
}

#[test]
fn large_preset_resume_is_bit_identical_at_every_boundary() {
    assert_resume_differential(T5Config::large(VOCAB), "large");
}

// ---------------------------------------------------------------------------
// Fault-injection matrix: every mode is a typed error, never fatal, and
// the last good checkpoint stays loadable.
// ---------------------------------------------------------------------------

#[test]
fn write_failure_is_logged_and_training_completes() {
    let dir = scratch("fault_write_fail");
    let fault = FaultPlan {
        mode: FaultMode::WriteFail,
        at_write: 2,
    };
    let (model, mut ps) = build(T5Config::base(VOCAB));
    let data = dataset();
    let report = train_seq2seq(
        &model,
        &mut ps,
        &data,
        &[],
        &train_cfg(&dir, None, Some(fault)),
    );
    // The failed write is skipped, not fatal: the run completes its budget
    // and the final (third) write lands.
    assert!(!report.interrupted);
    assert_eq!(report.steps, STEPS);
    let snap = ckpt::load(&StdIo, &dir.join("ck.bin")).expect("final checkpoint loads");
    assert_eq!(snap.train.expect("train state").next_step, STEPS as u64);
}

/// The CI fault-matrix cell: truncate exactly the trailing CRC of the
/// second write on the base preset. The primary must fail with a typed
/// truncation error, the rotated snapshot must load, and training must
/// resume from it.
#[test]
fn truncate_at_crc_leaves_last_good_loadable_base_preset() {
    let dir = scratch("fault_truncate_crc");
    let path = dir.join("ck.bin");
    let fault = FaultPlan {
        mode: FaultMode::Truncate(4),
        at_write: 2,
    };
    let (model, mut ps) = build(T5Config::base(VOCAB));
    let data = dataset();
    // Die right after the corrupted write: primary is torn, .prev is the
    // write-1 snapshot.
    let report = train_seq2seq(
        &model,
        &mut ps,
        &data,
        &[],
        &train_cfg(&dir, Some(2), Some(fault)),
    );
    assert!(report.interrupted);

    let err = ckpt::load(&StdIo, &path).expect_err("torn primary must not load");
    assert!(
        matches!(err, CkptError::ShortRead { .. }),
        "expected a typed truncation error, got: {err}"
    );
    let (snap, from_prev) = ckpt::load_with_fallback(&StdIo, &path).expect("last good loads");
    assert!(from_prev);
    assert_eq!(snap.train.expect("train state").next_step, EVERY as u64);

    // A resumed run recovers from the last good snapshot and completes.
    let (model, mut ps) = build(T5Config::base(VOCAB));
    let resumed = train_seq2seq(&model, &mut ps, &data, &[], &train_cfg(&dir, None, None));
    assert_eq!(resumed.resumed_at, Some(EVERY));
    assert_eq!(resumed.steps, STEPS);
    assert!(resumed.final_train_loss.is_finite());
}

#[test]
fn bit_flip_is_detected_and_last_good_loadable() {
    let dir = scratch("fault_bit_flip");
    let path = dir.join("ck.bin");
    let fault = FaultPlan {
        mode: FaultMode::BitFlip(ckpt::HEADER_LEN + 33),
        at_write: 2,
    };
    let (model, mut ps) = build(T5Config::base(VOCAB));
    let data = dataset();
    let report = train_seq2seq(
        &model,
        &mut ps,
        &data,
        &[],
        &train_cfg(&dir, Some(2), Some(fault)),
    );
    assert!(report.interrupted);

    let err = ckpt::load(&StdIo, &path).expect_err("flipped primary must not load");
    assert!(
        matches!(err, CkptError::CrcMismatch { .. }),
        "expected a CRC mismatch, got: {err}"
    );
    let (snap, from_prev) = ckpt::load_with_fallback(&StdIo, &path).expect("last good loads");
    assert!(from_prev);
    assert_eq!(snap.train.expect("train state").next_step, EVERY as u64);
}

/// The env grammar drives the same machinery: `truncate@N:4` is the
/// schedule ci.sh uses for the fault-matrix cell.
#[test]
fn env_grammar_selects_the_ci_fault_cell() {
    let plan = FaultPlan::parse("truncate@2:4").unwrap();
    assert_eq!(
        plan,
        FaultPlan {
            mode: FaultMode::Truncate(4),
            at_write: 2
        }
    );
}
