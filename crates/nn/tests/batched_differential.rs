//! Differential suite: the batched inference engine against the
//! sequential decode path.
//!
//! For batch sizes 1–8 over randomly-initialized tiny models,
//! `batched_greedy_decode` must be token-for-token identical to running
//! `DecodeState` + `greedy_decode` per request — across ragged source
//! lengths, staggered EOS (requests retiring at different steps while
//! others continue), both positional modes, LoRA-adapted weights, and
//! capacities smaller than the request count (continuous slot reuse).

use nn::batch::BatchedDecodeState;
use nn::decode::{batched_greedy_decode, greedy_decode};
use nn::param::ParamSet;
use nn::t5::{DecodeState, Positional, T5Config, T5Model, DECODER_START};
use tensor::{Tensor, XorShift};

const EOS: u32 = 1;
const MAX_LEN: usize = 12;

fn random_model(seed: u64, positional: Positional) -> (T5Model, ParamSet) {
    let mut ps = ParamSet::new();
    let mut rng = XorShift::new(seed);
    let cfg = T5Config {
        vocab: 23,
        d_model: 16,
        d_ff: 32,
        heads: 2,
        enc_layers: 1,
        dec_layers: 2,
        dropout: 0.0,
        positional,
    };
    let m = T5Model::new(&mut ps, "m", cfg, &mut rng);
    (m, ps)
}

/// Ragged random sources ending in EOS, lengths 2..=6.
fn random_srcs(seed: u64, count: usize, vocab: u32) -> Vec<Vec<u32>> {
    let mut rng = XorShift::new(seed);
    (0..count)
        .map(|_| {
            let len = 2 + (rng.next_u64() % 5) as usize;
            let mut src: Vec<u32> = (0..len)
                .map(|_| 2 + (rng.next_u64() % (vocab as u64 - 2)) as u32)
                .collect();
            src.push(EOS);
            src
        })
        .collect()
}

fn sequential_outputs(m: &T5Model, ps: &ParamSet, srcs: &[Vec<u32>]) -> Vec<Vec<u32>> {
    srcs.iter()
        .map(|src| {
            let mut state = DecodeState::new(m, ps, src);
            greedy_decode(&mut state, EOS, MAX_LEN)
        })
        .collect()
}

#[test]
fn batched_greedy_matches_sequential_for_batch_sizes_1_to_8() {
    for positional in [Positional::RelativeBias, Positional::Sinusoidal] {
        for batch in 1..=8usize {
            let (m, ps) = random_model(1000 + batch as u64, positional);
            let srcs = random_srcs(2000 + batch as u64, batch, m.cfg.vocab as u32);
            let want = sequential_outputs(&m, &ps, &srcs);
            let got = batched_greedy_decode(&m, &ps, &srcs, EOS, MAX_LEN, batch);
            assert_eq!(got, want, "{positional:?} batch {batch} diverged");
        }
    }
}

#[test]
fn batched_greedy_matches_sequential_with_slot_reuse() {
    // More requests than slots: retired slots must refill mid-flight and
    // the refilled requests must still match their sequential outputs.
    let (m, ps) = random_model(7, Positional::RelativeBias);
    let srcs = random_srcs(8, 11, m.cfg.vocab as u32);
    let want = sequential_outputs(&m, &ps, &srcs);
    for capacity in [1, 2, 3, 8] {
        let got = batched_greedy_decode(&m, &ps, &srcs, EOS, MAX_LEN, capacity);
        assert_eq!(got, want, "capacity {capacity} diverged");
    }
}

#[test]
fn batched_greedy_matches_sequential_on_lora_adapted_model() {
    let (mut m, mut ps) = random_model(21, Positional::RelativeBias);
    let mut rng = XorShift::new(22);
    m.lora_adapt(&mut ps, 2, 8.0, &mut rng);
    // Give the zero-initialized B matrices real weights so the adapter
    // branch contributes to every projection.
    for name in ps.names() {
        if name.ends_with(".lora_b") {
            let id = ps.by_name(&name).unwrap();
            let shape = ps.value(id).shape().to_vec();
            *ps.value_mut(id) = Tensor::randn(shape, 0.5, &mut rng);
        }
    }
    let srcs = random_srcs(23, 6, m.cfg.vocab as u32);
    let want = sequential_outputs(&m, &ps, &srcs);
    let got = batched_greedy_decode(&m, &ps, &srcs, EOS, MAX_LEN, 4);
    assert_eq!(got, want);
}

#[test]
fn staggered_eos_keeps_survivors_bitwise_identical() {
    // Drive the engine by hand so we can check logits (not just tokens)
    // while requests retire at different steps. Each surviving request's
    // logit rows must stay bit-identical to its own sequential decode no
    // matter which neighbours have retired (and been NaN-poisoned).
    let (m, ps) = random_model(31, Positional::RelativeBias);
    let srcs = random_srcs(32, 4, m.cfg.vocab as u32);
    // Per-request sequential traces: logits of every step.
    let steps = 6usize;
    let seq_trace: Vec<Vec<Vec<f32>>> = srcs
        .iter()
        .map(|src| {
            let mut state = DecodeState::new(&m, &ps, src);
            let mut prev = DECODER_START;
            (0..steps)
                .map(|i| {
                    let logits = state.step(prev);
                    prev = (2 + i as u32) % m.cfg.vocab as u32;
                    logits
                })
                .collect()
        })
        .collect();

    let mut engine = BatchedDecodeState::new(&m, &ps, srcs.len());
    let slots: Vec<usize> = srcs.iter().map(|s| engine.admit(s).unwrap()).collect();
    // Request r retires after `2 + r` steps.
    let mut alive: Vec<usize> = (0..srcs.len()).collect();
    let mut prev: Vec<u32> = vec![DECODER_START; srcs.len()];
    // `step` indexes into `seq_trace[r]` for a request `r` chosen inside
    // the loop, so iterating a single trace is not equivalent.
    #[allow(clippy::needless_range_loop)]
    for step in 0..steps {
        if alive.is_empty() {
            break;
        }
        let active: Vec<(usize, u32)> = alive.iter().map(|&r| (slots[r], prev[r])).collect();
        let rows = engine.step_packed(&active);
        for (&r, row) in alive.iter().zip(rows.iter()) {
            let want = &seq_trace[r][step];
            for (i, (a, b)) in row.iter().zip(want.iter()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "request {r} step {step} logit {i}: {a} vs {b}"
                );
            }
            prev[r] = (2 + step as u32) % m.cfg.vocab as u32;
        }
        alive.retain(|&r| {
            if step + 1 == 2 + r {
                engine.retire(slots[r]);
                false
            } else {
                true
            }
        });
    }
}
