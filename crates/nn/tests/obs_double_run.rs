//! Observability must not perturb training: two identical runs with the
//! obs layer *enabled* (spans, counters, gauges, kernel profiling, and
//! checkpointing all live) must still be bitwise-equal in weights, Adam
//! moments, and per-step losses — timestamps are reported but never feed
//! computation. The recorded event streams must also agree event-for-event
//! once clock fields are stripped ([`obs::Event::strip_timing`]).

use analysis::SanitizerMode;
use nn::ckpt;
use nn::optim::LrSchedule;
use nn::param::ParamSet;
use nn::t5::{Positional, T5Config, T5Model};
use nn::train::{train_seq2seq, CkptConfig, Example, TrainConfig};
use obs::event::Event;
use tensor::XorShift;

const VOCAB: usize = 20;
const STEPS: usize = 8;

fn config() -> T5Config {
    T5Config {
        vocab: VOCAB,
        d_model: 16,
        d_ff: 32,
        heads: 2,
        enc_layers: 1,
        dec_layers: 1,
        dropout: 0.0,
        positional: Positional::RelativeBias,
    }
}

fn dataset() -> Vec<Example> {
    (0..6)
        .map(|i| {
            let a = 3 + i;
            let b = 11 + i;
            (vec![a, b, a, 1], vec![b, a, 1])
        })
        .collect()
}

fn fingerprint(ps: &ParamSet) -> Vec<u32> {
    let mut bits = Vec::new();
    for name in ps.names() {
        let id = ps.by_name(&name).unwrap();
        bits.extend(ps.value(id).data().iter().map(|v| v.to_bits()));
        bits.extend(ps.adam_m(id).data().iter().map(|v| v.to_bits()));
        bits.extend(ps.adam_v(id).data().iter().map(|v| v.to_bits()));
    }
    bits
}

/// One full instrumented run from a clean collector: fresh model, train
/// with periodic checkpointing, return the weight fingerprint, the loss
/// bits, and the recorded event stream with clock fields stripped.
fn instrumented_run(ckpt_path: &std::path::Path) -> (Vec<u32>, Vec<u32>, Vec<Event>) {
    obs::reset();
    let _ = std::fs::remove_file(ckpt_path);
    let _ = std::fs::remove_file(ckpt::prev_path(ckpt_path));

    let mut ps = ParamSet::new();
    let mut rng = XorShift::new(7);
    let model = T5Model::new(&mut ps, "m", config(), &mut rng);
    let cfg = TrainConfig {
        steps: STEPS,
        accum: 2,
        schedule: LrSchedule::warmup_rate(3e-3, 0.2, STEPS),
        smoothing: 0.0,
        seed: 42,
        eval_every: 0,
        doctor: false,
        sanitizer: SanitizerMode::Off,
        ckpt: Some(CkptConfig {
            path: ckpt_path.to_path_buf(),
            every: 3,
            resume: false,
            fault: None,
            kill_after: None,
        }),
    };
    let report = train_seq2seq(&model, &mut ps, &dataset(), &[], &cfg);
    obs::span::assert_balanced();
    let events: Vec<Event> = obs::snapshot()
        .events
        .iter()
        .map(Event::strip_timing)
        .collect();
    let losses: Vec<u32> = report.step_losses.iter().map(|v| v.to_bits()).collect();
    (fingerprint(&ps), losses, events)
}

#[test]
fn enabled_obs_layer_preserves_double_run_bit_equality() {
    let dir = std::env::temp_dir().join("obs_double_run_test");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt_path = dir.join("run.ckpt");

    obs::set_enabled(true);
    let (fp_a, losses_a, events_a) = instrumented_run(&ckpt_path);
    let (fp_b, losses_b, events_b) = instrumented_run(&ckpt_path);
    obs::set_enabled(false);
    obs::reset();
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(
        fp_a, fp_b,
        "weights or Adam moments differ between identical instrumented runs"
    );
    assert_eq!(
        losses_a, losses_b,
        "per-step losses differ between identical instrumented runs"
    );
    assert!(!events_a.is_empty(), "enabled run recorded no events");
    assert_eq!(
        events_a.len(),
        events_b.len(),
        "instrumented runs recorded different event counts"
    );
    for (a, b) in events_a.iter().zip(&events_b) {
        assert_eq!(
            a, b,
            "event streams diverge after stripping timestamps (seq {})",
            a.seq
        );
    }
}
