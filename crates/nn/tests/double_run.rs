//! Double-run bit-equality harness: the end-to-end proof behind the
//! determinism audit (PR: determinism auditor).
//!
//! The static lints (`analysis::det`) and the tape reduction-order
//! analysis (`analysis::order`) argue that nothing in the pipeline
//! depends on hash order, wall-clock, or ambient entropy. This suite is
//! the dynamic witness: build the same model twice, train it twice, and
//! decode with it twice — then compare *bits*, not tolerances. Weights,
//! both Adam moments, every per-step loss, and every decoded token must
//! be identical between the two runs.
//!
//! If any `HashMap` iteration, unseeded RNG, or non-canonical reduction
//! sneaks back into the training or decode path, these tests fail before
//! the source lints even need to name the culprit.

use analysis::SanitizerMode;
use nn::decode::batched_greedy_decode;
use nn::optim::LrSchedule;
use nn::param::ParamSet;
use nn::t5::{T5Config, T5Model};
use nn::train::{train_seq2seq, Example, TrainConfig, TrainReport};
use tensor::XorShift;

const VOCAB: usize = 24;
const STEPS: usize = 6;
/// Id `1` doubles as the sequence terminator in the toy dataset below
/// (matching `tokenizer::EOS`, which `nn` does not depend on).
const EOS: u32 = 1;

fn dataset() -> Vec<Example> {
    (0..5)
        .map(|i| {
            let a = 3 + i;
            let b = 9 + i;
            (vec![a, b, 1], vec![b, a, 1])
        })
        .collect()
}

/// Builds the model identically every time: same init RNG, same names.
fn build(cfg: T5Config) -> (T5Model, ParamSet) {
    let mut ps = ParamSet::new();
    let mut rng = XorShift::new(7);
    let m = T5Model::new(&mut ps, "m", cfg, &mut rng);
    (m, ps)
}

fn train_cfg() -> TrainConfig {
    TrainConfig {
        steps: STEPS,
        accum: 2,
        schedule: LrSchedule::warmup_rate(3e-3, 0.2, STEPS),
        smoothing: 0.1,
        seed: 42,
        eval_every: 2,
        doctor: false,
        sanitizer: SanitizerMode::Off,
        ckpt: None,
    }
}

/// Bit pattern of every weight and both Adam moments, in name order.
fn fingerprint(ps: &ParamSet) -> Vec<u32> {
    let mut bits = Vec::new();
    for name in ps.names() {
        let id = ps.by_name(&name).unwrap();
        bits.extend(ps.value(id).data().iter().map(|v| v.to_bits()));
        bits.extend(ps.adam_m(id).data().iter().map(|v| v.to_bits()));
        bits.extend(ps.adam_v(id).data().iter().map(|v| v.to_bits()));
    }
    bits
}

fn loss_bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|v| v.to_bits()).collect()
}

/// One complete run: fresh build, `STEPS` of training, then a batched
/// greedy decode over every source in the tiny dataset.
fn full_run(cfg: T5Config) -> (Vec<u32>, TrainReport, Vec<Vec<u32>>) {
    let data = dataset();
    let valid = dataset();
    let (model, mut ps) = build(cfg);
    let report = train_seq2seq(&model, &mut ps, &data, &valid, &train_cfg());
    let srcs: Vec<Vec<u32>> = data.iter().map(|(s, _)| s.clone()).collect();
    let decoded = batched_greedy_decode(&model, &ps, &srcs, EOS, 12, 3);
    (fingerprint(&ps), report, decoded)
}

fn assert_double_run_bit_identical(cfg: T5Config, tag: &str) {
    let (fp_a, rep_a, dec_a) = full_run(cfg);
    let (fp_b, rep_b, dec_b) = full_run(cfg);

    assert_eq!(
        fp_a, fp_b,
        "{tag}: weights or Adam moments differ between identical runs"
    );
    assert_eq!(
        loss_bits(&rep_a.step_losses),
        loss_bits(&rep_b.step_losses),
        "{tag}: per-step training losses differ between identical runs"
    );
    assert_eq!(
        loss_bits(&rep_a.valid_losses),
        loss_bits(&rep_b.valid_losses),
        "{tag}: validation losses differ between identical runs"
    );
    assert_eq!(
        rep_a.final_train_loss.to_bits(),
        rep_b.final_train_loss.to_bits(),
        "{tag}: final training loss differs between identical runs"
    );
    assert_eq!(
        dec_a, dec_b,
        "{tag}: batched greedy decode emitted different tokens across runs"
    );
}

#[test]
fn base_preset_double_run_is_bit_identical() {
    assert_double_run_bit_identical(T5Config::base(VOCAB), "base");
}

#[test]
fn large_preset_double_run_is_bit_identical() {
    assert_double_run_bit_identical(T5Config::large(VOCAB), "large");
}

/// The decode half in isolation: an *untrained* model decoded twice must
/// also agree token-for-token (catches nondeterminism in init + decode
/// without the training loop in between).
#[test]
fn untrained_decode_is_bit_identical() {
    let run = || {
        let (model, ps) = build(T5Config::base(VOCAB));
        let srcs: Vec<Vec<u32>> = dataset().iter().map(|(s, _)| s.clone()).collect();
        batched_greedy_decode(&model, &ps, &srcs, EOS, 12, 2)
    };
    assert_eq!(run(), run());
}

/// The multi-core witness behind the parallel-safety audit: the whole
/// pipeline — init, training (weights + Adam moments + every loss), and
/// batched decode — must produce *bitwise*-identical results at 1, 2,
/// and 4 worker threads. The fork-join kernels split only the output
/// axis under certified schedules, so every reduction chain keeps its
/// sequential order regardless of worker count; this test is the
/// dynamic proof of that static argument.
///
/// `tensor::par::set_threads` is process-global, which is safe to flip
/// here precisely *because* the kernels are thread-count-invariant:
/// other tests running concurrently see different worker counts but
/// identical bits.
#[test]
fn thread_sweep_is_bit_identical() {
    let run_at = |threads: usize| {
        tensor::par::set_threads(threads);
        let out = full_run(T5Config::base(VOCAB));
        tensor::par::set_threads(1);
        out
    };
    let (fp_1, rep_1, dec_1) = run_at(1);
    for threads in [2usize, 4] {
        let (fp_t, rep_t, dec_t) = run_at(threads);
        assert_eq!(
            fp_1, fp_t,
            "weights or Adam moments differ between 1 and {threads} thread(s)"
        );
        assert_eq!(
            loss_bits(&rep_1.step_losses),
            loss_bits(&rep_t.step_losses),
            "per-step losses differ between 1 and {threads} thread(s)"
        );
        assert_eq!(
            loss_bits(&rep_1.valid_losses),
            loss_bits(&rep_t.valid_losses),
            "validation losses differ between 1 and {threads} thread(s)"
        );
        assert_eq!(
            dec_1, dec_t,
            "decoded tokens differ between 1 and {threads} thread(s)"
        );
    }
}
