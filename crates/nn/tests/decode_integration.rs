//! Integration tests: decoding strategies against actually-trained models
//! (not scripted stubs).

use nn::decode::{beam_decode, greedy_decode, StepDecoder};
use nn::optim::AdamW;
use nn::param::ParamSet;
use nn::t5::{DecodeState, Positional, T5Config, T5Model, DECODER_START};
use tensor::{Graph, XorShift};

/// Trains a tiny model to reverse 3-token sequences.
fn trained_reverser() -> (T5Model, ParamSet) {
    let mut ps = ParamSet::new();
    let mut rng = XorShift::new(99);
    let cfg = T5Config {
        vocab: 24,
        d_model: 24,
        d_ff: 48,
        heads: 2,
        enc_layers: 1,
        dec_layers: 1,
        dropout: 0.0,
        positional: Positional::RelativeBias,
    };
    let model = T5Model::new(&mut ps, "rev", cfg, &mut rng);
    let mut opt = AdamW::default();
    opt.weight_decay = 0.0;
    let data: Vec<(Vec<u32>, Vec<u32>)> = (0..6)
        .map(|i| {
            let (a, b, c) = (3 + i, 10 + i, 17 + i);
            (vec![a, b, c, 1], vec![c, b, a, 1])
        })
        .collect();
    for step in 0..500 {
        let (s, t) = &data[step % data.len()];
        let mut g = Graph::new();
        let loss = model.loss(&mut g, &ps, s, t, 0.0);
        g.backward(loss);
        ps.absorb_grads(&g);
        opt.step(&mut ps, 5e-3, 1.0);
    }
    (model, ps)
}

#[test]
fn greedy_reverses_trained_sequences() {
    let (model, ps) = trained_reverser();
    let mut correct = 0;
    for i in 0..6u32 {
        let src = vec![3 + i, 10 + i, 17 + i, 1];
        let want = vec![17 + i, 10 + i, 3 + i];
        let mut state = DecodeState::new(&model, &ps, &src);
        let got = greedy_decode(&mut state, 1, 8);
        if got == want {
            correct += 1;
        }
    }
    assert!(correct >= 4, "only {correct}/6 training sequences reversed");
}

#[test]
fn beam_is_at_least_as_likely_as_greedy() {
    let (model, ps) = trained_reverser();
    let src = vec![4u32, 11, 18, 1];
    let mut greedy_state = DecodeState::new(&model, &ps, &src);
    let greedy = greedy_decode(&mut greedy_state, 1, 8);
    let beam = beam_decode(DecodeState::new(&model, &ps, &src), 1, 8, 3);
    // Compute total log-prob of each output under the model.
    let score = |tokens: &[u32]| -> f32 {
        let mut state = DecodeState::new(&model, &ps, &src);
        let mut prev = DECODER_START;
        let mut total = 0.0f32;
        for &t in tokens {
            let logits = StepDecoder::step(&mut state, prev);
            let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let log_z = logits.iter().map(|x| (x - max).exp()).sum::<f32>().ln() + max;
            total += logits[t as usize] - log_z;
            prev = t;
        }
        total / tokens.len().max(1) as f32
    };
    if !greedy.is_empty() && !beam.is_empty() {
        assert!(
            score(&beam) >= score(&greedy) - 1e-4,
            "beam found a worse hypothesis: {} vs {}",
            score(&beam),
            score(&greedy)
        );
    }
}

#[test]
fn cached_decode_is_deterministic() {
    let (model, ps) = trained_reverser();
    let src = vec![5u32, 12, 19, 1];
    let a = {
        let mut s = DecodeState::new(&model, &ps, &src);
        greedy_decode(&mut s, 1, 8)
    };
    let b = {
        let mut s = DecodeState::new(&model, &ps, &src);
        greedy_decode(&mut s, 1, 8)
    };
    assert_eq!(a, b);
}
