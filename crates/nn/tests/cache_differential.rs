//! Differential battery for the prefix cache: the cache must be
//! invisible at the bits level. One ragged continuous-batching workload
//! (repeated sources, staggered admissions, mid-flight slot reuse) is
//! decoded with the cache **off**, **cold**, **pre-warmed**, and
//! **byte-capped to force thrashing**, at 1/2/4 worker threads — every
//! variant must produce bitwise-identical output tokens and the
//! identical per-step KV-byte trace. Shared (cached) cross-attention
//! tensors account exactly like owned ones, so even the byte
//! bookkeeping cannot tell the variants apart.

use std::collections::{BTreeMap, VecDeque};

use nn::batch::BatchedDecodeState;
use nn::param::ParamSet;
use nn::prefix_cache::PrefixCache;
use nn::t5::{Positional, T5Config, T5Model, DECODER_START};
use tensor::XorShift;

fn build() -> (T5Model, ParamSet) {
    let mut ps = ParamSet::new();
    let mut rng = XorShift::new(7);
    let cfg = T5Config {
        vocab: 20,
        d_model: 16,
        d_ff: 32,
        heads: 2,
        enc_layers: 2,
        dec_layers: 2,
        dropout: 0.0,
        positional: Positional::RelativeBias,
    };
    let m = T5Model::new(&mut ps, "m", cfg, &mut rng);
    (m, ps)
}

/// A schema-skewed workload: twelve requests over four distinct ragged
/// sources, so a warm cache sees every admission as a hit and a cold
/// one sees four misses and eight hits.
fn workload() -> Vec<Vec<u32>> {
    let pool: [&[u32]; 4] = [&[3, 4, 5, 1], &[6, 7, 1], &[8, 9, 10, 11, 1], &[12, 13, 1]];
    [0usize, 1, 0, 2, 1, 3, 0, 2, 1, 0, 3, 2]
        .iter()
        .map(|&i| pool[i].to_vec())
        .collect()
}

/// Greedy continuous-batching decode of `sources` for `steps` tokens
/// each, recording every request's emitted tokens and the engine's
/// KV-byte footprint after every packed step.
fn run_workload(
    state: &mut BatchedDecodeState,
    sources: &[Vec<u32>],
    steps: usize,
) -> (Vec<Vec<u32>>, Vec<usize>) {
    let mut outputs = vec![Vec::new(); sources.len()];
    let mut kv_trace = Vec::new();
    let mut pending: VecDeque<usize> = (0..sources.len()).collect();
    // slot -> (request, previous token, tokens emitted)
    let mut active: BTreeMap<usize, (usize, u32, usize)> = BTreeMap::new();
    loop {
        while let Some(&req) = pending.front() {
            let Some(slot) = state.admit(&sources[req]) else {
                break;
            };
            pending.pop_front();
            active.insert(slot, (req, DECODER_START, 0));
        }
        if active.is_empty() {
            break;
        }
        let batch: Vec<(usize, u32)> = active.iter().map(|(&s, &(_, prev, _))| (s, prev)).collect();
        let logits = state.step_packed(&batch);
        kv_trace.push(state.cache_bytes());
        let mut done = Vec::new();
        for (&(slot, _), row) in batch.iter().zip(&logits) {
            let tok = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
                .map(|(i, _)| i as u32)
                .unwrap();
            let entry = active.get_mut(&slot).unwrap();
            outputs[entry.0].push(tok);
            entry.1 = tok;
            entry.2 += 1;
            if entry.2 == steps {
                done.push(slot);
            }
        }
        for slot in done {
            state.retire(slot);
            active.remove(&slot);
        }
    }
    (outputs, kv_trace)
}

/// One distinct entry's payload in bytes for the `build()` model:
/// dec_layers × {K,V} × src_len × d_model × 4. The longest pool source
/// has 5 tokens → 1280 bytes; the thrash budget below fits exactly one
/// such entry, so inserts continuously evict whatever is unpinned.
const THRASH_CAP: usize = 1300;

#[test]
fn cache_off_cold_warm_thrashing_are_bitwise_identical_across_threads() {
    let (m, ps) = build();
    let sources = workload();
    const STEPS: usize = 6;
    const CAPACITY: usize = 2;

    // Baseline: cache off, one thread.
    tensor::par::set_threads(1);
    let mut off = BatchedDecodeState::new(&m, &ps, CAPACITY);
    let (want_tokens, want_kv) = run_workload(&mut off, &sources, STEPS);
    assert_eq!(want_tokens.len(), sources.len());
    assert!(want_tokens.iter().all(|t| t.len() == STEPS));

    // A pre-warmed cache: one full pass populates it, then it is
    // detached (legal only with zero pins) and re-attached to the
    // engine under test.
    let prewarm = || -> PrefixCache {
        let mut warmer =
            BatchedDecodeState::with_prefix_cache(&m, &ps, CAPACITY, PrefixCache::new(1 << 20));
        run_workload(&mut warmer, &sources, STEPS);
        warmer.take_prefix_cache().unwrap()
    };

    for threads in [1usize, 2, 4] {
        tensor::par::set_threads(threads);
        let variants: [(&str, BatchedDecodeState); 4] = [
            ("off", BatchedDecodeState::new(&m, &ps, CAPACITY)),
            (
                "cold",
                BatchedDecodeState::with_prefix_cache(&m, &ps, CAPACITY, PrefixCache::new(1 << 20)),
            ),
            (
                "warm",
                BatchedDecodeState::with_prefix_cache(&m, &ps, CAPACITY, prewarm()),
            ),
            (
                "thrash",
                BatchedDecodeState::with_prefix_cache(
                    &m,
                    &ps,
                    CAPACITY,
                    PrefixCache::new(THRASH_CAP),
                ),
            ),
        ];
        for (name, mut state) in variants {
            let (tokens, kv) = run_workload(&mut state, &sources, STEPS);
            assert_eq!(
                tokens, want_tokens,
                "{name}@{threads}t: output tokens differ from cache-off baseline"
            );
            assert_eq!(
                kv, want_kv,
                "{name}@{threads}t: KV-byte trace differs from cache-off baseline"
            );
            match name {
                "off" => assert!(state.cache_stats().is_none()),
                "cold" => {
                    let s = state.cache_stats().unwrap();
                    assert_eq!(s.misses, 4, "cold@{threads}t: one miss per distinct source");
                    assert_eq!(s.hits, 8, "cold@{threads}t: repeats all hit");
                    assert_eq!(s.evictions, 0);
                }
                "warm" => {
                    let s = state.cache_stats().unwrap();
                    // Stats carried over from the warming pass: the
                    // pass under test added 12 hits and nothing else.
                    assert_eq!(s.hits, 8 + 12, "warm@{threads}t: every admission hits");
                    assert_eq!(s.misses, 4, "warm@{threads}t: only the warming pass missed");
                }
                "thrash" => {
                    let s = state.cache_stats().unwrap();
                    assert!(
                        s.evictions + s.bypasses > 0,
                        "thrash@{threads}t: the tiny budget must actually thrash \
                         (evictions={} bypasses={})",
                        s.evictions,
                        s.bypasses
                    );
                    let c = state.prefix_cache().unwrap();
                    assert!(c.bytes() <= THRASH_CAP, "budget holds under thrashing");
                    c.audit();
                }
                _ => unreachable!(),
            }
            if let Some(c) = state.prefix_cache() {
                assert_eq!(c.pinned_entries(), 0, "{name}@{threads}t: pins drained");
            }
        }
    }
    tensor::par::set_threads(1);
}
