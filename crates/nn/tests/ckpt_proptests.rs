//! Property tests of the checkpoint-v2 format.
//!
//! Two contracts: (1) save→load is the identity for arbitrary parameter
//! sets (shapes, frozen flags, optimizer and train sections included);
//! (2) flipping any single byte of a checkpoint file is detected — the
//! load returns a typed error, never panics, and never silently installs
//! wrong weights (the model's parameters are untouched after a failed
//! load).

use proptest::prelude::*;

use nn::ckpt::{self, Checkpoint, OptimState, ParamEntry, TrainState};
use nn::param::ParamSet;
use tensor::{Tensor, XorShift};

/// Deterministically builds an arbitrary checkpoint from a seed: 1–6
/// parameters of rank 1–3, random frozen flags, optional optimizer and
/// train sections.
fn arbitrary_checkpoint(seed: u64) -> Checkpoint {
    let mut rng = XorShift::new(seed | 1);
    let n_params = 1 + (rng.next_u64() % 6) as usize;
    let mut params = Vec::new();
    for i in 0..n_params {
        let rank = 1 + (rng.next_u64() % 3) as usize;
        let shape: Vec<usize> = (0..rank)
            .map(|_| 1 + (rng.next_u64() % 4) as usize)
            .collect();
        let numel: usize = shape.iter().product();
        let data: Vec<f32> = (0..numel).map(|_| rng.next_f32() * 4.0 - 2.0).collect();
        params.push(ParamEntry {
            name: format!("layer{i}.w"),
            shape,
            data,
            frozen: rng.next_u64().is_multiple_of(3),
        });
    }
    let optim = (rng.next_u64().is_multiple_of(2)).then(|| OptimState {
        steps: rng.next_u64() % 1000,
        m: params
            .iter()
            .map(|p| (0..p.data.len()).map(|_| rng.next_f32()).collect())
            .collect(),
        v: params
            .iter()
            .map(|p| (0..p.data.len()).map(|_| rng.next_f32()).collect())
            .collect(),
    });
    let train = (rng.next_u64().is_multiple_of(2)).then(|| TrainState {
        rng_state: rng.next_u64(),
        next_step: rng.next_u64() % 100,
        cursor: rng.next_u64() % 16,
        order: (0..(rng.next_u64() % 8))
            .map(|_| (rng.next_u64() % 32) as u32)
            .collect(),
        tail_sum: rng.next_f32(),
        tail_n: rng.next_u64() % 8,
        step_losses: (0..(rng.next_u64() % 6))
            .map(|_| rng.next_f32() * 3.0)
            .collect(),
        valid_losses: (0..(rng.next_u64() % 3))
            .map(|_| rng.next_f32() * 3.0)
            .collect(),
    });
    Checkpoint {
        params,
        optim,
        train,
    }
}

proptest! {
    /// encode→decode is the identity for arbitrary checkpoints.
    #[test]
    fn encode_decode_is_identity(seed in 0u64..5000) {
        let c = arbitrary_checkpoint(seed);
        let decoded = ckpt::decode(&ckpt::encode(&c)).unwrap();
        prop_assert_eq!(decoded, c);
    }

    /// save→load through a real ParamSet and the filesystem restores the
    /// exact bit patterns of every weight.
    #[test]
    fn save_load_restores_exact_bits(seed in 0u64..500) {
        let c = arbitrary_checkpoint(seed);
        let mut ps = ParamSet::new();
        for e in &c.params {
            ps.add(e.name.clone(), Tensor::from_vec(e.shape.clone(), e.data.clone()));
        }
        let dir = std::env::temp_dir().join("datavist5_ckpt_prop");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("rt_{seed}.bin"));
        ps.save(&path).unwrap();

        let mut restored = ParamSet::new();
        for e in &c.params {
            restored.add(e.name.clone(), Tensor::zeros(e.shape.clone()));
        }
        restored.load(&path).unwrap();
        for e in &c.params {
            let id = restored.by_name(&e.name).unwrap();
            let got: Vec<u32> = restored.value(id).data().iter().map(|v| v.to_bits()).collect();
            let want: Vec<u32> = e.data.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(got, want);
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(ckpt::prev_path(&path));
    }

    /// Flipping any single byte anywhere in the file is rejected with a
    /// typed error — never a panic, never a silent success. (A flip can
    /// land in the magic, version, length prefix, payload, or stored CRC;
    /// each region has its own detector.)
    #[test]
    fn any_single_byte_flip_is_detected(seed in 0u64..5000, flip_seed in 1u64..256) {
        let c = arbitrary_checkpoint(seed);
        let mut bytes = ckpt::encode(&c);
        let idx = (flip_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed) as usize % bytes.len();
        let mask = (flip_seed % 255 + 1) as u8; // never zero: always a real change
        bytes[idx] ^= mask;
        let result = ckpt::decode(&bytes);
        prop_assert!(
            result.is_err(),
            "flip of byte {} (mask {:#04x}) decoded successfully", idx, mask
        );
    }

    /// A failed load leaves the model's weights untouched: corruption can
    /// never half-install a checkpoint.
    #[test]
    fn failed_load_never_installs_weights(seed in 0u64..300) {
        let c = arbitrary_checkpoint(seed);
        let mut ps = ParamSet::new();
        for e in &c.params {
            ps.add(e.name.clone(), Tensor::from_vec(e.shape.clone(), e.data.clone()));
        }
        let dir = std::env::temp_dir().join("datavist5_ckpt_prop_fail");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("corrupt_{seed}.bin"));
        ps.save(&path).unwrap();

        // Corrupt one payload byte on disk.
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = ckpt::HEADER_LEN.min(bytes.len() - 1)
            + (seed as usize % (bytes.len() - ckpt::HEADER_LEN.min(bytes.len() - 1)));
        let idx = idx.min(bytes.len() - 1);
        bytes[idx] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let mut victim = ParamSet::new();
        for e in &c.params {
            victim.add(e.name.clone(), Tensor::filled(e.shape.clone(), 9.0));
        }
        prop_assert!(victim.load(&path).is_err());
        for e in &c.params {
            let id = victim.by_name(&e.name).unwrap();
            prop_assert!(
                victim.value(id).data().iter().all(|&v| v == 9.0),
                "corrupt load mutated '{}'", &e.name
            );
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(ckpt::prev_path(&path));
    }
}
