//! Zero-allocation steady-state certification: the dynamic witness
//! paired with the static `hot_audit` sweep (H004).
//!
//! A counting global allocator wraps `System` and tallies every
//! `alloc`/`realloc`/`alloc_zeroed`. The test fills the engine's slots
//! with requests that never finish (EOS is placed outside the vocab, so
//! greedy argmax can never emit it), runs warm-up ticks until every
//! scratch buffer, KV reservation, and logit row has reached its
//! high-water mark, then asserts that a window of further decode ticks
//! performs **zero** heap allocations — cache off and cache on.
//!
//! Both scenarios run inside one `#[test]` so no concurrently running
//! test can pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use datavist5::data::Task;
use nn::batch::BatchedDecodeState;
use nn::param::ParamSet;
use nn::prefix_cache::PrefixCache;
use nn::t5::{Positional, T5Config, T5Model};
use serve::{ServeConfig, ServeEngine, ServeRequest};
use tensor::XorShift;

/// Counts allocator entry points; frees are irrelevant to the property
/// (a steady tick must not *acquire* memory).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

const VOCAB: usize = 20;
const SLOTS: usize = 2;
const WARMUP_TICKS: usize = 4;
const MEASURED_TICKS: usize = 16;

fn build_model() -> (T5Model, ParamSet) {
    let mut ps = ParamSet::new();
    let mut rng = XorShift::new(7);
    let cfg = T5Config {
        vocab: VOCAB,
        d_model: 16,
        d_ff: 32,
        heads: 2,
        enc_layers: 2,
        dec_layers: 2,
        dropout: 0.0,
        positional: Positional::RelativeBias,
    };
    let m = T5Model::new(&mut ps, "m", cfg, &mut rng);
    (m, ps)
}

/// Fills every slot, warms the buffers up, then returns the allocation
/// count delta across `MEASURED_TICKS` pure decode ticks.
fn steady_state_allocs(with_cache: bool) -> u64 {
    let (model, ps) = build_model();
    let dec = if with_cache {
        BatchedDecodeState::with_prefix_cache(&model, &ps, SLOTS, PrefixCache::new(1 << 20))
    } else {
        BatchedDecodeState::new(&model, &ps, SLOTS)
    };
    // EOS outside the vocab: argmax over `vocab` logits can never emit
    // it, so no request completes and every measured tick is a pure
    // steady-state decode step (the same trick `obs_report` uses for
    // overhead measurement). max_out is far above the tick budget.
    let eos = VOCAB as u32;
    let mut engine = ServeEngine::new(dec, ServeConfig::new(4, 64, eos));
    engine.submit(ServeRequest::new(0, Task::TextToVis, vec![3, 4, 5, 1]));
    engine.submit(ServeRequest::new(1, Task::VisToText, vec![6, 7, 1]));
    for _ in 0..WARMUP_TICKS {
        assert!(engine.tick().expect("tick"), "warm-up ticks must decode");
    }
    assert_eq!(engine.live(), SLOTS, "both requests must stay in flight");

    let before = allocs();
    for _ in 0..MEASURED_TICKS {
        assert!(engine.tick().expect("tick"), "measured ticks must decode");
    }
    let delta = allocs() - before;

    assert_eq!(engine.live(), SLOTS, "nothing may complete mid-measurement");
    engine.shutdown();
    assert!(engine.into_report().accounted());
    delta
}

#[test]
fn steady_state_ticks_allocate_nothing() {
    let cold = steady_state_allocs(false);
    assert_eq!(
        cold, 0,
        "cache-off steady state: {cold} allocation(s) across {MEASURED_TICKS} decode ticks \
         (every per-tick buffer must be recycled — see analysis::hot H004)"
    );
    let warm = steady_state_allocs(true);
    assert_eq!(
        warm, 0,
        "cache-on steady state: {warm} allocation(s) across {MEASURED_TICKS} decode ticks"
    );
}
