//! Property tests for the scheduler, on randomized arrival traces ×
//! deadlines × queue bounds (scripted decoder — scheduler properties do
//! not depend on model weights).
//!
//! Invariants under test:
//!
//! 1. **No slot double-assignment** — the batcher's event log never
//!    admits into a slot that is still occupied (checked by replaying
//!    the log against a free/occupied bitmap).
//! 2. **Every admitted request terminates** — EOS/cap completion,
//!    deadline retirement, or shutdown; admissions == retirements and
//!    no slot is live after the run.
//! 3. **FIFO within priority** — the admission log, restricted to any
//!    one priority class, is ordered by arrival sequence.
//! 4. **Conservation** — rejections + completions == arrivals, exactly
//!    one response per request id, nothing silently dropped.
//! 5. **Cache transparency** — with a prefix cache attached, all of the
//!    above still hold, the fingerprint equals the uncached run's (the
//!    cache is invisible at the bits level), shutdown leaves zero slot
//!    KV bytes *and* zero pinned cache entries, and double-running one
//!    trace reproduces the cache tallies exactly.

use std::collections::BTreeMap;

use datavist5::data::Task;
use nn::batch::SlotEvent;
use nn::prefix_cache::CacheStats;
use proptest::prelude::*;
use serve::{
    BatchDecoder, Outcome, PrefixCache, Priority, Rejection, ScriptedDecoder, ServeConfig,
    ServeEngine, ServeReport, ServeRequest,
};
use tensor::XorShift;

const EOS: u32 = 1;
const VOCAB: usize = 16;
const MAX_OUT: usize = 8;

/// A seeded random trace: arrivals with jittered gaps, random script
/// lengths (the first source token), priorities 0–2, and a random mix
/// of no/loose/tight deadlines.
fn random_trace(seed: u64, n: usize) -> Vec<(u64, ServeRequest)> {
    let mut rng = XorShift::new(seed.wrapping_mul(2_654_435_761).wrapping_add(1));
    let mut t = 0u64;
    (0..n)
        .map(|i| {
            t += rng.next_u64() % 3_000_000;
            let want = 1 + (rng.next_u64() % 6) as u32;
            let src = vec![want, 2 + (rng.next_u64() % 8) as u32];
            let mut req = ServeRequest::new(i as u64, Task::ALL[i % 4], src)
                .with_priority((rng.next_u64() % 3) as Priority);
            match rng.next_u64() % 3 {
                0 => {}
                1 => req = req.with_deadline(t + 50_000_000), // loose
                _ => req = req.with_deadline(t + rng.next_u64() % 4_000_000), // tight
            }
            (t, req)
        })
        .collect()
}

/// A decoder wrapper that tees every slot event into an external log
/// before the engine drains them.
struct EventTap<'a, D: BatchDecoder> {
    inner: D,
    tee: &'a mut Vec<SlotEvent>,
}

impl<D: BatchDecoder> BatchDecoder for EventTap<'_, D> {
    fn capacity(&self) -> usize {
        self.inner.capacity()
    }
    fn admit(&mut self, src: &[u32]) -> Option<usize> {
        self.inner.admit(src)
    }
    fn retire(&mut self, slot: usize) {
        self.inner.retire(slot)
    }
    fn step_packed_into(&mut self, active: &[(usize, u32)], out: &mut Vec<Vec<f32>>) {
        self.inner.step_packed_into(active, out)
    }
    fn reserve_steps(&mut self, max_steps: usize) {
        self.inner.reserve_steps(max_steps)
    }
    fn cache_bytes(&self) -> usize {
        self.inner.cache_bytes()
    }
    fn take_slot_events(&mut self) -> Vec<SlotEvent> {
        let events = self.inner.take_slot_events();
        self.tee.extend(events.iter().copied());
        events
    }
    fn prefix_cache_stats(&self) -> Option<CacheStats> {
        self.inner.prefix_cache_stats()
    }
}

/// Runs a trace to completion (`shutdown_after == None`) or for a fixed
/// tick budget followed by a shutdown, returning the report plus the
/// raw slot-event stream.
fn run(
    trace: &[(u64, ServeRequest)],
    slots: usize,
    queue_cap: usize,
    shutdown_after: Option<usize>,
) -> (ServeReport, Vec<SlotEvent>) {
    run_with_cache(trace, slots, queue_cap, shutdown_after, None)
}

/// [`run`] with an optional prefix cache of `cache_cap` bytes attached
/// to the scripted decoder. After the run, asserts the cache drained
/// cleanly: zero pinned entries (every retirement released its pin),
/// internal accounting consistent, budget held.
fn run_with_cache(
    trace: &[(u64, ServeRequest)],
    slots: usize,
    queue_cap: usize,
    shutdown_after: Option<usize>,
    cache_cap: Option<usize>,
) -> (ServeReport, Vec<SlotEvent>) {
    let mut events = Vec::new();
    let mut inner = ScriptedDecoder::new(slots, VOCAB, EOS, |src| {
        vec![3; src.first().copied().unwrap_or(0) as usize]
    });
    if let Some(cap) = cache_cap {
        inner = inner.with_prefix_cache(PrefixCache::new(cap));
    }
    let dec = EventTap {
        inner,
        tee: &mut events,
    };
    let mut engine = ServeEngine::new(dec, ServeConfig::new(queue_cap, MAX_OUT, EOS));
    match shutdown_after {
        None => engine
            .run_trace(trace)
            .expect("scripted trace never poisons"),
        Some(ticks) => {
            // Everything arrives up front, the engine runs a bounded
            // number of ticks, then shuts down mid-flight.
            for (arrival, req) in trace {
                engine.submit_at(*arrival, req.clone());
            }
            for _ in 0..ticks {
                engine.tick().expect("scripted tick never poisons");
            }
            engine.shutdown();
        }
    }
    // Shutdown (or drain) left no live slots: the scripted decoder's
    // per-slot KV accounting must be back to zero while the prefix
    // cache itself drains cleanly — resident entries are fine, pins
    // are not.
    assert_eq!(engine.decoder().cache_bytes(), 0, "slot KV bytes leaked");
    if let Some(cache) = engine.decoder().inner.prefix_cache() {
        assert_eq!(cache.pinned_entries(), 0, "retirement leaked a pin");
        assert!(cache.bytes() <= cache.cap_bytes());
        cache.audit();
    }
    let report = engine.into_report();
    (report, events)
}

/// Invariants 1–2: replaying the event log never admits into an
/// occupied slot, never retires a free one, every admission is
/// eventually retired, and all slots end free.
fn check_slot_discipline(events: &[SlotEvent], capacity: usize) {
    let mut occupied = vec![false; capacity];
    let (mut admits, mut retires) = (0usize, 0usize);
    for ev in events {
        match *ev {
            SlotEvent::Admitted { slot, .. } => {
                assert!(slot < capacity, "slot out of range");
                assert!(!occupied[slot], "slot {slot} double-assigned");
                occupied[slot] = true;
                admits += 1;
            }
            SlotEvent::Retired { slot, .. } => {
                assert!(occupied[slot], "slot {slot} retired while free");
                occupied[slot] = false;
                retires += 1;
            }
        }
    }
    assert_eq!(admits, retires, "an admitted request never terminated");
    assert!(
        occupied.iter().all(|&o| !o),
        "live slots remain after the run"
    );
}

fn check_all(
    trace: &[(u64, ServeRequest)],
    report: &ServeReport,
    events: &[SlotEvent],
    slots: usize,
) {
    check_slot_discipline(events, slots);
    assert_eq!(
        events
            .iter()
            .filter(|e| matches!(e, SlotEvent::Admitted { .. }))
            .count(),
        report.admission_log.len(),
        "event log and admission log disagree"
    );

    // Invariant 3: FIFO within priority over the admission log.
    let prio_of: BTreeMap<u64, Priority> = trace.iter().map(|(_, r)| (r.id, r.priority)).collect();
    let mut last_seq: BTreeMap<Priority, u64> = BTreeMap::new();
    for rec in &report.admission_log {
        let p = prio_of[&rec.id];
        if let Some(&prev) = last_seq.get(&p) {
            assert!(
                rec.seq > prev,
                "priority {p}: admission seq {} after {} (FIFO violated)",
                rec.seq,
                prev
            );
        }
        last_seq.insert(p, rec.seq);
    }

    // Invariant 4: conservation.
    assert!(report.accounted(), "arrivals != completed + rejected");
    assert_eq!(report.arrivals as usize, trace.len());
    let ids: Vec<u64> = report.responses.iter().map(|r| r.id).collect();
    let mut dedup = ids.clone();
    dedup.dedup(); // responses are sorted by id
    assert_eq!(ids.len(), dedup.len(), "duplicate responses for one id");

    // Response hygiene: queue-side rejections carry no tokens; nothing
    // exceeds the output cap; time never runs backward.
    for r in &report.responses {
        match r.outcome {
            Outcome::Completed => assert!(r.tokens.len() <= MAX_OUT),
            Outcome::Rejected(Rejection::QueueFull | Rejection::DeadlineQueued) => {
                assert!(r.tokens.is_empty(), "queue-side rejection carries tokens")
            }
            Outcome::Rejected(_) => assert!(r.tokens.len() <= MAX_OUT),
        }
        assert!(r.finished_ns >= r.arrival_ns);
    }
}

proptest! {
    /// Drained runs: the trace replays to completion.
    #[test]
    fn drained_runs_hold_all_invariants(
        seed in 0u64..300,
        n in 1usize..=24,
        slots in 1usize..=4,
        queue_cap in 1usize..=6,
    ) {
        let trace = random_trace(seed, n);
        let (report, events) = run(&trace, slots, queue_cap, None);
        check_all(&trace, &report, &events, slots);
    }

    /// Interrupted runs: shutdown fires with requests still queued and
    /// in flight; everything must still terminate and account, with
    /// typed shutdown rejections rather than silent drops.
    #[test]
    fn shutdown_mid_flight_holds_all_invariants(
        seed in 300u64..600,
        n in 1usize..=24,
        slots in 1usize..=4,
        queue_cap in 1usize..=6,
        ticks in 0usize..=6,
    ) {
        let trace = random_trace(seed, n);
        let (report, events) = run(&trace, slots, queue_cap, Some(ticks));
        check_all(&trace, &report, &events, slots);
    }

    /// Determinism as a property: any generated trace double-runs to an
    /// identical fingerprint.
    #[test]
    fn any_trace_double_runs_identically(
        seed in 600u64..800,
        n in 1usize..=16,
        slots in 1usize..=4,
        queue_cap in 1usize..=6,
    ) {
        let trace = random_trace(seed, n);
        let (a, _) = run(&trace, slots, queue_cap, None);
        let (b, _) = run(&trace, slots, queue_cap, None);
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
    }

    /// Invariant 5, drained runs: with caching on, every scheduler
    /// invariant still holds and the fingerprint is bit-identical to
    /// the uncached run of the same trace. Small byte budgets force
    /// eviction and bypass mid-run; `run_with_cache` itself asserts the
    /// cache drains with zero pins.
    #[test]
    fn cached_runs_hold_all_invariants_and_match_uncached_fingerprints(
        seed in 800u64..1000,
        n in 1usize..=24,
        slots in 1usize..=4,
        queue_cap in 1usize..=6,
        cache_cap in 100usize..=4000,
    ) {
        let trace = random_trace(seed, n);
        let (cached, events) = run_with_cache(&trace, slots, queue_cap, None, Some(cache_cap));
        check_all(&trace, &cached, &events, slots);
        prop_assert!(cached.cache.is_some(), "cached run reports tallies");
        let (plain, _) = run(&trace, slots, queue_cap, None);
        prop_assert_eq!(cached.fingerprint(), plain.fingerprint(),
            "prefix cache leaked into observable bits");
    }

    /// Invariant 5, interrupted runs: shutdown mid-flight still drains
    /// every pin and accounts every request with caching on.
    #[test]
    fn cached_shutdown_mid_flight_holds_all_invariants(
        seed in 1000u64..1200,
        n in 1usize..=24,
        slots in 1usize..=4,
        queue_cap in 1usize..=6,
        ticks in 0usize..=6,
        cache_cap in 100usize..=4000,
    ) {
        let trace = random_trace(seed, n);
        let (report, events) = run_with_cache(&trace, slots, queue_cap, Some(ticks), Some(cache_cap));
        check_all(&trace, &report, &events, slots);
    }

    /// Invariant 5, determinism: a cached trace double-runs to the same
    /// fingerprint *and* the same cache tallies (hit/miss/evict order is
    /// part of the deterministic history, not just the token bits).
    #[test]
    fn cached_double_runs_reproduce_fingerprint_and_tallies(
        seed in 1200u64..1400,
        n in 1usize..=16,
        slots in 1usize..=4,
        queue_cap in 1usize..=6,
        cache_cap in 100usize..=4000,
    ) {
        let trace = random_trace(seed, n);
        let (a, _) = run_with_cache(&trace, slots, queue_cap, None, Some(cache_cap));
        let (b, _) = run_with_cache(&trace, slots, queue_cap, None, Some(cache_cap));
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        prop_assert_eq!(a.cache, b.cache, "cache tallies diverged across runs");
    }
}
