//! Backpressure and deadline edge cases for the serving engine, plus
//! the rejection-code ↔ registry cross-check.
//!
//! Each test pins one corner the property suite only hits by chance:
//! a full queue at the peak of a burst, a deadline shorter than one
//! decode step, a burst of requests over one shared schema, the
//! zero-length prompt, and shutdown with in-flight slots (no leaked KV
//! bytes, witnessed through `cache_bytes`).

use datavist5::data::{Task, TaskRequest};
use serve::{
    BatchDecoder, EngineError, Outcome, Rejection, ScriptedDecoder, ServeConfig, ServeEngine,
    ServeRequest,
};
use tokenizer::WordTokenizer;
use vql::schema::{DbSchema, TableSchema};

const EOS: u32 = 1;

fn scripted(slots: usize) -> ScriptedDecoder {
    // Each request emits `src[0]` copies of token 3, then EOS.
    ScriptedDecoder::new(slots, 16, EOS, |src| {
        vec![3; src.first().copied().unwrap_or(0) as usize]
    })
}

fn req(id: u64, len: u32) -> ServeRequest {
    ServeRequest::new(id, Task::ALL[id as usize % 4], vec![len])
}

/// Full queue at the peak of a burst: slots drain only at tick
/// boundaries, so a burst of 6 simultaneous arrivals against queue
/// bound 2 queues the first two and bounces the remaining four with
/// R001 — and the bounced ones are exactly the *latest* arrivals
/// (admission order is arrival order, never resampled).
#[test]
fn burst_peak_overflows_queue_with_typed_rejections() {
    let mut e = ServeEngine::new(scripted(1), ServeConfig::new(2, 8, EOS));
    let trace: Vec<(u64, ServeRequest)> = (0..6).map(|i| (1_000, req(i, 2))).collect();
    e.run_trace(&trace).unwrap();
    let report = e.into_report();
    assert!(report.accounted());
    assert_eq!(report.completed, 2);
    assert_eq!(report.rejected["queue-full"], 4);
    for r in &report.responses {
        let expect_bounced = r.id >= 2;
        let bounced = r.outcome == Outcome::Rejected(Rejection::QueueFull);
        assert_eq!(bounced, expect_bounced, "request {} wrong outcome", r.id);
        if bounced {
            assert_eq!(r.finished_ns, r.arrival_ns, "rejection is immediate");
        }
    }
}

/// A deadline shorter than one decode step: the request is admitted,
/// pays one step, and is retired with R003 carrying the single token
/// that step produced — typed, never silently dropped.
#[test]
fn deadline_shorter_than_one_step_rejects_mid_decode() {
    let mut cfg = ServeConfig::new(4, 8, EOS);
    cfg.step_cost_ns = 1_000_000;
    let mut e = ServeEngine::new(scripted(2), ServeConfig { ..cfg });
    // Wants 5 tokens but the deadline expires inside the first step.
    let r = req(0, 5).with_deadline(500_000);
    e.run_trace(&[(0, r)]).unwrap();
    let report = e.into_report();
    assert!(report.accounted());
    let resp = &report.responses[0];
    assert_eq!(resp.outcome, Outcome::Rejected(Rejection::DeadlineDecoding));
    assert_eq!(resp.tokens, vec![3], "partial prefix from the paid step");
    assert_eq!(report.rejected["deadline-decoding"], 1);
}

/// A deadline that expires while still queued (slot starvation): R002,
/// with zero tokens and no admission log entry.
#[test]
fn deadline_expiring_in_queue_rejects_without_admission() {
    let mut e = ServeEngine::new(scripted(1), ServeConfig::new(4, 8, EOS));
    // Request 0 occupies the only slot for 8 steps (8 ms of virtual
    // time); request 1's deadline lands at 2 ms while it waits.
    let trace = vec![
        (0u64, req(0, 8)),
        (1_000u64, req(1, 1).with_deadline(2_000_000)),
    ];
    e.run_trace(&trace).unwrap();
    let report = e.into_report();
    assert!(report.accounted());
    let starved = report.responses.iter().find(|r| r.id == 1).unwrap();
    assert_eq!(
        starved.outcome,
        Outcome::Rejected(Rejection::DeadlineQueued)
    );
    assert!(starved.tokens.is_empty());
    assert_eq!(
        report.admission_log.len(),
        1,
        "starved request never admitted"
    );
}

/// All requests over the same schema: per-request filtration yields the
/// same filtered input for identical questions, and every request in
/// the burst completes independently (no cross-request aliasing of
/// sources or outputs).
#[test]
fn same_schema_burst_serves_every_request_independently() {
    let schema = DbSchema::new(
        "shared",
        vec![
            TableSchema::new("sales", vec!["region".into(), "amount".into()]),
            TableSchema::new("unrelated", vec!["noise".into()]),
        ],
    );
    let task = |q: &str| TaskRequest::TextToVis {
        question: q.into(),
        schema: schema.clone(),
    };
    let corpus_text = task("bar chart of sales amount by region").input_text();
    let tok = WordTokenizer::fit([corpus_text.as_str()], 1);
    let reqs: Vec<ServeRequest> = (0..4)
        .map(|i| ServeRequest::from_task(i, &task("bar chart of sales amount by region"), &tok))
        .collect();
    // Identical questions over one schema filter identically.
    for r in &reqs[1..] {
        assert_eq!(r.src, reqs[0].src);
    }
    assert!(
        !corpus_text.contains("unrelated"),
        "filtration dropped the unused table"
    );

    let src_len = reqs[0].src.len() as u32;
    let dec = ScriptedDecoder::new(2, 4096, EOS, move |src| vec![src.len() as u32 + 2]);
    let mut e = ServeEngine::new(dec, ServeConfig::new(8, 8, EOS));
    let trace: Vec<(u64, ServeRequest)> = reqs.into_iter().map(|r| (0u64, r)).collect();
    e.run_trace(&trace).unwrap();
    let report = e.into_report();
    assert!(report.accounted());
    assert_eq!(report.completed, 4);
    for r in &report.responses {
        assert_eq!(
            r.tokens,
            vec![src_len + 2],
            "output depends only on the request's own source"
        );
    }
}

/// The zero-length prompt: normalized to a lone EOS marker at admission
/// (mirroring `encode_with_eos`), decoded normally, completed.
#[test]
fn zero_length_prompt_is_normalized_and_served() {
    let dec = ScriptedDecoder::new(1, 16, EOS, |src| {
        assert!(!src.is_empty(), "engine must never admit an empty source");
        vec![7, 7]
    });
    let mut e = ServeEngine::new(dec, ServeConfig::new(2, 8, EOS));
    e.run_trace(&[(0, ServeRequest::new(0, Task::TableToText, Vec::new()))])
        .unwrap();
    let report = e.into_report();
    assert!(report.accounted());
    assert_eq!(report.responses[0].outcome, Outcome::Completed);
    assert_eq!(report.responses[0].tokens, vec![7, 7]);
}

/// Shutdown with in-flight slots: queued requests reject with R004 and
/// zero tokens, in-flight requests reject with R004 keeping their
/// partial output, and the decoder ends with zero live KV bytes.
#[test]
fn shutdown_with_in_flight_slots_leaks_nothing() {
    let dec = scripted(2);
    let mut e = ServeEngine::new(dec, ServeConfig::new(8, 16, EOS));
    for i in 0..5 {
        e.submit(req(i, 10)); // all want 10 tokens
    }
    // Three ticks: two requests in flight with partial output, three
    // queued (slots=2).
    for _ in 0..3 {
        e.tick().unwrap();
    }
    assert_eq!(e.live(), 2);
    assert!(e.queue_depth() > 0);
    e.shutdown();
    let report = e.into_report();
    assert!(report.accounted());
    assert_eq!(report.rejected["shutdown"], 5);
    let mut partials = 0;
    for r in &report.responses {
        assert_eq!(r.outcome, Outcome::Rejected(Rejection::Shutdown));
        if !r.tokens.is_empty() {
            partials += 1;
            assert_eq!(r.tokens, vec![3, 3, 3], "three paid steps preserved");
        }
    }
    assert_eq!(
        partials, 2,
        "exactly the in-flight pair kept partial output"
    );
}

/// The shutdown leak check is real: `cache_bytes` reports nonzero while
/// requests are resident and zero after shutdown retires them.
#[test]
fn cache_bytes_drop_to_zero_at_shutdown() {
    let mut dec = scripted(2);
    let a = dec.admit(&[5]).unwrap();
    assert!(dec.cache_bytes() > 0);
    dec.retire(a);
    assert_eq!(dec.cache_bytes(), 0);
    dec.take_slot_events();

    let mut e = ServeEngine::new(dec, ServeConfig::new(4, 16, EOS));
    e.submit(req(0, 10));
    e.tick().unwrap();
    e.shutdown(); // panics internally if any KV bytes survive
    assert!(e.into_report().accounted());
}

/// A decoder that violates the batcher contract: it reports free
/// capacity but refuses every admission.
struct RefusingDecoder;

impl BatchDecoder for RefusingDecoder {
    fn capacity(&self) -> usize {
        1
    }
    fn admit(&mut self, _src: &[u32]) -> Option<usize> {
        None
    }
    fn retire(&mut self, _slot: usize) {}
    fn step_packed_into(&mut self, _active: &[(usize, u32)], _out: &mut Vec<Vec<f32>>) {}
    fn cache_bytes(&self) -> usize {
        0
    }
    fn take_slot_events(&mut self) -> Vec<nn::batch::SlotEvent> {
        Vec::new()
    }
}

/// An invariant violation mid-tick poisons the engine instead of
/// panicking: the failing tick returns a typed [`EngineError`], every
/// caught-in-the-middle request drains with an R005 response, later
/// submissions reject immediately with R005, further ticks are no-ops,
/// and the request accounting still balances.
#[test]
fn invariant_violation_poisons_engine_with_typed_r005_drain() {
    let mut e = ServeEngine::new(RefusingDecoder, ServeConfig::new(4, 8, EOS));
    e.submit(req(0, 2));
    e.submit(req(1, 2));
    let err = e.tick().unwrap_err();
    assert_eq!(err, EngineError::AdmitRefused { queued: 1 });
    assert!(e.is_poisoned());

    // Post-poison: submissions bounce with R005, ticks are inert no-ops.
    e.submit(req(2, 2));
    assert_eq!(e.tick(), Ok(false));
    assert_eq!(e.live(), 0);
    assert_eq!(e.queue_depth(), 0);

    let report = e.into_report();
    assert!(report.accounted(), "accounting survives the poison drain");
    assert_eq!(report.completed, 0);
    assert_eq!(report.rejected["internal-error"], 3);
    for r in &report.responses {
        assert_eq!(r.outcome, Outcome::Rejected(Rejection::Internal));
        assert!(r.tokens.is_empty());
    }
}

/// `run_trace` on a poisoned engine: the error surfaces, and every
/// arrival after the failing tick still gets its typed R005 response so
/// nothing is silently dropped.
#[test]
fn run_trace_drains_remaining_arrivals_after_poison() {
    let mut e = ServeEngine::new(RefusingDecoder, ServeConfig::new(4, 8, EOS));
    let trace: Vec<(u64, ServeRequest)> = (0..3).map(|i| (i * 1_000, req(i, 2))).collect();
    let err = e.run_trace(&trace).unwrap_err();
    assert!(matches!(err, EngineError::AdmitRefused { .. }));
    let report = e.into_report();
    assert!(report.accounted());
    assert_eq!(report.responses.len(), 3, "every arrival answered");
    assert_eq!(report.rejected["internal-error"], 3);
}

/// Every rejection code the serving layer can emit is registered in the
/// workspace-wide diagnostic-code registry with the `serve` family.
#[test]
fn rejection_codes_are_registered() {
    let all = [
        Rejection::QueueFull,
        Rejection::DeadlineQueued,
        Rejection::DeadlineDecoding,
        Rejection::Shutdown,
        Rejection::Internal,
    ];
    for rej in all {
        let entry = analysis::registry::CODES
            .iter()
            .find(|c| c.code == rej.code())
            .unwrap_or_else(|| panic!("{} missing from analysis::registry", rej.code()));
        assert_eq!(
            entry.family,
            "serve",
            "{} registered under wrong family",
            rej.code()
        );
    }
}
