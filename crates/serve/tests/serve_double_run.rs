//! Double-run bit-equality for the serving scheduler over the *real*
//! continuous batcher.
//!
//! The engine's determinism claim (DESIGN.md § "Serving engine"): given
//! one arrival trace, the admission order, slot assignments, deadline
//! decisions, and every emitted token are pure functions of the trace.
//! This suite is the dynamic witness — build the same random-weight
//! model twice, replay the same seeded bursty trace twice, and compare
//! the full [`ServeReport::fingerprint`] (admission log + every
//! response's outcome, tokens, and timestamps) as strings, i.e. bitwise.
//!
//! The thread sweep re-runs the whole thing at 1, 2, and 4 tensor
//! worker threads: the fork-join kernels are certified
//! thread-count-invariant, so the serving fingerprint must not move
//! either.

use nn::batch::BatchedDecodeState;
use nn::param::ParamSet;
use nn::t5::{Positional, T5Config, T5Model};
use serve::{ServeConfig, ServeEngine, ServeRequest};
use tensor::XorShift;

use datavist5::data::Task;

const VOCAB: usize = 24;
const EOS: u32 = 1;
const SLOTS: usize = 3;

fn smoke_config() -> T5Config {
    T5Config {
        vocab: VOCAB,
        d_model: 32,
        d_ff: 64,
        heads: 2,
        enc_layers: 1,
        dec_layers: 1,
        dropout: 0.0,
        positional: Positional::RelativeBias,
    }
}

/// Same init RNG, same names: identical weights every call.
fn build_model() -> (T5Model, ParamSet) {
    let mut ps = ParamSet::new();
    let mut rng = XorShift::new(0x5e12fe);
    let m = T5Model::new(&mut ps, "serve", smoke_config(), &mut rng);
    (m, ps)
}

/// A seeded bursty trace: bursts of 3 arrivals every 4 ms, ragged
/// sources, round-robin tasks, a mix of priorities and deadlines.
fn trace(seed: u64, n: usize) -> Vec<(u64, ServeRequest)> {
    let mut rng = XorShift::new(seed);
    (0..n)
        .map(|i| {
            let burst = (i / 3) as u64;
            let arrival = burst * 4_000_000 + (i % 3) as u64 * 1_000;
            let len = 2 + (rng.next_u64() % 6) as usize;
            let src: Vec<u32> = (0..len)
                .map(|_| 2 + (rng.next_u64() % (VOCAB as u64 - 2)) as u32)
                .collect();
            let mut req = ServeRequest::new(i as u64, Task::ALL[i % 4], src)
                .with_priority((rng.next_u64() % 2) as u8);
            if rng.next_u64().is_multiple_of(4) {
                // A deadline tight enough that some requests expire.
                req = req.with_deadline(arrival + 6_000_000 + rng.next_u64() % 20_000_000);
            }
            (arrival, req)
        })
        .collect()
}

fn run_once(seed: u64, n: usize) -> String {
    let (model, ps) = build_model();
    let dec = BatchedDecodeState::new(&model, &ps, SLOTS);
    let mut engine = ServeEngine::new(dec, ServeConfig::new(4, 10, EOS));
    engine
        .run_trace(&trace(seed, n))
        .expect("real-decoder trace never poisons");
    let report = engine.into_report();
    assert!(report.accounted(), "every arrival has a terminal response");
    report.fingerprint()
}

#[test]
fn same_trace_twice_is_bit_identical() {
    let a = run_once(0xbead, 14);
    let b = run_once(0xbead, 14);
    assert_eq!(a, b, "admission log or emitted tokens differ between runs");
}

#[test]
fn different_seeds_actually_change_the_fingerprint() {
    // Guards against a vacuously-constant fingerprint.
    assert_ne!(run_once(0xbead, 14), run_once(0xfeed, 14));
}

/// `tensor::par::set_threads` is process-global, which is safe to flip
/// here precisely because the kernels are thread-count-invariant (see
/// the same pattern in `nn/tests/double_run.rs`).
#[test]
fn thread_sweep_is_bit_identical() {
    let run_at = |threads: usize| {
        tensor::par::set_threads(threads);
        let out = run_once(0x7ace, 12);
        tensor::par::set_threads(1);
        out
    };
    let fp1 = run_at(1);
    for threads in [2usize, 4] {
        let fpt = run_at(threads);
        assert_eq!(
            fp1, fpt,
            "serving fingerprint differs between 1 and {threads} worker thread(s)"
        );
    }
}
