//! # serve — the model-serving engine over continuous batching
//!
//! The request front door for all four DataVisT5 tasks (text-to-vis,
//! vis-to-text, FeVisQA, table-to-text): a bounded admission queue, a
//! deterministic scheduler feeding the continuous batcher's free slots
//! mid-flight, per-request deadlines with typed rejections, and
//! backpressure at the front door. See DESIGN.md § "Serving engine".
//!
//! Layer map:
//!
//! * [`request`] — [`ServeRequest`]/[`ServeResponse`], typed
//!   [`Rejection`]s (`R001`–`R005`), and text-level request construction
//!   through the paper's unified encoding (schema filtration included).
//! * [`queue`] — the bounded FIFO-within-priority admission queue.
//! * [`engine`] — the scheduler itself: virtual clock, tick loop, slot
//!   bookkeeping cross-checked against the batcher's event log,
//!   deterministic [`ServeReport`] with fingerprint / percentiles /
//!   fairness. Invariant violations surface as typed [`EngineError`]s
//!   that poison the engine and drain every request with an `R005`
//!   response instead of panicking (see `engine` § "Panic freedom").
//! * [`front`] — the concurrent client front door (threads only send
//!   and receive; scheduling stays single-threaded).
//! * [`testing`] — the scripted decoder the scheduler test suites run
//!   against.
//!
//! The engine never reads a wall clock: time is injected (virtual in
//! traces and tests, real only in the bench crate), which is what makes
//! the double-run fingerprint contract possible.

pub mod engine;
pub mod front;
pub mod queue;
pub mod request;
pub mod testing;

pub use engine::{
    AdmissionRecord, BatchDecoder, EngineError, ServeConfig, ServeEngine, ServeReport, TaskTally,
};
pub use front::serve_concurrent;
pub use nn::prefix_cache::{prefix_hash, CacheStats, PrefixCache, PrefixKv};
pub use queue::{AdmissionQueue, Queued};
pub use request::{Outcome, Priority, Rejection, ServeRequest, ServeResponse, NO_DEADLINE};
pub use testing::ScriptedDecoder;
