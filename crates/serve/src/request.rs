//! Request and response types for the serving engine.
//!
//! A [`ServeRequest`] is what the scheduler works with: token ids plus
//! scheduling metadata (priority, deadline). The text-level constructor
//! [`ServeRequest::from_task`] renders a [`TaskRequest`] through the
//! paper's unified encoding — running per-request schema filtration —
//! and tokenizes it, so clients submit raw questions/queries/tables and
//! the serving path owns the whole text → tokens pipeline.
//!
//! Every admitted or rejected request produces exactly one
//! [`ServeResponse`]; nothing is silently dropped. Rejections are typed
//! ([`Rejection`]) and each variant carries a registered diagnostic code
//! (`R001`–`R005`, see `analysis::registry` and the DESIGN.md lint-code
//! table), so rejection tallies are auditable the same way lint tallies
//! are.

use datavist5::data::{Task, TaskRequest};
use tokenizer::WordTokenizer;

/// Scheduling priority: lower values are served first; within one
/// priority the queue is strictly FIFO by arrival sequence.
pub type Priority = u8;

/// Virtual-time constant meaning "no deadline".
pub const NO_DEADLINE: u64 = u64::MAX;

/// One request as the scheduler sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRequest {
    /// Caller-assigned identifier, echoed in the response. Must be unique
    /// within one engine run.
    pub id: u64,
    /// Which of the four tasks the request targets (used for per-task
    /// fairness accounting; the engine itself is task-agnostic).
    pub task: Task,
    /// Encoder input token ids. An empty source is normalized to a lone
    /// EOS marker at admission (mirroring `encode_with_eos`, which never
    /// produces an empty sequence).
    pub src: Vec<u32>,
    /// Scheduling priority; 0 is the highest.
    pub priority: Priority,
    /// Absolute virtual-clock deadline in nanoseconds ([`NO_DEADLINE`]
    /// for none). A request past its deadline is retired with a typed
    /// rejection whether it is still queued (R002) or mid-decode (R003).
    pub deadline_ns: u64,
}

impl ServeRequest {
    /// A plain request with default priority and no deadline.
    pub fn new(id: u64, task: Task, src: Vec<u32>) -> ServeRequest {
        ServeRequest {
            id,
            task,
            src,
            priority: 0,
            deadline_ns: NO_DEADLINE,
        }
    }

    /// Builds a request from a text-level [`TaskRequest`]: renders the
    /// unified input encoding (running schema filtration on this
    /// request's own question/query) and tokenizes it with a trailing
    /// EOS.
    pub fn from_task(id: u64, req: &TaskRequest, tok: &WordTokenizer) -> ServeRequest {
        let text = req.input_text();
        ServeRequest::new(id, req.task(), tok.encode_with_eos(&text))
    }

    /// Sets the priority (builder style).
    pub fn with_priority(mut self, priority: Priority) -> ServeRequest {
        self.priority = priority;
        self
    }

    /// Sets the absolute deadline (builder style).
    pub fn with_deadline(mut self, deadline_ns: u64) -> ServeRequest {
        self.deadline_ns = deadline_ns;
        self
    }
}

/// Why a request was retired without completing. Every variant maps to a
/// registered diagnostic code so rejection tallies line up with the
/// workspace-wide code registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The bounded admission queue was full at arrival (backpressure).
    QueueFull,
    /// The deadline passed while the request was still queued.
    DeadlineQueued,
    /// The deadline passed mid-decode; the response keeps the tokens
    /// emitted before expiry.
    DeadlineDecoding,
    /// The engine shut down while the request was queued or in flight.
    Shutdown,
    /// A scheduler/batcher invariant violation poisoned the engine
    /// (`serve::EngineError`); the request was drained with this typed
    /// response — partial tokens kept — instead of dying in a panic.
    Internal,
}

impl Rejection {
    /// The registered diagnostic code for this rejection kind.
    pub fn code(self) -> &'static str {
        match self {
            Rejection::QueueFull => "R001",
            Rejection::DeadlineQueued => "R002",
            Rejection::DeadlineDecoding => "R003",
            Rejection::Shutdown => "R004",
            Rejection::Internal => "R005",
        }
    }

    /// A stable human-readable label (used in logs and fingerprints).
    pub fn label(self) -> &'static str {
        match self {
            Rejection::QueueFull => "queue-full",
            Rejection::DeadlineQueued => "deadline-queued",
            Rejection::DeadlineDecoding => "deadline-decoding",
            Rejection::Shutdown => "shutdown",
            Rejection::Internal => "internal-error",
        }
    }
}

/// Terminal state of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Decoded to EOS (or the output-length cap).
    Completed,
    /// Retired with a typed rejection.
    Rejected(Rejection),
}

/// The engine's answer for one request — completed or rejected, never
/// silent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeResponse {
    pub id: u64,
    pub task: Task,
    pub outcome: Outcome,
    /// Tokens emitted before the terminal event (the full output for
    /// completions, a partial prefix for mid-decode rejections).
    pub tokens: Vec<u32>,
    /// Virtual time the request arrived at the front door.
    pub arrival_ns: u64,
    /// Virtual time of the terminal event; `finished_ns - arrival_ns` is
    /// the latency the percentile metrics aggregate.
    pub finished_ns: u64,
}

impl ServeResponse {
    /// Request latency (arrival to terminal event).
    pub fn latency_ns(&self) -> u64 {
        self.finished_ns.saturating_sub(self.arrival_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejection_codes_are_distinct_and_stable() {
        let all = [
            Rejection::QueueFull,
            Rejection::DeadlineQueued,
            Rejection::DeadlineDecoding,
            Rejection::Shutdown,
            Rejection::Internal,
        ];
        let codes: Vec<&str> = all.iter().map(|r| r.code()).collect();
        assert_eq!(codes, ["R001", "R002", "R003", "R004", "R005"]);
        let mut labels: Vec<&str> = all.iter().map(|r| r.label()).collect();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn builder_setters_apply() {
        let r = ServeRequest::new(7, Task::FeVisQa, vec![1, 2, 3])
            .with_priority(2)
            .with_deadline(500);
        assert_eq!(r.priority, 2);
        assert_eq!(r.deadline_ns, 500);
        assert_eq!(r.id, 7);
    }

    #[test]
    fn from_task_runs_filtration_and_appends_eos() {
        use vql::schema::{DbSchema, TableSchema};
        let schema = DbSchema::new(
            "g",
            vec![
                TableSchema::new("artist", vec!["country".into()]),
                TableSchema::new("exhibit", vec!["theme".into()]),
            ],
        );
        let task = TaskRequest::TextToVis {
            question: "bar chart of artist country".into(),
            schema,
        };
        let tok = WordTokenizer::fit([task.input_text().as_str()], 1);
        let req = ServeRequest::from_task(3, &task, &tok);
        assert_eq!(req.task, Task::TextToVis);
        assert_eq!(req.src.last(), Some(&tokenizer::special::EOS));
        // Filtration ran: the unreferenced table is absent, so the
        // encoded input is shorter than the unfiltered text would be.
        let text = task.input_text();
        assert!(!text.contains("theme"));
        // The request's admitted tokens hash to the task's cache key:
        // core-side key computation and serve-side admission agree on
        // what "the standardized input" is.
        assert_eq!(nn::prefix_hash(&req.src), task.cache_key(&tok));
    }
}
