//! The concurrent front door: many client threads, one scheduler.
//!
//! Clients hand requests to the engine over an mpsc channel and get
//! their responses back on a private reply channel; the scheduler loop
//! runs on the *calling* thread, so all scheduling state stays
//! single-threaded and the client threads do nothing but send and
//! receive. Time is injected by the caller (`now_ns`), keeping this
//! module free of clock reads — benches pass a real clock, tests pass a
//! counter.
//!
//! Determinism note: with concurrent clients the *arrival interleaving*
//! is decided by the OS scheduler, so run-to-run identity is not claimed
//! here — that is what [`ServeEngine::run_trace`] with a fixed trace is
//! for. What this mode does guarantee is the same accounting invariant:
//! every submitted request produces exactly one terminal response,
//! delivered to the client that sent it.

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::time::Duration;

use crate::engine::{BatchDecoder, ServeEngine};
use crate::request::{ServeRequest, ServeResponse};

/// One request in flight from a client, with its reply route.
struct ClientMsg {
    req: ServeRequest,
    reply: mpsc::Sender<ServeResponse>,
}

/// Runs `engine` against concurrent closed-loop clients: client `i`
/// submits every request in `clients[i]` (ids must be unique across all
/// clients) and waits for one response per request. Returns each
/// client's responses in delivery order.
///
/// `now_ns` is polled once per scheduler iteration to advance the
/// engine's virtual clock; for wall-clock latency numbers pass a real
/// monotonic clock and set the engine's virtual step/admit costs to
/// zero so time flows only from the caller.
pub fn serve_concurrent<D: BatchDecoder>(
    engine: &mut ServeEngine<D>,
    clients: Vec<Vec<ServeRequest>>,
    now_ns: &(dyn Fn() -> u64 + Sync),
) -> Vec<Vec<ServeResponse>> {
    let (tx, rx) = mpsc::channel::<ClientMsg>();
    std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .into_iter()
            .map(|reqs| {
                let tx = tx.clone();
                scope.spawn(move || {
                    let (reply_tx, reply_rx) = mpsc::channel::<ServeResponse>();
                    let expected = reqs.len();
                    for req in reqs {
                        let msg = ClientMsg {
                            req,
                            reply: reply_tx.clone(),
                        };
                        tx.send(msg).expect("scheduler loop outlives clients");
                    }
                    drop(tx);
                    drop(reply_tx);
                    let mut got = Vec::with_capacity(expected);
                    for _ in 0..expected {
                        got.push(reply_rx.recv().expect("one response per request"));
                    }
                    got
                })
            })
            .collect();
        drop(tx);

        // The scheduler loop: route incoming requests, tick, deliver.
        let mut routes: BTreeMap<u64, mpsc::Sender<ServeResponse>> = BTreeMap::new();
        let mut open = true;
        loop {
            engine.advance_to(now_ns());
            loop {
                match rx.try_recv() {
                    Ok(msg) => {
                        let prev = routes.insert(msg.req.id, msg.reply);
                        assert!(prev.is_none(), "duplicate request id {}", msg.req.id);
                        engine.submit(msg.req);
                    }
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => {
                        open = false;
                        break;
                    }
                }
            }
            // A poisoned engine has already drained every request with a
            // typed R005 response; the delivery loop below still routes
            // them, and `is_idle` then ends the session cleanly.
            let _ = engine.tick();
            for resp in engine.drain_responses() {
                let route = routes.remove(&resp.id).expect("response has a route");
                route.send(resp).expect("client waits for its responses");
            }
            if engine.is_idle() {
                if !open {
                    break;
                }
                // Nothing to decode: block briefly for the next arrival
                // instead of spinning.
                match rx.recv_timeout(Duration::from_millis(1)) {
                    Ok(msg) => {
                        engine.advance_to(now_ns());
                        let prev = routes.insert(msg.req.id, msg.reply);
                        assert!(prev.is_none(), "duplicate request id {}", msg.req.id);
                        engine.submit(msg.req);
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => open = false,
                }
            }
        }
        assert!(routes.is_empty(), "undelivered responses at shutdown");

        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use crate::request::Outcome;
    use crate::testing::ScriptedDecoder;
    use datavist5::data::Task;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn concurrent_clients_each_get_all_their_responses() {
        let dec = ScriptedDecoder::new(2, 8, 1, |src| vec![3; src[0] as usize]);
        let mut cfg = ServeConfig::new(16, 16, 1);
        // Time flows only from the injected counter below.
        cfg.step_cost_ns = 0;
        cfg.admit_cost_ns = 0;
        let mut engine = ServeEngine::new(dec, cfg);

        let clients: Vec<Vec<ServeRequest>> = (0..3)
            .map(|c| {
                (0..4)
                    .map(|i| ServeRequest::new(c * 100 + i, Task::ALL[c as usize % 4], vec![2]))
                    .collect()
            })
            .collect();

        let fake_now = AtomicU64::new(0);
        let now = move || fake_now.fetch_add(1_000, Ordering::SeqCst);
        let per_client = serve_concurrent(&mut engine, clients, &now);

        assert_eq!(per_client.len(), 3);
        for (c, responses) in per_client.iter().enumerate() {
            assert_eq!(responses.len(), 4, "client {c} got all responses");
            for r in responses {
                assert_eq!(r.id / 100, c as u64, "response routed to its sender");
                assert_eq!(r.outcome, Outcome::Completed);
                assert_eq!(r.tokens, vec![3, 3]);
            }
        }
        engine.shutdown();
        let report = engine.into_report();
        assert!(report.accounted());
        assert_eq!(report.arrivals, 12);
        assert_eq!(report.completed, 12);
    }
}
