//! The bounded admission queue: FIFO within priority, strict capacity.
//!
//! Backpressure is the queue's whole job — an unbounded queue under a
//! sustained overload turns every latency percentile into the queueing
//! delay of the backlog. Arrivals beyond `capacity` are refused at the
//! front door with [`Rejection::QueueFull`] so the client learns
//! immediately instead of timing out later.
//!
//! Ordering is a determinism contract: requests leave in ascending
//! `(priority, arrival sequence)` order, with the arrival sequence
//! assigned by the engine in submission order. No hash-ordered container
//! is involved (`BTreeMap` keyed by priority), so two identical arrival
//! traces drain identically — the double-run test relies on this.

use std::collections::{BTreeMap, VecDeque};

use crate::request::{Priority, ServeRequest};

/// A queued request plus its arrival bookkeeping.
#[derive(Debug, Clone)]
pub struct Queued {
    /// Engine-wide arrival sequence number (FIFO key within priority).
    pub seq: u64,
    /// Virtual arrival time.
    pub arrival_ns: u64,
    pub req: ServeRequest,
}

/// Bounded priority queue with FIFO order inside each priority class.
#[derive(Debug, Default)]
pub struct AdmissionQueue {
    capacity: usize,
    len: usize,
    classes: BTreeMap<Priority, VecDeque<Queued>>,
}

impl AdmissionQueue {
    /// Creates a queue admitting at most `capacity` waiting requests.
    pub fn new(capacity: usize) -> AdmissionQueue {
        assert!(capacity > 0, "queue capacity must be positive");
        AdmissionQueue {
            capacity,
            len: 0,
            classes: BTreeMap::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn is_full(&self) -> bool {
        self.len >= self.capacity
    }

    /// Enqueues a request, or returns it when the queue is full.
    pub fn push(&mut self, item: Queued) -> Result<(), Queued> {
        if self.is_full() {
            return Err(item);
        }
        self.classes
            .entry(item.req.priority)
            .or_default()
            .push_back(item);
        self.len += 1;
        Ok(())
    }

    /// Removes and returns the next request in `(priority, seq)` order.
    pub fn pop(&mut self) -> Option<Queued> {
        let (&prio, _) = self.classes.iter().find(|(_, q)| !q.is_empty())?;
        let q = self.classes.get_mut(&prio)?;
        let item = q.pop_front();
        if item.is_some() {
            self.len -= 1;
        }
        if q.is_empty() {
            self.classes.remove(&prio);
        }
        item
    }

    /// Removes every queued request whose deadline is at or before `now`,
    /// in `(priority, seq)` order. Runs every scheduler tick, so the
    /// nothing-expired case (by far the common one) allocates nothing.
    pub fn expire(&mut self, now_ns: u64) -> Vec<Queued> {
        let any_expired = self
            .classes
            .values()
            .flat_map(|q| q.iter())
            .any(|item| item.req.deadline_ns <= now_ns);
        if !any_expired {
            // hot-ok: Vec::new never allocates and nothing is pushed on this path
            return Vec::new();
        }
        // hot-ok: expiry slow path — only reached when a deadline actually lapsed
        let mut out = Vec::new();
        for q in self.classes.values_mut() {
            // hot-ok: expiry slow path — only reached when a deadline actually lapsed
            let mut kept = VecDeque::with_capacity(q.len());
            for item in q.drain(..) {
                if item.req.deadline_ns <= now_ns {
                    out.push(item);
                } else {
                    kept.push_back(item);
                }
            }
            *q = kept;
        }
        self.classes.retain(|_, q| !q.is_empty());
        self.len -= out.len();
        out
    }

    /// Drains everything still queued (shutdown path), in order.
    pub fn drain_all(&mut self) -> Vec<Queued> {
        let mut out = Vec::new();
        while let Some(item) = self.pop() {
            out.push(item);
        }
        out
    }

    /// The earliest deadline among queued requests, if any request has
    /// one (drives virtual-clock jumps while slots are idle).
    pub fn earliest_deadline(&self) -> Option<u64> {
        self.classes
            .values()
            .flat_map(|q| q.iter())
            .map(|i| i.req.deadline_ns)
            .filter(|&d| d != crate::request::NO_DEADLINE)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datavist5::data::Task;

    fn q(seq: u64, priority: u8, deadline: u64) -> Queued {
        Queued {
            seq,
            arrival_ns: 0,
            req: ServeRequest::new(seq, Task::TextToVis, vec![1])
                .with_priority(priority)
                .with_deadline(deadline),
        }
    }

    #[test]
    fn fifo_within_priority_and_priority_order_across() {
        let mut aq = AdmissionQueue::new(8);
        for (seq, prio) in [(0u64, 1u8), (1, 0), (2, 1), (3, 0), (4, 2)] {
            aq.push(q(seq, prio, u64::MAX)).unwrap();
        }
        let order: Vec<u64> = std::iter::from_fn(|| aq.pop()).map(|i| i.seq).collect();
        assert_eq!(order, vec![1, 3, 0, 2, 4]);
        assert!(aq.is_empty());
    }

    #[test]
    fn push_beyond_capacity_returns_the_request() {
        let mut aq = AdmissionQueue::new(2);
        aq.push(q(0, 0, u64::MAX)).unwrap();
        aq.push(q(1, 0, u64::MAX)).unwrap();
        let bounced = aq.push(q(2, 0, u64::MAX)).unwrap_err();
        assert_eq!(bounced.seq, 2);
        assert_eq!(aq.len(), 2);
        // Popping frees a slot again.
        aq.pop().unwrap();
        assert!(aq.push(q(3, 0, u64::MAX)).is_ok());
    }

    #[test]
    fn expire_removes_only_overdue_requests() {
        let mut aq = AdmissionQueue::new(8);
        aq.push(q(0, 0, 100)).unwrap();
        aq.push(q(1, 0, 200)).unwrap();
        aq.push(q(2, 1, 50)).unwrap();
        let expired: Vec<u64> = aq.expire(100).into_iter().map(|i| i.seq).collect();
        assert_eq!(expired, vec![0, 2]);
        assert_eq!(aq.len(), 1);
        assert_eq!(aq.pop().unwrap().seq, 1);
    }

    #[test]
    fn earliest_deadline_ignores_unbounded_requests() {
        let mut aq = AdmissionQueue::new(8);
        aq.push(q(0, 0, u64::MAX)).unwrap();
        assert_eq!(aq.earliest_deadline(), None);
        aq.push(q(1, 3, 700)).unwrap();
        aq.push(q(2, 0, 900)).unwrap();
        assert_eq!(aq.earliest_deadline(), Some(700));
    }
}
