//! The serving engine: a deterministic scheduler driving the continuous
//! batcher.
//!
//! # State machine
//!
//! Every request moves through `queued → decoding → done` with two early
//! exits: `rejected at the front door` (queue full, R001; or already past
//! deadline, R002) and `retired mid-flight` (deadline mid-decode, R003;
//! shutdown, R004). One [`tick`] is the scheduler's atom:
//!
//! 1. expire queued requests whose deadline has passed (R002);
//! 2. fill free batcher slots from the queue in `(priority, arrival)`
//!    order, logging each admission;
//! 3. advance every live slot one token via
//!    [`step_packed_into`](nn::batch::BatchedDecodeState::step_packed_into);
//! 4. complete requests that emitted EOS or hit the output cap, then
//!    retire any survivor past its deadline (R003);
//! 5. advance the virtual clock by the configured per-step and
//!    per-admission costs and cross-check the batcher's own
//!    [`SlotEvent`] log against the scheduler's bookkeeping.
//!
//! # Panic freedom
//!
//! A scheduler/batcher bookkeeping divergence used to be a process-
//! killing `.expect()` inside the tick loop — one bad slot would abort
//! every in-flight request on the machine. Those invariants are now
//! typed: [`tick`](ServeEngine::tick) returns `Err(`[`EngineError`]`)`
//! on the first violation, after **poisoning** the engine — every queued
//! and in-flight request is drained with a terminal
//! [`Rejection::Internal`] (R005) response (partial tokens kept), later
//! submissions reject immediately with R005, and further ticks are
//! no-ops. The accounting invariant (`arrivals == completed +
//! rejections`) holds through the failure, so the front door can report
//! the outage request-by-request instead of dying. The hot-path auditor
//! (`analysis::hot`, `hot_audit`) statically pins this file panic-free.
//!
//! # Determinism
//!
//! The engine never reads a wall clock. Time is a *input*: the virtual
//! clock advances only through [`ServeEngine::advance_to`] (external
//! time injection, used by the real-time front door and the load
//! generator, both of which live where clock reads are sanctioned) and
//! through the fixed per-tick costs of [`ServeConfig`]. Given one
//! arrival trace, admission order, slot assignment, deadline decisions,
//! and every emitted token are pure functions of the trace — the
//! double-run suite asserts the whole [`ServeReport::fingerprint`] is
//! bitwise-stable across runs and across worker-thread counts (the
//! batcher's kernels are certified thread-count-invariant).
//!
//! # Accounting
//!
//! `arrivals == completed + rejected` always; [`ServeReport::accounted`]
//! checks it and the CI smoke gates on it. Nothing is silently dropped.

use std::collections::BTreeMap;
use std::fmt;

use datavist5::data::Task;
use nn::batch::{BatchedDecodeState, SlotEvent};
use nn::decode::argmax;
use nn::prefix_cache::CacheStats;
use nn::t5::DECODER_START;

use crate::queue::{AdmissionQueue, Queued};
use crate::request::{Outcome, Rejection, ServeRequest, ServeResponse};

/// The slice of the continuous batcher the scheduler needs. Implemented
/// by [`BatchedDecodeState`] (the real engine) and by the scripted
/// decoder in [`crate::testing`] (scheduler tests without a model).
pub trait BatchDecoder {
    /// Total slot count.
    fn capacity(&self) -> usize;
    /// Installs a request, returning its slot, or `None` when full.
    fn admit(&mut self, src: &[u32]) -> Option<usize>;
    /// Frees a slot (poisoning its caches).
    fn retire(&mut self, slot: usize);
    /// Advances the listed `(slot, previous token)` pairs one step,
    /// writing next-token logits per request into `out`, in input order.
    ///
    /// `out` is a caller-owned reusable buffer: implementations must
    /// truncate it to `active.len()` rows and overwrite retained rows in
    /// place, so a steady-state tick (constant batch shape) performs no
    /// heap allocation. The zero-alloc certification test
    /// (`crates/serve/tests/zero_alloc.rs`) holds implementations to it.
    fn step_packed_into(&mut self, active: &[(usize, u32)], out: &mut Vec<Vec<f32>>);
    /// Sizing hint from the scheduler: no request decodes more than
    /// `max_steps` tokens, so per-slot KV storage can be reserved up
    /// front and steady-state ticks never grow it. Default: no-op.
    fn reserve_steps(&mut self, _max_steps: usize) {}
    /// Resident KV bytes of live slots (leak detection at shutdown).
    fn cache_bytes(&self) -> usize;
    /// Drains the slot admission/retirement log.
    fn take_slot_events(&mut self) -> Vec<SlotEvent>;
    /// Running prefix-cache tallies, when a cross-request cache is
    /// attached (`None` for cacheless decoders). Purely observational:
    /// nothing scheduling-visible may depend on it.
    fn prefix_cache_stats(&self) -> Option<CacheStats> {
        None
    }
}

impl BatchDecoder for BatchedDecodeState<'_> {
    fn capacity(&self) -> usize {
        BatchedDecodeState::capacity(self)
    }
    fn admit(&mut self, src: &[u32]) -> Option<usize> {
        BatchedDecodeState::admit(self, src)
    }
    fn retire(&mut self, slot: usize) {
        BatchedDecodeState::retire(self, slot)
    }
    fn step_packed_into(&mut self, active: &[(usize, u32)], out: &mut Vec<Vec<f32>>) {
        BatchedDecodeState::step_packed_into(self, active, out)
    }
    fn reserve_steps(&mut self, max_steps: usize) {
        BatchedDecodeState::reserve_steps(self, max_steps)
    }
    fn cache_bytes(&self) -> usize {
        BatchedDecodeState::cache_bytes(self)
    }
    fn take_slot_events(&mut self) -> Vec<SlotEvent> {
        BatchedDecodeState::take_slot_events(self)
    }
    fn prefix_cache_stats(&self) -> Option<CacheStats> {
        BatchedDecodeState::cache_stats(self)
    }
}

/// A scheduler/batcher invariant violation caught inside the tick loop.
///
/// Each variant was a process-killing `.expect()`/`assert!` before the
/// hot-path audit; now the first violation poisons the engine (every
/// queued and in-flight request drains with an R005
/// [`Rejection::Internal`] response) and surfaces here as data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The scheduler saw a non-empty queue but `pop` returned nothing.
    EmptyQueuePop,
    /// The scheduler counted a free slot but the batcher refused the
    /// admission.
    AdmitRefused {
        /// Queue depth at the moment of refusal.
        queued: usize,
    },
    /// The batcher assigned a slot the scheduler believes is occupied or
    /// out of range.
    SlotUnavailable { slot: usize },
    /// A slot listed in the packed step came back vacant.
    VacantActiveSlot { slot: usize },
    /// Completion targeted a slot with no resident request.
    FinishOfEmptySlot { slot: usize },
    /// The batcher returned a different number of logit rows than the
    /// step listed active requests.
    LogitsArity { got: usize, want: usize },
    /// The batcher's own event log disagrees with the scheduler's
    /// bookkeeping for this tick.
    EventDivergence {
        got: Vec<SlotEvent>,
        expected: Vec<SlotEvent>,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::EmptyQueuePop => {
                write!(f, "scheduler popped an empty admission queue")
            }
            EngineError::AdmitRefused { queued } => write!(
                f,
                "batcher refused an admission the scheduler counted a free slot \
                 for (queue depth {queued})"
            ),
            EngineError::SlotUnavailable { slot } => write!(
                f,
                "batcher assigned slot {slot}, which is occupied or out of range"
            ),
            EngineError::VacantActiveSlot { slot } => {
                write!(f, "active slot {slot} came back vacant mid-step")
            }
            EngineError::FinishOfEmptySlot { slot } => {
                write!(f, "completion targeted empty slot {slot}")
            }
            EngineError::LogitsArity { got, want } => write!(
                f,
                "batcher returned {got} logit rows for {want} active requests"
            ),
            EngineError::EventDivergence { got, expected } => write!(
                f,
                "batcher slot events diverged from scheduler bookkeeping \
                 (got {got:?}, expected {expected:?})"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Admission-queue bound (backpressure threshold).
    pub queue_cap: usize,
    /// Output-length cap per request.
    pub max_out: usize,
    /// EOS token id (completions stop on it; it is not emitted).
    pub eos: u32,
    /// Virtual cost of one packed decode step.
    pub step_cost_ns: u64,
    /// Virtual cost of admitting one request (the encoder prefill).
    pub admit_cost_ns: u64,
}

impl ServeConfig {
    /// A small default: 1 ms per step, 2 ms per admission.
    pub fn new(queue_cap: usize, max_out: usize, eos: u32) -> ServeConfig {
        ServeConfig {
            queue_cap,
            max_out,
            eos,
            step_cost_ns: 1_000_000,
            admit_cost_ns: 2_000_000,
        }
    }
}

/// One admission, as logged: the deterministic artifact the golden test
/// pins and the double-run fingerprint includes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionRecord {
    /// Arrival sequence number of the request.
    pub seq: u64,
    pub id: u64,
    pub task: Task,
    pub slot: usize,
    /// Virtual admission time.
    pub admitted_ns: u64,
    /// Time spent queued (admitted − arrival).
    pub queue_wait_ns: u64,
}

impl AdmissionRecord {
    /// Stable one-line rendering (golden log format).
    pub fn render(&self) -> String {
        format!(
            "seq={} id={} task={} slot={} t={} wait={}",
            self.seq,
            self.id,
            self.task.label(),
            self.slot,
            self.admitted_ns,
            self.queue_wait_ns
        )
    }
}

/// A request resident in a batcher slot.
struct InFlight {
    req: ServeRequest,
    arrival_ns: u64,
    tokens: Vec<u32>,
    prev: u32,
    /// Packed steps this request has taken (cross-checked against the
    /// batcher's retirement event).
    steps: usize,
}

/// Per-task tallies for the fairness report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskTally {
    pub arrivals: u64,
    pub completed: u64,
    pub rejected: u64,
}

/// The serving scheduler over a [`BatchDecoder`].
pub struct ServeEngine<D: BatchDecoder> {
    dec: D,
    cfg: ServeConfig,
    now_ns: u64,
    queue: AdmissionQueue,
    slots: Vec<Option<InFlight>>,
    live: usize,
    next_seq: u64,
    log: Vec<AdmissionRecord>,
    /// Responses not yet drained by the caller.
    outbox: Vec<ServeResponse>,
    /// All responses ever produced (report of record).
    responses: Vec<ServeResponse>,
    per_task: BTreeMap<Task, TaskTally>,
    rejected: BTreeMap<&'static str, u64>,
    arrivals: u64,
    completed: u64,
    /// Expected batcher events for the current tick (cross-check).
    expected_events: Vec<SlotEvent>,
    /// Set by the first [`EngineError`]: the engine has drained all work
    /// with R005 responses and refuses everything thereafter.
    poisoned: bool,
    /// Reusable per-tick `(slot, prev)` list (zero-alloc steady state).
    active: Vec<(usize, u32)>,
    /// Reusable per-tick logits buffer, row-recycled by the decoder.
    logits_buf: Vec<Vec<f32>>,
}

impl<D: BatchDecoder> ServeEngine<D> {
    pub fn new(mut dec: D, cfg: ServeConfig) -> ServeEngine<D> {
        assert!(cfg.max_out > 0, "max_out must be positive");
        dec.reserve_steps(cfg.max_out);
        let capacity = dec.capacity();
        ServeEngine {
            dec,
            cfg,
            now_ns: 0,
            queue: AdmissionQueue::new(cfg.queue_cap),
            slots: (0..capacity).map(|_| None).collect(),
            live: 0,
            next_seq: 0,
            log: Vec::new(),
            outbox: Vec::new(),
            responses: Vec::new(),
            per_task: BTreeMap::new(),
            rejected: BTreeMap::new(),
            arrivals: 0,
            completed: 0,
            expected_events: Vec::new(),
            poisoned: false,
            active: Vec::with_capacity(capacity),
            logits_buf: Vec::with_capacity(capacity),
        }
    }

    /// Whether a tick invariant violation has drained the engine; a
    /// poisoned engine rejects all submissions with R005 and its ticks
    /// are no-ops.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Current virtual time.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Queued request count (queue depth gauge).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Requests currently resident in batcher slots.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Whether nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.live == 0 && self.queue.is_empty()
    }

    /// The underlying decoder (cache statistics, test inspection).
    pub fn decoder(&self) -> &D {
        &self.dec
    }

    /// Mutable access to the underlying decoder (draining a prefix
    /// cache's event log after a run).
    pub fn decoder_mut(&mut self) -> &mut D {
        &mut self.dec
    }

    /// Moves the virtual clock forward to `t` (never backward): external
    /// time injection for real-time drivers; a no-op when `t` is in the
    /// past.
    pub fn advance_to(&mut self, t_ns: u64) {
        self.now_ns = self.now_ns.max(t_ns);
    }

    /// Accepts one request arriving at `arrival_ns` (≤ now, clamped
    /// otherwise). A full queue or an already-expired deadline produces
    /// an immediate typed rejection response.
    pub fn submit(&mut self, req: ServeRequest) {
        self.advance_to(0);
        let arrival = self.now_ns;
        self.submit_at(arrival, req);
    }

    /// [`submit`](Self::submit) with an explicit arrival timestamp (the
    /// trace replay path: the engine may notice an arrival later than the
    /// client sent it; latency is measured from the client's send).
    pub fn submit_at(&mut self, arrival_ns: u64, req: ServeRequest) {
        self.advance_to(arrival_ns);
        self.arrivals += 1;
        self.per_task.entry(req.task).or_default().arrivals += 1;
        if obs::enabled() {
            obs::counter_add("serve.arrivals", 1);
        }
        if self.poisoned {
            self.reject(req, arrival_ns, Rejection::Internal);
            return;
        }
        if req.deadline_ns <= self.now_ns {
            self.reject(req, arrival_ns, Rejection::DeadlineQueued);
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let item = Queued {
            seq,
            arrival_ns,
            req,
        };
        if let Err(bounced) = self.queue.push(item) {
            self.reject(bounced.req, arrival_ns, Rejection::QueueFull);
        } else if obs::enabled() {
            obs::gauge_set("serve.queue_depth", self.queue.len() as f64);
        }
    }

    fn respond(&mut self, resp: ServeResponse) {
        if obs::enabled() {
            obs::observe_ns("serve.latency_ns", resp.latency_ns());
            match resp.outcome {
                Outcome::Completed => {
                    obs::counter_add("serve.completed", 1);
                    obs::counter_add(&format!("serve.completed.{}", resp.task.label()), 1);
                }
                Outcome::Rejected(r) => {
                    obs::counter_add(&format!("serve.rejected.{}", r.label()), 1);
                }
            }
        }
        match resp.outcome {
            Outcome::Completed => {
                self.completed += 1;
                self.per_task.entry(resp.task).or_default().completed += 1;
            }
            Outcome::Rejected(r) => {
                *self.rejected.entry(r.label()).or_insert(0) += 1;
                self.per_task.entry(resp.task).or_default().rejected += 1;
            }
        }
        self.outbox.push(resp.clone());
        self.responses.push(resp);
    }

    fn reject(&mut self, req: ServeRequest, arrival_ns: u64, why: Rejection) {
        let resp = ServeResponse {
            id: req.id,
            task: req.task,
            outcome: Outcome::Rejected(why),
            tokens: Vec::new(),
            arrival_ns,
            finished_ns: self.now_ns,
        };
        self.respond(resp);
    }

    /// Responses produced since the last drain (completions *and*
    /// rejections), in production order.
    pub fn drain_responses(&mut self) -> Vec<ServeResponse> {
        std::mem::take(&mut self.outbox)
    }

    /// One scheduler tick; returns `Ok(true)` if a decode step ran. With
    /// an empty queue and no live request this is a no-op. The first
    /// invariant violation poisons the engine (all work drains with R005
    /// responses) and returns the violation; every later tick is an
    /// `Ok(false)` no-op.
    pub fn tick(&mut self) -> Result<bool, EngineError> {
        if self.poisoned {
            return Ok(false);
        }
        match self.tick_inner() {
            Ok(stepped) => Ok(stepped),
            Err(e) => {
                self.poison();
                Err(e)
            }
        }
    }

    /// The tick body. Any `Err` leaves bookkeeping mid-transition;
    /// [`tick`](Self::tick) immediately poisons the engine, which is the
    /// only caller allowed to observe that state.
    fn tick_inner(&mut self) -> Result<bool, EngineError> {
        // 1. Expire overdue queued requests.
        for item in self.queue.expire(self.now_ns) {
            self.reject(item.req, item.arrival_ns, Rejection::DeadlineQueued);
        }

        // 2. Fill free slots in (priority, arrival) order.
        let mut admissions = 0u64;
        while self.live < self.slots.len() && !self.queue.is_empty() {
            let Some(item) = self.queue.pop() else {
                return Err(EngineError::EmptyQueuePop);
            };
            // An empty prompt still carries the EOS marker, mirroring
            // `encode_with_eos` (the encoder needs at least one token).
            let src = if item.req.src.is_empty() {
                // hot-ok: admission path — runs once per request, never in a steady tick
                vec![self.cfg.eos]
            } else {
                // hot-ok: admission path — the decoder keeps no reference to src
                item.req.src.clone()
            };
            let Some(slot) = self.dec.admit(&src) else {
                // The popped item is in neither the queue nor a slot;
                // give it its terminal R005 response before bailing so
                // accounting survives the poison.
                self.reject(item.req, item.arrival_ns, Rejection::Internal);
                return Err(EngineError::AdmitRefused {
                    queued: self.queue.len(),
                });
            };
            if !matches!(self.slots.get(slot), Some(None)) {
                self.reject(item.req, item.arrival_ns, Rejection::Internal);
                return Err(EngineError::SlotUnavailable { slot });
            }
            self.expected_events.push(SlotEvent::Admitted {
                slot,
                src_len: src.len(),
            });
            self.log.push(AdmissionRecord {
                seq: item.seq,
                id: item.req.id,
                task: item.req.task,
                slot,
                admitted_ns: self.now_ns,
                queue_wait_ns: self.now_ns.saturating_sub(item.arrival_ns),
            });
            if let Some(entry) = self.slots.get_mut(slot) {
                *entry = Some(InFlight {
                    req: item.req,
                    arrival_ns: item.arrival_ns,
                    // hot-ok: admission path — one reservation per request, reused every tick
                    tokens: Vec::with_capacity(self.cfg.max_out),
                    prev: DECODER_START,
                    steps: 0,
                });
                self.live += 1;
                admissions += 1;
            }
        }
        if obs::enabled() {
            if admissions > 0 {
                obs::counter_add("serve.admitted", admissions);
            }
            obs::gauge_set("serve.queue_depth", self.queue.len() as f64);
            obs::gauge_set(
                "serve.slot_occupancy",
                self.live as f64 / self.slots.len() as f64,
            );
            obs::gauge_set("serve.kv_cache_bytes", self.dec.cache_bytes() as f64);
        }

        // 3. One packed decode step over every live slot. The `active`
        // and logits buffers are engine-owned and recycled tick to tick;
        // on the error paths below they are simply dropped — the engine
        // is poisoned and will never tick again.
        let stepped = self.live > 0;
        if stepped {
            let mut active = std::mem::take(&mut self.active);
            active.clear();
            active.extend(
                self.slots
                    .iter()
                    .enumerate()
                    .filter_map(|(slot, s)| s.as_ref().map(|f| (slot, f.prev))),
            );
            let mut logits = std::mem::take(&mut self.logits_buf);
            self.dec.step_packed_into(&active, &mut logits);
            if logits.len() != active.len() {
                return Err(EngineError::LogitsArity {
                    got: logits.len(),
                    want: active.len(),
                });
            }
            // The step and this tick's admissions are paid before the
            // post-step deadline check, so a deadline shorter than one
            // step retires its request with whatever that step emitted.
            self.now_ns += self.cfg.step_cost_ns + admissions * self.cfg.admit_cost_ns;
            let mut emitted = 0u64;
            for (&(slot, _), row) in active.iter().zip(logits.iter()) {
                let Some(f) = self.slots.get_mut(slot).and_then(Option::as_mut) else {
                    return Err(EngineError::VacantActiveSlot { slot });
                };
                f.steps += 1;
                let deadline_ns = f.req.deadline_ns;
                let next = argmax(row);
                let mut finished = next == self.cfg.eos;
                if !finished {
                    f.tokens.push(next);
                    f.prev = next;
                    emitted += 1;
                    finished = f.tokens.len() >= self.cfg.max_out;
                }
                if finished {
                    let flight = self.take_flight(slot)?;
                    self.finish_flight(slot, flight, Outcome::Completed);
                } else if deadline_ns <= self.now_ns {
                    let flight = self.take_flight(slot)?;
                    self.finish_flight(
                        slot,
                        flight,
                        Outcome::Rejected(Rejection::DeadlineDecoding),
                    );
                }
            }
            self.active = active;
            self.logits_buf = logits;
            if obs::enabled() && emitted > 0 {
                obs::counter_add("serve.tokens", emitted);
            }
        } else {
            self.now_ns += admissions * self.cfg.admit_cost_ns;
        }

        // 4. The batcher's own event log must mirror the scheduler's.
        let got = self.dec.take_slot_events();
        let expected = std::mem::take(&mut self.expected_events);
        if got != expected {
            return Err(EngineError::EventDivergence { got, expected });
        }
        Ok(stepped)
    }

    /// Removes the request resident in `slot` (typed counterpart of the
    /// old finish-of-empty-slot panic).
    fn take_flight(&mut self, slot: usize) -> Result<InFlight, EngineError> {
        self.slots
            .get_mut(slot)
            .and_then(Option::take)
            .ok_or(EngineError::FinishOfEmptySlot { slot })
    }

    /// Retires a removed request with `outcome` and emits its response.
    fn finish_flight(&mut self, slot: usize, f: InFlight, outcome: Outcome) {
        self.live -= 1;
        self.dec.retire(slot);
        self.expected_events.push(SlotEvent::Retired {
            slot,
            steps: f.steps,
        });
        let resp = ServeResponse {
            id: f.req.id,
            task: f.req.task,
            outcome,
            tokens: f.tokens,
            arrival_ns: f.arrival_ns,
            finished_ns: self.now_ns,
        };
        self.respond(resp);
    }

    /// Drains every queued and in-flight request with a terminal R005
    /// response and marks the engine refused-for-business. The decoder
    /// is deliberately not touched: its bookkeeping is the suspect.
    fn poison(&mut self) {
        self.poisoned = true;
        self.expected_events.clear();
        for item in self.queue.drain_all() {
            self.reject(item.req, item.arrival_ns, Rejection::Internal);
        }
        for slot in 0..self.slots.len() {
            if let Some(f) = self.slots.get_mut(slot).and_then(Option::take) {
                let resp = ServeResponse {
                    id: f.req.id,
                    task: f.req.task,
                    outcome: Outcome::Rejected(Rejection::Internal),
                    tokens: f.tokens,
                    arrival_ns: f.arrival_ns,
                    finished_ns: self.now_ns,
                };
                self.respond(resp);
            }
        }
        self.live = 0;
    }

    /// Replays a fixed arrival trace to completion (the deterministic
    /// path): arrivals are submitted when the virtual clock reaches
    /// them, the clock jumps over idle gaps, and the loop runs until
    /// every request has a terminal response.
    ///
    /// On an [`EngineError`] the engine poisons itself; the remaining
    /// trace arrivals are still submitted (each draws an immediate R005
    /// rejection) so the accounting invariant holds, then the error is
    /// returned.
    pub fn run_trace(&mut self, trace: &[(u64, ServeRequest)]) -> Result<(), EngineError> {
        let _span = obs::span!("serve/run_trace");
        let mut next = 0usize;
        loop {
            while next < trace.len() && trace[next].0 <= self.now_ns {
                let (arrival, req) = &trace[next];
                self.submit_at(*arrival, req.clone());
                next += 1;
            }
            if self.is_idle() {
                match trace.get(next) {
                    Some(&(t, _)) => self.advance_to(t),
                    None => return Ok(()),
                }
                continue;
            }
            if let Err(e) = self.tick() {
                for (arrival, req) in trace.iter().skip(next) {
                    self.submit_at(*arrival, req.clone());
                }
                return Err(e);
            }
        }
    }

    /// Shuts the engine down: every queued and in-flight request is
    /// retired with [`Rejection::Shutdown`] (keeping partial tokens),
    /// and the batcher must end with zero live KV bytes. A poisoned
    /// engine has already drained itself (with R005, not R004) and its
    /// batcher bookkeeping is untrusted, so the cross-checks are
    /// skipped.
    pub fn shutdown(&mut self) {
        for item in self.queue.drain_all() {
            self.reject(item.req, item.arrival_ns, Rejection::Shutdown);
        }
        for slot in 0..self.slots.len() {
            if let Some(f) = self.slots.get_mut(slot).and_then(Option::take) {
                self.finish_flight(slot, f, Outcome::Rejected(Rejection::Shutdown));
            }
        }
        if !self.poisoned {
            let got = self.dec.take_slot_events();
            let expected = std::mem::take(&mut self.expected_events);
            assert_eq!(got, expected, "shutdown slot events diverged");
            assert_eq!(
                self.dec.cache_bytes(),
                0,
                "KV cache bytes leaked past shutdown"
            );
        }
        if obs::enabled() {
            obs::gauge_set("serve.kv_cache_bytes", 0.0);
            obs::gauge_set("serve.slot_occupancy", 0.0);
        }
    }

    /// Finishes the run and produces the report of record. Panics if any
    /// request is still queued or in flight — call
    /// [`shutdown`](Self::shutdown) first unless the run drained.
    pub fn into_report(self) -> ServeReport {
        assert!(
            self.live == 0 && self.queue.is_empty(),
            "into_report with work outstanding (live={}, queued={})",
            self.live,
            self.queue.len()
        );
        let mut responses = self.responses;
        responses.sort_by_key(|r| r.id);
        ServeReport {
            responses,
            admission_log: self.log,
            arrivals: self.arrivals,
            completed: self.completed,
            rejected: self.rejected,
            per_task: self.per_task,
            end_ns: self.now_ns,
            cache: self.dec.prefix_cache_stats(),
        }
    }
}

/// Everything a finished run produced, in deterministic order.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// One response per arrival, sorted by request id.
    pub responses: Vec<ServeResponse>,
    /// Admissions in admission order.
    pub admission_log: Vec<AdmissionRecord>,
    pub arrivals: u64,
    pub completed: u64,
    /// Rejection label → count.
    pub rejected: BTreeMap<&'static str, u64>,
    pub per_task: BTreeMap<Task, TaskTally>,
    /// Virtual time when the run finished.
    pub end_ns: u64,
    /// Prefix-cache tallies, when the decoder carries a cache.
    /// Deliberately **excluded** from [`fingerprint`](Self::fingerprint):
    /// the cache must be invisible at the bits level, and a fingerprint
    /// that mentioned hit counts would (correctly) differ between
    /// cache-on and cache-off runs of the same trace.
    pub cache: Option<CacheStats>,
}

impl ServeReport {
    /// Total rejections across all kinds.
    pub fn rejections(&self) -> u64 {
        self.rejected.values().sum()
    }

    /// The no-silent-drop invariant: every arrival has exactly one
    /// terminal response.
    pub fn accounted(&self) -> bool {
        self.arrivals == self.completed + self.rejections()
            && self.responses.len() as u64 == self.arrivals
    }

    /// Sorted completion latencies, optionally restricted to one task.
    pub fn latencies_ns(&self, task: Option<Task>) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .responses
            .iter()
            .filter(|r| r.outcome == Outcome::Completed)
            .filter(|r| task.is_none_or(|t| r.task == t))
            .map(ServeResponse::latency_ns)
            .collect();
        out.sort_unstable();
        out
    }

    /// Nearest-rank percentile of a sorted sample (`p` in 0..=100).
    pub fn percentile_ns(sorted: &[u64], p: u32) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let rank = ((p as usize * sorted.len()).div_ceil(100)).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Completion-share fairness across the four tasks: the minimum over
    /// tasks of `completed / arrivals`, divided by the maximum — 1.0
    /// when every task's completion rate is equal, 0.0 when some task
    /// starves entirely. Tasks with no arrivals are excluded.
    pub fn fairness(&self) -> f64 {
        let rates: Vec<f64> = self
            .per_task
            .values()
            .filter(|t| t.arrivals > 0)
            .map(|t| t.completed as f64 / t.arrivals as f64)
            .collect();
        let min = rates.iter().copied().fold(f64::INFINITY, f64::min);
        let max = rates.iter().copied().fold(0.0f64, f64::max);
        if rates.is_empty() || max == 0.0 {
            return 0.0;
        }
        min / max
    }

    /// A bitwise-stable rendering of everything scheduling-visible:
    /// admission log, every response's outcome and tokens, and the final
    /// clock. Two runs of one trace must produce equal fingerprints —
    /// the double-run contract.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for rec in &self.admission_log {
            let _ = writeln!(s, "admit {}", rec.render());
        }
        for r in &self.responses {
            let outcome = match r.outcome {
                Outcome::Completed => "completed".to_string(),
                Outcome::Rejected(rej) => rej.code().to_string(),
            };
            let _ = writeln!(
                s,
                "resp id={} task={} outcome={} arrival={} finished={} tokens={:?}",
                r.id,
                r.task.label(),
                outcome,
                r.arrival_ns,
                r.finished_ns,
                r.tokens
            );
        }
        let _ = writeln!(s, "end t={} arrivals={}", self.end_ns, self.arrivals);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::ScriptedDecoder;

    const EOS: u32 = 1;

    fn engine(slots: usize, queue_cap: usize) -> ServeEngine<ScriptedDecoder> {
        // Script: request emits `src[0]` tokens (vocab id 5), then EOS.
        let dec = ScriptedDecoder::new(slots, 8, EOS, |src| {
            vec![5; src.first().copied().unwrap_or(0) as usize]
        });
        ServeEngine::new(dec, ServeConfig::new(queue_cap, 16, EOS))
    }

    fn req(id: u64, len: u32) -> ServeRequest {
        ServeRequest::new(id, Task::TextToVis, vec![len])
    }

    #[test]
    fn single_request_completes_with_scripted_tokens() {
        let mut e = engine(2, 4);
        e.submit(req(0, 3));
        e.run_trace(&[]).unwrap();
        let report = e.into_report();
        assert!(report.accounted());
        assert_eq!(report.responses[0].outcome, Outcome::Completed);
        assert_eq!(report.responses[0].tokens, vec![5, 5, 5]);
        assert_eq!(report.admission_log.len(), 1);
    }

    #[test]
    fn queue_overflow_rejects_with_r001() {
        let mut e = engine(1, 1);
        // Slot takes one, queue takes one, third bounces.
        e.submit(req(0, 5));
        e.tick().unwrap(); // admits request 0 into the slot
        e.submit(req(1, 5));
        e.submit(req(2, 5));
        let resp: Vec<_> = e.drain_responses();
        let bounced = resp.iter().find(|r| r.id == 2).expect("response for #2");
        assert_eq!(bounced.outcome, Outcome::Rejected(Rejection::QueueFull));
        e.run_trace(&[]).unwrap();
        let report = e.into_report();
        assert!(report.accounted());
        assert_eq!(report.rejected["queue-full"], 1);
        assert_eq!(report.completed, 2);
    }

    #[test]
    fn max_out_caps_runaway_decodes() {
        let mut e = engine(1, 2);
        e.submit(req(0, 100)); // wants 100 tokens, cap is 16
        e.run_trace(&[]).unwrap();
        let report = e.into_report();
        assert_eq!(report.responses[0].tokens.len(), 16);
        assert_eq!(report.responses[0].outcome, Outcome::Completed);
    }

    #[test]
    fn fingerprint_is_stable_across_runs() {
        let trace: Vec<(u64, ServeRequest)> = (0..6)
            .map(|i| (i * 500_000, req(i, (i % 3) as u32 + 1)))
            .collect();
        let run = || {
            let mut e = engine(2, 3);
            e.run_trace(&trace).unwrap();
            e.into_report().fingerprint()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(ServeReport::percentile_ns(&sorted, 50), 50);
        assert_eq!(ServeReport::percentile_ns(&sorted, 99), 99);
        assert_eq!(ServeReport::percentile_ns(&sorted, 100), 100);
        assert_eq!(ServeReport::percentile_ns(&[7], 99), 7);
        assert_eq!(ServeReport::percentile_ns(&[], 50), 0);
    }
}
