//! Test doubles for the scheduler: a scripted [`BatchDecoder`] that
//! replays a per-request token script instead of running a model.
//!
//! Scheduler properties (admission order, deadline handling, queue
//! accounting, slot reuse) are independent of the model's weights, so
//! the proptest and edge-case suites run against [`ScriptedDecoder`] —
//! deterministic by construction and thousands of times faster than a
//! real forward pass — while the double-run and bench suites exercise
//! the real [`nn::batch::BatchedDecodeState`].

use nn::batch::SlotEvent;
use nn::prefix_cache::{CacheStats, PrefixCache, PrefixKv};

use crate::engine::BatchDecoder;

/// Per-slot decode state inside the scripted decoder.
struct ScriptSlot {
    /// Tokens this request will emit, in order; after the script is
    /// exhausted the decoder emits EOS forever.
    script: Vec<u32>,
    /// Steps taken so far.
    t: usize,
    live: bool,
    /// Prefix-cache pin owed back at retirement, when the decoder
    /// carries a cache and this slot's entry was cached.
    pinned: Option<u64>,
}

/// Maps an admitted source to the token script its request replays.
type ScriptFn = Box<dyn Fn(&[u32]) -> Vec<u32> + Send>;

/// A [`BatchDecoder`] that turns each admitted source into a fixed token
/// script via a caller-supplied function. Logits are one-hot: the
/// scripted token gets 1.0, everything else 0.0, so `argmax` recovers
/// the script exactly.
pub struct ScriptedDecoder {
    slots: Vec<Option<ScriptSlot>>,
    vocab: usize,
    eos: u32,
    script_fn: ScriptFn,
    events: Vec<SlotEvent>,
    /// Optional prefix cache exercised with synthetic KV payloads —
    /// lets the scheduler suites drive real pin/evict/hit accounting
    /// without a model. Scripts never depend on the cache, so output
    /// bits stay identical with it on or off (the same contract the
    /// real decoder proves in `cache_differential.rs`).
    cache: Option<PrefixCache>,
    /// Duplicate-slot check buffer, reused across steps (the scripted
    /// decoder honors the same zero-alloc steady-state contract
    /// `step_packed_into` documents, so scheduler suites exercise it).
    seen_scratch: Vec<bool>,
}

impl ScriptedDecoder {
    /// `script_fn` maps an admitted source to the tokens the request
    /// should emit (EOS follows automatically).
    pub fn new(
        capacity: usize,
        vocab: usize,
        eos: u32,
        script_fn: impl Fn(&[u32]) -> Vec<u32> + Send + 'static,
    ) -> ScriptedDecoder {
        assert!(capacity > 0, "capacity must be positive");
        assert!((eos as usize) < vocab, "EOS must be inside the vocab");
        ScriptedDecoder {
            slots: (0..capacity).map(|_| None).collect(),
            vocab,
            eos,
            script_fn: Box::new(script_fn),
            events: Vec::new(),
            cache: None,
            seen_scratch: Vec::new(),
        }
    }

    /// Attaches a prefix cache (builder style). Each admission then
    /// looks its source up and, on a miss, inserts a deterministic
    /// synthetic [`PrefixKv`]; retirement releases the pin.
    pub fn with_prefix_cache(mut self, cache: PrefixCache) -> ScriptedDecoder {
        self.cache = Some(cache);
        self
    }

    /// The attached prefix cache, when one was configured.
    pub fn prefix_cache(&self) -> Option<&PrefixCache> {
        self.cache.as_ref()
    }

    /// Mutable access to the attached prefix cache (test visibility:
    /// draining event logs, audits).
    pub fn prefix_cache_mut(&mut self) -> Option<&mut PrefixCache> {
        self.cache.as_mut()
    }

    /// Live-slot count (test visibility).
    pub fn live_slots(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.as_ref().is_some_and(|s| s.live))
            .count()
    }
}

impl BatchDecoder for ScriptedDecoder {
    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn admit(&mut self, src: &[u32]) -> Option<usize> {
        assert!(
            !src.is_empty(),
            "scripted decoder requires a non-empty source"
        );
        let idx = self
            .slots
            .iter()
            .position(|s| s.as_ref().is_none_or(|s| !s.live))?;
        let script = (self.script_fn)(src);
        for &tok in &script {
            assert!((tok as usize) < self.vocab, "script token outside vocab");
        }
        let pinned = self.cache.as_mut().and_then(|c| match c.lookup_pin(src) {
            Some((_, hash)) => Some(hash),
            None => c.insert_pin(src, PrefixKv::synthetic(src, 2, 4)).1,
        });
        self.slots[idx] = Some(ScriptSlot {
            script,
            t: 0,
            live: true,
            pinned,
        });
        self.events.push(SlotEvent::Admitted {
            slot: idx,
            src_len: src.len(),
        });
        Some(idx)
    }

    fn retire(&mut self, slot: usize) {
        let s = self.slots[slot]
            .as_mut()
            .expect("retire of never-admitted slot");
        assert!(s.live, "retire of already-retired slot");
        s.live = false;
        self.events.push(SlotEvent::Retired { slot, steps: s.t });
        if let Some(hash) = s.pinned.take() {
            self.cache
                .as_mut()
                .expect("pinned slot without a cache")
                .unpin(hash);
        }
    }

    fn step_packed_into(&mut self, active: &[(usize, u32)], out: &mut Vec<Vec<f32>>) {
        assert!(!active.is_empty(), "step_packed with no active slots");
        self.seen_scratch.clear();
        self.seen_scratch.resize(self.slots.len(), false);
        out.truncate(active.len());
        for (row, &(slot, _prev)) in active.iter().enumerate() {
            assert!(!self.seen_scratch[slot], "duplicate slot in packed step");
            self.seen_scratch[slot] = true;
            let s = self.slots[slot]
                .as_mut()
                .filter(|s| s.live)
                .expect("step of retired slot");
            let tok = s.script.get(s.t).copied().unwrap_or(self.eos);
            s.t += 1;
            if out.len() <= row {
                out.push(Vec::new());
            }
            let buf = &mut out[row];
            buf.clear();
            buf.resize(self.vocab, 0.0);
            buf[tok as usize] = 1.0;
        }
    }

    fn cache_bytes(&self) -> usize {
        // A fixed per-live-slot footprint: enough for the shutdown
        // leak check to see nonzero bytes while requests are resident.
        self.live_slots() * 1024
    }

    fn take_slot_events(&mut self) -> Vec<SlotEvent> {
        std::mem::take(&mut self.events)
    }

    fn prefix_cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Allocating convenience over `step_packed_into` for assertions.
    fn step(d: &mut ScriptedDecoder, active: &[(usize, u32)]) -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        d.step_packed_into(active, &mut out);
        out
    }

    #[test]
    fn scripted_decoder_replays_script_then_eos() {
        let mut d = ScriptedDecoder::new(2, 8, 1, |src| src.to_vec());
        let slot = d.admit(&[5, 6]).unwrap();
        let r1 = step(&mut d, &[(slot, 0)]);
        assert_eq!(r1[0][5], 1.0);
        let r2 = step(&mut d, &[(slot, 5)]);
        assert_eq!(r2[0][6], 1.0);
        let r3 = step(&mut d, &[(slot, 6)]);
        assert_eq!(r3[0][1], 1.0, "script exhausted -> EOS");
        assert_eq!(d.cache_bytes(), 1024);
        d.retire(slot);
        assert_eq!(d.cache_bytes(), 0);
        assert_eq!(
            d.take_slot_events(),
            vec![
                SlotEvent::Admitted { slot, src_len: 2 },
                SlotEvent::Retired { slot, steps: 3 },
            ]
        );
    }

    #[test]
    fn scripted_decoder_drives_cache_pins_and_hits() {
        let mut d = ScriptedDecoder::new(2, 8, 1, |src| src.to_vec())
            .with_prefix_cache(PrefixCache::new(1 << 20));
        let a = d.admit(&[5, 6]).unwrap();
        let b = d.admit(&[5, 6]).unwrap();
        let c = d.prefix_cache().unwrap();
        assert_eq!(c.stats().misses, 1, "first admission misses");
        assert_eq!(c.stats().hits, 1, "same source hits");
        assert_eq!(c.pinned_entries(), 1, "both slots pin the one entry");
        d.retire(a);
        d.retire(b);
        let c = d.prefix_cache().unwrap();
        assert_eq!(c.pinned_entries(), 0, "retirement releases pins");
        assert_eq!(c.entries(), 1, "entry stays resident for reuse");
        assert_eq!(d.prefix_cache_stats(), Some(c.stats()));
        c.audit();
    }

    #[test]
    fn retired_slots_are_reused() {
        let mut d = ScriptedDecoder::new(1, 8, 1, |_| vec![2]);
        let a = d.admit(&[3]).unwrap();
        assert!(d.admit(&[4]).is_none(), "full decoder refuses admission");
        d.retire(a);
        let b = d.admit(&[4]).unwrap();
        assert_eq!(a, b, "freed slot is reused");
    }
}
