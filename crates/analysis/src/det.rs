//! Source-level determinism lints (`D0xx`).
//!
//! The differential suites (PR 2's batched-vs-sequential decode, PR 3's
//! resume-vs-uninterrupted train) prove bit-equality *dynamically*, but
//! they only cover the paths they execute. This scanner statically sweeps
//! every `crates/*/src/*.rs` file for the constructs that break
//! bit-reproducibility in Rust:
//!
//! | code | finding |
//! |------|---------|
//! | D000 | `det-ok` allowlist annotation without a reason |
//! | D001 | hash-ordered iteration reaching an order-sensitive sink (accumulation, sort comparator, serialization, argmax/tie-break) |
//! | D002 | ambient randomness outside the seeded RNG plumbing (`thread_rng`, `from_entropy`, `RandomState`) |
//! | D003 | wall-clock reads (`Instant::now`, `SystemTime`, `UNIX_EPOCH`) outside `crates/bench` |
//! | D004 | `env::var` reads outside `DATAVIST5_*` keys handled by config code |
//! | D005 | float `sum()`/`fold()`/`product()` fed by hash-ordered iteration |
//!
//! `std`'s `HashMap`/`HashSet` seed SipHash per *instance* (a thread-local
//! counter perturbs every `RandomState`), so two identical computations in
//! the same process already disagree on iteration order. Integer counts
//! summed over a hash map are order-independent; float accumulation,
//! first-match tie-breaks, and serialized key order are not — those are
//! the sinks this pass taints toward.
//!
//! The scanner is token-level, not a full parser: comments, strings, and
//! `#[cfg(test)]` modules are stripped (test modules never produce shipped
//! artifacts, and the differential suites are the dynamic check there),
//! then identifiers declared as hash collections — plus the results of
//! functions returning them, tracked workspace-wide — are taint sources.
//! A taint that reaches a sink inside the same statement (or the body of a
//! `for` iterating the collection) is a finding. Audited sites are
//! allowlisted with a trailing or preceding `// det-ok: <reason>` comment;
//! the reason is mandatory (D000 otherwise) and every suppression is
//! surfaced in the `det_audit` report rather than silently dropped.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// One source-level finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFinding {
    pub code: &'static str,
    /// Path as given to the scanner (workspace-relative in `audit_sources`).
    pub file: String,
    /// 1-based line of the offending construct.
    pub line: usize,
    pub message: String,
    /// `Some(reason)` when a `det-ok: <reason>` annotation covers the line.
    pub suppressed: Option<String>,
}

impl fmt::Display for SourceFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.suppressed {
            Some(reason) => write!(
                f,
                "allowed[{}] {}:{}: {} (det-ok: {reason})",
                self.code, self.file, self.line, self.message
            ),
            None => write!(
                f,
                "error[{}] {}:{}: {}",
                self.code, self.file, self.line, self.message
            ),
        }
    }
}

/// Tally of determinism findings across a whole audit, in the same spirit
/// as `vql::LintCounts` — one line a harness can print next to its scores.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetCounts {
    pub files: usize,
    pub suppressed: usize,
    pub d000: usize,
    pub d001: usize,
    pub d002: usize,
    pub d003: usize,
    pub d004: usize,
    pub d005: usize,
    /// Tape-level findings folded in by `det_audit`.
    pub d010: usize,
    pub d011: usize,
}

impl DetCounts {
    /// Records one source finding (suppressed findings count separately).
    pub fn record(&mut self, finding: &SourceFinding) {
        if finding.suppressed.is_some() {
            self.suppressed += 1;
            return;
        }
        match finding.code {
            "D000" => self.d000 += 1,
            "D001" => self.d001 += 1,
            "D002" => self.d002 += 1,
            "D003" => self.d003 += 1,
            "D004" => self.d004 += 1,
            "D005" => self.d005 += 1,
            other => panic!("unknown determinism code {other}"),
        }
    }

    /// Records one tape-level diagnostic code (`D010`/`D011`).
    pub fn record_tape(&mut self, code: &str) {
        match code {
            "D010" => self.d010 += 1,
            "D011" => self.d011 += 1,
            other => panic!("unknown tape determinism code {other}"),
        }
    }

    /// Findings that fail the audit (suppressed ones do not).
    pub fn unsuppressed(&self) -> usize {
        self.d000
            + self.d001
            + self.d002
            + self.d003
            + self.d004
            + self.d005
            + self.d010
            + self.d011
    }
}

impl fmt::Display for DetCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} files | D001:{} D002:{} D003:{} D004:{} D005:{} D010:{} D011:{} | \
             {} allowed (det-ok), {} unreasoned (D000)",
            self.files,
            self.d001,
            self.d002,
            self.d003,
            self.d004,
            self.d005,
            self.d010,
            self.d011,
            self.suppressed,
            self.d000,
        )
    }
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
struct Tok {
    text: String,
    line: usize,
    col: usize,
}

/// What stripping a file yields: lexable text plus the side tables the
/// lint rules need (string literal contents for D004, `det-ok`
/// annotations per line).
struct Stripped {
    tokens: Vec<Tok>,
    /// Original contents of string literals keyed by the opening quote's
    /// (line, col) — the token stream carries only a `""` placeholder.
    literals: BTreeMap<(usize, usize), String>,
    /// `det-ok` annotations: line → reason (empty string = missing).
    det_ok: BTreeMap<usize, String>,
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Chained float reductions → D005.
const FLOAT_ACC_SINKS: &[&str] = &["sum", "fold", "product"];

/// Order-sensitive method sinks → D001.
const METHOD_SINKS: &[&str] = &[
    "max_by",
    "min_by",
    "max_by_key",
    "min_by_key",
    "position",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "collect",
    "extend",
    "push",
    "push_str",
    "to_string",
    "serialize",
    "write_all",
];

/// Macro sinks (serialization / formatting) → D001.
const MACRO_SINKS: &[&str] = &[
    "write", "writeln", "print", "println", "eprintln", "format", "json",
];

/// Compound assignments inside an iteration body → D001 (accumulation).
const ASSIGN_SINKS: &[&str] = &["+=", "-=", "*=", "/="];

/// Wrapper/path tokens skipped when walking left from `HashMap` to the
/// declaration it types (e.g. `docs: Vec<HashMap<usize, f64>>`).
const TYPE_WRAPPERS: &[&str] = &[
    "<",
    "Vec",
    "Option",
    "Box",
    "Rc",
    "Arc",
    "std",
    "collections",
    "::",
    "&",
    "'",
    "mut",
];

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_alphabetic() || c == '_')
}

/// Strips comments, strings, and char literals from `text`, lexes the
/// remainder, and collects the side tables. Stripping is layout-
/// preserving — every removed character becomes a space (newlines stay) —
/// so token (line, col) positions in the stripped text equal positions in
/// the original, which is what keys the string-literal table.
fn strip_and_lex(text: &str) -> Stripped {
    let chars: Vec<char> = text.chars().collect();
    let mut clean: Vec<char> = Vec::with_capacity(chars.len());
    let mut literals = BTreeMap::new();
    let mut det_ok = BTreeMap::new();
    let (mut line, mut col) = (1usize, 1usize);
    let mut i = 0;
    let record_det_ok = |comment: &str, line: usize, det_ok: &mut BTreeMap<usize, String>| {
        if let Some(pos) = comment.find("det-ok") {
            let rest = comment[pos + "det-ok".len()..]
                .trim_start_matches(':')
                .trim();
            det_ok.insert(line, rest.to_string());
        }
    };
    // Consumes chars[i], emitting `replacement` (or '\n' for newlines) so
    // the stripped text keeps the original layout.
    macro_rules! eat {
        ($replacement:expr) => {{
            if chars[i] == '\n' {
                clean.push('\n');
                line += 1;
                col = 1;
            } else {
                clean.push($replacement);
                col += 1;
            }
            i += 1;
        }};
    }
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        let prev_ident = clean
            .iter()
            .rev()
            .find(|ch| !ch.is_whitespace())
            .is_some_and(|p| p.is_alphanumeric() || *p == '_')
            && clean
                .last()
                .is_some_and(|p| p.is_alphanumeric() || *p == '_');
        if c == '/' && next == Some('/') {
            let start_line = line;
            let mut comment = String::new();
            while i < chars.len() && chars[i] != '\n' {
                comment.push(chars[i]);
                eat!(' ');
            }
            record_det_ok(&comment, start_line, &mut det_ok);
            continue;
        }
        if c == '/' && next == Some('*') {
            let start_line = line;
            let mut comment = String::new();
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    eat!(' ');
                    eat!(' ');
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    eat!(' ');
                    eat!(' ');
                    if depth == 0 {
                        break;
                    }
                } else {
                    comment.push(chars[i]);
                    eat!(' ');
                }
            }
            record_det_ok(&comment, start_line, &mut det_ok);
            continue;
        }
        // Raw strings: r"…", r#"…"#, b-variants. Only when `r`/`b` is not
        // the tail of an identifier.
        if (c == 'r' || c == 'b') && !prev_ident {
            let mut j = i + 1;
            let mut hashes = 0;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') {
                let key = (line, col);
                eat!('\u{1}'); // the r/b prefix becomes the string marker
                while i <= j {
                    eat!(' '); // hashes and the opening quote
                }
                let mut content = String::new();
                while i < chars.len() {
                    if chars[i] == '"' {
                        let mut h = 0;
                        while chars.get(i + 1 + h) == Some(&'#') {
                            h += 1;
                        }
                        if h >= hashes {
                            for _ in 0..=hashes {
                                eat!(' ');
                            }
                            break;
                        }
                    }
                    content.push(chars[i]);
                    eat!(' ');
                }
                literals.insert(key, content);
                continue;
            }
        }
        if c == '"' {
            let key = (line, col);
            eat!('\u{1}'); // opening quote becomes the string marker
            let mut content = String::new();
            while i < chars.len() {
                if chars[i] == '\\' {
                    content.push(chars[i]);
                    eat!(' ');
                    if i < chars.len() {
                        content.push(chars[i]);
                        eat!(' ');
                    }
                    continue;
                }
                if chars[i] == '"' {
                    eat!(' ');
                    break;
                }
                content.push(chars[i]);
                eat!(' ');
            }
            literals.insert(key, content);
            continue;
        }
        // Char literal vs lifetime: 'x' / '\n' are literals, 'a in a
        // generic position is a lifetime (no closing quote nearby).
        if c == '\'' {
            if next == Some('\\') {
                // Escaped char literal: consume through the closing quote.
                eat!(' ');
                while i < chars.len() && chars[i] != '\'' {
                    eat!(' ');
                }
                if i < chars.len() {
                    eat!(' ');
                }
                continue;
            }
            if chars.get(i + 2) == Some(&'\'') {
                eat!(' ');
                eat!(' ');
                eat!(' ');
                continue;
            }
            // Lifetime: keep the tick so the type-walk can skip it.
        }
        eat!(c);
    }

    Stripped {
        tokens: lex(&clean.iter().collect::<String>()),
        literals,
        det_ok,
    }
}

/// Lexes stripped text into identifier / operator / punctuation tokens.
fn lex(clean: &str) -> Vec<Tok> {
    let chars: Vec<char> = clean.chars().collect();
    let mut toks = Vec::new();
    let (mut line, mut col) = (1usize, 1usize);
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            col = 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            col += 1;
            i += 1;
            continue;
        }
        let (start_line, start_col) = (line, col);
        if c == '\u{1}' {
            // String literal placeholder: one marker char at the position
            // of the literal's first character.
            toks.push(Tok {
                text: "\"\"".to_string(),
                line: start_line,
                col: start_col,
            });
            i += 1;
            col += 1;
            continue;
        }
        if c.is_alphanumeric() || c == '_' {
            let mut text = String::new();
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                text.push(chars[i]);
                i += 1;
                col += 1;
            }
            toks.push(Tok {
                text,
                line: start_line,
                col: start_col,
            });
            continue;
        }
        // Multi-char operators the lint rules care about; everything else
        // lexes as a single char.
        let three: String = chars[i..chars.len().min(i + 3)].iter().collect();
        let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
        let text = if three == "..=" {
            three
        } else if [
            "::", "->", "=>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "^=", "&=",
            "|=", "&&", "||", "..", "<<", ">>",
        ]
        .contains(&two.as_str())
        {
            two
        } else {
            c.to_string()
        };
        let len = text.chars().count();
        toks.push(Tok {
            text,
            line: start_line,
            col: start_col,
        });
        i += len;
        col += len;
    }
    toks
}

/// Removes `#[cfg(test)] mod … { … }` bodies from the token stream.
fn drop_test_modules(toks: Vec<Tok>) -> Vec<Tok> {
    let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
    let mut dead = vec![false; toks.len()];
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_cfg_test = texts[i] == "#"
            && texts[i + 1] == "["
            && texts[i + 2] == "cfg"
            && texts[i + 3] == "("
            && texts[i + 4] == "test"
            && texts[i + 5] == ")"
            && texts[i + 6] == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Find the opening brace of the annotated item (mod or fn).
        let mut j = i + 7;
        let mut depth = 0i32;
        while j < toks.len() {
            match texts[j] {
                "{" => {
                    depth += 1;
                }
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                ";" if depth == 0 => break, // `#[cfg(test)] mod x;` — nothing inline
                _ => {}
            }
            j += 1;
        }
        for flag in dead.iter_mut().take((j + 1).min(toks.len())).skip(i) {
            *flag = true;
        }
        i = j + 1;
    }
    toks.into_iter()
        .zip(dead)
        .filter_map(|(t, d)| (!d).then_some(t))
        .collect()
}

/// Workspace-wide taint sources: names declared as hash collections and
/// functions that return one (call results inherit the taint).
#[derive(Debug, Clone, Default)]
pub struct GlobalTaint {
    pub names: BTreeSet<String>,
    pub fns: BTreeSet<String>,
}

impl GlobalTaint {
    pub fn absorb(&mut self, other: GlobalTaint) {
        self.names.extend(other.names);
        self.fns.extend(other.fns);
    }
}

/// Pass 1: collects taint sources from one file.
pub fn collect_taint(text: &str) -> GlobalTaint {
    let stripped = strip_and_lex(text);
    let toks = drop_test_modules(stripped.tokens);
    let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
    let mut taint = GlobalTaint::default();
    for i in 0..toks.len() {
        if texts[i] != "HashMap" && texts[i] != "HashSet" {
            continue;
        }
        // Walk left over path segments and type wrappers to whatever
        // introduced this type.
        let mut j = i;
        while j > 0 && TYPE_WRAPPERS.contains(&texts[j - 1]) {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        match texts[j - 1] {
            // `name: HashMap<…>` — struct field, fn arg, or typed let.
            ":" if j >= 2 && is_ident(texts[j - 2]) => {
                taint.names.insert(texts[j - 2].to_string());
            }
            // `let [mut] name = HashMap::new()` (wrappers already skipped).
            "=" => {
                let mut k = j - 1;
                while k > 0 && !is_ident(texts[k - 1]) && texts[k - 1] != "let" {
                    k -= 1;
                }
                if k >= 2 && is_ident(texts[k - 1]) {
                    let name = texts[k - 1];
                    let kw = texts[k - 2];
                    if kw == "let" || (kw == "mut" && k >= 3 && texts[k - 3] == "let") {
                        taint.names.insert(name.to_string());
                    }
                }
            }
            // `fn name(…) -> HashMap<…>` — call results are tainted.
            "->" => {
                let mut k = j - 1;
                while k > 0 && texts[k - 1] != "fn" {
                    k -= 1;
                    if j - k > 64 {
                        break;
                    }
                }
                if k >= 1 && texts[k - 1] == "fn" && k < texts.len() && is_ident(texts[k]) {
                    taint.fns.insert(texts[k].to_string());
                }
            }
            _ => {}
        }
    }
    taint
}

/// Per-file scan options.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanOptions {
    /// `crates/bench` measures wall-clock by design; timing reads there
    /// are the benchmark's output, not hidden nondeterminism.
    pub timing_exempt: bool,
    /// `core/src/config.rs` owns the documented `DATAVIST5_*` env surface.
    pub env_owner: bool,
}

/// Pass 2: scans one file against the workspace-wide taint sets.
pub fn scan_source(
    file: &str,
    text: &str,
    taint: &GlobalTaint,
    opts: ScanOptions,
) -> Vec<SourceFinding> {
    let stripped = strip_and_lex(text);
    let toks = drop_test_modules(stripped.tokens);
    let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
    let mut tainted: BTreeSet<&str> = taint.names.iter().map(|s| s.as_str()).collect();

    // Local taint through hash-returning calls: `let x = ngram_counts(…)`.
    let mut local: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        if taint.fns.contains(texts[i]) && texts.get(i + 1) == Some(&"(") {
            let mut j = i;
            while j > 0 && (texts[j - 1] == "::" || is_ident(texts[j - 1])) {
                j -= 1;
            }
            if j >= 2 && texts[j - 1] == "=" && is_ident(texts[j - 2]) {
                local.push(texts[j - 2].to_string());
            }
        }
    }
    for name in &local {
        tainted.insert(name);
    }

    let mut findings = Vec::new();

    // D000: allowlist annotations must carry a reason.
    for (&line, reason) in &stripped.det_ok {
        if reason.is_empty() {
            findings.push(SourceFinding {
                code: "D000",
                file: file.to_string(),
                line,
                message: "det-ok annotation without a reason; write `det-ok: <why this \
                          site is order-safe>`"
                    .to_string(),
                suppressed: None,
            });
        }
    }

    let det_ok = &stripped.det_ok;
    let mut push = |code: &'static str, line: usize, message: String| {
        let suppressed = det_ok
            .get(&line)
            .or_else(|| det_ok.get(&(line - 1)))
            .filter(|reason| !reason.is_empty())
            .cloned();
        findings.push(SourceFinding {
            code,
            file: file.to_string(),
            line,
            message,
            suppressed,
        });
    };

    // D001/D005: hash-ordered iteration reaching an order-sensitive sink.
    let mut events: Vec<(usize, &str, bool)> = Vec::new(); // (tok idx, name, is_for_loop)
    for i in 0..toks.len() {
        if tainted.contains(texts[i])
            && texts.get(i + 1) == Some(&".")
            && texts.get(i + 2).is_some_and(|m| ITER_METHODS.contains(m))
            && texts.get(i + 3) == Some(&"(")
        {
            events.push((i, texts[i], false));
        }
        if texts[i] == "for" {
            // `for pat in <chain> {` — an event when the chain ends in a
            // tainted name with no method call (those hit the rule above).
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < toks.len() && j - i < 24 {
                match texts[j] {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "in" if depth == 0 => break,
                    "{" => break,
                    _ => {}
                }
                j += 1;
            }
            if j >= toks.len() || texts[j] != "in" {
                continue;
            }
            let mut name: Option<&str> = None;
            let mut has_call = false;
            let mut k = j + 1;
            while k < toks.len() && texts[k] != "{" && k - j < 16 {
                if texts[k] == "(" {
                    has_call = true;
                }
                if is_ident(texts[k]) {
                    name = Some(texts[k]);
                }
                k += 1;
            }
            if let Some(name) = name {
                if !has_call && tainted.contains(name) {
                    events.push((i, name, true));
                }
            }
        }
    }
    for (start, name, is_for) in events {
        // Scan to the end of the statement (or the end of the `for` body).
        let mut depth = 0i32;
        let mut sink: Option<(&str, &str)> = None; // (kind, token)
        for j in start..toks.len().min(start + 600) {
            match texts[j] {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    // A `for` event ends with its body's closing brace; a
                    // statement event only ends if we fell out of the
                    // enclosing block (closure braces nest and return to 0).
                    if depth < 0 || (is_for && depth == 0) {
                        break;
                    }
                }
                ";" if depth == 0 && !is_for => break,
                t => {
                    if FLOAT_ACC_SINKS.contains(&t) && j > 0 && texts[j - 1] == "." {
                        sink = Some(("float-acc", t));
                        break;
                    }
                    if METHOD_SINKS.contains(&t) && j > 0 && texts[j - 1] == "." {
                        sink = Some(("order", t));
                        break;
                    }
                    if MACRO_SINKS.contains(&t) && texts.get(j + 1) == Some(&"!") {
                        sink = Some(("order", t));
                        break;
                    }
                    if ASSIGN_SINKS.contains(&t) && is_for {
                        sink = Some(("order", t));
                        break;
                    }
                }
            }
        }
        if let Some((kind, sink_tok)) = sink {
            let line = toks[start].line;
            if kind == "float-acc" {
                push(
                    "D005",
                    line,
                    format!(
                        "float `{sink_tok}` over hash-ordered `{name}`: accumulation \
                         order follows the per-instance SipHash seed; use a BTreeMap \
                         or sort keys first"
                    ),
                );
            } else {
                push(
                    "D001",
                    line,
                    format!(
                        "iteration over hash-ordered `{name}` reaches order-sensitive \
                         sink `{sink_tok}`; use a BTreeMap or sort keys first"
                    ),
                );
            }
        }
    }

    // D002: ambient randomness.
    for i in 0..toks.len() {
        let t = texts[i];
        if t == "thread_rng" || t == "from_entropy" || t == "RandomState" {
            push(
                "D002",
                toks[i].line,
                format!("ambient randomness `{t}` outside the seeded StdRng plumbing"),
            );
        }
        if t == "random" && i >= 2 && texts[i - 1] == "::" && texts[i - 2] == "rand" {
            push(
                "D002",
                toks[i].line,
                "ambient randomness `rand::random` outside the seeded StdRng plumbing".to_string(),
            );
        }
    }

    // D003: wall-clock reads outside bench code.
    if !opts.timing_exempt {
        for i in 0..toks.len() {
            let t = texts[i];
            let hit = match t {
                "SystemTime" | "UNIX_EPOCH" => true,
                "Instant" => texts.get(i + 1) == Some(&"::") && texts.get(i + 2) == Some(&"now"),
                _ => false,
            };
            if hit {
                push(
                    "D003",
                    toks[i].line,
                    format!("wall-clock read `{t}` can influence non-bench output"),
                );
            }
        }
    }

    // D004: env reads outside the DATAVIST5_* config surface.
    if !opts.env_owner {
        for i in 0..toks.len() {
            if texts[i] == "env"
                && texts.get(i + 1) == Some(&"::")
                && (texts.get(i + 2) == Some(&"var") || texts.get(i + 2) == Some(&"var_os"))
                && texts.get(i + 3) == Some(&"(")
            {
                let arg = &toks[i + 4];
                let allowed = arg.text == "\"\""
                    && stripped
                        .literals
                        .get(&(arg.line, arg.col))
                        .is_some_and(|lit| lit.starts_with("DATAVIST5_"));
                if !allowed {
                    let what = stripped
                        .literals
                        .get(&(arg.line, arg.col))
                        .map(|l| format!("`{l}`"))
                        .unwrap_or_else(|| "a dynamic key".to_string());
                    push(
                        "D004",
                        toks[i].line,
                        format!(
                            "env::var read of {what} outside the DATAVIST5_* config \
                             surface can change behaviour between runs"
                        ),
                    );
                }
            }
        }
    }

    findings.sort_by(|a, b| (a.line, a.code).cmp(&(b.line, b.code)));
    findings
}

/// The outcome of a workspace source sweep.
#[derive(Debug, Clone, Default)]
pub struct SourceAudit {
    /// Unsuppressed findings — any entry here fails the audit.
    pub findings: Vec<SourceFinding>,
    /// `det-ok`-allowlisted findings, kept visible in reports.
    pub allowed: Vec<SourceFinding>,
    pub counts: DetCounts,
}

/// Collects every `.rs` file under `dir`, sorted for deterministic output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Sweeps every `crates/*/src/**/*.rs` (plus the workspace root `src/`)
/// under `root`: pass 1 collects workspace-wide taint, pass 2 lints each
/// file against it.
pub fn audit_sources(root: &Path) -> std::io::Result<SourceAudit> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                rust_files(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        rust_files(&root_src, &mut files)?;
    }

    let sources: Vec<(String, String)> = files
        .iter()
        .map(|path| {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(path)
                .to_string_lossy()
                .replace('\\', "/");
            std::fs::read_to_string(path).map(|text| (rel, text))
        })
        .collect::<std::io::Result<_>>()?;

    // Hash-returning *functions* propagate taint workspace-wide (their
    // call results are hash collections wherever they land). Variable and
    // field *names* stay file-local: common names (`a`, `seen`, `indices`)
    // collide across crates, and a hash field iterated outside its
    // defining file has no same-file declaration to anchor on anyway.
    let mut fns = BTreeSet::new();
    for (_, text) in &sources {
        fns.extend(collect_taint(text).fns);
    }

    let mut audit = SourceAudit::default();
    for (rel, text) in &sources {
        let opts = ScanOptions {
            timing_exempt: rel.starts_with("crates/bench/"),
            env_owner: rel == "crates/core/src/config.rs",
        };
        let taint = GlobalTaint {
            names: collect_taint(text).names,
            fns: fns.clone(),
        };
        for finding in scan_source(rel, text, &taint, opts) {
            audit.counts.record(&finding);
            if finding.suppressed.is_some() {
                audit.allowed.push(finding);
            } else {
                audit.findings.push(finding);
            }
        }
        audit.counts.files += 1;
    }
    Ok(audit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> Vec<SourceFinding> {
        let taint = collect_taint(text);
        scan_source("test.rs", text, &taint, ScanOptions::default())
    }

    fn unsuppressed(text: &str) -> Vec<SourceFinding> {
        scan(text)
            .into_iter()
            .filter(|f| f.suppressed.is_none())
            .collect()
    }

    #[test]
    fn d001_hash_iteration_into_sort() {
        let src = r#"
            fn f(m: std::collections::HashMap<String, f32>) -> Vec<String> {
                let mut ks: Vec<String> = m.keys().cloned().collect();
                ks
            }
        "#;
        let f = unsuppressed(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "D001");
        assert!(f[0].message.contains("`m`"));
    }

    #[test]
    fn d001_for_loop_accumulation() {
        let src = "
            fn f(tf: std::collections::HashMap<usize, f64>) -> f64 {
                let mut norm = 0.0;
                for (_, w) in &tf {
                    norm += w * w;
                }
                norm
            }
        ";
        let f = unsuppressed(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "D001");
    }

    #[test]
    fn d005_float_sum_over_hash_values() {
        let src = "
            fn norm(tf: &std::collections::HashMap<usize, f64>) -> f64 {
                tf.values().map(|w| w * w).sum::<f64>().sqrt()
            }
        ";
        let f = unsuppressed(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "D005");
    }

    #[test]
    fn taint_flows_through_hash_returning_fns() {
        let src = "
            fn counts(x: &[u32]) -> HashMap<u32, usize> { todo!() }
            fn g(x: &[u32]) -> usize {
                let c = counts(x);
                let mut total = 0.0f32;
                for (_, n) in &c {
                    total += *n as f32;
                }
                total as usize
            }
        ";
        let f = unsuppressed(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "D001");
    }

    #[test]
    fn lookup_only_maps_are_clean() {
        let src = "
            fn f(m: &std::collections::HashMap<String, usize>) -> usize {
                let mut c = m.get(\"k\").copied().unwrap_or(0);
                c += m.len();
                c
            }
        ";
        assert!(unsuppressed(src).is_empty());
    }

    #[test]
    fn btree_maps_are_clean() {
        let src = "
            fn f(m: &std::collections::BTreeMap<String, f32>) -> f32 {
                m.values().sum()
            }
        ";
        assert!(unsuppressed(src).is_empty());
    }

    #[test]
    fn det_ok_with_reason_suppresses_and_is_reported() {
        let src = "
            fn f(m: std::collections::HashMap<String, u32>) -> Vec<String> {
                // det-ok: keys are re-sorted two lines down, order never escapes
                let ks: Vec<String> = m.keys().cloned().collect();
                ks
            }
        ";
        let all = scan(src);
        assert_eq!(all.len(), 1);
        assert!(all[0].suppressed.as_deref().unwrap().contains("re-sorted"));
        assert!(unsuppressed(src).is_empty());
    }

    #[test]
    fn det_ok_without_reason_is_d000() {
        let src = "
            fn f() {
                let x = 1; // det-ok
            }
        ";
        let f = unsuppressed(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "D000");
    }

    #[test]
    fn d002_ambient_randomness() {
        let src = "
            fn f() -> u64 {
                let mut rng = thread_rng();
                0
            }
        ";
        let f = unsuppressed(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "D002");
    }

    #[test]
    fn seeded_rng_is_clean() {
        let src = "
            fn f() {
                let mut rng = StdRng::seed_from_u64(7);
                let x = XorShift::new(42);
            }
        ";
        assert!(unsuppressed(src).is_empty());
    }

    #[test]
    fn d003_wall_clock_unless_exempt() {
        let src = "
            fn f() {
                let t = std::time::Instant::now();
            }
        ";
        let f = unsuppressed(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "D003");
        let taint = collect_taint(src);
        let exempt = scan_source(
            "crates/bench/src/x.rs",
            src,
            &taint,
            ScanOptions {
                timing_exempt: true,
                env_owner: false,
            },
        );
        assert!(exempt.is_empty());
    }

    #[test]
    fn d004_env_reads() {
        let good = "fn f() { let v = std::env::var(\"DATAVIST5_SCALE\"); }";
        assert!(unsuppressed(good).is_empty());
        let bad = "fn f() { let v = std::env::var(\"HOME\"); }";
        let f = unsuppressed(bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "D004");
        assert!(f[0].message.contains("HOME"));
        let dynamic = "fn f(k: &str) { let v = std::env::var(k); }";
        let f = unsuppressed(dynamic);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "D004");
    }

    #[test]
    fn test_modules_are_skipped() {
        let src = "
            fn prod() {}
            #[cfg(test)]
            mod tests {
                fn f(m: std::collections::HashMap<u32, f32>) -> f32 {
                    m.values().sum()
                }
            }
        ";
        assert!(unsuppressed(src).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trigger() {
        let src = "
            // HashMap iteration with thread_rng and Instant::now in prose.
            fn f() -> &'static str {
                \"m.values().sum::<f32>() thread_rng SystemTime\"
            }
        ";
        assert!(unsuppressed(src).is_empty());
    }

    #[test]
    fn counts_tally_and_display() {
        let mut c = DetCounts::default();
        c.record(&SourceFinding {
            code: "D001",
            file: "x.rs".into(),
            line: 1,
            message: String::new(),
            suppressed: None,
        });
        c.record(&SourceFinding {
            code: "D005",
            file: "x.rs".into(),
            line: 2,
            message: String::new(),
            suppressed: Some("audited".into()),
        });
        c.record_tape("D010");
        assert_eq!(c.unsuppressed(), 2);
        assert_eq!(c.suppressed, 1);
        let text = c.to_string();
        assert!(text.contains("D001:1"), "{text}");
        assert!(text.contains("D010:1"), "{text}");
    }
}
