//! Source-level determinism lints (`D0xx`).
//!
//! The differential suites (PR 2's batched-vs-sequential decode, PR 3's
//! resume-vs-uninterrupted train) prove bit-equality *dynamically*, but
//! they only cover the paths they execute. This scanner statically sweeps
//! every `crates/*/src/*.rs` file for the constructs that break
//! bit-reproducibility in Rust:
//!
//! | code | finding |
//! |------|---------|
//! | D000 | `det-ok` allowlist annotation without a reason |
//! | D001 | hash-ordered iteration reaching an order-sensitive sink (accumulation, sort comparator, serialization, argmax/tie-break) |
//! | D002 | ambient randomness outside the seeded RNG plumbing (`thread_rng`, `from_entropy`, `RandomState`) |
//! | D003 | wall-clock reads (`Instant::now`, `SystemTime`, `UNIX_EPOCH`) outside `crates/bench` |
//! | D004 | `env::var` reads outside `DATAVIST5_*` keys handled by config code |
//! | D005 | float `sum()`/`fold()`/`product()` fed by hash-ordered iteration |
//! | D009 | stale `det-ok` annotation that no longer matches any finding |
//!
//! `std`'s `HashMap`/`HashSet` seed SipHash per *instance* (a thread-local
//! counter perturbs every `RandomState`), so two identical computations in
//! the same process already disagree on iteration order. Integer counts
//! summed over a hash map are order-independent; float accumulation,
//! first-match tie-breaks, and serialized key order are not — those are
//! the sinks this pass taints toward.
//!
//! The scanner is token-level, not a full parser: comments, strings, and
//! `#[cfg(test)]` modules are stripped via [`crate::lexer`] (test modules
//! never produce shipped artifacts, and the differential suites are the
//! dynamic check there), then identifiers declared as hash collections —
//! plus the results of functions returning them, tracked workspace-wide —
//! are taint sources. A taint that reaches a sink inside the same
//! statement (or the body of a `for` iterating the collection) is a
//! finding. Audited sites are allowlisted with a trailing or preceding
//! `// det-ok: <reason>` comment; the reason is mandatory (D000
//! otherwise), every suppression is surfaced in the `det_audit` report
//! rather than silently dropped, and a reasoned annotation that stops
//! matching any finding is itself a finding (D009) so the allowlist
//! cannot rot.

use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

use crate::lexer::{drop_test_modules, drop_test_modules_spanned, is_ident, strip_and_lex};
use crate::suppress::Suppressions;

/// One source-level finding (shared by the `det` and `par` auditors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFinding {
    pub code: &'static str,
    /// Path as given to the scanner (workspace-relative in `audit_sources`).
    pub file: String,
    /// 1-based line of the offending construct.
    pub line: usize,
    pub message: String,
    /// `Some(reason)` when a family annotation covers the line.
    pub suppressed: Option<String>,
}

impl SourceFinding {
    /// Which suppression family governs this finding's code.
    pub fn family(&self) -> &'static str {
        if self.code.starts_with('P') {
            "par-ok"
        } else if self.code.starts_with('H') {
            "hot-ok"
        } else {
            "det-ok"
        }
    }
}

impl fmt::Display for SourceFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.suppressed {
            Some(reason) => write!(
                f,
                "allowed[{}] {}:{}: {} ({}: {reason})",
                self.code,
                self.file,
                self.line,
                self.message,
                self.family()
            ),
            None => write!(
                f,
                "error[{}] {}:{}: {}",
                self.code, self.file, self.line, self.message
            ),
        }
    }
}

/// Tally of determinism findings across a whole audit, in the same spirit
/// as `vql::LintCounts` — one line a harness can print next to its scores.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetCounts {
    pub files: usize,
    pub suppressed: usize,
    pub d000: usize,
    pub d001: usize,
    pub d002: usize,
    pub d003: usize,
    pub d004: usize,
    pub d005: usize,
    /// Stale `det-ok` annotations (allowlist rot).
    pub d009: usize,
    /// Tape-level findings folded in by `det_audit`.
    pub d010: usize,
    pub d011: usize,
}

impl DetCounts {
    /// Records one source finding (suppressed findings count separately).
    pub fn record(&mut self, finding: &SourceFinding) {
        if finding.suppressed.is_some() {
            self.suppressed += 1;
            return;
        }
        match finding.code {
            "D000" => self.d000 += 1,
            "D001" => self.d001 += 1,
            "D002" => self.d002 += 1,
            "D003" => self.d003 += 1,
            "D004" => self.d004 += 1,
            "D005" => self.d005 += 1,
            "D009" => self.d009 += 1,
            other => panic!("unknown determinism code {other}"),
        }
    }

    /// Records one tape-level diagnostic code (`D010`/`D011`).
    pub fn record_tape(&mut self, code: &str) {
        match code {
            "D010" => self.d010 += 1,
            "D011" => self.d011 += 1,
            other => panic!("unknown tape determinism code {other}"),
        }
    }

    /// Findings that fail the audit (suppressed ones do not).
    pub fn unsuppressed(&self) -> usize {
        self.d000
            + self.d001
            + self.d002
            + self.d003
            + self.d004
            + self.d005
            + self.d009
            + self.d010
            + self.d011
    }
}

impl fmt::Display for DetCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} files | D001:{} D002:{} D003:{} D004:{} D005:{} D009:{} D010:{} D011:{} | \
             {} allowed (det-ok), {} unreasoned (D000)",
            self.files,
            self.d001,
            self.d002,
            self.d003,
            self.d004,
            self.d005,
            self.d009,
            self.d010,
            self.d011,
            self.suppressed,
            self.d000,
        )
    }
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Chained float reductions → D005.
const FLOAT_ACC_SINKS: &[&str] = &["sum", "fold", "product"];

/// Order-sensitive method sinks → D001.
const METHOD_SINKS: &[&str] = &[
    "max_by",
    "min_by",
    "max_by_key",
    "min_by_key",
    "position",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "collect",
    "extend",
    "push",
    "push_str",
    "to_string",
    "serialize",
    "write_all",
];

/// Macro sinks (serialization / formatting) → D001.
const MACRO_SINKS: &[&str] = &[
    "write", "writeln", "print", "println", "eprintln", "format", "json",
];

/// Compound assignments inside an iteration body → D001 (accumulation).
const ASSIGN_SINKS: &[&str] = &["+=", "-=", "*=", "/="];

/// Wrapper/path tokens skipped when walking left from `HashMap` to the
/// declaration it types (e.g. `docs: Vec<HashMap<usize, f64>>`).
const TYPE_WRAPPERS: &[&str] = &[
    "<",
    "Vec",
    "Option",
    "Box",
    "Rc",
    "Arc",
    "std",
    "collections",
    "::",
    "&",
    "'",
    "mut",
];

/// Workspace-wide taint sources: names declared as hash collections and
/// functions that return one (call results inherit the taint).
#[derive(Debug, Clone, Default)]
pub struct GlobalTaint {
    pub names: BTreeSet<String>,
    pub fns: BTreeSet<String>,
}

impl GlobalTaint {
    pub fn absorb(&mut self, other: GlobalTaint) {
        self.names.extend(other.names);
        self.fns.extend(other.fns);
    }
}

/// Pass 1: collects taint sources from one file.
pub fn collect_taint(text: &str) -> GlobalTaint {
    let stripped = strip_and_lex(text);
    let toks = drop_test_modules(stripped.tokens);
    let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
    let mut taint = GlobalTaint::default();
    for i in 0..toks.len() {
        if texts[i] != "HashMap" && texts[i] != "HashSet" {
            continue;
        }
        // Walk left over path segments and type wrappers to whatever
        // introduced this type.
        let mut j = i;
        while j > 0 && TYPE_WRAPPERS.contains(&texts[j - 1]) {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        match texts[j - 1] {
            // `name: HashMap<…>` — struct field, fn arg, or typed let.
            ":" if j >= 2 && is_ident(texts[j - 2]) => {
                taint.names.insert(texts[j - 2].to_string());
            }
            // `let [mut] name = HashMap::new()` (wrappers already skipped).
            "=" => {
                let mut k = j - 1;
                while k > 0 && !is_ident(texts[k - 1]) && texts[k - 1] != "let" {
                    k -= 1;
                }
                if k >= 2 && is_ident(texts[k - 1]) {
                    let name = texts[k - 1];
                    let kw = texts[k - 2];
                    if kw == "let" || (kw == "mut" && k >= 3 && texts[k - 3] == "let") {
                        taint.names.insert(name.to_string());
                    }
                }
            }
            // `fn name(…) -> HashMap<…>` — call results are tainted.
            "->" => {
                let mut k = j - 1;
                while k > 0 && texts[k - 1] != "fn" {
                    k -= 1;
                    if j - k > 64 {
                        break;
                    }
                }
                if k >= 1 && texts[k - 1] == "fn" && k < texts.len() && is_ident(texts[k]) {
                    taint.fns.insert(texts[k].to_string());
                }
            }
            _ => {}
        }
    }
    taint
}

/// Per-file scan options.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanOptions {
    /// `crates/bench` measures wall-clock by design; timing reads there
    /// are the benchmark's output, not hidden nondeterminism.
    pub timing_exempt: bool,
    /// `core/src/config.rs` owns the documented `DATAVIST5_*` env surface.
    pub env_owner: bool,
}

/// Pass 2: scans one file against the workspace-wide taint sets.
pub fn scan_source(
    file: &str,
    text: &str,
    taint: &GlobalTaint,
    opts: ScanOptions,
) -> Vec<SourceFinding> {
    let stripped = strip_and_lex(text);
    let mut supp = Suppressions::from_stripped(&stripped, "det-ok");
    let literals = stripped.literals;
    let (toks, test_spans) = drop_test_modules_spanned(stripped.tokens);
    supp.discard_lines_in(&test_spans);
    let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
    let mut tainted: BTreeSet<&str> = taint.names.iter().map(|s| s.as_str()).collect();

    // Local taint through hash-returning calls: `let x = ngram_counts(…)`.
    let mut local: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        if taint.fns.contains(texts[i]) && texts.get(i + 1) == Some(&"(") {
            let mut j = i;
            while j > 0 && (texts[j - 1] == "::" || is_ident(texts[j - 1])) {
                j -= 1;
            }
            if j >= 2 && texts[j - 1] == "=" && is_ident(texts[j - 2]) {
                local.push(texts[j - 2].to_string());
            }
        }
    }
    for name in &local {
        tainted.insert(name);
    }

    let mut findings = Vec::new();

    // D000: allowlist annotations must carry a reason.
    for line in supp.missing_reason_lines() {
        findings.push(SourceFinding {
            code: "D000",
            file: file.to_string(),
            line,
            message: "det-ok annotation without a reason; write `det-ok: <why this \
                      site is order-safe>`"
                .to_string(),
            suppressed: None,
        });
    }

    let mut push = |code: &'static str, line: usize, message: String| {
        let suppressed = supp.consume(line);
        findings.push(SourceFinding {
            code,
            file: file.to_string(),
            line,
            message,
            suppressed,
        });
    };

    // D001/D005: hash-ordered iteration reaching an order-sensitive sink.
    let mut events: Vec<(usize, &str, bool)> = Vec::new(); // (tok idx, name, is_for_loop)
    for i in 0..toks.len() {
        if tainted.contains(texts[i])
            && texts.get(i + 1) == Some(&".")
            && texts.get(i + 2).is_some_and(|m| ITER_METHODS.contains(m))
            && texts.get(i + 3) == Some(&"(")
        {
            events.push((i, texts[i], false));
        }
        if texts[i] == "for" {
            // `for pat in <chain> {` — an event when the chain ends in a
            // tainted name with no method call (those hit the rule above).
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < toks.len() && j - i < 24 {
                match texts[j] {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "in" if depth == 0 => break,
                    "{" => break,
                    _ => {}
                }
                j += 1;
            }
            if j >= toks.len() || texts[j] != "in" {
                continue;
            }
            let mut name: Option<&str> = None;
            let mut has_call = false;
            let mut k = j + 1;
            while k < toks.len() && texts[k] != "{" && k - j < 16 {
                if texts[k] == "(" {
                    has_call = true;
                }
                if is_ident(texts[k]) {
                    name = Some(texts[k]);
                }
                k += 1;
            }
            if let Some(name) = name {
                if !has_call && tainted.contains(name) {
                    events.push((i, name, true));
                }
            }
        }
    }
    for (start, name, is_for) in events {
        // Scan to the end of the statement (or the end of the `for` body).
        let mut depth = 0i32;
        let mut sink: Option<(&str, &str)> = None; // (kind, token)
        for j in start..toks.len().min(start + 600) {
            match texts[j] {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    // A `for` event ends with its body's closing brace; a
                    // statement event only ends if we fell out of the
                    // enclosing block (closure braces nest and return to 0).
                    if depth < 0 || (is_for && depth == 0) {
                        break;
                    }
                }
                ";" if depth == 0 && !is_for => break,
                t => {
                    if FLOAT_ACC_SINKS.contains(&t) && j > 0 && texts[j - 1] == "." {
                        sink = Some(("float-acc", t));
                        break;
                    }
                    if METHOD_SINKS.contains(&t) && j > 0 && texts[j - 1] == "." {
                        sink = Some(("order", t));
                        break;
                    }
                    if MACRO_SINKS.contains(&t) && texts.get(j + 1) == Some(&"!") {
                        sink = Some(("order", t));
                        break;
                    }
                    if ASSIGN_SINKS.contains(&t) && is_for {
                        sink = Some(("order", t));
                        break;
                    }
                }
            }
        }
        if let Some((kind, sink_tok)) = sink {
            let line = toks[start].line;
            if kind == "float-acc" {
                push(
                    "D005",
                    line,
                    format!(
                        "float `{sink_tok}` over hash-ordered `{name}`: accumulation \
                         order follows the per-instance SipHash seed; use a BTreeMap \
                         or sort keys first"
                    ),
                );
            } else {
                push(
                    "D001",
                    line,
                    format!(
                        "iteration over hash-ordered `{name}` reaches order-sensitive \
                         sink `{sink_tok}`; use a BTreeMap or sort keys first"
                    ),
                );
            }
        }
    }

    // D002: ambient randomness.
    for i in 0..toks.len() {
        let t = texts[i];
        if t == "thread_rng" || t == "from_entropy" || t == "RandomState" {
            push(
                "D002",
                toks[i].line,
                format!("ambient randomness `{t}` outside the seeded StdRng plumbing"),
            );
        }
        if t == "random" && i >= 2 && texts[i - 1] == "::" && texts[i - 2] == "rand" {
            push(
                "D002",
                toks[i].line,
                "ambient randomness `rand::random` outside the seeded StdRng plumbing".to_string(),
            );
        }
    }

    // D003: wall-clock reads outside bench code.
    if !opts.timing_exempt {
        for i in 0..toks.len() {
            let t = texts[i];
            let hit = match t {
                "SystemTime" | "UNIX_EPOCH" => true,
                "Instant" => texts.get(i + 1) == Some(&"::") && texts.get(i + 2) == Some(&"now"),
                _ => false,
            };
            if hit {
                push(
                    "D003",
                    toks[i].line,
                    format!("wall-clock read `{t}` can influence non-bench output"),
                );
            }
        }
    }

    // D004: env reads outside the DATAVIST5_* config surface.
    if !opts.env_owner {
        for i in 0..toks.len() {
            if texts[i] == "env"
                && texts.get(i + 1) == Some(&"::")
                && (texts.get(i + 2) == Some(&"var") || texts.get(i + 2) == Some(&"var_os"))
                && texts.get(i + 3) == Some(&"(")
            {
                let arg = &toks[i + 4];
                let allowed = arg.text == "\"\""
                    && literals
                        .get(&(arg.line, arg.col))
                        .is_some_and(|lit| lit.starts_with("DATAVIST5_"));
                if !allowed {
                    let what = literals
                        .get(&(arg.line, arg.col))
                        .map(|l| format!("`{l}`"))
                        .unwrap_or_else(|| "a dynamic key".to_string());
                    push(
                        "D004",
                        toks[i].line,
                        format!(
                            "env::var read of {what} outside the DATAVIST5_* config \
                             surface can change behaviour between runs"
                        ),
                    );
                }
            }
        }
    }

    // D009: reasoned annotations nothing consumed — the stale allowlist.
    for line in supp.stale_lines() {
        findings.push(SourceFinding {
            code: "D009",
            file: file.to_string(),
            line,
            message: "stale det-ok suppression: no determinism finding on this or the \
                      following line; remove the annotation or re-audit the site"
                .to_string(),
            suppressed: None,
        });
    }

    findings.sort_by(|a, b| (a.line, a.code).cmp(&(b.line, b.code)));
    findings
}

/// The outcome of a workspace source sweep.
#[derive(Debug, Clone, Default)]
pub struct SourceAudit {
    /// Unsuppressed findings — any entry here fails the audit.
    pub findings: Vec<SourceFinding>,
    /// `det-ok`-allowlisted findings, kept visible in reports.
    pub allowed: Vec<SourceFinding>,
    pub counts: DetCounts,
}

/// Sweeps every `crates/*/src/**/*.rs` (plus the workspace root `src/`)
/// under `root`: pass 1 collects workspace-wide taint, pass 2 lints each
/// file against it.
pub fn audit_sources(root: &Path) -> std::io::Result<SourceAudit> {
    let sources = crate::lexer::workspace_sources(root)?;

    // Hash-returning *functions* propagate taint workspace-wide (their
    // call results are hash collections wherever they land). Variable and
    // field *names* stay file-local: common names (`a`, `seen`, `indices`)
    // collide across crates, and a hash field iterated outside its
    // defining file has no same-file declaration to anchor on anyway.
    let mut fns = BTreeSet::new();
    for (_, text) in &sources {
        fns.extend(collect_taint(text).fns);
    }

    let mut audit = SourceAudit::default();
    for (rel, text) in &sources {
        let opts = ScanOptions {
            timing_exempt: rel.starts_with("crates/bench/"),
            env_owner: rel == "crates/core/src/config.rs",
        };
        let taint = GlobalTaint {
            names: collect_taint(text).names,
            fns: fns.clone(),
        };
        for finding in scan_source(rel, text, &taint, opts) {
            audit.counts.record(&finding);
            if finding.suppressed.is_some() {
                audit.allowed.push(finding);
            } else {
                audit.findings.push(finding);
            }
        }
        audit.counts.files += 1;
    }
    Ok(audit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> Vec<SourceFinding> {
        let taint = collect_taint(text);
        scan_source("test.rs", text, &taint, ScanOptions::default())
    }

    fn unsuppressed(text: &str) -> Vec<SourceFinding> {
        scan(text)
            .into_iter()
            .filter(|f| f.suppressed.is_none())
            .collect()
    }

    #[test]
    fn d001_hash_iteration_into_sort() {
        let src = r#"
            fn f(m: std::collections::HashMap<String, f32>) -> Vec<String> {
                let mut ks: Vec<String> = m.keys().cloned().collect();
                ks
            }
        "#;
        let f = unsuppressed(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "D001");
        assert!(f[0].message.contains("`m`"));
    }

    #[test]
    fn d001_for_loop_accumulation() {
        let src = "
            fn f(tf: std::collections::HashMap<usize, f64>) -> f64 {
                let mut norm = 0.0;
                for (_, w) in &tf {
                    norm += w * w;
                }
                norm
            }
        ";
        let f = unsuppressed(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "D001");
    }

    #[test]
    fn d005_float_sum_over_hash_values() {
        let src = "
            fn norm(tf: &std::collections::HashMap<usize, f64>) -> f64 {
                tf.values().map(|w| w * w).sum::<f64>().sqrt()
            }
        ";
        let f = unsuppressed(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "D005");
    }

    #[test]
    fn taint_flows_through_hash_returning_fns() {
        let src = "
            fn counts(x: &[u32]) -> HashMap<u32, usize> { todo!() }
            fn g(x: &[u32]) -> usize {
                let c = counts(x);
                let mut total = 0.0f32;
                for (_, n) in &c {
                    total += *n as f32;
                }
                total as usize
            }
        ";
        let f = unsuppressed(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "D001");
    }

    #[test]
    fn lookup_only_maps_are_clean() {
        let src = "
            fn f(m: &std::collections::HashMap<String, usize>) -> usize {
                let mut c = m.get(\"k\").copied().unwrap_or(0);
                c += m.len();
                c
            }
        ";
        assert!(unsuppressed(src).is_empty());
    }

    #[test]
    fn btree_maps_are_clean() {
        let src = "
            fn f(m: &std::collections::BTreeMap<String, f32>) -> f32 {
                m.values().sum()
            }
        ";
        assert!(unsuppressed(src).is_empty());
    }

    #[test]
    fn det_ok_with_reason_suppresses_and_is_reported() {
        let src = "
            fn f(m: std::collections::HashMap<String, u32>) -> Vec<String> {
                // det-ok: keys are re-sorted two lines down, order never escapes
                let ks: Vec<String> = m.keys().cloned().collect();
                ks
            }
        ";
        let all = scan(src);
        assert_eq!(all.len(), 1);
        assert!(all[0].suppressed.as_deref().unwrap().contains("re-sorted"));
        assert!(unsuppressed(src).is_empty());
    }

    #[test]
    fn det_ok_without_reason_is_d000() {
        let src = "
            fn f() {
                let x = 1; // det-ok
            }
        ";
        let f = unsuppressed(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "D000");
    }

    #[test]
    fn stale_det_ok_is_d009() {
        let src = "
            fn f() {
                let x = 1; // det-ok: this line used to read the clock
            }
        ";
        let f = unsuppressed(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code, "D009");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("stale"));
    }

    #[test]
    fn consumed_det_ok_is_not_stale() {
        let src = "
            fn f() {
                let t = std::time::Instant::now(); // det-ok: audited timing site
            }
        ";
        assert!(unsuppressed(src).is_empty());
    }

    #[test]
    fn det_ok_inside_test_module_is_ignored() {
        let src = "
            fn prod() {}
            #[cfg(test)]
            mod tests {
                fn t() {
                    let x = 1; // det-ok: annotations in test code are inert
                }
            }
        ";
        assert!(unsuppressed(src).is_empty());
    }

    #[test]
    fn d002_ambient_randomness() {
        let src = "
            fn f() -> u64 {
                let mut rng = thread_rng();
                0
            }
        ";
        let f = unsuppressed(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "D002");
    }

    #[test]
    fn seeded_rng_is_clean() {
        let src = "
            fn f() {
                let mut rng = StdRng::seed_from_u64(7);
                let x = XorShift::new(42);
            }
        ";
        assert!(unsuppressed(src).is_empty());
    }

    #[test]
    fn d003_wall_clock_unless_exempt() {
        let src = "
            fn f() {
                let t = std::time::Instant::now();
            }
        ";
        let f = unsuppressed(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "D003");
        let taint = collect_taint(src);
        let exempt = scan_source(
            "crates/bench/src/x.rs",
            src,
            &taint,
            ScanOptions {
                timing_exempt: true,
                env_owner: false,
            },
        );
        assert!(exempt.is_empty());
    }

    #[test]
    fn d004_env_reads() {
        let good = "fn f() { let v = std::env::var(\"DATAVIST5_SCALE\"); }";
        assert!(unsuppressed(good).is_empty());
        let bad = "fn f() { let v = std::env::var(\"HOME\"); }";
        let f = unsuppressed(bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "D004");
        assert!(f[0].message.contains("HOME"));
        let dynamic = "fn f(k: &str) { let v = std::env::var(k); }";
        let f = unsuppressed(dynamic);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "D004");
    }

    #[test]
    fn test_modules_are_skipped() {
        let src = "
            fn prod() {}
            #[cfg(test)]
            mod tests {
                fn f(m: std::collections::HashMap<u32, f32>) -> f32 {
                    m.values().sum()
                }
            }
        ";
        assert!(unsuppressed(src).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trigger() {
        let src = "
            // HashMap iteration with thread_rng and Instant::now in prose.
            fn f() -> &'static str {
                \"m.values().sum::<f32>() thread_rng SystemTime\"
            }
        ";
        assert!(unsuppressed(src).is_empty());
    }

    #[test]
    fn counts_tally_and_display() {
        let mut c = DetCounts::default();
        c.record(&SourceFinding {
            code: "D001",
            file: "x.rs".into(),
            line: 1,
            message: String::new(),
            suppressed: None,
        });
        c.record(&SourceFinding {
            code: "D005",
            file: "x.rs".into(),
            line: 2,
            message: String::new(),
            suppressed: Some("audited".into()),
        });
        c.record_tape("D010");
        assert_eq!(c.unsuppressed(), 2);
        assert_eq!(c.suppressed, 1);
        let text = c.to_string();
        assert!(text.contains("D001:1"), "{text}");
        assert!(text.contains("D010:1"), "{text}");
        assert!(text.contains("D009:0"), "{text}");
    }
}
